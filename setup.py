"""Legacy setup entry point.

Kept so ``pip install -e .`` works in offline environments without the
``wheel`` package (pip falls back to ``setup.py develop``). All metadata
lives in pyproject.toml; values here mirror it for the legacy path.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Making the Most out of Direct-Access Network "
        "Attached Storage' (FAST 2003)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    entry_points={"console_scripts": ["repro-bench=repro.bench.cli:main"]},
)
