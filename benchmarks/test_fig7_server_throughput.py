"""Fig. 7 — server throughput, two clients, cache block size 4-64 KB.

Paper shape: ODAFS saturates the server network link at every cache block
size without using the server CPU; DAFS is server-CPU-bound at small
blocks (interrupt-constrained at 4 KB; ~170 MB/s with polling) and
converges to the link rate at large blocks. The residual ODAFS gain over
polling DAFS at 4 KB is ~32%.
"""

import pytest

from repro.bench.figures import fig7_server_throughput
from repro.hw.nic import NotifyMode

BLOCKS = (4, 16, 64)


@pytest.fixture(scope="module")
def results():
    return fig7_server_throughput(block_sizes_kb=BLOCKS,
                                  blocks_per_file=512)


@pytest.fixture(scope="module")
def polling_results():
    return fig7_server_throughput(block_sizes_kb=(4,),
                                  blocks_per_file=512,
                                  server_mode=NotifyMode.POLL)


def test_fig7_benchmark(benchmark):
    out = benchmark.pedantic(
        fig7_server_throughput, kwargs={"block_sizes_kb": (4,),
                                        "blocks_per_file": 256},
        rounds=1, iterations=1)
    assert set(out) == {"dafs", "odafs"}


@pytest.mark.parametrize("block_kb", BLOCKS)
def test_odafs_saturates_link_at_every_block_size(results, block_kb):
    assert results["odafs"][block_kb]["throughput_mb_s"] > 200.0


@pytest.mark.parametrize("block_kb", BLOCKS)
def test_odafs_uses_no_server_cpu(results, block_kb):
    assert results["odafs"][block_kb]["server_cpu"] < 0.02


def test_dafs_cpu_bound_at_small_blocks(results):
    small = results["dafs"][4]
    assert small["throughput_mb_s"] < 130.0  # interrupt-constrained
    assert small["server_cpu"] > 0.90


def test_dafs_converges_at_large_blocks(results):
    large = results["dafs"][64]["throughput_mb_s"]
    odafs = results["odafs"][64]["throughput_mb_s"]
    assert large > 0.85 * odafs


def test_polling_dafs_near_170_at_4kb(polling_results):
    assert polling_results["dafs"][4]["throughput_mb_s"] == \
        pytest.approx(170.0, rel=0.10)


def test_residual_odafs_gain_near_32_percent(polling_results):
    dafs = polling_results["dafs"][4]["throughput_mb_s"]
    odafs = polling_results["odafs"][4]["throughput_mb_s"]
    assert 0.20 < odafs / dafs - 1.0 < 0.45  # paper: ~0.32


def test_gm_get_bug_emulation_hurts_64kb_only():
    """The paper's Fig. 7 64 KB anomaly, behind its opt-in flag."""
    from repro.params import default_params
    params = default_params()
    params.net.emulate_gm_get_bug = True
    bugged = fig7_server_throughput(params=params, block_sizes_kb=(4, 64),
                                    blocks_per_file=256,
                                    systems=("odafs",))
    assert bugged["odafs"][4]["throughput_mb_s"] > 200.0
    assert bugged["odafs"][64]["throughput_mb_s"] < \
        bugged["odafs"][4]["throughput_mb_s"] - 20.0
