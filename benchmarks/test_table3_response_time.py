"""Table 3 — 4 KB read response time by network I/O mechanism.

Paper values (us): RPC in-line 128 (in mem.) / 153 (in cache);
RPC direct 144 / 144; ORDMA 92 / 92. ORDMA is ~36% faster than direct RPC.
"""

import pytest

from repro.bench.figures import PAPER_TABLE3, table3_response_time


@pytest.fixture(scope="module")
def results():
    return table3_response_time(n_blocks=512, measure_blocks=256)


def test_table3_benchmark(benchmark):
    out = benchmark.pedantic(
        table3_response_time, kwargs={"n_blocks": 128,
                                      "measure_blocks": 64},
        rounds=1, iterations=1)
    assert set(out) == {"rpc_inline", "rpc_direct", "ordma"}


@pytest.mark.parametrize("mechanism,column", [
    ("rpc_inline", "in_mem"), ("rpc_inline", "in_cache"),
    ("rpc_direct", "in_mem"), ("rpc_direct", "in_cache"),
    ("ordma", "in_mem"), ("ordma", "in_cache"),
])
def test_absolute_times_match_paper(results, mechanism, column):
    measured = results[mechanism][column]
    paper = PAPER_TABLE3[mechanism][column]
    assert measured == pytest.approx(paper, rel=0.12)


def test_ordma_is_fastest(results):
    ordma = results["ordma"]["in_cache"]
    assert ordma < results["rpc_inline"]["in_mem"]
    assert ordma < results["rpc_direct"]["in_mem"]


def test_ordma_improvement_over_direct_rpc(results):
    """Paper: ~36% lower response time than direct RPC."""
    gain = 1.0 - results["ordma"]["in_cache"] / results["rpc_direct"]["in_cache"]
    assert 0.25 < gain < 0.45


def test_inline_in_cache_pays_one_server_copy(results):
    delta = (results["rpc_inline"]["in_cache"]
             - results["rpc_inline"]["in_mem"])
    assert 18.0 < delta < 33.0  # paper: 153 - 128 = 25 us (a 4 KB copy)


def test_direct_read_insensitive_to_data_location(results):
    assert results["rpc_direct"]["in_mem"] == \
        pytest.approx(results["rpc_direct"]["in_cache"], rel=0.01)


def test_inline_faster_than_direct_from_memory(results):
    """In-lining beats a separate RDMA when no server copy is needed."""
    assert results["rpc_inline"]["in_mem"] < results["rpc_direct"]["in_mem"]
