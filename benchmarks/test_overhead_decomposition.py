"""Section 2.2's overhead equation, fitted from measurements.

The decomposition quantifies the paper's two arguments: RDDP removes the
per-byte term (copies), and ORDMA/user-level structure removes most of the
per-I/O term (RPC processing).
"""

import pytest

from repro.bench.decompose import decompose, fit_overhead


@pytest.fixture(scope="module")
def results():
    return decompose(n_ios=64)


def test_decompose_benchmark(benchmark):
    out = benchmark.pedantic(decompose,
                             kwargs={"n_ios": 32, "sizes_kb": (4, 64)},
                             rounds=1, iterations=1)
    assert "nfs" in out and "dafs" in out


def test_nfs_per_byte_dominates(results):
    """Standard NFS pays an order of magnitude more per byte than any
    zero-copy system (two staging copies)."""
    nfs = results["nfs"]["client"]["per_kb_us"]
    for system in ("nfs-prepost", "nfs-hybrid", "dafs"):
        assert nfs > 5.0 * results[system]["client"]["per_kb_us"]


def test_rdma_systems_have_near_zero_per_byte(results):
    for system in ("nfs-hybrid", "dafs"):
        assert results[system]["client"]["per_kb_us"] < 1.0
        assert results[system]["server"]["per_kb_us"] < 0.5


def test_prepost_per_byte_is_fragment_work_only(results):
    """Pre-posting eliminates copies but keeps per-fragment processing:
    a small but nonzero per-byte term (Fig. 4's flattening)."""
    prepost = results["nfs-prepost"]["client"]["per_kb_us"]
    assert 0.5 < prepost < 4.0
    assert prepost < 0.3 * results["nfs"]["client"]["per_kb_us"]


def test_user_level_client_minimizes_per_io(results):
    """DAFS's user-level structure pays far less per I/O than kernel
    clients (no syscalls, no kernel RPC layer, polling)."""
    dafs = results["dafs"]["client"]["per_io_us"]
    for system in ("nfs", "nfs-prepost", "nfs-hybrid"):
        assert dafs < 0.4 * results[system]["client"]["per_io_us"]


def test_server_per_io_is_rpc_processing(results):
    """Every RPC-served system pays tens of microseconds of server CPU
    per I/O — the term ORDMA removes entirely (Fig. 7)."""
    for system in ("nfs", "nfs-prepost", "nfs-hybrid", "dafs"):
        assert 20.0 < results[system]["server"]["per_io_us"] < 90.0


def test_fit_rejects_degenerate_input():
    with pytest.raises(ValueError):
        fit_overhead([(4096, 10.0)])


def test_fit_recovers_known_coefficients():
    points = [(m, m * 0.002 + 30.0) for m in (4096, 16384, 65536)]
    per_kb, per_io = fit_overhead(points)
    assert per_kb == pytest.approx(0.002 * 1024, rel=1e-6)
    assert per_io == pytest.approx(30.0, rel=1e-6)
