"""Fig. 4 — client CPU utilization vs application block size.

Paper shape: DAFS consumes <15% of the client CPU at >=64 KB blocks; NFS
hybrid uses more client CPU than DAFS (higher per-RPC kernel overhead)
despite both using RDMA; NFS pre-posting's decline flattens because its
per-fragment work scales with bytes; standard NFS saturates the CPU.
"""

import pytest

from repro.bench.figures import fig3_fig4

BLOCKS = (4, 64, 512)


@pytest.fixture(scope="module")
def results():
    return fig3_fig4(block_sizes_kb=BLOCKS, blocks_per_point=256)


def test_fig4_benchmark(benchmark):
    out = benchmark.pedantic(
        fig3_fig4, kwargs={"block_sizes_kb": (64,), "blocks_per_point": 128},
        rounds=1, iterations=1)
    assert 0.0 <= out["dafs"][64]["client_cpu"] <= 1.0


def test_dafs_below_15_percent_at_64kb(results):
    assert results["dafs"][64]["client_cpu"] < 0.15
    assert results["dafs"][512]["client_cpu"] < 0.15


def test_hybrid_uses_more_cpu_than_dafs(results):
    for block_kb in BLOCKS:
        assert results["nfs-hybrid"][block_kb]["client_cpu"] > \
            results["dafs"][block_kb]["client_cpu"]


def test_nfs_client_cpu_saturated(results):
    assert results["nfs"][64]["client_cpu"] > 0.85
    assert results["nfs"][512]["client_cpu"] > 0.85


def test_prepost_cpu_flattens_with_per_byte_floor(results):
    """Pre-posting's utilization cannot fall below its per-fragment work."""
    prepost = results["nfs-prepost"]
    assert prepost[512]["client_cpu"] > 0.15  # floor
    assert prepost[512]["client_cpu"] < prepost[4]["client_cpu"]
    # DAFS keeps dropping far below pre-posting's floor.
    assert results["dafs"][512]["client_cpu"] < \
        0.25 * prepost[512]["client_cpu"]


def test_cpu_declines_with_block_size_for_zero_copy(results):
    for system in ("dafs", "nfs-hybrid", "nfs-prepost"):
        series = results[system]
        assert series[512]["client_cpu"] < series[4]["client_cpu"]
