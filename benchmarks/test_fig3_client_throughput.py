"""Fig. 3 — client read throughput vs application block size.

Paper shape: DAFS and NFS hybrid plateau ~230 MB/s from 32 KB; NFS
pre-posting slightly higher (~235 MB/s, 8 KB Ethernet fragments vs 4 KB GM
fragments); standard NFS tops out ~65 MB/s, copy-bound.
"""

import pytest

from repro.bench.figures import fig3_fig4

BLOCKS = (4, 32, 64, 256, 512)


@pytest.fixture(scope="module")
def results():
    return fig3_fig4(block_sizes_kb=BLOCKS, blocks_per_point=256)


def test_fig3_benchmark(benchmark):
    out = benchmark.pedantic(
        fig3_fig4, kwargs={"block_sizes_kb": (4, 64, 512),
                           "blocks_per_point": 128},
        rounds=1, iterations=1)
    assert set(out) == {"nfs", "nfs-prepost", "nfs-hybrid", "dafs"}


def _plateau(results, system):
    return results[system][512]["throughput_mb_s"]


def test_nfs_plateau_near_65(results):
    assert _plateau(results, "nfs") == pytest.approx(65.0, rel=0.15)


def test_zero_copy_systems_saturate_link(results):
    for system in ("nfs-prepost", "nfs-hybrid", "dafs"):
        assert _plateau(results, system) > 220.0


def test_prepost_beats_rdma_systems_at_plateau(results):
    """8 KB Ethernet fragments beat 4 KB GM fragments (Section 5.1)."""
    prepost = _plateau(results, "nfs-prepost")
    assert prepost > _plateau(results, "dafs")
    assert prepost > _plateau(results, "nfs-hybrid")


def test_nfs_is_copy_bound_everywhere(results):
    for block_kb in BLOCKS:
        ratio = (results["nfs"][block_kb]["throughput_mb_s"]
                 / results["dafs"][block_kb]["throughput_mb_s"])
        assert ratio < 0.8


def test_plateau_reached_by_32kb(results):
    # >= 75% of the plateau by 32 KB (the paper reaches ~100%; our model
    # keeps a slightly stronger response-behind-data convoy effect on the
    # shared link for the RPC-over-UDP hybrid).
    for system in ("nfs-prepost", "nfs-hybrid", "dafs"):
        assert results[system][32]["throughput_mb_s"] > \
            0.75 * _plateau(results, system)


def test_throughput_rises_with_block_size(results):
    for system, series in results.items():
        small = series[4]["throughput_mb_s"]
        large = series[512]["throughput_mb_s"]
        assert large > small
