"""Shared helpers for the benchmark suite.

Every bench regenerates one of the paper's tables/figures. The simulations
are deterministic, so each runs exactly once under ``benchmark.pedantic``;
the assertions check the paper's *shape* (who wins, where crossovers fall,
approximate factors), not testbed-exact numbers.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run a deterministic experiment exactly once under the benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)


@pytest.fixture
def once(benchmark):
    def _run(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)
    return _run
