"""Table 2 — baseline network performance of GM, VI and UDP.

Paper values: GM 23 us / 244 MB/s; VI poll 23 us, VI block 53 us,
244 MB/s; UDP/Ethernet 80 us / 166 MB/s.
"""

import pytest

from repro.bench.baseline import PAPER_TABLE2, table2


@pytest.fixture(scope="module")
def results():
    return table2()


def test_table2_benchmark(benchmark):
    measured = benchmark.pedantic(table2, rounds=1, iterations=1)
    assert set(measured) == set(PAPER_TABLE2)


@pytest.mark.parametrize("proto", list(PAPER_TABLE2))
def test_roundtrip_matches_paper(results, proto):
    measured = results[proto]["roundtrip_us"]
    paper = PAPER_TABLE2[proto]["roundtrip_us"]
    assert measured == pytest.approx(paper, rel=0.20)


@pytest.mark.parametrize("proto", list(PAPER_TABLE2))
def test_bandwidth_matches_paper(results, proto):
    measured = results[proto]["bandwidth_mb_s"]
    paper = PAPER_TABLE2[proto]["bandwidth_mb_s"]
    assert measured == pytest.approx(paper, rel=0.15)


def test_blocking_costs_two_interrupt_wakeups(results):
    delta = (results["VI block"]["roundtrip_us"]
             - results["VI poll"]["roundtrip_us"])
    assert 20.0 < delta < 40.0  # paper: 53 - 23 = 30 us


def test_udp_slowest_roundtrip(results):
    assert results["UDP/Ethernet"]["roundtrip_us"] > \
        results["VI block"]["roundtrip_us"]


def test_gm_bandwidth_near_fragment_limit(results):
    # 4 KB payload + ~100 B header on a 250 MB/s link => ~244 MB/s.
    assert results["GM"]["bandwidth_mb_s"] == pytest.approx(244.0, rel=0.03)
