"""Fig. 5 — Berkeley DB join throughput vs bytes copied per record.

Paper shape: with little copying, throughput is near the wire rate for all
systems except standard NFS (pre-posting slightly ahead, as in Fig. 3);
as per-record copying grows the client CPU saturates and relative
performance becomes inversely proportional to each system's client CPU
overhead for 64 KB transfers.
"""

import pytest

from repro.bench.figures import fig5_berkeley_db

POINTS = (0, 16, 64)


@pytest.fixture(scope="module")
def results():
    return fig5_berkeley_db(copy_points_kb=POINTS, n_records=192)


def test_fig5_benchmark(benchmark):
    out = benchmark.pedantic(
        fig5_berkeley_db, kwargs={"copy_points_kb": (0, 64),
                                  "n_records": 96},
        rounds=1, iterations=1)
    assert set(out) == {"nfs", "nfs-prepost", "nfs-hybrid", "dafs"}


def test_little_copying_near_wire_rate(results):
    for system in ("nfs-prepost", "nfs-hybrid", "dafs"):
        assert results[system][0] > 175.0
    assert results["nfs"][0] < 80.0


def test_prepost_ahead_of_hybrid_at_zero_copy(results):
    assert results["nfs-prepost"][0] > results["nfs-hybrid"][0]


def test_throughput_declines_with_copying(results):
    """Monotone decline up to small pipeline wiggle (<10%)."""
    for system, series in results.items():
        assert series[64] < 0.80 * series[0]
        assert series[16] <= series[0] * 1.10
        assert series[64] < series[16]


def test_copy_saturation_compresses_the_gap(results):
    """Once the app copy dominates, systems converge (NFS still lowest)."""
    spread_zero = results["dafs"][0] - results["nfs"][0]
    spread_full = results["dafs"][64] - results["nfs"][64]
    assert spread_full < 0.55 * spread_zero
    assert results["nfs"][64] == min(r[64] for r in results.values())


def test_order_matches_client_overhead_at_full_copy(results):
    """The lowest-overhead client (DAFS) wins once copying dominates, and
    standard NFS stays last (Section 5.1)."""
    assert results["dafs"][64] == max(r[64] for r in results.values())
    assert results["nfs"][64] == min(r[64] for r in results.values())
