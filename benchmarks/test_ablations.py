"""Ablation benches for the design choices the paper calls out.

Each test regenerates one knob's comparison and asserts the qualitative
claim the paper makes about it.
"""

import pytest

from repro.bench.ablations import (
    ablation_batch_io,
    ablation_capabilities,
    ablation_directory_policy,
    ablation_nic_tlb,
    ablation_ordma_hit_rate,
    ablation_polling,
    ablation_registration_cache,
)
from repro.params import default_params


class TestPolling:
    """Section 5.2: switching the DAFS server to polling lifts 4 KB
    throughput to ~170 MB/s and shrinks the ODAFS gain to ~32%."""

    @pytest.fixture(scope="class")
    def results(self):
        return ablation_polling(blocks_per_file=384)

    def test_benchmark(self, benchmark):
        out = benchmark.pedantic(ablation_polling,
                                 kwargs={"blocks_per_file": 192},
                                 rounds=1, iterations=1)
        assert set(out) == {"interrupts", "polling"}

    def test_polling_lifts_dafs(self, results):
        assert results["polling"]["dafs_mb_s"] > \
            results["interrupts"]["dafs_mb_s"] + 40.0

    def test_polling_shrinks_odafs_gain(self, results):
        assert results["polling"]["odafs_gain"] < \
            0.5 * results["interrupts"]["odafs_gain"]
        assert 0.20 < results["polling"]["odafs_gain"] < 0.45


class TestORDMAHitRate:
    """Section 4.2.2: with low server cache hit rates, ODAFS performance
    collapses to DAFS — the ORDMA win is masked by disk latency."""

    @pytest.fixture(scope="class")
    def results(self):
        return ablation_ordma_hit_rate(transactions=800)

    def test_benchmark(self, benchmark):
        out = benchmark.pedantic(
            ablation_ordma_hit_rate,
            kwargs={"transactions": 300,
                    "server_cache_fractions": (1.0, 0.25)},
            rounds=1, iterations=1)
        assert 1.0 in out

    def test_full_cache_keeps_the_gain(self, results):
        assert results[1.0]["odafs_gain"] > 0.15

    def test_small_cache_erases_the_gain(self, results):
        assert abs(results[0.1]["odafs_gain"]) < 0.05

    def test_fault_rate_rises_as_cache_shrinks(self, results):
        fractions = sorted(results, reverse=True)
        rates = [results[f]["ordma_fault_rate"] for f in fractions]
        assert rates[0] < 0.05
        assert all(a <= b + 1e-9 for a, b in zip(rates, rates[1:]))


class TestDirectoryPolicy:
    """Section 4.2: MQ fits the miss-filtered directory stream better
    than LRU."""

    @pytest.fixture(scope="class")
    def results(self):
        return ablation_directory_policy(transactions=2400)

    def test_benchmark(self, benchmark):
        out = benchmark.pedantic(ablation_directory_policy,
                                 kwargs={"transactions": 800},
                                 rounds=1, iterations=1)
        assert set(out) == {"lru", "mq"}

    def test_mq_beats_lru_on_directory_hits(self, results):
        assert results["mq"]["directory_hit_ratio"] > \
            results["lru"]["directory_hit_ratio"]

    def test_mq_throughput_at_least_lru(self, results):
        assert results["mq"]["txns_per_s"] >= \
            0.995 * results["lru"]["txns_per_s"]


class TestRegistrationCache:
    """Sections 3/5.1: per-I/O registration costs client CPU and
    throughput; caching registrations avoids it."""

    @pytest.fixture(scope="class")
    def results(self):
        return ablation_registration_cache(blocks=256)

    def test_benchmark(self, benchmark):
        out = benchmark.pedantic(ablation_registration_cache,
                                 kwargs={"blocks": 128},
                                 rounds=1, iterations=1)
        assert set(out) == {"cached", "per_io"}

    def test_caching_saves_client_cpu(self, results):
        assert results["cached"]["client_cpu"] < \
            0.75 * results["per_io"]["client_cpu"]

    def test_caching_does_not_hurt_throughput(self, results):
        assert results["cached"]["throughput_mb_s"] >= \
            results["per_io"]["throughput_mb_s"] - 1.0


class TestNicTLB:
    """Sections 4.1/4.2.2: ORDMA response time degrades when the working
    set outgrows the NIC TLB."""

    @pytest.fixture(scope="class")
    def results(self):
        return ablation_nic_tlb(n_blocks=192,
                                tlb_sizes=(1 << 20, 256, 64))

    def test_benchmark(self, benchmark):
        out = benchmark.pedantic(
            ablation_nic_tlb,
            kwargs={"n_blocks": 64, "tlb_sizes": (1 << 20, 16)},
            rounds=1, iterations=1)
        assert (1 << 20) in out

    def test_big_tlb_always_hits(self, results):
        assert results[1 << 20]["tlb_hit_rate"] > 0.99

    def test_response_time_degrades_with_small_tlb(self, results):
        assert results[64]["mean_response_us"] > \
            1.5 * results[1 << 20]["mean_response_us"]

    def test_hit_rate_monotone_in_tlb_size(self, results):
        sizes = sorted(results)
        rates = [results[s]["tlb_hit_rate"] for s in sizes]
        assert all(a <= b + 1e-9 for a, b in zip(rates, rates[1:]))


class TestBatchIO:
    """Section 2.2: batch I/O amortizes the client's per-I/O RPC cost."""

    @pytest.fixture(scope="class")
    def results(self):
        return ablation_batch_io(total_reads=192)

    def test_benchmark(self, benchmark):
        out = benchmark.pedantic(ablation_batch_io,
                                 kwargs={"total_reads": 64,
                                         "batch_sizes": (1, 8)},
                                 rounds=1, iterations=1)
        assert 1 in out

    def test_client_cpu_per_io_falls_with_batching(self, results):
        sizes = sorted(results)
        costs = [results[s]["client_us_per_io"] for s in sizes]
        assert all(a > b for a, b in zip(costs, costs[1:]))
        assert costs[-1] < 0.4 * costs[0]


class TestCapabilities:
    """Section 4: capability checks cost one MAC verification per ORDMA."""

    def test_benchmark(self, benchmark):
        out = benchmark.pedantic(ablation_capabilities,
                                 kwargs={"n_blocks": 96},
                                 rounds=1, iterations=1)
        expected = default_params().nic.capability_verify_us
        assert out["overhead_us"] == pytest.approx(expected, abs=0.2)
        assert out["with_capabilities_us"] > out["without_capabilities_us"]


class TestTCPTransport:
    """Section 5: offloaded UDP beats host-resident TCP — the paper's
    stated reason for running NFS over UDP on Myrinet."""

    @pytest.fixture(scope="class")
    def results(self):
        from repro.bench.ablations import ablation_tcp_transport
        return ablation_tcp_transport(blocks=160)

    def test_benchmark(self, benchmark):
        from repro.bench.ablations import ablation_tcp_transport
        out = benchmark.pedantic(ablation_tcp_transport,
                                 kwargs={"blocks": 64},
                                 rounds=1, iterations=1)
        assert set(out) == {"udp", "tcp"}

    def test_udp_faster_than_tcp(self, results):
        assert results["udp"]["throughput_mb_s"] > \
            results["tcp"]["throughput_mb_s"]

    def test_both_remain_copy_bound(self, results):
        """Either transport leaves the NFS client copy-bound — transport
        choice does not rescue standard NFS (Fig. 3's real story)."""
        for transport in ("udp", "tcp"):
            assert results[transport]["client_cpu"] > 0.85
            assert results[transport]["throughput_mb_s"] < 80.0


class TestMemoryPressure:
    """Section 4.2.1: VM reclaim invalidates exports; stale references
    fault and recover — ODAFS stays correct, just slower."""

    @pytest.fixture(scope="class")
    def results(self):
        from repro.bench.ablations import ablation_memory_pressure
        return ablation_memory_pressure(transactions=800, n_files=160)

    def test_benchmark(self, benchmark):
        from repro.bench.ablations import ablation_memory_pressure
        out = benchmark.pedantic(
            ablation_memory_pressure,
            kwargs={"transactions": 300, "n_files": 64,
                    "reclaim_intervals_us": (0.0, 10_000.0)},
            rounds=1, iterations=1)
        assert 0.0 in out

    def test_no_pressure_means_no_faults(self, results):
        assert results[0.0]["ordma_fault_rate"] == 0.0
        assert results[0.0]["reclaimed"] == 0

    def test_fault_rate_rises_with_pressure(self, results):
        intervals = sorted((k for k in results if k > 0), reverse=True)
        rates = [results[k]["ordma_fault_rate"] for k in intervals]
        assert all(a <= b + 1e-9 for a, b in zip(rates, rates[1:]))
        assert rates[-1] > 0.1

    def test_throughput_degrades_under_pressure(self, results):
        heaviest = min(k for k in results if k > 0)
        assert results[heaviest]["txns_per_s"] < \
            0.5 * results[0.0]["txns_per_s"]


class TestClientScaling:
    """Section 2.2/2.3: per-I/O server overhead caps multi-client scale;
    queueing at a saturated server inflates response time. ORDMA scales."""

    @pytest.fixture(scope="class")
    def results(self):
        from repro.bench.ablations import ablation_client_scaling
        return ablation_client_scaling(blocks_per_file=256)

    def test_benchmark(self, benchmark):
        from repro.bench.ablations import ablation_client_scaling
        out = benchmark.pedantic(
            ablation_client_scaling,
            kwargs={"client_counts": (1, 2), "blocks_per_file": 128},
            rounds=1, iterations=1)
        assert set(out) == {"dafs", "odafs"}

    def test_dafs_saturates_server_cpu(self, results):
        assert results["dafs"][3]["server_cpu"] > 0.95
        # Adding the third client buys almost nothing.
        assert results["dafs"][3]["throughput_mb_s"] < \
            1.1 * results["dafs"][2]["throughput_mb_s"]

    def test_dafs_response_time_inflates_with_load(self, results):
        assert results["dafs"][3]["mean_read_us"] > \
            1.5 * results["dafs"][1]["mean_read_us"]

    def test_odafs_scales_without_server_cpu(self, results):
        assert results["odafs"][3]["throughput_mb_s"] > \
            1.5 * results["odafs"][1]["throughput_mb_s"]
        for n in (1, 2, 3):
            assert results["odafs"][n]["server_cpu"] < 0.02

    def test_odafs_beats_dafs_at_every_client_count(self, results):
        for n in (1, 2, 3):
            assert results["odafs"][n]["throughput_mb_s"] > \
                results["dafs"][n]["throughput_mb_s"]


class TestReadWriteMix:
    """Section 4.2.2: writes always involve the server CPU, so the ODAFS
    gain shrinks as the read ratio falls."""

    @pytest.fixture(scope="class")
    def results(self):
        from repro.bench.ablations import ablation_read_write_mix
        return ablation_read_write_mix(transactions=1000, n_files=160)

    def test_benchmark(self, benchmark):
        from repro.bench.ablations import ablation_read_write_mix
        out = benchmark.pedantic(
            ablation_read_write_mix,
            kwargs={"transactions": 300, "n_files": 64,
                    "read_ratios": (1.0, 0.5)},
            rounds=1, iterations=1)
        assert 1.0 in out

    def test_gain_shrinks_with_writes(self, results):
        ratios = sorted(results, reverse=True)  # 1.0 first
        gains = [results[r]["odafs_gain"] for r in ratios]
        assert all(a >= b - 0.02 for a, b in zip(gains, gains[1:]))
        assert gains[0] > gains[-1] + 0.10

    def test_writes_consume_odafs_server_cpu(self, results):
        assert results[1.0]["odafs_server_cpu"] < 0.02
        assert results[0.5]["odafs_server_cpu"] > 0.10


class TestOverheadSensitivity:
    """Section 2.3 cites [Martin & Culler '99]: SFS-mix NFS throughput is
    most sensitive to host CPU overhead, far less to latency/bandwidth."""

    @pytest.fixture(scope="class")
    def results(self):
        from repro.bench.ablations import ablation_overhead_sensitivity
        return ablation_overhead_sensitivity(ops_per_client=300)

    def test_benchmark(self, benchmark):
        from repro.bench.ablations import ablation_overhead_sensitivity
        out = benchmark.pedantic(
            ablation_overhead_sensitivity,
            kwargs={"ops_per_client": 120, "scales": (1.0, 4.0)},
            rounds=1, iterations=1)
        assert set(out) == {"cpu_overhead", "latency", "bandwidth"}

    def _loss(self, results, knob):
        return 1.0 - results[knob][4.0] / results[knob][1.0]

    def test_cpu_overhead_dominates(self, results):
        cpu = self._loss(results, "cpu_overhead")
        assert cpu > 3.0 * self._loss(results, "latency")
        assert cpu > 3.0 * self._loss(results, "bandwidth")
        assert cpu > 0.4  # 4x overhead costs a large fraction of ops/s

    def test_latency_barely_matters_on_a_lan(self, results):
        assert self._loss(results, "latency") < 0.10

    def test_monotone_in_every_knob(self, results):
        for knob, series in results.items():
            scales = sorted(series)
            values = [series[s] for s in scales]
            assert all(a >= b - 1e-6 for a, b in zip(values, values[1:]))


class TestEagerVsLazyRefs:
    """Section 4.2 principle (a): eager directory building turns even the
    first pass into ORDMA, at the cost of one bulk reference fetch."""

    @pytest.fixture(scope="class")
    def results(self):
        from repro.bench.ablations import ablation_eager_vs_lazy_refs
        return ablation_eager_vs_lazy_refs(n_blocks=192)

    def test_benchmark(self, benchmark):
        from repro.bench.ablations import ablation_eager_vs_lazy_refs
        out = benchmark.pedantic(ablation_eager_vs_lazy_refs,
                                 kwargs={"n_blocks": 64},
                                 rounds=1, iterations=1)
        assert set(out) == {"lazy", "eager"}

    def test_eager_first_pass_is_ordma(self, results):
        assert results["eager"]["rpc_fills"] == 0
        assert results["eager"]["ordma_reads"] == 192
        assert results["lazy"]["rpc_fills"] == 192

    def test_eager_first_pass_faster(self, results):
        assert results["eager"]["first_pass_us_per_read"] < \
            0.75 * results["lazy"]["first_pass_us_per_read"]

    def test_eager_saves_server_cpu(self, results):
        assert results["eager"]["server_cpu_us_per_read"] < \
            0.1 * results["lazy"]["server_cpu_us_per_read"]
