"""Fig. 6 — PostMark read-only transaction throughput vs client cache hit
ratio (25% / 50% / 75%).

Paper shape: ODAFS yields ~34% higher throughput than DAFS at every hit
ratio; DAFS server CPU drops 30% -> 25% -> 20% as the hit ratio improves,
while ODAFS uses *no* server CPU once it has collected references for the
whole server cache.
"""

import pytest

from repro.bench.figures import fig6_postmark

RATIOS = (25, 50, 75)


@pytest.fixture(scope="module")
def results():
    return fig6_postmark(n_files=384, transactions=3000)


def test_fig6_benchmark(benchmark):
    out = benchmark.pedantic(
        fig6_postmark, kwargs={"n_files": 128, "transactions": 600},
        rounds=1, iterations=1)
    assert set(out) == {"dafs", "odafs"}


@pytest.mark.parametrize("ratio", RATIOS)
def test_odafs_gain_near_34_percent(results, ratio):
    gain = (results["odafs"][ratio]["txns_per_s"]
            / results["dafs"][ratio]["txns_per_s"] - 1.0)
    assert 0.18 < gain < 0.50  # paper: ~0.34 at every ratio


@pytest.mark.parametrize("ratio", RATIOS)
def test_odafs_uses_no_server_cpu(results, ratio):
    assert results["odafs"][ratio]["server_cpu"] < 0.02


def test_dafs_server_cpu_declines_with_hit_ratio(results):
    cpus = [results["dafs"][r]["server_cpu"] for r in RATIOS]
    assert cpus[0] > cpus[1] > cpus[2]
    # paper: 30% -> 25% -> 20%
    assert cpus[0] == pytest.approx(0.30, abs=0.07)
    assert cpus[2] == pytest.approx(0.20, abs=0.07)


@pytest.mark.parametrize("system", ("dafs", "odafs"))
def test_throughput_rises_with_hit_ratio(results, system):
    series = [results[system][r]["txns_per_s"] for r in RATIOS]
    assert series[0] < series[1] < series[2]


@pytest.mark.parametrize("ratio", RATIOS)
def test_achieved_hit_ratio_close_to_target(results, ratio):
    for system in ("dafs", "odafs"):
        achieved = results[system][ratio]["hit_ratio"]
        assert achieved == pytest.approx(ratio / 100.0, abs=0.08)
