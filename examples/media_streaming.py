#!/usr/bin/env python3
"""Media streaming: the throughput-intensive large-I/O workload.

The paper's introduction motivates DAFS with resource-intensive NAS
applications such as media streaming (Section 1). This example streams a
file sequentially with asynchronous read-ahead over all four Fig. 3
systems at a media-friendly 256 KB block size and reports the achieved
bandwidth and client CPU cost — the per-byte-overhead story of the paper
in one run: zero-copy systems saturate the 2 Gb/s link, the copy-bound
standard NFS client cannot.

Run:  python examples/media_streaming.py
"""

from repro import KB, default_params
from repro.cluster import Cluster
from repro.workloads.sequential import SequentialReadWorkload

BLOCK = 256 * KB
BLOCKS = 256  # 64 MB stream (steady-state rate is size-independent)


def main():
    print(f"streaming a {BLOCKS * BLOCK // (1024 * 1024)} MiB file in "
          f"{BLOCK // 1024} KB blocks, read-ahead window 16\n")
    print(f"{'system':<14} {'throughput':>12} {'client CPU':>11}")
    print("-" * 39)
    for system in ("nfs", "nfs-prepost", "nfs-hybrid", "dafs"):
        params = default_params()
        kwargs = {"cache_blocks": 0} if system == "dafs" else {}
        cluster = Cluster(params, system=system, block_size=BLOCK,
                          server_cache_blocks=BLOCKS + 8,
                          client_kwargs=kwargs)
        cluster.create_file("movie.mp4", BLOCKS * BLOCK)
        workload = SequentialReadWorkload(cluster, "movie.mp4",
                                          BLOCKS * BLOCK, BLOCK, window=16)
        out = workload.run()
        print(f"{system:<14} {out['throughput_mb_s']:>9.1f} MB/s "
              f"{out['client_cpu'] * 100:>9.1f}%")
    print("\n(2 Gb/s link = 250 MB/s; GM fragments cap it at ~244 MB/s,"
          "\n 8 KB Ethernet fragments at ~248 MB/s)")


if __name__ == "__main__":
    main()
