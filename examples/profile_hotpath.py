#!/usr/bin/env python3
"""Profile the simulator's hot path with cProfile.

Runs a DAFS client streaming 4 KB cached reads through the full stack
(client cache -> RPC -> NIC -> switch -> server cache) under cProfile and
prints the top functions by cumulative time. This is the loop the kernel
fast paths target: use it to see where event dispatch, scheduling, and
the fabric model actually spend their time before and after a change.

Usage::

    PYTHONPATH=src python examples/profile_hotpath.py [n_blocks]

Pair it with ``repro-bench perf`` for tracked numbers; this script is for
*attribution*, not measurement — cProfile's overhead skews absolute rates
but leaves the ranking honest.
"""

import cProfile
import pstats
import sys

from repro.cluster import Cluster
from repro.params import KB, default_params

TOP_N = 15


def build_workload(n_blocks: int):
    """A cluster plus a generator streaming ``n_blocks`` cached reads."""
    block = 4 * KB
    cluster = Cluster(default_params(), system="dafs", block_size=block,
                      server_cache_blocks=n_blocks + 8,
                      client_kwargs={"cache_blocks": 8,
                                     "rpc_read_mode": "direct"})
    cluster.create_file("stream", n_blocks * block)
    client = cluster.clients[0]

    def workload():
        yield from client.open("stream")
        for _ in range(2):  # second pass is server-cache warm
            for i in range(n_blocks):
                yield from client.read("stream", i * block, block)

    return cluster, workload


def main() -> int:
    n_blocks = int(sys.argv[1]) if len(sys.argv) > 1 else 256
    cluster, workload = build_workload(n_blocks)

    profiler = cProfile.Profile()
    profiler.enable()
    cluster.sim.run_process(workload())
    profiler.disable()

    ops = 2 * n_blocks
    print(f"profiled {ops} 4 KB reads "
          f"({cluster.sim._seq} kernel events, "
          f"sim time {cluster.sim.now / 1e3:.1f} ms)\n")
    stats = pstats.Stats(profiler)
    stats.sort_stats("cumulative").print_stats(TOP_N)
    return 0


if __name__ == "__main__":
    sys.exit(main())
