#!/usr/bin/env python3
"""OLTP-style small I/O: the per-I/O-overhead story and ORDMA's win.

The paper's second half targets multi-client workloads dominated by
small (4 KB) I/Os — on-line transaction processing being the canonical
example (Section 1). This example runs a PostMark-style read-only
transaction mix over DAFS and Optimistic DAFS at two client-cache sizes
and reports transaction throughput, response times, and server CPU: the
ORDMA fast path roughly triples what the server CPU can sustain because
it is not involved at all.

Run:  python examples/oltp_small_io.py
"""

from repro import KB, default_params
from repro.cluster import Cluster
from repro.sim import LatencyStats
from repro.workloads.postmark import PostMarkWorkload

N_FILES = 384
TRANSACTIONS = 3000


def run_system(system: str, cache_fraction: float):
    params = default_params()
    cluster = Cluster(params, system=system, block_size=4 * KB,
                      server_cache_blocks=N_FILES + 8,
                      client_kwargs={"cache_blocks":
                                     max(1, int(N_FILES * cache_fraction))})
    workload = PostMarkWorkload(cluster, n_files=N_FILES,
                                transactions=TRANSACTIONS)
    workload.setup()
    return workload.run()


def response_time(system: str):
    """Mean warm-path 4 KB remote read latency for one client."""
    params = default_params()
    cluster = Cluster(params, system=system, block_size=4 * KB,
                      server_cache_blocks=264,
                      client_kwargs={"cache_blocks": 8})
    cluster.create_file("probe", 256 * 4 * KB)
    client = cluster.clients[0]
    stats = LatencyStats()

    def main():
        yield from client.open("probe")
        for i in range(256):
            yield from client.read("probe", i * 4 * KB, 4 * KB)
        for i in range(256):
            start = cluster.sim.now
            yield from client.read("probe", i * 4 * KB, 4 * KB)
            stats.record(cluster.sim.now - start)

    cluster.sim.run_process(main())
    return stats


def main():
    print("4 KB remote read response time (second pass, warm server "
          "cache):")
    for system in ("dafs", "odafs"):
        stats = response_time(system)
        print(f"  {system:<6} mean {stats.mean:6.1f} us   "
              f"p99 {stats.percentile(99):6.1f} us")
    print()
    print(f"{'system':<7} {'cache':>6} {'txns/s':>9} {'server CPU':>11}")
    print("-" * 37)
    for cache_fraction in (0.25, 0.75):
        for system in ("dafs", "odafs"):
            out = run_system(system, cache_fraction)
            print(f"{system:<7} {int(cache_fraction * 100):>5}% "
                  f"{out['txns_per_s']:>9.0f} "
                  f"{out['server_cpu'] * 100:>10.1f}%")
    print("\nORDMA serves the repeat reads without any server CPU — the "
          "\nserver's cycles are freed for more clients (Fig. 6).")


if __name__ == "__main__":
    main()
