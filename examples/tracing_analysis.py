#!/usr/bin/env python3
"""Observability: trace the ORDMA machinery at work.

Attaches the structured tracer to a simulation, runs a small ODAFS
workload through a server under memory pressure, and analyzes the event
stream: how many RPCs vs ORDMA gets, which faults occurred and why, and a
timeline excerpt around the first fault. Then folds the request *spans*
the same run collected into per-path waterfalls — where each 4 KB read
spent its time, stage by stage. A continuous-telemetry sampler rides
along, so the run also yields time-series gauges (server CPU by
category, cache occupancy, link utilization). Dumps the full trace
(events + spans) to JSONL for external tooling and exports everything —
spans, events, and the gauge series as counter tracks — as a
Chrome/Perfetto Trace Event Format file to open in ui.perfetto.dev.

Run:  python examples/tracing_analysis.py
"""

import tempfile

from repro import KB, default_params
from repro.bench.traceexport import dump_perfetto
from repro.bench.tracecli import render_waterfall
from repro.cluster import Cluster
from repro.nas.server.vm_pressure import MemoryPressure
from repro.sim import Tracer


def main():
    cluster = Cluster(default_params(), system="odafs", block_size=4 * KB,
                      server_cache_blocks=72,
                      client_kwargs={"cache_blocks": 4})
    cluster.create_file("traced.db", 64 * 4 * KB)
    tracer = Tracer.attach(cluster.sim)
    client = cluster.clients[0]

    def workload():
        for _round in range(4):
            for i in range(64):
                yield from client.read("traced.db", i * 4 * KB, 4 * KB)

    proc = cluster.sim.process(workload())
    pressure = MemoryPressure(cluster.sim, cluster.cache,
                              interval_us=8_000.0,
                              rng=cluster.rand.stream("demo"))
    pressure.start(stop_on=proc)
    sampler = cluster.attach_sampler(interval_us=50.0)
    sampler.start(stop_on=proc)
    cluster.sim.run()

    counts = tracer.counts()
    print("event counts over the run:")
    for kind in sorted(counts):
        print(f"  {kind:<12} {counts[kind]:>6}")

    faults = tracer.filter(kind="ordma-fault")
    print(f"\n{len(faults)} ORDMA faults; reasons: "
          f"{sorted({f.detail['reason'] for f in faults})}")

    if faults:
        first = faults[0]
        window = [ev for ev in tracer
                  if abs(ev.ts - first.ts) < 200.0]
        print(f"\ntimeline around the first fault (t={first.ts:.1f} us):")
        for ev in window[:12]:
            print(f"  {ev}")

    spans = tracer.finished_spans(op="read")
    paths = sorted({s.path for s in spans})
    print(f"\n{len(spans)} read spans; paths: {paths}")
    print("one waterfall per data path (time flows left to right):")
    shown = set()
    for span in spans:
        if span.path in shown:
            continue
        shown.add(span.path)
        print()
        print(render_waterfall(span))

    print(f"\ntelemetry: {sampler.ticks} samples x {len(sampler)} series")
    for name in ("server.cpu.util", "server.cpu.util.copy",
                 "server.cache.blocks", "net.server.tx_util"):
        series = sampler.series[name]
        print(f"  {name:<22} mean {series.mean():8.3f} "
              f"last {series.last:8.3f}")

    with tempfile.NamedTemporaryFile(suffix=".jsonl",
                                     delete=False) as fh:
        path = fh.name
    written = tracer.dump_jsonl(path)
    print(f"\nfull trace ({written} events+spans) written to {path}")
    print(f"ring buffer: emitted={tracer.emitted} dropped={tracer.dropped}")
    print("(re-analyze it any time: repro-bench trace --input "
          f"{path})")

    with tempfile.NamedTemporaryFile(suffix=".json",
                                     delete=False) as fh:
        perfetto = fh.name
    rows = dump_perfetto(perfetto, events=list(tracer),
                         spans=tracer.finished_spans(), series=sampler)
    print(f"perfetto export ({rows} trace events, counter tracks "
          f"included) written to {perfetto}")
    print("(open it at https://ui.perfetto.dev, or validate: "
          f"python -m repro.bench.traceexport {perfetto})")


if __name__ == "__main__":
    main()
