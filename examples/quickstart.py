#!/usr/bin/env python3
"""Quickstart: stand up a simulated DAFS cluster and do file I/O.

Builds the paper's testbed (one server, one client, 2 Gb/s switch),
creates a file warm in the server cache, and performs reads and writes
through the Optimistic DAFS client — showing the RPC fill path, the
ORDMA fast path, and the exception fallback.

Run:  python examples/quickstart.py
"""

from repro import KB, default_params
from repro.cluster import Cluster


def main():
    params = default_params()
    cluster = Cluster(params, system="odafs", n_clients=1,
                      block_size=4 * KB,
                      client_kwargs={"cache_blocks": 4})
    cluster.create_file("demo.dat", 64 * KB)
    client = cluster.clients[0]
    sim = cluster.sim

    def session():
        handle = yield from client.open("demo.dat")
        print(f"opened demo.dat: {handle.size} bytes, "
              f"delegation={handle.delegated}")

        # First read: client cache and directory are cold -> RPC fill.
        start = sim.now
        data = yield from client.read("demo.dat", 0, 4 * KB)
        print(f"first read  (RPC fill):    {sim.now - start:6.1f} us  "
              f"-> {data}")

        # Evict it from the tiny client cache by touching other blocks,
        # then read again: the cached remote reference makes it an ORDMA.
        for i in range(1, 9):
            yield from client.read("demo.dat", i * 4 * KB, 4 * KB)
        start = sim.now
        data = yield from client.read("demo.dat", 0, 4 * KB)
        print(f"second read (ORDMA):       {sim.now - start:6.1f} us  "
              f"-> {data}")

        # Server-side invalidation makes the cached reference stale; the
        # next ORDMA faults and falls back to RPC transparently.
        cluster.cache.invalidate(("demo.dat", 0))
        for i in range(1, 9):
            yield from client.read("demo.dat", i * 4 * KB, 4 * KB)
        start = sim.now
        data = yield from client.read("demo.dat", 0, 4 * KB)
        print(f"third read  (fault + RPC + disk): {sim.now - start:6.1f} us  "
              f"-> {data}")

        # Writes go through RPC and update the logical block version.
        yield from client.write("demo.dat", 0, 4 * KB)
        data = yield from client.read("demo.dat", 0, 4 * KB)
        print(f"after write: block content -> {data}")
        yield from client.close("demo.dat")

        print("\nclient stats:", dict(sorted(
            client.stats.as_dict().items())))
        print("ORDMA directory entries:", len(client.directory))

    sim.run_process(session())


if __name__ == "__main__":
    main()
