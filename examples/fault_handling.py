#!/usr/bin/env python3
"""ORDMA safety: capabilities, revocation, paging, and recovery.

Optimistic RDMA is only safe because every failure mode is a *recoverable*
NIC-to-NIC exception (Section 4). This example drives each fault path
directly against the simulated server NIC:

* a forged capability is rejected by the MAC check;
* a revoked export faults without the server tracking any client state;
* a paged-out block faults instead of reading stale memory;
* a host-locked page faults instead of racing the VM system;
* and in every case the ODAFS client recovers by falling back to RPC.

Run:  python examples/fault_handling.py
"""

from repro import KB, default_params
from repro.cluster import Cluster
from repro.hw import RemoteAccessFault
from repro.proto.ordma import RemoteRef


def main():
    cluster = Cluster(default_params(), system="odafs",
                      block_size=4 * KB,
                      client_kwargs={"cache_blocks": 2})
    cluster.create_file("secrets.db", 32 * KB)
    client = cluster.clients[0]
    host = cluster.client_hosts[0]
    sim = cluster.sim

    def drive():
        # Collect references for all blocks via a first pass of RPC fills.
        for i in range(8):
            yield from client.read("secrets.db", i * 4 * KB, 4 * KB)
        ref = client.directory.probe(("secrets.db", 3))
        print(f"have reference: addr={ref.addr:#x} len={ref.nbytes}")

        # 1. Forged capability: keyed-MAC verification fails at the NIC.
        forged = RemoteRef(ref.host, ref.addr, ref.nbytes,
                           capability=b"forged-0123456789")
        local = host.mem.alloc(4 * KB)
        try:
            yield from client.ordma.read(forged, local=local)
            print("1. forged capability: !! access was allowed")
        except RemoteAccessFault as fault:
            print(f"1. forged capability rejected: {fault.reason.value}")

        # 2. Revocation: the server locally invalidates the capability;
        #    no notification is sent to any client (Section 4.2 (b)).
        cluster.cache.revoke_export(("secrets.db", 3))
        try:
            yield from client.ordma.read(ref, local=local)
            print("2. revoked export: !! access was allowed")
        except RemoteAccessFault as fault:
            print(f"2. revoked export faulted: {fault.reason.value}")

        # 3. The client-visible path recovers transparently via RPC and
        #    re-learns a fresh reference from the piggyback.
        data = yield from client.read("secrets.db", 3 * 4 * KB, 4 * KB)
        print(f"3. client recovered via RPC: {data} "
              f"(faults so far: {client.stats.get('ordma_faults')})")

        # 4. Page-out: server memory pressure evicts an exported block.
        block = cluster.cache.lookup(("secrets.db", 5))
        for page in block.buffer.pages:
            cluster.server_host.nic.tlb.invalidate(page)
            page.evict()
        ref5 = client.directory.probe(("secrets.db", 5))
        try:
            yield from client.ordma.read(ref5, local=local)
            print("4. paged-out block: !! access was allowed")
        except RemoteAccessFault as fault:
            print(f"4. non-resident page faulted: {fault.reason.value}")
        for page in block.buffer.pages:
            page.page_in()

        # 5. Host-locked page (VM system mid-operation on it).
        block6 = cluster.cache.lookup(("secrets.db", 6))
        cluster.server_host.nic.tlb.invalidate(block6.buffer.pages[0])
        block6.buffer.pages[0].locked_by_host = True
        ref6 = client.directory.probe(("secrets.db", 6))
        try:
            yield from client.ordma.read(ref6, local=local)
            print("5. locked page: !! access was allowed")
        except RemoteAccessFault as fault:
            print(f"5. host-locked page faulted: {fault.reason.value}")
        block6.buffer.pages[0].locked_by_host = False

        print("\nserver NIC fault count:",
              cluster.server_host.nic.stats.get("ordma_fault"))
        print("server tracked zero per-client reference state throughout.")

    sim.run_process(drive())


if __name__ == "__main__":
    main()
