#!/usr/bin/env python3
"""Remote memory paging over ODAFS.

The paper's introduction lists remote memory paging [Felten & Zahorjan]
among the small-I/O workloads that per-I/O overhead hurts most: page
faults are synchronous, latency-critical 4 KB transfers with no
read-ahead to hide them. This example builds a tiny pager — a local frame
table backed by a remote swap file — and services a faulting address
trace over DAFS and over ODAFS, reporting fault service times.

ORDMA is almost ideal here: the swap file stays warm in the memory
server's cache, every fault is a 4 KB read, and after one cold pass the
pager holds references to every remote page.

Run:  python examples/remote_paging.py
"""

from repro import KB, default_params
from repro.cache.lru import LRUPolicy
from repro.cluster import Cluster
from repro.sim import LatencyStats

PAGE = 4 * KB
REMOTE_PAGES = 512          # 2 MiB swap file
LOCAL_FRAMES = 64           # 256 KiB of local memory
FAULTS = 4000


class Pager:
    """A minimal demand pager: local frames, remote swap, LRU."""

    def __init__(self, cluster, client):
        self.cluster = cluster
        self.client = client
        self.frames = LRUPolicy(LOCAL_FRAMES)
        self.resident = set()
        self.stats = LatencyStats()
        self.faults = 0

    def touch(self, page):
        """Access one virtual page; fault + remote read on a miss."""
        if page in self.resident:
            self.frames.touch(page)
            return
        self.faults += 1
        start = self.cluster.sim.now
        yield from self.client.read("swap", page * PAGE, PAGE)
        victim = self.frames.admit(page)
        if victim is not None:
            self.resident.discard(victim)  # clean pages: just dropped
        self.resident.add(page)
        self.stats.record(self.cluster.sim.now - start)


def run(system):
    cluster = Cluster(default_params(), system=system, block_size=PAGE,
                      server_cache_blocks=REMOTE_PAGES + 8,
                      client_kwargs={"cache_blocks": 1})
    cluster.create_file("swap", REMOTE_PAGES * PAGE)
    pager = Pager(cluster, cluster.clients[0])
    rng = cluster.rand.stream("paging")

    def workload():
        yield from cluster.clients[0].open("swap")
        # Touch every page once (cold); then a hot/cold working set.
        for page in range(REMOTE_PAGES):
            yield from pager.touch(page)
        pager.stats.reset()
        pager.faults = 0
        cluster.server_host.cpu.reset_measurement()
        pager.server_mark = cluster.server_host.cpu.busy.busy_us
        for _ in range(FAULTS):
            if rng.random() < 0.7:
                page = rng.randrange(LOCAL_FRAMES // 2)   # hot set
            else:
                page = rng.randrange(REMOTE_PAGES)        # cold misses
            yield from pager.touch(page)

    cluster.sim.run_process(workload())
    return pager, cluster


def main():
    print(f"pager: {LOCAL_FRAMES} local frames over a "
          f"{REMOTE_PAGES * PAGE // 1024} KiB remote swap file\n")
    print(f"{'system':<7} {'fault mean':>11} {'fault p99':>10} "
          f"{'server CPU/fault':>17}")
    print("-" * 49)
    for system in ("dafs", "odafs"):
        pager, cluster = run(system)
        busy = cluster.server_host.cpu.busy.busy_us - pager.server_mark
        per_fault = busy / max(1, pager.faults)
        print(f"{system:<7} {pager.stats.mean:>8.1f} us "
              f"{pager.stats.percentile(99):>7.1f} us "
              f"{per_fault:>14.1f} us")
    print("\nEvery page-in is a synchronous 4 KB read: the ORDMA path cuts"
          "\nfault latency by ~35% and takes the memory server's CPU out"
          "\nof the loop entirely (Table 3 / Fig. 6 in miniature).")


if __name__ == "__main__":
    main()
