"""Tests for the structured tracing subsystem."""

import json

import pytest

from repro.cluster import Cluster
from repro.params import KB
from repro.sim import LatencyStats, Simulator, Span, Tracer, load_jsonl
from repro.sim.trace import TraceEvent


class TestTracerCore:
    def test_emit_and_filter(self):
        sim = Simulator()
        tracer = Tracer.attach(sim)

        def proc():
            tracer.emit("compA", "kindX", value=1)
            yield sim.timeout(10.0)
            tracer.emit("compB", "kindX", value=2)
            tracer.emit("compA", "kindY", value=3)

        sim.run_process(proc())
        assert len(tracer) == 3
        assert len(tracer.filter(component="compA")) == 2
        assert len(tracer.filter(kind="kindX")) == 2
        assert len(tracer.filter(component="compA", kind="kindX")) == 1
        assert len(tracer.filter(since=5.0)) == 2

    def test_timestamps_follow_sim_clock(self):
        sim = Simulator()
        tracer = Tracer.attach(sim)

        def proc():
            yield sim.timeout(42.0)
            tracer.emit("c", "k")

        sim.run_process(proc())
        assert tracer.filter()[0].ts == 42.0

    def test_ring_buffer_bounds_memory(self):
        sim = Simulator()
        tracer = Tracer(sim, capacity=10)
        for i in range(25):
            tracer.emit("c", "k", i=i)
        assert len(tracer) == 10
        assert tracer.dropped == 15
        assert tracer.emitted == 25
        assert tracer.filter()[0].detail["i"] == 15  # oldest kept

    def test_counts_and_clear(self):
        sim = Simulator()
        tracer = Tracer(sim)
        tracer.emit("c", "a")
        tracer.emit("c", "a")
        tracer.emit("c", "b")
        assert tracer.counts() == {"a": 2, "b": 1}
        tracer.clear()
        assert len(tracer) == 0

    def test_dump_jsonl(self, tmp_path):
        sim = Simulator()
        tracer = Tracer(sim)
        tracer.emit("c", "k", x=1)
        path = tmp_path / "trace.jsonl"
        assert tracer.dump_jsonl(str(path)) == 1
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        assert header["kind"] == "trace-header"
        assert header["emitted"] == 1 and header["dropped"] == 0
        record = json.loads(lines[1])
        assert record == {"ts": 0.0, "component": "c", "kind": "k", "x": 1}

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Tracer(Simulator(), capacity=0)

    def test_repr_is_readable(self):
        ev = TraceEvent(12.5, "nic", "rdma-get", {"bytes": 4096})
        assert "nic" in repr(ev) and "rdma-get" in repr(ev)


class TestSpans:
    def test_marks_monotonic_and_breakdown_sums_to_duration(self):
        sim = Simulator()
        tracer = Tracer.attach(sim)

        def proc():
            span = tracer.start_span("client0", "read", nbytes=4096)
            yield sim.timeout(3.0)
            span.mark("client0", "rpc.marshal")
            yield sim.timeout(10.0)
            span.mark("server", "net.request")
            yield sim.timeout(7.0)
            span.mark("server", "server.reply")
            yield sim.timeout(2.5)
            span.finish("client0")
            return span

        span = sim.run_process(proc())
        timestamps = [ts for ts, _c, _s, _d in span.marks]
        assert timestamps == sorted(timestamps)
        assert span.finished and span.duration == pytest.approx(22.5)
        breakdown = span.breakdown()
        assert sum(breakdown.values()) == pytest.approx(span.duration)
        assert breakdown["rpc.marshal"] == pytest.approx(3.0)
        assert breakdown["deliver"] == pytest.approx(2.5)

    def test_stage_sums_match_measured_read_latency(self):
        cluster = Cluster(system="odafs", block_size=4 * KB,
                          client_kwargs={"cache_blocks": 2})
        cluster.create_file("f", 16 * KB)
        tracer = Tracer.attach(cluster.sim)
        client = cluster.clients[0]
        meter = LatencyStats()

        def proc():
            for _ in range(2):
                for i in range(4):
                    start = cluster.sim.now
                    yield from client.read("f", i * 4 * KB, 4 * KB)
                    meter.record(cluster.sim.now - start)

        cluster.sim.run_process(proc())
        spans = tracer.finished_spans(op="read")
        assert len(spans) == meter.count
        span_mean = sum(sum(s.breakdown().values())
                        for s in spans) / len(spans)
        assert span_mean == pytest.approx(meter.mean, rel=0.01)
        # ODAFS pass 2 goes optimistic; pass 1 fills over RDMA.
        paths = {s.path for s in spans}
        assert "ordma" in paths and "rdma" in paths

    def test_unfinished_span_has_no_duration(self):
        sim = Simulator()
        tracer = Tracer.attach(sim)
        span = tracer.start_span("c", "read")
        assert not span.finished
        with pytest.raises(ValueError):
            span.duration

    def test_finished_spans_filters(self):
        sim = Simulator()
        tracer = Tracer.attach(sim)
        a = tracer.start_span("c", "read")
        a.path = "ordma"
        a.finish("c")
        b = tracer.start_span("c", "write")
        b.finish("c")
        tracer.start_span("c", "read")  # unfinished
        assert len(tracer.finished_spans()) == 2
        assert tracer.finished_spans(op="read") == [a]
        assert tracer.finished_spans(path="ordma") == [a]
        assert tracer.finished_spans(op="write", path="ordma") == []

    def test_span_dict_round_trip(self):
        sim = Simulator()
        tracer = Tracer.attach(sim)

        def proc():
            span = tracer.start_span("c", "read", nbytes=4096)
            yield sim.timeout(5.0)
            span.mark("s", "net.request", proc="read")
            yield sim.timeout(5.0)
            span.path = "rdma"
            span.finish("c")
            return span

        span = sim.run_process(proc())
        clone = Span.from_dict(json.loads(json.dumps(span.as_dict())))
        assert clone.rid == span.rid and clone.path == "rdma"
        assert clone.duration == pytest.approx(span.duration)
        assert clone.breakdown() == span.breakdown()

    def test_dump_load_round_trip_with_spans(self, tmp_path):
        sim = Simulator()
        tracer = Tracer.attach(sim)

        def proc():
            tracer.emit("nic", "rdma-get", bytes=4096)
            span = tracer.start_span("c", "read")
            yield sim.timeout(12.0)
            span.finish("c")

        sim.run_process(proc())
        path = tmp_path / "t.jsonl"
        assert tracer.dump_jsonl(str(path)) == 2  # 1 event + 1 span
        dump = load_jsonl(str(path))
        assert dump.emitted == 1 and dump.dropped == 0
        assert dump.counts() == {"rdma-get": 1}
        assert len(dump.finished_spans()) == 1
        assert dump.finished_spans()[0].duration == pytest.approx(12.0)

    def test_load_headerless_legacy_dump(self, tmp_path):
        path = tmp_path / "legacy.jsonl"
        path.write_text('{"ts": 1.0, "component": "c", "kind": "k"}\n')
        dump = load_jsonl(str(path))
        assert dump.emitted == 1 and len(dump.events) == 1

    def test_clear_drops_spans(self):
        sim = Simulator()
        tracer = Tracer.attach(sim)
        tracer.start_span("c", "read").finish("c")
        tracer.clear()
        assert len(tracer.spans) == 0
        assert tracer.spans_started == 1  # lifetime counter survives


class TestInstrumentation:
    def test_odafs_read_produces_nic_and_rpc_events(self):
        cluster = Cluster(system="odafs", block_size=4 * KB,
                          client_kwargs={"cache_blocks": 2})
        cluster.create_file("f", 32 * KB)
        tracer = Tracer.attach(cluster.sim)
        client = cluster.clients[0]

        def proc():
            for i in range(8):
                yield from client.read("f", i * 4 * KB, 4 * KB)
            for i in range(8):
                yield from client.read("f", i * 4 * KB, 4 * KB)

        cluster.sim.run_process(proc())
        counts = tracer.counts()
        assert counts.get("rpc-call", 0) >= 8
        assert counts.get("rpc-serve", 0) >= 8
        assert counts.get("rdma-get", 0) >= 6   # pass-2 ORDMA reads
        assert counts.get("get-served", 0) >= 6
        # Every get the client issued was served or faulted.
        gets = len(tracer.filter(component="client0", kind="rdma-get"))
        served = len(tracer.filter(component="server", kind="get-served"))
        faults = len(tracer.filter(component="server", kind="ordma-fault"))
        assert gets == served + faults

    def test_fault_events_carry_reason(self):
        cluster = Cluster(system="odafs", block_size=4 * KB,
                          client_kwargs={"cache_blocks": 2})
        cluster.create_file("f", 16 * KB)
        tracer = Tracer.attach(cluster.sim)
        client = cluster.clients[0]

        def proc():
            for i in range(4):
                yield from client.read("f", i * 4 * KB, 4 * KB)
            cluster.cache.invalidate(("f", 0))
            yield from client.read("f", 0, 4 * KB)

        cluster.sim.run_process(proc())
        faults = tracer.filter(kind="ordma-fault")
        assert len(faults) == 1
        assert faults[0].detail["reason"] == "invalid translation"
        assert faults[0].detail["initiator"] == "client0"

    def test_tracing_disabled_by_default_and_free(self):
        cluster = Cluster(system="dafs", block_size=4 * KB,
                          client_kwargs={"cache_blocks": 2})
        cluster.create_file("f", 4 * KB)
        assert cluster.sim.tracer is None
        client = cluster.clients[0]

        def proc():
            yield from client.read("f", 0, 4 * KB)

        cluster.sim.run_process(proc())  # must not raise

    def test_detach(self):
        sim = Simulator()
        tracer = Tracer.attach(sim)
        assert sim.tracer is tracer
        Tracer.detach(sim)
        assert sim.tracer is None

    def test_cache_link_disk_and_dispatch_emit_sites(self):
        cluster = Cluster(system="odafs", block_size=4 * KB,
                          client_kwargs={"cache_blocks": 2},
                          server_cache_blocks=2)
        # Tiny server cache: reads past the warm window hit the disk.
        cluster.create_file("f", 16 * KB, warm=False)
        tracer = Tracer.attach(cluster.sim)
        client = cluster.clients[0]

        def proc():
            for i in range(4):
                yield from client.read("f", i * 4 * KB, 4 * KB)
            # Re-read the most recent block: a client cache hit.
            yield from client.read("f", 3 * 4 * KB, 4 * KB)

        cluster.sim.run_process(proc())
        counts = tracer.counts()
        for kind in ("cache-hit", "cache-miss", "link-tx-start",
                     "link-tx-end", "disk-io-start", "disk-io-complete",
                     "srv-dispatch", "srv-reply"):
            assert counts.get(kind, 0) > 0, f"no {kind} events"
        assert counts["link-tx-start"] == counts["link-tx-end"]
        assert counts["disk-io-start"] == counts["disk-io-complete"]
        assert counts["srv-dispatch"] == counts["srv-reply"]

    def test_tracing_does_not_perturb_simulation(self):
        """Attached vs detached tracer: identical timing and results."""
        def run(traced):
            cluster = Cluster(system="odafs", block_size=4 * KB,
                              client_kwargs={"cache_blocks": 2})
            cluster.create_file("f", 16 * KB)
            if traced:
                Tracer.attach(cluster.sim)
            client = cluster.clients[0]

            def proc():
                for _ in range(2):
                    for i in range(4):
                        yield from client.read("f", i * 4 * KB, 4 * KB)

            cluster.sim.run_process(proc())
            return (cluster.sim.now, client.stats.as_dict(),
                    cluster.server.stats.as_dict(),
                    cluster.metrics.get("server.cpu").busy_us)

        assert run(traced=False) == run(traced=True)
