"""Tests for the structured tracing subsystem."""

import json

import pytest

from repro.cluster import Cluster
from repro.params import KB
from repro.sim import Simulator, Tracer
from repro.sim.trace import TraceEvent


class TestTracerCore:
    def test_emit_and_filter(self):
        sim = Simulator()
        tracer = Tracer.attach(sim)

        def proc():
            tracer.emit("compA", "kindX", value=1)
            yield sim.timeout(10.0)
            tracer.emit("compB", "kindX", value=2)
            tracer.emit("compA", "kindY", value=3)

        sim.run_process(proc())
        assert len(tracer) == 3
        assert len(tracer.filter(component="compA")) == 2
        assert len(tracer.filter(kind="kindX")) == 2
        assert len(tracer.filter(component="compA", kind="kindX")) == 1
        assert len(tracer.filter(since=5.0)) == 2

    def test_timestamps_follow_sim_clock(self):
        sim = Simulator()
        tracer = Tracer.attach(sim)

        def proc():
            yield sim.timeout(42.0)
            tracer.emit("c", "k")

        sim.run_process(proc())
        assert tracer.filter()[0].ts == 42.0

    def test_ring_buffer_bounds_memory(self):
        sim = Simulator()
        tracer = Tracer(sim, capacity=10)
        for i in range(25):
            tracer.emit("c", "k", i=i)
        assert len(tracer) == 10
        assert tracer.dropped == 15
        assert tracer.emitted == 25
        assert tracer.filter()[0].detail["i"] == 15  # oldest kept

    def test_counts_and_clear(self):
        sim = Simulator()
        tracer = Tracer(sim)
        tracer.emit("c", "a")
        tracer.emit("c", "a")
        tracer.emit("c", "b")
        assert tracer.counts() == {"a": 2, "b": 1}
        tracer.clear()
        assert len(tracer) == 0

    def test_dump_jsonl(self, tmp_path):
        sim = Simulator()
        tracer = Tracer(sim)
        tracer.emit("c", "k", x=1)
        path = tmp_path / "trace.jsonl"
        assert tracer.dump_jsonl(str(path)) == 1
        record = json.loads(path.read_text().strip())
        assert record == {"ts": 0.0, "component": "c", "kind": "k", "x": 1}

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Tracer(Simulator(), capacity=0)

    def test_repr_is_readable(self):
        ev = TraceEvent(12.5, "nic", "rdma-get", {"bytes": 4096})
        assert "nic" in repr(ev) and "rdma-get" in repr(ev)


class TestInstrumentation:
    def test_odafs_read_produces_nic_and_rpc_events(self):
        cluster = Cluster(system="odafs", block_size=4 * KB,
                          client_kwargs={"cache_blocks": 2})
        cluster.create_file("f", 32 * KB)
        tracer = Tracer.attach(cluster.sim)
        client = cluster.clients[0]

        def proc():
            for i in range(8):
                yield from client.read("f", i * 4 * KB, 4 * KB)
            for i in range(8):
                yield from client.read("f", i * 4 * KB, 4 * KB)

        cluster.sim.run_process(proc())
        counts = tracer.counts()
        assert counts.get("rpc-call", 0) >= 8
        assert counts.get("rpc-serve", 0) >= 8
        assert counts.get("rdma-get", 0) >= 6   # pass-2 ORDMA reads
        assert counts.get("get-served", 0) >= 6
        # Every get the client issued was served or faulted.
        gets = len(tracer.filter(component="client0", kind="rdma-get"))
        served = len(tracer.filter(component="server", kind="get-served"))
        faults = len(tracer.filter(component="server", kind="ordma-fault"))
        assert gets == served + faults

    def test_fault_events_carry_reason(self):
        cluster = Cluster(system="odafs", block_size=4 * KB,
                          client_kwargs={"cache_blocks": 2})
        cluster.create_file("f", 16 * KB)
        tracer = Tracer.attach(cluster.sim)
        client = cluster.clients[0]

        def proc():
            for i in range(4):
                yield from client.read("f", i * 4 * KB, 4 * KB)
            cluster.cache.invalidate(("f", 0))
            yield from client.read("f", 0, 4 * KB)

        cluster.sim.run_process(proc())
        faults = tracer.filter(kind="ordma-fault")
        assert len(faults) == 1
        assert faults[0].detail["reason"] == "invalid translation"
        assert faults[0].detail["initiator"] == "client0"

    def test_tracing_disabled_by_default_and_free(self):
        cluster = Cluster(system="dafs", block_size=4 * KB,
                          client_kwargs={"cache_blocks": 2})
        cluster.create_file("f", 4 * KB)
        assert cluster.sim.tracer is None
        client = cluster.clients[0]

        def proc():
            yield from client.read("f", 0, 4 * KB)

        cluster.sim.run_process(proc())  # must not raise

    def test_detach(self):
        sim = Simulator()
        tracer = Tracer.attach(sim)
        assert sim.tracer is tracer
        Tracer.detach(sim)
        assert sim.tracer is None
