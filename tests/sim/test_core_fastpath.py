"""Kernel fast paths: trampoline pooling, the AllOf pending counter,
O(1) interrupts, and the slim scheduling path.

These guard the hot-path rewrite's two promises: the optimizations are
invisible to model code (same values, same event ordering), and the
specific O(n) shapes they remove stay removed.
"""

import pytest

from repro.sim import AllOf, Event, Interrupt, Simulator
from repro.sim.core import PENDING, SimulationError, _Trampoline


def _completion_order(n_procs, hops):
    """Spawn timer-hopping processes; return the order they finish in."""
    sim = Simulator()
    order = []

    def hopper(i):
        for _ in range(hops):
            yield sim.timeout(1.0)
        order.append(i)

    for i in range(n_procs):
        sim.process(hopper(i))
    sim.run()
    return order, sim


class TestTrampolinePool:
    def test_bootstraps_are_recycled(self):
        # Staggered spawns reuse each other's bootstrap trampolines: 50
        # sequential processes need only a couple of pooled objects, not
        # one allocation per spawn.
        sim = Simulator()
        done = []

        def child(i):
            yield sim.timeout(1.0)
            done.append(i)

        def spawner():
            for i in range(50):
                yield sim.process(child(i))

        sim.process(spawner())
        sim.run()
        assert done == list(range(50))
        assert 1 <= len(sim._trampolines) < 10

    def test_recycled_trampolines_are_reset(self):
        _, sim = _completion_order(8, 2)
        for tramp in sim._trampolines:
            assert type(tramp) is _Trampoline
            assert tramp.callbacks == []
            assert tramp._value is PENDING
            assert tramp._ok is None
            assert not tramp._scheduled

    def test_pooling_does_not_change_ordering(self):
        # Identical seeds of work give identical completion orders, and
        # the order interleaves processes (round-robin by spawn), exactly
        # as the unpooled kernel ordered them.
        first, _ = _completion_order(10, 5)
        second, _ = _completion_order(10, 5)
        assert first == second == list(range(10))

    def test_relay_values_survive_recycling(self):
        # Waiting on an already-processed event goes through a relay
        # trampoline; the relayed value must be the original one even
        # after that trampoline object has been recycled many times.
        sim = Simulator()
        done = sim.event()
        done.succeed("payload")
        seen = []

        def late_waiter():
            yield sim.timeout(5.0)
            value = yield done  # done processed long ago -> relay
            seen.append(value)

        for _ in range(20):
            sim.process(late_waiter())
        sim.run()
        assert seen == ["payload"] * 20


class TestAllOfPendingCounter:
    def test_wide_fanin(self):
        sim = Simulator()
        events = [sim.timeout(float(i % 7), value=i) for i in range(100)]
        barrier = sim.all_of(events)
        sim.run()
        assert barrier.triggered and barrier.ok
        assert sorted(barrier.value.values()) == list(range(100))

    def test_mixed_pretriggered_and_pending(self):
        sim = Simulator()
        early = sim.event().succeed("early")
        sim.run()  # process `early` so it joins as already-processed
        late = sim.timeout(3.0, value="late")
        barrier = sim.all_of([early, late])
        sim.run()
        assert barrier.triggered
        assert set(barrier.value.values()) == {"early", "late"}

    def test_duplicate_member_counts_twice(self):
        # The counter counts *memberships*, not distinct events: a child
        # listed twice contributes two callbacks and two decrements.
        sim = Simulator()
        shared = sim.timeout(1.0, value="x")
        barrier = sim.all_of([shared, shared])
        sim.run()
        assert barrier.triggered and barrier.ok

    def test_failure_preempts_counter(self):
        sim = Simulator()
        boom = RuntimeError("boom")
        ok = sim.timeout(1.0)
        bad = sim.event()
        sim.call_at(0.5, lambda: bad.fail(boom))
        barrier = sim.all_of([ok, bad])
        caught = []

        def waiter():
            try:
                yield barrier
            except RuntimeError as exc:
                caught.append(exc)

        sim.process(waiter())
        sim.run()
        assert caught == [boom]

    def test_empty_allof_fires_immediately(self):
        sim = Simulator()
        barrier = sim.all_of([])
        assert barrier.triggered and barrier.value == {}


class TestInterruptStaleMarking:
    def test_interrupt_detaches_in_constant_state(self):
        # The waiter's callback stays in the event's list but is marked
        # stale; when the event later fires it is consumed silently.
        sim = Simulator()
        gate = sim.event()
        log = []

        def sleeper():
            try:
                yield gate
                log.append("woke")
            except Interrupt as intr:
                log.append(f"interrupted:{intr.cause}")

        proc = sim.process(sleeper())

        def controller():
            yield sim.timeout(1.0)
            proc.interrupt("deadline")
            yield sim.timeout(1.0)
            gate.succeed("late")

        sim.process(controller())
        sim.run()
        assert log == ["interrupted:deadline"]
        assert gate.triggered  # the late trigger itself still happened

    def test_rewait_same_event_after_interrupt(self):
        # After an interrupt the process may wait on the *same* event
        # again; the stale first wait must not eat the second one.
        sim = Simulator()
        gate = sim.event()
        log = []

        def stubborn():
            try:
                yield gate
            except Interrupt:
                log.append("interrupted")
            value = yield gate
            log.append(value)

        proc = sim.process(stubborn())

        def controller():
            yield sim.timeout(1.0)
            proc.interrupt()
            yield sim.timeout(1.0)
            gate.succeed("finally")

        sim.process(controller())
        sim.run()
        assert log == ["interrupted", "finally"]

    def test_abandoned_failure_is_dropped_with_the_wait(self):
        # A failed event whose only waiter was interrupted away is
        # consumed with the stale wait instead of surfacing as a lost
        # error: the waiter explicitly declared disinterest.
        sim = Simulator()
        gate = sim.event()
        log = []

        def sleeper():
            try:
                yield gate
            except Interrupt:
                log.append("interrupted")
                yield sim.timeout(5.0)
                log.append("done")

        proc = sim.process(sleeper())

        def controller():
            yield sim.timeout(1.0)
            proc.interrupt()
            yield sim.timeout(1.0)
            gate.fail(RuntimeError("nobody cares"))

        sim.process(controller())
        sim.run()
        assert log == ["interrupted", "done"]

    def test_interrupt_storm_leaves_shared_event_clean(self):
        sim = Simulator()
        gate = sim.event()
        survived = []

        def sleeper(i):
            try:
                yield gate
                survived.append(i)
            except Interrupt:
                pass

        procs = [sim.process(sleeper(i)) for i in range(100)]

        def controller():
            yield sim.timeout(1.0)
            for proc in procs[:99]:  # interrupt all but the last
                proc.interrupt()
            yield sim.timeout(1.0)
            gate.succeed()

        sim.process(controller())
        sim.run()
        assert survived == [99]
        for proc in procs:
            assert proc.triggered

    def test_finished_process_rejects_interrupt(self):
        sim = Simulator()

        def quick():
            yield sim.timeout(1.0)

        proc = sim.process(quick())
        sim.run()
        with pytest.raises(SimulationError):
            proc.interrupt()


class TestScheduleAt:
    def test_absolute_time(self):
        sim = Simulator()
        fired = []
        ev = Event(sim)
        ev.add_callback(lambda e: fired.append(sim.now))
        ev._value = None
        ev._ok = True
        sim.schedule_at(ev, 12.5)
        sim.run()
        assert fired == [12.5]

    def test_fifo_among_simultaneous(self):
        sim = Simulator()
        order = []
        for tag in ("a", "b", "c"):
            ev = Event(sim)
            ev.add_callback(lambda e, t=tag: order.append(t))
            ev._value = None
            ev._ok = True
            sim.schedule_at(ev, 4.0)
        sim.run()
        assert order == ["a", "b", "c"]

    def test_call_at_uses_exact_timestamp(self):
        sim = Simulator()
        stamps = []
        sim.call_at(0.1 + 0.2, lambda: stamps.append(sim.now))
        sim.run()
        assert stamps == [0.1 + 0.2]
