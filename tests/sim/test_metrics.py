"""Tests for the unified metrics registry."""

import json

import pytest

from repro.cluster import Cluster
from repro.params import KB
from repro.sim import (
    BusyTracker,
    Counter,
    LatencyStats,
    MetricsRegistry,
    Simulator,
    ThroughputMeter,
)


class TestMetricsRegistry:
    def test_register_and_get(self):
        reg = MetricsRegistry()
        counter = Counter()
        assert reg.register("server.ops", counter) is counter
        assert reg.get("server.ops") is counter
        assert "server.ops" in reg and len(reg) == 1

    def test_duplicate_and_empty_names_rejected(self):
        reg = MetricsRegistry()
        reg.register("a", Counter())
        with pytest.raises(ValueError):
            reg.register("a", Counter())
        with pytest.raises(ValueError):
            reg.register("", Counter())

    def test_create_or_get_helpers(self):
        sim = Simulator()
        reg = MetricsRegistry()
        c = reg.counter("client0.ops")
        assert reg.counter("client0.ops") is c
        lat = reg.latency("client0.read_us")
        assert reg.latency("client0.read_us") is lat
        assert isinstance(reg.throughput(sim, "net.bytes"),
                          ThroughputMeter)
        assert isinstance(reg.busy(sim, "server.cpu"), BusyTracker)
        assert sorted(reg.names()) == ["client0.ops", "client0.read_us",
                                       "net.bytes", "server.cpu"]

    def test_snapshot_flattens_hierarchical_names(self):
        sim = Simulator()
        reg = MetricsRegistry()
        reg.counter("server.cache").incr("hits", 3)
        reg.latency("client0.read_us").record(10.0)
        reg.busy(sim, "server.cpu").add(5.0, category="copy")
        snap = reg.snapshot()
        assert snap["server.cache.hits"] == 3
        assert snap["client0.read_us.mean"] == 10.0
        assert snap["server.cpu.busy_us"] == 5.0
        assert snap["server.cpu.by.copy"] == 5.0

    def test_json_round_trip(self):
        reg = MetricsRegistry()
        reg.counter("server.ops").incr("reads", 7)
        reg.latency("lat").record(4.0)
        restored = json.loads(reg.to_json())
        assert restored == reg.snapshot()

    def test_subtree(self):
        reg = MetricsRegistry()
        reg.counter("server.cache").incr("hits")
        reg.counter("client0.cache").incr("hits")
        sub = reg.subtree("server.cache")
        assert sub == {"server.cache.hits": 1}

    def test_unregister(self):
        reg = MetricsRegistry()
        reg.register("a", Counter())
        reg.unregister("a")
        assert "a" not in reg
        reg.unregister("a")  # idempotent

    def test_unsupported_instrument_rejected(self):
        with pytest.raises(TypeError):
            MetricsRegistry.instrument_values(object())


class TestClusterRegistry:
    def test_cluster_builds_registry_over_all_hosts(self):
        cluster = Cluster(system="odafs", n_clients=2, block_size=4 * KB,
                          client_kwargs={"cache_blocks": 4})
        names = list(cluster.metrics.names())
        for expected in ("server.cpu", "server.nic", "server.disk",
                         "server.cache", "server.ops", "server.rpc",
                         "client0.cpu", "client0.nic", "client0.ops",
                         "client0.rpc", "client0.cache", "client1.cpu"):
            assert expected in names

    def test_registry_reads_through_to_live_instruments(self):
        cluster = Cluster(system="odafs", block_size=4 * KB,
                          client_kwargs={"cache_blocks": 4})
        cluster.create_file("f", 16 * KB)
        client = cluster.clients[0]

        def proc():
            for i in range(4):
                yield from client.read("f", i * 4 * KB, 4 * KB)

        cluster.sim.run_process(proc())
        snap = cluster.metrics.snapshot()
        assert snap["client0.ops.reads"] == 4
        assert snap["server.ops.reads"] >= 4
        assert snap["server.cache.hits"] >= 4
        assert snap["client0.nic.dma_bytes"] > 0
        assert snap["server.cpu.busy_us"] > 0
        # The whole snapshot must be JSON-exportable.
        json.loads(cluster.metrics.to_json())

    def test_nfs_client_has_no_cache_entry(self):
        cluster = Cluster(system="nfs", block_size=4 * KB)
        assert "client0.cache" not in cluster.metrics
