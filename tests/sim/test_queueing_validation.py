"""Validate the DES kernel against queueing theory.

The whole reproduction rests on the kernel's queues behaving correctly,
so we check the Resource against closed-form results:

* M/M/1: mean time in system W = 1 / (mu - lambda);
* M/D/1: mean wait Wq = rho / (2 mu (1 - rho)), i.e. half of M/M/1's;
* utilization equals rho = lambda / mu.

Statistical tolerances are loose (10-15%) but the runs are long enough
that systematic kernel errors (off-by-one service, lost wakeups, unfair
queues) would blow well past them.
"""

import pytest

from repro.sim import LatencyStats, RandomStreams, Resource, Simulator


def run_queue(lam: float, mu: float, n_jobs: int, deterministic: bool,
              seed: int = 11) -> LatencyStats:
    """Drive an open single-server queue; returns time-in-system stats."""
    sim = Simulator()
    server = Resource(sim, capacity=1)
    rng = RandomStreams(seed).stream("queueing")
    stats = LatencyStats()

    def job():
        arrived = sim.now
        req = server.request()
        yield req
        try:
            service = (1.0 / mu if deterministic
                       else rng.expovariate(mu))
            yield sim.timeout(service)
        finally:
            server.release(req)
        stats.record(sim.now - arrived)

    def source():
        for _ in range(n_jobs):
            yield sim.timeout(rng.expovariate(lam))
            sim.process(job())

    sim.process(source())
    sim.run()
    return stats


def test_mm1_mean_time_in_system():
    lam, mu = 0.5, 1.0  # rho = 0.5 -> W = 1 / (mu - lam) = 2.0
    stats = run_queue(lam, mu, n_jobs=20_000, deterministic=False)
    assert stats.mean == pytest.approx(2.0, rel=0.10)


def test_mm1_higher_load_longer_waits():
    low = run_queue(0.3, 1.0, 8_000, deterministic=False)
    high = run_queue(0.8, 1.0, 8_000, deterministic=False)
    # W(0.8) / W(0.3) = (1/0.2) / (1/0.7) = 3.5
    assert high.mean / low.mean == pytest.approx(3.5, rel=0.25)


def test_md1_waits_half_of_mm1():
    """Deterministic service halves the queueing delay (PK formula)."""
    lam, mu = 0.7, 1.0
    mm1 = run_queue(lam, mu, 20_000, deterministic=False)
    md1 = run_queue(lam, mu, 20_000, deterministic=True)
    mm1_wait = mm1.mean - 1.0 / mu
    md1_wait = md1.mean - 1.0 / mu
    assert md1_wait / mm1_wait == pytest.approx(0.5, rel=0.15)


def test_utilization_equals_rho():
    lam, mu, n = 0.6, 1.0, 10_000
    sim = Simulator()
    server = Resource(sim, capacity=1)
    rng = RandomStreams(3).stream("util")
    busy = [0.0]

    def job():
        req = server.request()
        yield req
        try:
            service = rng.expovariate(mu)
            yield sim.timeout(service)
            busy[0] += service
        finally:
            server.release(req)

    def source():
        for _ in range(n):
            yield sim.timeout(rng.expovariate(lam))
            sim.process(job())

    sim.process(source())
    sim.run()
    assert busy[0] / sim.now == pytest.approx(lam / mu, rel=0.05)
