"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    SimulationError,
    Simulator,
)


def test_timeout_advances_clock():
    sim = Simulator()

    def proc():
        yield sim.timeout(5.0)
        yield sim.timeout(2.5)
        return sim.now

    assert sim.run_process(proc()) == 7.5
    assert sim.now == 7.5


def test_zero_delay_timeout_runs_at_same_time():
    sim = Simulator()

    def proc():
        yield sim.timeout(0.0)
        return sim.now

    assert sim.run_process(proc()) == 0.0


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.timeout(-1.0)


def test_event_succeed_delivers_value():
    sim = Simulator()
    ev = sim.event()

    def waiter():
        value = yield ev
        return value

    def trigger():
        yield sim.timeout(3.0)
        ev.succeed("payload")

    proc = sim.process(waiter())
    sim.process(trigger())
    sim.run()
    assert proc.value == "payload"
    assert sim.now == 3.0


def test_event_fail_raises_in_waiter():
    sim = Simulator()
    ev = sim.event()

    def waiter():
        try:
            yield ev
        except ValueError as exc:
            return f"caught {exc}"

    def trigger():
        yield sim.timeout(1.0)
        ev.fail(ValueError("boom"))

    proc = sim.process(waiter())
    sim.process(trigger())
    sim.run()
    assert proc.value == "caught boom"


def test_event_double_trigger_rejected():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)
    with pytest.raises(SimulationError):
        ev.fail(RuntimeError("nope"))


def test_unwaited_failed_event_surfaces():
    sim = Simulator()
    ev = sim.event()
    ev.fail(RuntimeError("lost error"))
    with pytest.raises(RuntimeError, match="lost error"):
        sim.run()


def test_process_return_value_propagates():
    sim = Simulator()

    def inner():
        yield sim.timeout(1.0)
        return 42

    def outer():
        value = yield sim.process(inner())
        return value + 1

    assert sim.run_process(outer()) == 43


def test_process_exception_propagates_to_waiter():
    sim = Simulator()

    def inner():
        yield sim.timeout(1.0)
        raise KeyError("inner failure")

    def outer():
        try:
            yield sim.process(inner())
        except KeyError:
            return "handled"

    assert sim.run_process(outer()) == "handled"


def test_unhandled_process_exception_raises_from_run():
    sim = Simulator()

    def bad():
        yield sim.timeout(1.0)
        raise RuntimeError("unhandled")

    sim.process(bad())
    with pytest.raises(RuntimeError, match="unhandled"):
        sim.run()


def test_yield_non_event_fails_process():
    sim = Simulator()

    def bad():
        yield 5  # not an Event

    proc = sim.process(bad())
    with pytest.raises(SimulationError):
        sim.run()
    assert proc.triggered


def test_simultaneous_events_fire_in_schedule_order():
    sim = Simulator()
    order = []

    def proc(tag):
        yield sim.timeout(1.0)
        order.append(tag)

    for tag in ("a", "b", "c"):
        sim.process(proc(tag))
    sim.run()
    assert order == ["a", "b", "c"]


def test_run_until_stops_clock():
    sim = Simulator()

    def proc():
        yield sim.timeout(100.0)

    sim.process(proc())
    sim.run(until=30.0)
    assert sim.now == 30.0


def test_all_of_waits_for_every_event():
    sim = Simulator()

    def worker(delay):
        yield sim.timeout(delay)
        return delay

    def main():
        procs = [sim.process(worker(d)) for d in (3.0, 1.0, 2.0)]
        results = yield sim.all_of(procs)
        return sorted(results.values())

    assert sim.run_process(main()) == [1.0, 2.0, 3.0]
    assert sim.now == 3.0


def test_any_of_returns_on_first_completion():
    sim = Simulator()

    def worker(delay):
        yield sim.timeout(delay)
        return delay

    def main():
        procs = [sim.process(worker(d)) for d in (3.0, 1.0)]
        results = yield sim.any_of(procs)
        return list(results.values())

    assert sim.run_process(main()) == [1.0]


def test_all_of_empty_succeeds_immediately():
    sim = Simulator()

    def main():
        results = yield sim.all_of([])
        return results

    assert sim.run_process(main()) == {}


def test_interrupt_raises_in_process():
    sim = Simulator()

    def sleeper():
        try:
            yield sim.timeout(100.0)
        except Interrupt as intr:
            return ("interrupted", intr.cause, sim.now)

    def interrupter(victim):
        yield sim.timeout(5.0)
        victim.interrupt("deadline")

    victim = sim.process(sleeper())
    sim.process(interrupter(victim))
    sim.run()
    assert victim.value == ("interrupted", "deadline", 5.0)


def test_interrupt_finished_process_rejected():
    sim = Simulator()

    def quick():
        yield sim.timeout(1.0)

    proc = sim.process(quick())
    sim.run()
    with pytest.raises(SimulationError):
        proc.interrupt()


def test_call_at_runs_function_at_absolute_time():
    sim = Simulator()
    seen = []
    sim.call_at(12.0, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [12.0]


def test_call_at_in_the_past_rejected():
    sim = Simulator()

    def proc():
        yield sim.timeout(10.0)
        sim.call_at(5.0, lambda: None)

    sim.process(proc())
    with pytest.raises(SimulationError):
        sim.run()


def test_waiting_on_already_processed_event():
    sim = Simulator()
    ev = sim.event()
    ev.succeed("early")

    def late_waiter():
        # Let the event be processed before anyone waits on it.
        yield sim.timeout(5.0)
        value = yield ev
        return value

    assert sim.run_process(late_waiter()) == "early"


def test_stop_halts_run():
    sim = Simulator()
    ticks = []

    def ticker():
        while True:
            yield sim.timeout(1.0)
            ticks.append(sim.now)
            if sim.now >= 3.0:
                sim.stop()

    sim.process(ticker())
    sim.run()
    assert ticks == [1.0, 2.0, 3.0]


def test_any_of_with_pending_timeout_waits():
    """Regression: a freshly created Timeout must not count as triggered —
    any_of(event, timeout) must wait for whichever fires first."""
    sim = Simulator()

    def proc():
        ev = sim.event()
        timeout = sim.timeout(100.0)

        def trigger():
            yield sim.timeout(5.0)
            ev.succeed("early")

        sim.process(trigger())
        results = yield sim.any_of([ev, timeout])
        return list(results.values()), sim.now

    values, now = sim.run_process(proc())
    assert values == ["early"]
    assert now == 5.0


def test_timeout_not_triggered_until_fired():
    sim = Simulator()
    timeout = sim.timeout(10.0)
    assert not timeout.triggered
    sim.run()
    assert timeout.triggered
    assert timeout.value is None
