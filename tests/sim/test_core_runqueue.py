"""Fast-lane dispatch order and kernel byte-identity pins.

The run-queue optimization routes every at-now event (zero-delay
timeouts, ``succeed()``/``fail()`` at the current time, trampolines)
past the ``(time, seq)`` heap into a FIFO. The kernel's contract is
unchanged: events dispatch in exact ``(time, seq)`` order, where seq is
the global scheduling counter. These tests pin that contract two ways —
a randomized property test that interleaves heap and run-queue events
at equal timestamps, and end-to-end digest triples captured on the
pre-fast-lane kernel (commit 11f4674) that the new kernel must
reproduce bit-for-bit.
"""

import random

import pytest

from repro.cluster import Cluster
from repro.params import KB, default_params
from repro.sim import Simulator


def _expected_and_observed(seed, ticks=30, max_batch=4):
    """Build a random interleave of heap and run-queue events.

    A driver walks the clock one microsecond per tick. At each tick it
    schedules a random batch mixing delay-0 timeouts (run-queue),
    delay-1/delay-2 timeouts (heap entries landing at a *future* tick,
    where delay-2 entries scheduled a tick earlier collide with delay-1
    entries at the same timestamp), and bare events succeeded at now
    (run-queue). After every creation the simulator's seq counter holds
    the seq just assigned, so the expected global order is simply the
    records sorted by ``(fire_time, seq)``.
    """
    rng = random.Random(seed)
    sim = Simulator()
    observed = []
    scheduled = []  # (fire_time, seq, label)

    def record(label):
        return lambda ev: observed.append(label)

    def driver():
        serial = 0
        for _ in range(ticks):
            for _ in range(rng.randint(1, max_batch)):
                serial += 1
                label = f"ev{serial}"
                kind = rng.randrange(3)
                if kind == 0:
                    delay = 0.0  # run-queue fast lane
                elif kind == 1:
                    delay = float(rng.randint(1, 2))  # heap
                else:
                    ev = sim.event()
                    ev.add_callback(record(label))
                    ev.succeed()  # at-now success: run-queue
                    scheduled.append((sim.now, sim._seq, label))
                    continue
                t = sim.timeout(delay)
                t.add_callback(record(label))
                scheduled.append((sim.now + delay, sim._seq, label))
            yield sim.timeout(1.0)
        # Let every outstanding delay-2 timeout fire.
        yield sim.timeout(3.0)

    sim.run_process(driver())
    expected = [label for _t, _s, label in sorted(scheduled)]
    return expected, observed


@pytest.mark.parametrize("seed", [0, 7, 1234, 99991])
def test_interleaved_heap_and_runq_dispatch_in_seq_order(seed):
    """At equal timestamps, heap entries (scheduled earlier, smaller
    seq) must dispatch before run-queue entries, and run-queue FIFO
    order must equal seq order — i.e. exact (time, seq) dispatch."""
    expected, observed = _expected_and_observed(seed)
    assert observed == expected
    assert len(observed) > 20  # the interleave actually exercised both


def test_zero_delay_timeout_after_heap_entry_at_same_time():
    """Directed version of the property: a heap timeout landing at T
    was scheduled before the clock reached T, so it outranks any
    zero-delay timeout created at T — even though the zero-delay one
    sits in the run-queue, which is checked first by the loop."""
    sim = Simulator()
    order = []

    def early():
        yield sim.timeout(1.0)  # heap entry firing at t=1
        order.append("heap")

    def late():
        yield sim.timeout(1.0)
        yield sim.timeout(0.0)  # run-queue entry created at t=1
        order.append("runq")

    # ``late`` is scheduled first, so its wake-up at t=1 precedes
    # ``early``'s — but its zero-delay hop must still come after every
    # heap entry for t=1 that predates the clock's arrival.
    sim.process(late())
    sim.process(early())
    sim.run()
    assert order == ["heap", "runq"]


# Captured on the pre-fast-lane kernel (commit 11f4674) with this exact
# workload: two clients, 48x4KB warm file, two sequential passes each.
# (ops, sim_us, events) — events is the kernel's final seq counter, so
# any change to scheduling order, count, or timing breaks these.
KERNEL_PINS = {
    "nfs": (192, 30188.019111110654, 18232),
    "odafs": (192, 13409.801777777688, 15134),
}


def _smallio_digest(system):
    blocks, block = 48, 4 * KB
    kwargs = ({"cache_blocks": 8} if system in ("dafs", "odafs")
              else {"bcache_entries": 4})
    cluster = Cluster(default_params(), system=system, block_size=block,
                      n_clients=2, server_cache_blocks=blocks + 8,
                      client_kwargs=kwargs)
    cluster.create_file("pin", blocks * block)

    def reader(idx):
        client = cluster.clients[idx]
        yield from client.open("pin")
        for _ in range(2):
            for i in range(blocks):
                yield from client.read("pin", i * block, block)

    def main():
        procs = [cluster.sim.process(reader(i), name=f"pin{i}")
                 for i in range(2)]
        yield cluster.sim.all_of(procs)

    cluster.sim.run_process(main())
    return 2 * 2 * blocks, cluster.sim.now, cluster.sim._seq


@pytest.mark.parametrize("system", sorted(KERNEL_PINS))
def test_kernel_digest_identical_to_pre_fastlane_kernel(system):
    """The fast lane is bit-identical by construction: an nfs and an
    odafs smallio run must reproduce the pre-change kernel's exact
    (ops, sim_us, events) triple."""
    assert _smallio_digest(system) == KERNEL_PINS[system]
