"""Unit tests for resources, stores and bandwidth pipes."""

import pytest

from repro.sim import BandwidthPipe, Resource, SimulationError, Simulator, Store


class TestResource:
    def test_capacity_one_serializes(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        finish_times = []

        def user():
            req = res.request()
            yield req
            yield sim.timeout(10.0)
            res.release(req)
            finish_times.append(sim.now)

        for _ in range(3):
            sim.process(user())
        sim.run()
        assert finish_times == [10.0, 20.0, 30.0]

    def test_capacity_two_overlaps(self):
        sim = Simulator()
        res = Resource(sim, capacity=2)
        finish_times = []

        def user():
            req = res.request()
            yield req
            yield sim.timeout(10.0)
            res.release(req)
            finish_times.append(sim.now)

        for _ in range(4):
            sim.process(user())
        sim.run()
        assert finish_times == [10.0, 10.0, 20.0, 20.0]

    def test_priority_order(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        served = []

        def holder():
            req = res.request()
            yield req
            yield sim.timeout(5.0)
            res.release(req)

        def user(tag, prio, delay):
            yield sim.timeout(delay)
            req = res.request(priority=prio)
            yield req
            served.append(tag)
            yield sim.timeout(1.0)
            res.release(req)

        sim.process(holder())
        sim.process(user("low", 2, 1.0))
        sim.process(user("high", 0, 2.0))
        sim.run()
        assert served == ["high", "low"]

    def test_fifo_within_priority(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        served = []

        def holder():
            req = res.request()
            yield req
            yield sim.timeout(5.0)
            res.release(req)

        def user(tag, delay):
            yield sim.timeout(delay)
            req = res.request()
            yield req
            served.append(tag)
            res.release(req)

        sim.process(holder())
        sim.process(user("first", 1.0))
        sim.process(user("second", 2.0))
        sim.run()
        assert served == ["first", "second"]

    def test_release_without_hold_rejected(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        req = res.request()
        sim.run()
        res.release(req)
        with pytest.raises(SimulationError):
            res.release(req)

    def test_cancel_pending_request(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        first = res.request()
        second = res.request()
        res.cancel(second)
        res.release(first)
        sim.run()
        assert not second.triggered

    def test_invalid_capacity(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            Resource(sim, capacity=0)

    def test_stats(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        reqs = [res.request() for _ in range(3)]
        assert res.stats_peak_queue >= 2
        for req in reqs:
            sim.run()
            if req in res._users:
                res.release(req)
        assert res.stats_granted == 3


class TestStore:
    def test_put_then_get(self):
        sim = Simulator()
        store = Store(sim)
        store.put("x")

        def getter():
            value = yield store.get()
            return value

        assert sim.run_process(getter()) == "x"

    def test_get_blocks_until_put(self):
        sim = Simulator()
        store = Store(sim)

        def getter():
            value = yield store.get()
            return (value, sim.now)

        def putter():
            yield sim.timeout(7.0)
            store.put("late")

        proc = sim.process(getter())
        sim.process(putter())
        sim.run()
        assert proc.value == ("late", 7.0)

    def test_fifo_ordering(self):
        sim = Simulator()
        store = Store(sim)
        got = []

        def getter():
            value = yield store.get()
            got.append(value)

        sim.process(getter())
        sim.process(getter())
        store.put(1)
        store.put(2)
        sim.run()
        assert got == [1, 2]


class TestBandwidthPipe:
    def test_transfer_time(self):
        sim = Simulator()
        pipe = BandwidthPipe(sim, bandwidth_bpus=100.0)

        def proc():
            yield pipe.transfer(1000)
            return sim.now

        assert sim.run_process(proc()) == pytest.approx(10.0)

    def test_serialization(self):
        sim = Simulator()
        pipe = BandwidthPipe(sim, bandwidth_bpus=100.0)
        times = []

        def proc():
            yield pipe.transfer(500)
            times.append(sim.now)

        sim.process(proc())
        sim.process(proc())
        sim.run()
        assert times == [pytest.approx(5.0), pytest.approx(10.0)]

    def test_per_transfer_overhead(self):
        sim = Simulator()
        pipe = BandwidthPipe(sim, bandwidth_bpus=100.0, per_transfer_us=2.0)

        def proc():
            yield pipe.transfer(100)
            return sim.now

        assert sim.run_process(proc()) == pytest.approx(3.0)

    def test_cut_through_idle_pipe_is_immediate(self):
        sim = Simulator()
        pipe = BandwidthPipe(sim, bandwidth_bpus=100.0)

        def proc():
            yield sim.timeout(50.0)
            yield pipe.transfer_cut_through(1000)
            return sim.now

        assert sim.run_process(proc()) == pytest.approx(50.0)

    def test_cut_through_busy_pipe_queues(self):
        sim = Simulator()
        pipe = BandwidthPipe(sim, bandwidth_bpus=100.0)
        times = []

        def proc():
            yield pipe.transfer_cut_through(500)
            times.append(sim.now)

        sim.process(proc())
        sim.process(proc())
        sim.run()
        # First arrives immediately (bits streamed in); second queues for a
        # full serialization behind it.
        assert times[0] == pytest.approx(0.0)
        assert times[1] == pytest.approx(5.0)

    def test_utilization_accounting(self):
        sim = Simulator()
        pipe = BandwidthPipe(sim, bandwidth_bpus=100.0)

        def proc():
            yield pipe.transfer(1000)
            yield sim.timeout(10.0)

        sim.run_process(proc())
        assert pipe.utilization() == pytest.approx(0.5)
        assert pipe.stats_bytes == 1000

    def test_invalid_sizes_rejected(self):
        sim = Simulator()
        pipe = BandwidthPipe(sim, bandwidth_bpus=100.0)
        with pytest.raises(SimulationError):
            pipe.transfer(-1)
        with pytest.raises(SimulationError):
            BandwidthPipe(sim, bandwidth_bpus=0.0)
