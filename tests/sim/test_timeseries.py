"""Continuous telemetry: sampler scheduling, probes, and serialization."""

import pytest

from repro.cluster import Cluster
from repro.sim import (
    Simulator,
    TimeSeriesSampler,
    load_timeseries_jsonl,
    rate_probe,
    ratio_probe,
)
from repro.sim.timeseries import window_mean


def run_for(sim, duration_us):
    def clock():
        yield sim.timeout(duration_us)
    return sim.process(clock())


class TestProbes:
    def test_rate_probe_windows(self):
        sim = Simulator()
        counter = {"v": 0.0}
        probe = rate_probe(sim, lambda: counter["v"])

        def proc():
            counter["v"] = 50.0
            yield sim.timeout(100.0)
            assert probe() == pytest.approx(0.5)
            counter["v"] = 50.0  # no growth in the next window
            yield sim.timeout(100.0)
            assert probe() == 0.0

        sim.run_process(proc())

    def test_rate_probe_zero_elapsed(self):
        sim = Simulator()
        probe = rate_probe(sim, lambda: 100.0)
        assert probe() == 0.0  # same instant as creation

    def test_rate_probe_scale(self):
        sim = Simulator()
        counter = {"v": 0.0}
        probe = rate_probe(sim, lambda: counter["v"], scale=1e6)

        def proc():
            counter["v"] = 3.0
            yield sim.timeout(1e6)  # one simulated second
            assert probe() == pytest.approx(3.0)

        sim.run_process(proc())

    def test_ratio_probe_windows(self):
        hits = {"v": 0.0}
        total = {"v": 0.0}
        probe = ratio_probe(lambda: hits["v"], lambda: total["v"])
        hits["v"], total["v"] = 3.0, 4.0
        assert probe() == pytest.approx(0.75)
        # No denominator activity in the next window: 0.0, not a crash.
        assert probe() == 0.0

    def test_window_mean_bounds(self):
        points = [(0.0, 1.0), (10.0, 2.0), (20.0, 3.0)]
        assert window_mean(points, 0.0, 20.0) == pytest.approx(2.0)
        assert window_mean(points, 10.0, 10.0) == 2.0
        assert window_mean(points, 30.0, 40.0) is None

    def test_rate_probe_idle_window_advances_anchor(self):
        # The unchanged-source short-circuit must still move the window
        # anchor: growth after an idle window is rated over the *last*
        # window only, not smeared across the idle one.
        sim = Simulator()
        counter = {"v": 0.0}
        probe = rate_probe(sim, lambda: counter["v"])

        def proc():
            yield sim.timeout(100.0)
            assert probe() == 0.0  # idle window (short-circuit path)
            counter["v"] = 50.0
            yield sim.timeout(100.0)
            assert probe() == pytest.approx(0.5)  # 50 over 100us, not 200

        sim.run_process(proc())

    def test_ratio_probe_idle_window_advances_numerator(self):
        # Short-circuited windows (denominator unchanged) must advance
        # the numerator anchor, or later windows over-count it.
        hits = {"v": 0.0}
        total = {"v": 0.0}
        probe = ratio_probe(lambda: hits["v"], lambda: total["v"])
        hits["v"] = 5.0  # numerator moves, denominator does not
        assert probe() == 0.0
        hits["v"], total["v"] = 7.0, 4.0
        assert probe() == pytest.approx(0.5)  # (7-5)/(4-0), not (7-0)/4


class TestSampler:
    def test_off_by_default_schedules_nothing(self):
        sim = Simulator()
        sampler = TimeSeriesSampler(sim, interval_us=10.0)
        sampler.probe("gauge", lambda: 1.0)
        run_for(sim, 100.0)
        sim.run()
        assert sampler.ticks == 0
        assert len(sampler.series["gauge"]) == 0

    def test_unstarted_sampler_leaves_event_count_unchanged(self):
        def events(with_sampler):
            sim = Simulator()
            if with_sampler:
                sampler = TimeSeriesSampler(sim)
                sampler.probe("gauge", lambda: 1.0)
            run_for(sim, 100.0)
            sim.run()
            return sim._seq

        assert events(True) == events(False)

    def test_sampling_ticks_on_interval(self):
        sim = Simulator()
        sampler = TimeSeriesSampler(sim, interval_us=10.0)
        sampler.probe("now", lambda: sim.now)
        proc = run_for(sim, 100.0)
        sampler.start(stop_on=proc)
        sim.run()  # daemon exits once the workload triggers: heap drains
        assert sampler.ticks == 9
        assert [ts for ts, _v in sampler.series["now"]] == \
            [10.0 * k for k in range(1, 10)]

    def test_double_start_rejected(self):
        sim = Simulator()
        sampler = TimeSeriesSampler(sim)
        sampler.start()
        with pytest.raises(RuntimeError):
            sampler.start()

    def test_duplicate_and_empty_probe_names_rejected(self):
        sampler = TimeSeriesSampler(Simulator())
        sampler.probe("x", lambda: 0.0)
        with pytest.raises(ValueError):
            sampler.probe("x", lambda: 0.0)
        with pytest.raises(ValueError):
            sampler.probe("", lambda: 0.0)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            TimeSeriesSampler(Simulator(), interval_us=0.0)
        with pytest.raises(ValueError):
            TimeSeriesSampler(Simulator(), capacity=0)

    def test_ring_capacity_drops_oldest(self):
        sim = Simulator()
        sampler = TimeSeriesSampler(sim, interval_us=1.0, capacity=4)
        sampler.probe("now", lambda: sim.now)
        proc = run_for(sim, 10.5)
        sampler.start(stop_on=proc)
        sim.run()
        series = sampler.series["now"]
        assert sampler.ticks == 10
        assert len(series) == 4
        assert series.dropped == 6
        assert sampler.dropped == 6
        assert [ts for ts, _v in series] == [7.0, 8.0, 9.0, 10.0]

    def test_probe_registered_after_sampling_joins_the_plan(self):
        # sample_once runs off a compiled plan; registering a new probe
        # must invalidate it so the next tick includes the new series.
        sim = Simulator()
        sampler = TimeSeriesSampler(sim, interval_us=1.0)
        sampler.probe("a", lambda: 1.0)
        sampler.sample_once()
        sampler.probe("b", lambda: 2.0)
        sampler.sample_once()
        assert len(sampler.series["a"]) == 2
        assert len(sampler.series["b"]) == 1
        assert sampler.series["b"].last == 2.0

    def test_as_dict_readout(self):
        sim = Simulator()
        sampler = TimeSeriesSampler(sim, interval_us=10.0)
        sampler.probe("gauge", lambda: 42.0)
        proc = run_for(sim, 35.0)
        sampler.start(stop_on=proc)
        sim.run()
        out = sampler.as_dict()
        assert out["ticks"] == 3
        assert out["series"] == 1
        assert out["last.gauge"] == 42.0


class TestSerialization:
    def _sampled(self):
        sim = Simulator()
        sampler = TimeSeriesSampler(sim, interval_us=10.0)
        sampler.probe("a.x", lambda: sim.now)
        sampler.probe("a.y", lambda: 2.0 * sim.now)
        proc = run_for(sim, 100.0)
        sampler.start(stop_on=proc)
        sim.run()
        return sampler

    def test_jsonl_round_trip(self, tmp_path):
        sampler = self._sampled()
        path = tmp_path / "ts.jsonl"
        assert sampler.dump_jsonl(str(path)) == 2
        dump = load_timeseries_jsonl(str(path))
        assert dump.names() == ["a.x", "a.y"]
        assert dump.ticks == sampler.ticks
        assert dump.interval_us == 10.0
        assert dump.series["a.x"] == list(sampler.series["a.x"].points)
        assert dump.window_mean("a.y", 0.0, 100.0) == \
            sampler.window_mean("a.y", 0.0, 100.0)

    def test_to_jsonl_is_deterministic(self):
        assert self._sampled().to_jsonl() == self._sampled().to_jsonl()


class TestClusterIntegration:
    def test_attach_sampler_registers_gauges(self):
        cluster = Cluster(system="odafs")
        sampler = cluster.attach_sampler(interval_us=25.0)
        names = sampler.names()
        for expected in ("server.cpu.util", "server.cpu.util.copy",
                         "server.cache.hit_rate", "server.rpc.inflight",
                         "client0.rpc.outstanding", "client0.ordma.reads_s",
                         "client0.dir.size", "net.server.tx_util",
                         "net.switch.queue_bytes"):
            assert expected in names
        # Registered on the metrics registry under "timeseries".
        snapshot = cluster.metrics.snapshot()
        assert snapshot["timeseries.ticks"] == 0
        assert snapshot["timeseries.series"] == len(sampler.series)

    def test_attach_twice_rejected(self):
        cluster = Cluster(system="dafs")
        cluster.attach_sampler()
        with pytest.raises(RuntimeError):
            cluster.attach_sampler()

    def test_sampler_records_during_workload(self):
        cluster = Cluster(system="odafs", block_size=4096,
                          server_cache_blocks=16,
                          client_kwargs={"cache_blocks": 8,
                                         "rpc_read_mode": "direct"})
        cluster.create_file("f", 8 * 4096)
        client = cluster.clients[0]

        def workload():
            yield from client.open("f")
            for i in range(8):
                yield from client.read("f", i * 4096, 4096)

        proc = cluster.sim.process(workload())
        sampler = cluster.attach_sampler(interval_us=20.0)
        sampler.start(stop_on=proc)
        cluster.sim.run()
        assert proc.ok
        assert sampler.ticks > 0
        # The ODAFS claim, visible in telemetry: zero server copy time.
        copy = sampler.series["server.cpu.util.copy"].values()
        assert copy and all(v == 0.0 for v in copy)
