"""Unit tests for measurement instruments."""

import pytest

from repro.sim import (
    BusyTracker,
    Counter,
    LatencyStats,
    RandomStreams,
    Simulator,
    ThroughputMeter,
)


class TestBusyTracker:
    def test_utilization_over_window(self):
        sim = Simulator()
        tracker = BusyTracker(sim)

        def proc():
            yield sim.timeout(100.0)
            tracker.reset_window()
            tracker.add(30.0, "copy")
            yield sim.timeout(60.0)

        sim.run_process(proc())
        assert tracker.window_utilization() == pytest.approx(0.5)
        assert tracker.by_category["copy"] == 30.0

    def test_zero_elapsed_is_zero(self):
        sim = Simulator()
        tracker = BusyTracker(sim)
        assert tracker.window_utilization() == 0.0
        assert tracker.utilization() == 0.0

    def test_negative_rejected(self):
        tracker = BusyTracker(Simulator())
        with pytest.raises(ValueError):
            tracker.add(-1.0)

    def test_window_reset_at_nonzero_time_is_zero(self):
        # Regression: a query in the same instant as reset_window() must
        # not divide by the zero-length window.
        sim = Simulator()
        tracker = BusyTracker(sim)

        def proc():
            yield sim.timeout(100.0)
            tracker.add(10.0)
            tracker.reset_window()

        sim.run_process(proc())
        assert tracker.window_utilization() == 0.0

    def test_utilization_capped_at_one(self):
        sim = Simulator()
        tracker = BusyTracker(sim)

        def proc():
            tracker.add(100.0)
            yield sim.timeout(10.0)

        sim.run_process(proc())
        assert tracker.utilization() == 1.0


class TestLatencyStats:
    def test_basic_stats(self):
        stats = LatencyStats()
        for x in (10.0, 20.0, 30.0):
            stats.record(x)
        assert stats.count == 3
        assert stats.mean == 20.0
        assert stats.minimum == 10.0
        assert stats.maximum == 30.0
        assert stats.stdev == pytest.approx(10.0)

    def test_percentiles(self):
        stats = LatencyStats()
        for x in range(1, 101):
            stats.record(float(x))
        assert stats.percentile(50) == 50.0
        assert stats.percentile(99) == 99.0
        assert stats.percentile(100) == 100.0
        with pytest.raises(ValueError):
            stats.percentile(101)

    def test_empty_stats_are_zero(self):
        stats = LatencyStats()
        assert stats.mean == 0.0
        assert stats.stdev == 0.0
        assert stats.percentile(50) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            LatencyStats().record(-1.0)

    def test_reset(self):
        stats = LatencyStats()
        stats.record(5.0)
        stats.reset()
        assert stats.count == 0

    def test_percentile_cache_invalidated_by_new_samples(self):
        stats = LatencyStats()
        for x in (30.0, 10.0, 20.0):
            stats.record(x)
        assert stats.percentile(100) == 30.0  # builds the sorted cache
        stats.record(40.0)
        assert stats.percentile(100) == 40.0  # cache must refresh
        assert stats.percentile(50) == 20.0

    def test_summary_keys(self):
        stats = LatencyStats()
        for x in range(1, 101):
            stats.record(float(x))
        summary = stats.summary()
        hist = summary.pop("hist")
        assert summary == {"count": 100, "mean": 50.5, "p50": 50.0,
                           "p95": 95.0, "p99": 99.0, "max": 100.0}
        assert sum(hist.values()) == 100

    def test_histogram_bucketing(self):
        stats = LatencyStats()
        stats.record(0.5)            # below the first edge
        stats.record(1.0)            # exactly on an edge: le_1
        stats.record(3.0)            # between 2 and 4: le_4
        stats.record(float(1 << 21))  # beyond the last edge: overflow
        assert stats.histogram() == {"le_1": 2, "le_4": 1, "inf": 1}

    def test_histogram_counts_full_population_in_reservoir_mode(self):
        stats = LatencyStats(reservoir=50)
        for x in range(1000):
            stats.record(float(x))
        assert len(stats.samples) == 50
        # The histogram keeps counting past the reservoir bound.
        assert sum(stats.histogram().values()) == 1000

    def test_histogram_reset(self):
        stats = LatencyStats()
        stats.record(5.0)
        stats.reset()
        assert stats.histogram() == {}

    def test_reservoir_bounds_retained_samples(self):
        stats = LatencyStats(reservoir=50)
        for x in range(1000):
            stats.record(float(x))
        assert len(stats.samples) == 50
        # Running aggregates still cover every sample.
        assert stats.count == 1000
        assert stats.mean == pytest.approx(499.5)
        assert stats.maximum == 999.0
        # Percentiles come from a uniform subsample: roughly central.
        assert 250.0 < stats.percentile(50) < 750.0

    def test_reservoir_is_deterministic(self):
        def fill():
            stats = LatencyStats(reservoir=10)
            for x in range(500):
                stats.record(float(x))
            return list(stats.samples)

        assert fill() == fill()

    def test_reservoir_reset_reseeds(self):
        stats = LatencyStats(reservoir=10)
        for x in range(500):
            stats.record(float(x))
        first = list(stats.samples)
        stats.reset()
        for x in range(500):
            stats.record(float(x))
        assert stats.samples == first

    def test_invalid_reservoir_rejected(self):
        with pytest.raises(ValueError):
            LatencyStats(reservoir=0)


class TestThroughputMeter:
    def test_rate_in_window(self):
        sim = Simulator()
        meter = ThroughputMeter(sim)

        def proc():
            yield sim.timeout(10.0)
            meter.reset_window()
            meter.add(500.0)
            yield sim.timeout(5.0)

        sim.run_process(proc())
        assert meter.rate() == pytest.approx(100.0)
        assert meter.mb_per_s() == pytest.approx(100.0)
        assert meter.per_second() == pytest.approx(100.0 * 1e6)
        assert meter.window_total() == 500.0

    def test_zero_window(self):
        meter = ThroughputMeter(Simulator())
        meter.add(10.0)
        assert meter.rate() == 0.0

    def test_window_reset_at_nonzero_time_is_zero(self):
        sim = Simulator()
        meter = ThroughputMeter(sim)

        def proc():
            yield sim.timeout(10.0)
            meter.add(500.0)
            meter.reset_window()

        sim.run_process(proc())
        assert meter.rate() == 0.0
        assert meter.per_second() == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ThroughputMeter(Simulator()).add(-1.0)


class TestCounter:
    def test_incr_get_ratio(self):
        counter = Counter()
        counter.incr("hits", 3)
        counter.incr("misses")
        assert counter.get("hits") == 3
        assert counter.get("unknown") == 0
        assert counter.ratio("hits", "misses") == 3.0
        assert counter.ratio("hits", "nothing") is None
        assert counter.as_dict() == {"hits": 3, "misses": 1}

    def test_reset(self):
        counter = Counter()
        counter.incr("x")
        counter.reset()
        assert counter.get("x") == 0


class TestRandomStreams:
    def test_streams_are_deterministic(self):
        a = RandomStreams(7).stream("foo")
        b = RandomStreams(7).stream("foo")
        assert [a.random() for _ in range(5)] == \
            [b.random() for _ in range(5)]

    def test_streams_are_independent(self):
        streams = RandomStreams(7)
        foo = streams.stream("foo")
        first = foo.random()
        # Drawing from another stream must not perturb 'foo'.
        streams2 = RandomStreams(7)
        streams2.stream("bar").random()
        assert streams2.stream("foo").random() == first

    def test_different_seeds_differ(self):
        assert RandomStreams(1).stream("s").random() != \
            RandomStreams(2).stream("s").random()

    def test_same_stream_object_returned(self):
        streams = RandomStreams(7)
        assert streams.stream("x") is streams.stream("x")
