"""End-to-end integrity tests: silent corruption vs checksums on real
clusters.

Each test drives a full cluster (client, transports, server, cache,
disk) under a seeded silent-corruption injector and asserts the contract
the integrity layer exists to provide: with checksums off the corruption
reaches the application; with checksums on every consumed corrupt block
is detected — at the server for RPC reads, at the client for ORDMA reads
— and repaired where a good copy exists.
"""

import pytest

from repro.bench.scrub import run_point, run_repair_point
from repro.cluster import Cluster
from repro.faults import Injector
from repro.integrity import IntegrityError, is_corrupt
from repro.params import KB, default_params

BLOCK = 4 * KB
BLOCKS = 24


def integrity_params(enabled, seed=11, **overrides):
    p = default_params().copy(seed=seed)
    p.integrity.enabled = enabled
    for key, value in overrides.items():
        setattr(p.integrity, key, value)
    return p


def make_cluster(system, params, blocks=BLOCKS, cache_blocks=None):
    """A cluster whose server cache holds half the file, so a scan
    misses — every read pays the disk fill where bit rot strikes."""
    client_kwargs = ({"cache_blocks": 8, "rpc_read_mode": "direct"}
                     if system in ("dafs", "odafs") else {})
    c = Cluster(params, system=system, block_size=BLOCK,
                server_cache_blocks=cache_blocks if cache_blocks
                else max(8, blocks // 2),
                client_kwargs=client_kwargs)
    c.create_file("f", blocks * BLOCK)
    return c


def scan(cluster, blocks=BLOCKS, passes=2):
    """Read the whole file ``passes`` times, tallying outcomes."""
    client = cluster.clients[0]
    state = {"ok": 0, "failed": 0, "corrupt": 0, "errors": []}

    def workload():
        yield from client.open("f")
        for _ in range(passes):
            for i in range(blocks):
                try:
                    data = yield from client.read("f", i * BLOCK, BLOCK)
                except IntegrityError as exc:
                    state["failed"] += 1
                    state["errors"].append(str(exc))
                else:
                    state["ok"] += 1
                    if is_corrupt(data):
                        state["corrupt"] += 1

    cluster.sim.run_process(workload())
    return state


class TestDiskBitrot:
    def test_corruption_escapes_without_checksums(self):
        c = make_cluster("nfs", integrity_params(False))
        inj = Injector(c)
        inj.disk_bitrot(0.3)
        inj.arm()
        state = scan(c)
        assert inj.stats.get("disk.bitrot") > 0
        # No checksums: rotten fills flow to the reader unnoticed.
        assert state["corrupt"] > 0
        assert state["failed"] == 0
        assert c.server.integrity.get("detected") == 0

    def test_checksums_detect_and_repair_every_consumed_block(self):
        c = make_cluster("nfs", integrity_params(True))
        inj = Injector(c)
        inj.disk_bitrot(0.3)
        inj.arm()
        state = scan(c)
        assert inj.stats.get("disk.bitrot") > 0
        # Nothing corrupt reaches the application, ever.
        assert state["corrupt"] == 0
        assert c.server.integrity.get("detected") > 0
        assert c.server.integrity.get("repaired") > 0
        # Repairs have a measured latency distribution.
        assert c.server.repair_latency.count == \
            c.server.integrity.get("repaired")

    def test_exhausted_repair_surfaces_typed_eintegrity(self):
        # Every fill rots (forced trap), one re-read allowed: the ladder
        # exhausts, the block quarantines, and the client sees a typed
        # IntegrityError — not silent corruption, not a generic RPCError.
        c = make_cluster("nfs", integrity_params(True, verify_retries=1))
        inj = Injector(c)
        inj.arm()
        inj.disk_faults(0).bitrot_next = 1 << 30
        state = scan(c, passes=1)
        assert state["corrupt"] == 0
        assert state["failed"] > 0
        assert all(msg.startswith("EINTEGRITY") for msg in state["errors"])
        assert c.server.integrity.get("quarantined") == state["failed"]
        assert c.server.stats.get("reads_failed_integrity") > 0


class TestOrdmaCorruption:
    def test_client_detects_every_corrupt_optimistic_get(self):
        # Whole file resident on the server: RemoteRefs stay valid, so
        # pass 2 serves via optimistic gets — the corrupted path.
        c = make_cluster("odafs", integrity_params(True),
                         cache_blocks=BLOCKS + 8)
        inj = Injector(c)
        inj.ordma_silent_corruption(0.25)
        inj.arm()
        state = scan(c)
        client = c.clients[0]
        injected = inj.stats.get("nic.ordma_corrupt")
        assert injected > 0
        # The server never sees an ORDMA payload — only the client can
        # verify, and it must catch every single corruption.
        assert client.stats.get("integrity_detected") == injected
        assert state["corrupt"] == 0
        assert state["failed"] == 0

    def test_corrupt_gets_escape_without_checksums(self):
        # RemoteRefs carry no checksum when integrity is off, so the
        # client consumes the corrupted payload as clean data.
        c = make_cluster("odafs", integrity_params(False),
                         cache_blocks=BLOCKS + 8)
        inj = Injector(c)
        inj.ordma_silent_corruption(0.25)
        inj.arm()
        state = scan(c)
        assert inj.stats.get("nic.ordma_corrupt") > 0
        assert state["corrupt"] > 0
        assert c.clients[0].stats.get("integrity_detected") == 0


class TestChecksumCost:
    def test_verification_charges_simulated_time(self):
        # Same seed, zero corruption: the checksums-on run is strictly
        # slower — verification is modeled work, not free.
        p = default_params().copy(seed=11)
        off = run_point("nfs", False, 0.0, params=p, blocks=16, passes=2)
        on = run_point("nfs", True, 0.0, params=p, blocks=16, passes=2)
        assert off["corrupt_reads"] == on["corrupt_reads"] == 0
        assert on["sim_us"] > off["sim_us"]
        assert on["throughput_mb_s"] < off["throughput_mb_s"]


class TestScrubber:
    def test_scrubber_repairs_misdirected_blocks_in_idle_time(self):
        misdirects = 4
        p = integrity_params(True, scrub_interval_us=500.0,
                             scrub_blocks_per_pass=16)
        c = make_cluster("nfs", p, cache_blocks=BLOCKS + 8)
        inj = Injector(c)
        inj.arm()
        inj.disk_faults(0).misdirect_next = misdirects
        client = c.clients[0]

        def workload():
            yield from client.open("f")
            for i in range(misdirects):
                yield from client.write("f", i * BLOCK, BLOCK)
            yield c.sim.timeout(30_000.0)
            yield from client.close("f")

        proc = c.sim.process(workload(), name="wl")
        c.server.scrubber.start(stop_on=proc)
        c.sim.run()
        assert proc.triggered  # the daemon exits; the run terminates
        s = c.server.integrity
        assert inj.stats.get("disk.misdirect") == misdirects
        assert s.get("scrub.detected") == misdirects
        assert s.get("scrub.repaired") == misdirects
        assert s.get("scrub.quarantined") == 0
        assert s.get("scrub.passes") >= 1

    def test_scrubber_is_not_started_without_interval(self):
        c = make_cluster("nfs", integrity_params(True))
        assert c.server.scrubber is None
        c2 = make_cluster("nfs", integrity_params(False))
        assert c2.server.scrubber is None and c2.server.checksums is None


class TestShardedReadRepair:
    def test_replica_repairs_rotten_shard_without_down_marking(self):
        point = run_repair_point(params=default_params().copy(seed=11))
        assert point["completed"]
        # Pass 1: every read of a server-0 block detects, quarantines,
        # reroutes to the replica and writes the good copy back...
        assert point["integrity_errors"] > 0
        assert point["read_repairs"] == point["integrity_errors"]
        assert point["server0_quarantined"] > 0
        # ...without ever treating the alive-but-rotten shard as down.
        assert point["down_marks"] == 0
        # And nothing corrupt ever reached the application.
        assert point["corrupt_reads"] == 0
        assert point["ops_failed"] == 0

    def test_without_replicas_the_error_is_typed(self):
        # No replica chain to fall back on: the router surfaces the
        # shard's EINTEGRITY instead of masking it as a shard-down.
        from repro.nas.shard import ShardedCluster
        p = integrity_params(True, verify_retries=1)
        p.shard.n_servers = 2
        p.shard.placement = "stripe"
        p.shard.stripe_blocks = 1
        p.shard.replicas = 0
        c = ShardedCluster(p, system="nfs", n_clients=1, block_size=BLOCK,
                           server_cache_blocks=16)
        c.create_file("rot", 8 * BLOCK, warm=False)
        inj = Injector(c)
        inj.arm()
        inj.disk_faults(0).bitrot_next = 1 << 30
        router = c.clients[0]
        state = {"typed": 0, "ok": 0}

        def workload():
            yield from router.open("rot")
            for i in range(8):
                try:
                    yield from router.read("rot", i * BLOCK, BLOCK)
                except IntegrityError as exc:
                    assert str(exc).startswith("EINTEGRITY shard")
                    state["typed"] += 1
                else:
                    state["ok"] += 1

        c.sim.run_process(workload())
        # Half the stripe lives on the rotten server; those reads fail
        # typed, the rest serve clean, and nobody gets down-marked.
        assert state["typed"] > 0 and state["ok"] > 0
        assert router.stats.get("down_marks") == 0
