"""Unit tests for the checksum model and the server-side checksum store."""

import pytest

from repro.fs.files import FileSystem
from repro.integrity import (CORRUPT_MARKER, ChecksumStore, IntegrityError,
                             block_checksum, corrupt_payload,
                             corruption_mode, is_corrupt)
from repro.params import KB


class TestBlockChecksum:
    def test_checksum_is_deterministic(self):
        data = ("f", 3, 1)
        assert block_checksum(data) == block_checksum(("f", 3, 1))

    def test_checksum_distinguishes_contents(self):
        assert block_checksum(("f", 3, 1)) != block_checksum(("f", 3, 2))
        assert block_checksum(("f", 3, 1)) != block_checksum(("g", 3, 1))

    def test_corruption_changes_the_checksum(self):
        data = ("f", 0, 1)
        assert block_checksum(corrupt_payload(data, "bitrot")) != \
            block_checksum(data)

    def test_checksum_survives_interpreter_hash_salting(self):
        # crc32 of repr, not hash(): the value must be a pure function of
        # the content so --jobs workers agree with the serial run.
        import subprocess
        import sys
        out = subprocess.run(
            [sys.executable, "-c",
             "from repro.integrity import block_checksum;"
             "print(block_checksum(('f', 3, 1)))"],
            capture_output=True, text=True,
            env={"PYTHONPATH": "src", "PYTHONHASHSEED": "12345"})
        assert int(out.stdout) == block_checksum(("f", 3, 1))


class TestCorruptPayload:
    def test_marker_and_mode(self):
        wrapped = corrupt_payload(("f", 0, 1), "misdirect")
        assert wrapped[0] == CORRUPT_MARKER
        assert is_corrupt(wrapped)
        assert corruption_mode(wrapped) == "misdirect"

    def test_clean_payloads_are_not_corrupt(self):
        assert not is_corrupt(("f", 0, 1))
        assert corruption_mode(("f", 0, 1)) == ""
        assert not is_corrupt(None)

    def test_is_corrupt_recurses_into_multi_block_payloads(self):
        # A multi-block read returns a tuple of per-block contents; the
        # campaign oracle must see one rotten block inside it.
        blocks = (("f", 0, 1), corrupt_payload(("f", 1, 1), "bitrot"),
                  ("f", 2, 1))
        assert is_corrupt(blocks)
        assert not is_corrupt(tuple(("f", i, 1) for i in range(3)))


class TestChecksumStore:
    def make_fs(self):
        fs = FileSystem(4 * KB)
        fs.create("f", 8 * 4 * KB)
        return fs

    def test_record_and_verify_round_trip(self):
        fs = self.make_fs()
        store = ChecksumStore(fs)
        store.record(("f", 0))
        assert store.verify(("f", 0), fs.block_content("f", 0))

    def test_verify_rejects_corrupted_data(self):
        fs = self.make_fs()
        store = ChecksumStore(fs)
        store.record(("f", 0))
        bad = corrupt_payload(fs.block_content("f", 0), "bitrot")
        assert not store.verify(("f", 0), bad)

    def test_expected_records_lazily_from_truth(self):
        fs = self.make_fs()
        store = ChecksumStore(fs)
        assert store.expected(("f", 2)) == \
            block_checksum(fs.block_content("f", 2))
        assert len(store) == 1

    def test_record_tracks_writes(self):
        fs = self.make_fs()
        store = ChecksumStore(fs)
        store.record(("f", 0))
        before = store.expected(("f", 0))
        fs.write_block("f", 0, now=10.0)
        store.record(("f", 0))
        assert store.expected(("f", 0)) != before
        assert store.verify(("f", 0), fs.block_content("f", 0))

    def test_forget_drops_a_file(self):
        fs = self.make_fs()
        store = ChecksumStore(fs)
        store.record(("f", 0))
        store.record(("f", 1))
        store.forget("f")
        assert len(store) == 0

    def test_integrity_error_is_typed(self):
        with pytest.raises(IntegrityError):
            raise IntegrityError("EINTEGRITY f#0: test")
        assert issubclass(IntegrityError, RuntimeError)
