"""Unit tests for the LRU and Multi-Queue replacement policies."""

import pytest

from repro.cache.lru import LRUPolicy
from repro.cache.mq import MQPolicy


@pytest.fixture(params=["lru", "mq"])
def policy_factory(request):
    if request.param == "lru":
        return LRUPolicy
    return MQPolicy


class TestCommonPolicyBehaviour:
    def test_admit_under_capacity_evicts_nothing(self, policy_factory):
        policy = policy_factory(4)
        assert policy.admit("a") is None
        assert policy.admit("b") is None
        assert len(policy) == 2
        assert "a" in policy and "b" in policy

    def test_admit_over_capacity_evicts_one(self, policy_factory):
        policy = policy_factory(2)
        policy.admit("a")
        policy.admit("b")
        victim = policy.admit("c")
        assert victim in ("a", "b")
        assert len(policy) == 2
        assert victim not in policy

    def test_readmit_resident_key_is_noop(self, policy_factory):
        policy = policy_factory(2)
        policy.admit("a")
        policy.admit("b")
        assert policy.admit("a") is None
        assert len(policy) == 2

    def test_touch_missing_raises(self, policy_factory):
        policy = policy_factory(2)
        with pytest.raises(KeyError):
            policy.touch("ghost")

    def test_remove_is_idempotent(self, policy_factory):
        policy = policy_factory(2)
        policy.admit("a")
        policy.remove("a")
        policy.remove("a")
        assert "a" not in policy
        assert len(policy) == 0

    def test_capacity_validation(self, policy_factory):
        with pytest.raises(ValueError):
            policy_factory(0)

    def test_iteration_yields_all_members(self, policy_factory):
        policy = policy_factory(8)
        for key in "abcdef":
            policy.admit(key)
        assert sorted(policy) == list("abcdef")


class TestLRUOrdering:
    def test_evicts_least_recent(self):
        policy = LRUPolicy(3)
        for key in "abc":
            policy.admit(key)
        policy.touch("a")
        assert policy.admit("d") == "b"

    def test_sequential_scan_evicts_in_order(self):
        policy = LRUPolicy(3)
        victims = [policy.admit(i) for i in range(6)]
        assert victims == [None, None, None, 0, 1, 2]


class TestMQBehaviour:
    def test_frequency_protects_hot_blocks_from_scan(self):
        """A frequently accessed block must survive a one-touch scan that
        would evict it under LRU."""
        mq = MQPolicy(4, life_time=100)
        mq.admit("hot")
        for _ in range(10):
            mq.touch("hot")
        victims = []
        for i in range(8):  # scan of cold one-touch keys
            victim = mq.admit(f"cold{i}")
            if victim:
                victims.append(victim)
        assert "hot" in mq
        assert all(v != "hot" for v in victims)

        lru = LRUPolicy(4)
        lru.admit("hot")
        for _ in range(10):
            lru.touch("hot")
        for i in range(8):
            lru.admit(f"cold{i}")
        assert "hot" not in lru  # LRU loses it

    def test_expiration_demotes_stale_blocks(self):
        mq = MQPolicy(4, life_time=2)
        mq.admit("stale")
        for _ in range(8):
            mq.touch("stale")  # high queue
        # Lots of activity on other keys expires "stale" downwards.
        for i in range(30):
            mq.admit(f"k{i % 3}")
        entry = mq._entries["stale"]
        assert entry.queue < mq._queue_for(entry.freq)

    def test_history_restores_frequency(self):
        mq = MQPolicy(1, life_time=100, history_size=16)
        mq.admit("x")
        for _ in range(7):
            mq.touch("x")  # freq 8 -> queue 3
        assert mq.admit("a") == "x"  # x evicted into history (Qout)
        assert "x" not in mq
        mq.admit("x")  # returns: frequency restored from Qout
        assert mq._entries["x"].freq == 9
        assert mq._entries["x"].queue == mq._queue_for(9)

    def test_history_bounded(self):
        mq = MQPolicy(2, history_size=3)
        for i in range(10):
            mq.admit(i)
        assert len(mq._history) <= 3

    def test_queue_index_formula(self):
        mq = MQPolicy(4, num_queues=4)
        assert mq._queue_for(1) == 0
        assert mq._queue_for(2) == 1
        assert mq._queue_for(3) == 1
        assert mq._queue_for(4) == 2
        assert mq._queue_for(100) == 3  # capped at num_queues - 1

    def test_invalid_num_queues(self):
        with pytest.raises(ValueError):
            MQPolicy(4, num_queues=0)
