"""Unit tests for the client block cache."""

import pytest

from repro.cache.block_cache import ClientFileCache
from repro.hw import Host
from repro.net import Switch
from repro.params import default_params
from repro.sim import Simulator


@pytest.fixture
def host():
    sim = Simulator()
    params = default_params()
    switch = Switch(sim, params.net)
    return Host(sim, params, switch, "h")


def make_cache(host, blocks=4, register=True):
    return ClientFileCache(host, 4096, blocks, register=register)


def test_probe_miss_then_insert_then_hit(host):
    cache = make_cache(host)
    assert cache.probe(("f", 0)) is None
    cache.insert(("f", 0), "data0")
    block = cache.probe(("f", 0))
    assert block.data == "data0"
    assert cache.stats.get("hits") == 1
    assert cache.stats.get("misses") == 1


def test_eviction_at_capacity(host):
    cache = make_cache(host, blocks=2)
    cache.insert(("f", 0), "d0")
    cache.insert(("f", 1), "d1")
    cache.insert(("f", 2), "d2")
    assert len(cache) == 2
    assert cache.probe(("f", 0)) is None  # LRU victim
    assert cache.stats.get("evictions") == 1


def test_buffers_are_pooled_and_reused(host):
    cache = make_cache(host, blocks=2)
    b0 = cache.insert(("f", 0), "d0").buffer
    cache.insert(("f", 1), "d1")
    b2 = cache.insert(("f", 2), "d2").buffer  # reuses f0's frame
    assert b2 is b0


def test_pool_registered_once(host):
    cache = make_cache(host, blocks=3, register=True)
    assert host.nic.tpt.segment_count() == 3
    # Churn does not register anything new (registration caching).
    for i in range(10):
        cache.insert(("f", i), f"d{i}")
    assert host.nic.tpt.segment_count() == 3


def test_claim_reserves_frame_before_fill(host):
    cache = make_cache(host)
    block = cache.claim(("f", 7))
    assert block.data is None
    assert cache.peek(("f", 7)) is block
    cache.fill(block, "arrived")
    assert cache.probe(("f", 7)).data == "arrived"


def test_claim_existing_returns_same_block(host):
    cache = make_cache(host)
    first = cache.insert(("f", 0), "d")
    again = cache.claim(("f", 0))
    assert again is first


def test_invalidate_frees_frame(host):
    cache = make_cache(host, blocks=1)
    cache.insert(("f", 0), "d")
    assert cache.invalidate(("f", 0))
    assert not cache.invalidate(("f", 0))
    assert len(cache) == 0
    cache.insert(("f", 1), "d1")  # frame available again
    assert cache.probe(("f", 1)).data == "d1"


def test_peek_does_not_touch_stats(host):
    cache = make_cache(host)
    cache.insert(("f", 0), "d")
    cache.peek(("f", 0))
    cache.peek(("f", 9))
    assert cache.stats.get("hits") == 0
    assert cache.stats.get("misses") == 0


def test_hit_ratio(host):
    cache = make_cache(host)
    cache.insert(("f", 0), "d")
    cache.probe(("f", 0))
    cache.probe(("f", 1))
    assert cache.hit_ratio() == pytest.approx(0.5)


def test_validation(host):
    with pytest.raises(ValueError):
        make_cache(host, blocks=0)
    with pytest.raises(ValueError):
        ClientFileCache(host, 0, 4)
