"""Unit tests for the workload drivers."""

import pytest

from repro.cluster import Cluster
from repro.params import KB, default_params
from repro.workloads.bdb import BerkeleyDBJoinWorkload
from repro.workloads.postmark import PostMarkWorkload
from repro.workloads.sequential import SequentialReadWorkload
from repro.workloads.smallio import MultiClientReadWorkload


class TestSequential:
    def test_reports_sane_steady_state(self):
        cluster = Cluster(system="dafs", block_size=64 * KB,
                          server_cache_blocks=72,
                          client_kwargs={"cache_blocks": 0})
        cluster.create_file("f", 64 * 64 * KB)
        out = SequentialReadWorkload(cluster, "f", 64 * 64 * KB,
                                     64 * KB, window=8).run()
        assert 100.0 < out["throughput_mb_s"] < 250.0
        assert 0.0 <= out["client_cpu"] <= 1.0
        assert out["blocks"] == 64

    def test_misaligned_file_rejected(self):
        cluster = Cluster(system="dafs", block_size=4 * KB)
        with pytest.raises(ValueError):
            SequentialReadWorkload(cluster, "f", 10_000, 4096)

    def test_window_one_is_fully_synchronous(self):
        cluster = Cluster(system="dafs", block_size=4 * KB,
                          server_cache_blocks=40,
                          client_kwargs={"cache_blocks": 0})
        cluster.create_file("f", 32 * 4 * KB)
        out = SequentialReadWorkload(cluster, "f", 32 * 4 * KB, 4 * KB,
                                     window=1).run()
        # Synchronous 4 KB reads at ~144 us each => ~28 MB/s.
        assert out["throughput_mb_s"] < 40.0


class TestBerkeleyDB:
    def test_zero_copy_vs_full_copy(self):
        params = default_params()
        io = BerkeleyDBJoinWorkload.IO_BYTES

        def run(copy_bytes):
            cluster = Cluster(params.copy(), system="dafs", block_size=io,
                              server_cache_blocks=40,
                              client_kwargs={"cache_blocks": 0})
            cluster.create_file("db", 32 * io)
            return BerkeleyDBJoinWorkload(cluster, "db", 32,
                                          copy_bytes).run()

        light = run(1)
        heavy = run(BerkeleyDBJoinWorkload.RECORD_BYTES)
        assert heavy["throughput_mb_s"] < light["throughput_mb_s"]
        assert heavy["client_cpu"] > light["client_cpu"]

    def test_copy_bytes_validated(self):
        cluster = Cluster(system="dafs",
                          block_size=BerkeleyDBJoinWorkload.IO_BYTES)
        with pytest.raises(ValueError):
            BerkeleyDBJoinWorkload(cluster, "db", 8, copy_bytes=-1)
        with pytest.raises(ValueError):
            BerkeleyDBJoinWorkload(cluster, "db", 8,
                                   copy_bytes=61 * 1024 + 1)


class TestPostMark:
    def test_read_only_config_counts(self):
        cluster = Cluster(system="dafs", block_size=4 * KB,
                          server_cache_blocks=80,
                          client_kwargs={"cache_blocks": 16})
        workload = PostMarkWorkload(cluster, n_files=64, transactions=200)
        workload.setup()
        out = workload.run()
        assert out["reads"] == 200
        assert out["writes"] == 0
        assert out["creates_deletes"] == 0
        assert out["txns_per_s"] > 0

    def test_mixed_workload_has_writes_and_creates(self):
        cluster = Cluster(system="dafs", block_size=4 * KB,
                          server_cache_blocks=80,
                          client_kwargs={"cache_blocks": 16})
        workload = PostMarkWorkload(cluster, n_files=64, transactions=300,
                                    read_ratio=0.5,
                                    create_delete_ratio=0.1)
        workload.setup()
        out = workload.run()
        assert out["writes"] > 30
        assert out["creates_deletes"] > 5
        assert out["reads"] + out["writes"] + out["creates_deletes"] == 300

    def test_hit_ratio_tracks_cache_size(self):
        params = default_params()

        def run(cache_blocks):
            cluster = Cluster(params.copy(), system="dafs",
                              block_size=4 * KB, server_cache_blocks=140,
                              client_kwargs={"cache_blocks": cache_blocks})
            workload = PostMarkWorkload(cluster, n_files=128,
                                        transactions=800)
            workload.setup()
            return workload.run()["client_cache_hit_ratio"]

        small = run(32)   # 25% of the file set
        large = run(96)   # 75%
        assert small == pytest.approx(0.25, abs=0.08)
        assert large == pytest.approx(0.75, abs=0.08)

    def test_parameter_validation(self):
        cluster = Cluster(system="dafs", block_size=4 * KB)
        with pytest.raises(ValueError):
            PostMarkWorkload(cluster, n_files=8, read_ratio=1.5)
        with pytest.raises(ValueError):
            PostMarkWorkload(cluster, n_files=8, create_delete_ratio=1.0)

    def test_deterministic_given_seed(self):
        params = default_params()

        def run():
            cluster = Cluster(params.copy(), system="odafs",
                              block_size=4 * KB, server_cache_blocks=80,
                              client_kwargs={"cache_blocks": 16})
            workload = PostMarkWorkload(cluster, n_files=64,
                                        transactions=300)
            workload.setup()
            return workload.run()["txns_per_s"]

        assert run() == run()


class TestMultiClient:
    def test_two_clients_share_the_server(self):
        cluster = Cluster(system="odafs", n_clients=2, block_size=4 * KB,
                          server_cache_blocks=140,
                          client_kwargs={"cache_blocks": 16})
        cluster.create_file("big", 128 * 4 * KB)
        out = MultiClientReadWorkload(cluster, "big", 128 * 4 * KB,
                                      app_block_size=32 * KB).run()
        assert out["throughput_mb_s"] > 150.0
        assert len(out["client_cpus"]) == 2

    def test_block_alignment_validated(self):
        cluster = Cluster(system="dafs", n_clients=2, block_size=4 * KB)
        with pytest.raises(ValueError):
            MultiClientReadWorkload(cluster, "big", 100_000,
                                    app_block_size=32 * KB)


class TestSFS:
    def test_mix_roughly_respected(self):
        from repro.workloads.sfs import SFSWorkload
        cluster = Cluster(system="nfs", block_size=4 * KB,
                          server_cache_blocks=300)
        workload = SFSWorkload(cluster, n_files=64, ops_per_client=600)
        workload.setup()
        out = workload.run()
        counts = out["op_counts"]
        total = sum(counts.values())
        assert total == 600
        assert counts["read"] == pytest.approx(0.32 * total, rel=0.25)
        assert counts["lookup"] == pytest.approx(0.27 * total, rel=0.25)
        assert out["ops_per_s"] > 0

    def test_multi_client_increases_aggregate_ops(self):
        from repro.workloads.sfs import SFSWorkload
        from repro.params import default_params
        params = default_params()

        def run(n):
            cluster = Cluster(params.copy(), system="nfs",
                              block_size=4 * KB, server_cache_blocks=300,
                              n_clients=n)
            workload = SFSWorkload(cluster, n_files=64, ops_per_client=300)
            workload.setup()
            return workload.run()["ops_per_s"]

        assert run(2) > 1.3 * run(1)

    def test_bad_mix_rejected(self):
        from repro.workloads.sfs import SFSWorkload
        cluster = Cluster(system="nfs", block_size=4 * KB)
        with pytest.raises(ValueError):
            SFSWorkload(cluster, mix=[("read", 0.5)])
