"""Integration tests for the NIC: GM messaging, RDMA, ORDMA faults."""

import pytest

from repro.hw import Host, NotifyMode, RemoteAccessFault
from repro.hw.tpt import FaultReason
from repro.net import Switch
from repro.params import default_params
from repro.sim import Simulator


@pytest.fixture
def rig():
    sim = Simulator()
    params = default_params()
    switch = Switch(sim, params.net)
    a = Host(sim, params, switch, "hostA")
    b = Host(sim, params, switch, "hostB")
    return sim, params, a, b


class TestGMMessaging:
    def test_send_lands_in_posted_buffer(self, rig):
        sim, params, a, b = rig
        cq = b.nic.open_port(7, mode=NotifyMode.POLL)
        rbuf = b.mem.alloc(8192, name="recv")
        b.nic.post_receive(7, rbuf)

        def sender():
            yield from a.nic.gm_send("hostB", 7, 4096, data="payload")

        def receiver():
            comp = yield from cq.get()
            return comp.data, rbuf.data

        sim.process(sender())
        proc = sim.process(receiver())
        sim.run()
        assert proc.value == ("payload", "payload")

    def test_one_byte_roundtrip_near_23us(self, rig):
        """Table 2 anchor: GM 1-byte RTT is ~23 us with polling."""
        sim, params, a, b = rig
        cq_a = a.nic.open_port(1, mode=NotifyMode.POLL)
        cq_b = b.nic.open_port(1, mode=NotifyMode.POLL)

        def pong():
            buf = b.mem.alloc(64)
            b.nic.post_receive(1, buf)
            yield from cq_b.get()
            yield from b.nic.gm_send("hostA", 1, 1)

        def ping():
            buf = a.mem.alloc(64)
            a.nic.post_receive(1, buf)
            start = sim.now
            yield from a.nic.gm_send("hostB", 1, 1)
            yield from cq_a.get()
            return sim.now - start

        sim.process(pong())
        proc = sim.process(ping())
        sim.run()
        assert 15.0 < proc.value < 32.0

    def test_no_posted_receive_drops(self, rig):
        sim, params, a, b = rig
        b.nic.open_port(3, mode=NotifyMode.POLL)

        def sender():
            yield from a.nic.gm_send("hostB", 3, 128, data="dropped")

        sim.process(sender())
        sim.run()
        assert b.nic.stats.get("gm_recv_drop") == 1

    def test_unopened_port_is_error(self, rig):
        sim, params, a, b = rig

        def sender():
            yield from a.nic.gm_send("hostB", 99, 128)

        sim.process(sender())
        with pytest.raises(Exception):
            sim.run()

    def test_multi_fragment_message_reassembles(self, rig):
        sim, params, a, b = rig
        cq = b.nic.open_port(5, mode=NotifyMode.POLL)
        rbuf = b.mem.alloc(64 * 1024)
        b.nic.post_receive(5, rbuf)

        def sender():
            yield from a.nic.gm_send("hostB", 5, 64 * 1024, data="big")

        def receiver():
            comp = yield from cq.get()
            return comp.message.size

        sim.process(sender())
        proc = sim.process(receiver())
        sim.run()
        assert proc.value == 64 * 1024
        # 64 KB fragments at the 4 KB GM MTU
        assert b.nic.stats.get("gm_recv") == 1

    def test_blocking_mode_charges_interrupt_and_wakeup(self, rig):
        sim, params, a, b = rig
        cq = b.nic.open_port(2, mode=NotifyMode.BLOCK)
        rbuf = b.mem.alloc(4096)
        b.nic.post_receive(2, rbuf)

        def sender():
            yield from a.nic.gm_send("hostB", 2, 64)

        def receiver():
            yield from cq.get()
            return b.cpu.busy.by_category

        sim.process(sender())
        proc = sim.process(receiver())
        sim.run()
        categories = proc.value
        assert categories.get("interrupt", 0) > 0
        assert categories.get("sched", 0) > 0


class TestRDMA:
    def test_put_moves_data(self, rig):
        sim, params, a, b = rig
        target = b.mem.alloc(4096, name="target")
        seg = b.nic.tpt.register(target)

        def putter():
            yield from a.nic.rdma_put("hostB", seg.base, 4096, data="written",
                                      capability=seg.capability)
            return target.data

        assert sim.run_process(putter()) == "written"

    def test_get_fetches_data(self, rig):
        sim, params, a, b = rig
        source = b.mem.alloc(4096, name="source")
        source.data = "server-block"
        seg = b.nic.tpt.register(source)
        local = a.mem.alloc(4096, name="local")

        def getter():
            data = yield from a.nic.rdma_get(
                "hostB", seg.base, 4096, local_buffer=local,
                capability=seg.capability)
            return data, local.data

        assert sim.run_process(getter()) == ("server-block", "server-block")

    def test_ordma_get_response_time_near_92us(self, rig):
        """Table 3 anchor: 4 KB ORDMA read is ~92 us."""
        sim, params, a, b = rig
        source = b.mem.alloc(4096)
        source.data = "block"
        seg = b.nic.tpt.register(source, pin=False)
        local = a.mem.alloc(4096)

        def getter():
            # Warm the NIC TLB as the paper does.
            yield from a.nic.rdma_get("hostB", seg.base, 4096, local,
                                      capability=seg.capability,
                                      optimistic=True)
            start = sim.now
            yield from a.nic.rdma_get("hostB", seg.base, 4096, local,
                                      capability=seg.capability,
                                      optimistic=True)
            return sim.now - start

        elapsed = sim.run_process(getter())
        assert 60.0 < elapsed < 125.0

    def test_optimistic_get_unknown_address_faults(self, rig):
        sim, params, a, b = rig
        local = a.mem.alloc(4096)

        def getter():
            try:
                yield from a.nic.rdma_get("hostB", 0xDEAD0000, 4096, local,
                                          optimistic=True)
            except RemoteAccessFault as fault:
                return fault.reason

        assert sim.run_process(getter()) is FaultReason.INVALID_TRANSLATION

    def test_optimistic_get_bad_capability_faults(self, rig):
        sim, params, a, b = rig
        source = b.mem.alloc(4096)
        seg = b.nic.tpt.register(source, pin=False)
        local = a.mem.alloc(4096)

        def getter():
            try:
                yield from a.nic.rdma_get("hostB", seg.base, 4096, local,
                                          capability=b"forged-token-123",
                                          optimistic=True)
            except RemoteAccessFault as fault:
                return fault.reason

        assert sim.run_process(getter()) is FaultReason.BAD_CAPABILITY

    def test_optimistic_get_nonresident_page_faults(self, rig):
        sim, params, a, b = rig
        source = b.mem.alloc(4096)
        seg = b.nic.tpt.register(source, pin=False)
        source.pages[0].evict()
        local = a.mem.alloc(4096)

        def getter():
            try:
                yield from a.nic.rdma_get("hostB", seg.base, 4096, local,
                                          capability=seg.capability,
                                          optimistic=True)
            except RemoteAccessFault as fault:
                return fault.reason

        assert sim.run_process(getter()) is FaultReason.NOT_RESIDENT

    def test_optimistic_put_faults_and_data_untouched(self, rig):
        sim, params, a, b = rig
        target = b.mem.alloc(4096)
        target.data = "original"
        seg = b.nic.tpt.register(target, pin=False)
        b.nic.tpt.revoke(seg)

        def putter():
            try:
                yield from a.nic.rdma_put("hostB", seg.base, 4096,
                                          data="overwrite",
                                          capability=seg.capability,
                                          optimistic=True)
            except RemoteAccessFault as fault:
                return fault.reason, target.data

        reason, data = sim.run_process(putter())
        assert reason in (FaultReason.REVOKED, FaultReason.INVALID_TRANSLATION)
        assert data == "original"

    def test_tlb_loading_pins_target_pages(self, rig):
        sim, params, a, b = rig
        source = b.mem.alloc(4096)
        seg = b.nic.tpt.register(source, pin=False)
        local = a.mem.alloc(4096)

        def getter():
            yield from a.nic.rdma_get("hostB", seg.base, 4096, local,
                                      capability=seg.capability,
                                      optimistic=True)

        sim.run_process(getter())
        assert source.pages[0].nic_loaded
        assert source.pages[0].pinned

    def test_get_concurrency_pipelines(self, rig):
        """Gets must pipeline at the target: N concurrent gets take far
        less than N times one get (the get turnaround is latency, not
        occupancy)."""
        sim, params, a, b = rig
        source = b.mem.alloc(64 * 1024)
        source.data = "blk"
        seg = b.nic.tpt.register(source)
        n = 8

        def one_get():
            local = a.mem.alloc(4096)
            yield from a.nic.rdma_get("hostB", seg.base, 4096, local,
                                      capability=seg.capability)

        def serial():
            for _ in range(n):
                yield from one_get()
            return sim.now

        sim_serial = Simulator()
        # Rebuild a rig on a fresh simulator for the serial measurement.
        params2 = default_params()
        switch2 = Switch(sim_serial, params2.net)
        a2 = Host(sim_serial, params2, switch2, "hostA")
        b2 = Host(sim_serial, params2, switch2, "hostB")
        source2 = b2.mem.alloc(64 * 1024)
        seg2 = b2.nic.tpt.register(source2)

        def one_get2():
            local = a2.mem.alloc(4096)
            yield from a2.nic.rdma_get("hostA" and "hostB", seg2.base, 4096,
                                       local, capability=seg2.capability)

        def serial2():
            for _ in range(n):
                yield from one_get2()
            return sim_serial.now

        serial_time = sim_serial.run_process(serial2())

        def concurrent():
            procs = [sim.process(one_get()) for _ in range(n)]
            yield sim.all_of(procs)
            return sim.now

        concurrent_time = sim.run_process(concurrent())
        assert concurrent_time < 0.6 * serial_time
