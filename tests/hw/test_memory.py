"""Unit tests for the host memory model."""

import pytest

from repro.hw.memory import PAGE_SIZE, AddressSpace, MemoryError_


def test_alloc_page_aligned_and_sized():
    space = AddressSpace("t")
    buf = space.alloc(10000, name="buf")
    assert buf.base % PAGE_SIZE == 0
    assert buf.size == 10000
    assert buf.page_count == 3  # ceil(10000 / 4096)


def test_alloc_rejects_nonpositive():
    space = AddressSpace("t")
    with pytest.raises(MemoryError_):
        space.alloc(0)
    with pytest.raises(MemoryError_):
        space.alloc(-5)


def test_distinct_buffers_do_not_overlap():
    space = AddressSpace("t")
    a = space.alloc(PAGE_SIZE)
    b = space.alloc(PAGE_SIZE)
    assert a.end <= b.base or b.end <= a.base


def test_capacity_limit_enforced():
    space = AddressSpace("t", total_bytes=2 * PAGE_SIZE)
    space.alloc(PAGE_SIZE)
    space.alloc(PAGE_SIZE)
    with pytest.raises(MemoryError_):
        space.alloc(1)


def test_free_returns_capacity():
    space = AddressSpace("t", total_bytes=PAGE_SIZE)
    buf = space.alloc(PAGE_SIZE)
    space.free(buf)
    space.alloc(PAGE_SIZE)  # must not raise


def test_double_free_rejected():
    space = AddressSpace("t")
    buf = space.alloc(PAGE_SIZE)
    space.free(buf)
    with pytest.raises(MemoryError_):
        space.free(buf)


def test_free_pinned_rejected():
    space = AddressSpace("t")
    buf = space.alloc(PAGE_SIZE)
    buf.pin()
    with pytest.raises(MemoryError_):
        space.free(buf)
    buf.unpin()
    space.free(buf)


def test_pin_unpin_counts():
    space = AddressSpace("t")
    buf = space.alloc(2 * PAGE_SIZE)
    buf.pin()
    buf.pin()
    assert all(p.pin_count == 2 for p in buf.pages)
    buf.unpin()
    assert all(p.pinned for p in buf.pages)
    buf.unpin()
    assert not any(p.pinned for p in buf.pages)


def test_unpin_unpinned_rejected():
    space = AddressSpace("t")
    buf = space.alloc(PAGE_SIZE)
    with pytest.raises(MemoryError_):
        buf.unpin()


def test_evict_pinned_page_rejected():
    space = AddressSpace("t")
    buf = space.alloc(PAGE_SIZE)
    buf.pin()
    with pytest.raises(MemoryError_):
        buf.pages[0].evict()


def test_evict_and_page_in():
    space = AddressSpace("t")
    buf = space.alloc(PAGE_SIZE)
    page = buf.pages[0]
    page.evict()
    assert not page.resident
    assert not buf.resident
    with pytest.raises(MemoryError_):
        page.pin()
    page.page_in()
    assert buf.resident


def test_nic_loaded_page_counts_as_pinned():
    space = AddressSpace("t")
    buf = space.alloc(PAGE_SIZE)
    page = buf.pages[0]
    page.nic_loaded = True
    assert page.pinned
    with pytest.raises(MemoryError_):
        page.evict()


def test_page_at_lookup():
    space = AddressSpace("t")
    buf = space.alloc(3 * PAGE_SIZE)
    mid = buf.base + PAGE_SIZE + 123
    page = space.page_at(mid)
    assert page is buf.pages[1]
    assert space.page_at(0xDEAD0000) is None


def test_pages_in_range():
    space = AddressSpace("t")
    buf = space.alloc(4 * PAGE_SIZE)
    pages = buf.pages_in_range(PAGE_SIZE - 1, 2)
    assert pages == buf.pages[0:2]
    pages = buf.pages_in_range(0, buf.size)
    assert pages == buf.pages
    with pytest.raises(MemoryError_):
        buf.pages_in_range(0, buf.size + 1)
    with pytest.raises(MemoryError_):
        buf.pages_in_range(-1, 10)


def test_reclaimable_pages_excludes_pinned_and_locked():
    space = AddressSpace("t")
    a = space.alloc(PAGE_SIZE)
    b = space.alloc(PAGE_SIZE)
    c = space.alloc(PAGE_SIZE)
    a.pin()
    b.pages[0].locked_by_host = True
    reclaimable = space.reclaimable_pages()
    assert c.pages[0] in reclaimable
    assert a.pages[0] not in reclaimable
    assert b.pages[0] not in reclaimable
