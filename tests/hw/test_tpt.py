"""Unit tests for the TPT, NIC TLB and capabilities."""

import pytest

from repro.hw.memory import PAGE_SIZE, AddressSpace
from repro.hw.tpt import TPT, CapabilityAuthority, FaultReason, NicTLB, ProtectionError


@pytest.fixture
def space():
    return AddressSpace("t")


@pytest.fixture
def tpt():
    return TPT(use_capabilities=True)


class TestRegistration:
    def test_register_pins_by_default(self, space, tpt):
        buf = space.alloc(2 * PAGE_SIZE)
        seg = tpt.register(buf)
        assert seg.pinned
        assert all(p.pinned for p in buf.pages)

    def test_optimistic_register_does_not_pin(self, space, tpt):
        buf = space.alloc(2 * PAGE_SIZE)
        seg = tpt.register(buf, pin=False)
        assert not seg.pinned
        assert not any(p.pinned for p in buf.pages)

    def test_deregister_unpins(self, space, tpt):
        buf = space.alloc(PAGE_SIZE)
        seg = tpt.register(buf)
        tpt.deregister(seg)
        assert not any(p.pinned for p in buf.pages)
        assert tpt.translate(buf.base) is None

    def test_double_deregister_rejected(self, space, tpt):
        buf = space.alloc(PAGE_SIZE)
        seg = tpt.register(buf)
        tpt.deregister(seg)
        with pytest.raises(ProtectionError):
            tpt.deregister(seg)

    def test_translate_hits_every_page(self, space, tpt):
        buf = space.alloc(3 * PAGE_SIZE)
        seg = tpt.register(buf)
        for i in range(3):
            hit = tpt.translate(buf.base + i * PAGE_SIZE + 5)
            assert hit is not None
            assert hit[0] is seg
            assert hit[1] is buf.pages[i]


class TestAccessChecks:
    def _register(self, space, tpt, pin=False):
        buf = space.alloc(2 * PAGE_SIZE)
        seg = tpt.register(buf, pin=pin)
        return buf, seg

    def test_valid_access_passes(self, space, tpt):
        buf, seg = self._register(space, tpt)
        fault = tpt.check_access(buf.base, buf.size, seg.capability)
        assert fault is None

    def test_unknown_address_faults(self, space, tpt):
        fault = tpt.check_access(0xDEAD0000, 64, None)
        assert fault is FaultReason.INVALID_TRANSLATION

    def test_out_of_bounds_faults(self, space, tpt):
        buf, seg = self._register(space, tpt)
        fault = tpt.check_access(buf.base + PAGE_SIZE, buf.size,
                                 seg.capability)
        assert fault is FaultReason.OUT_OF_BOUNDS
        assert tpt.check_access(buf.base, 0, seg.capability) \
            is FaultReason.OUT_OF_BOUNDS

    def test_bad_capability_faults(self, space, tpt):
        buf, seg = self._register(space, tpt)
        fault = tpt.check_access(buf.base, 64, b"wrong-token-0000")
        assert fault is FaultReason.BAD_CAPABILITY
        fault = tpt.check_access(buf.base, 64, None)
        assert fault is FaultReason.BAD_CAPABILITY

    def test_capabilities_disabled_allows_none(self, space):
        tpt = TPT(use_capabilities=False)
        buf = space.alloc(PAGE_SIZE)
        tpt.register(buf, pin=False)
        assert tpt.check_access(buf.base, 64, None) is None

    def test_revoked_segment_faults(self, space, tpt):
        buf, seg = self._register(space, tpt)
        tpt.revoke(seg)
        fault = tpt.check_access(buf.base, 64, seg.capability)
        assert fault in (FaultReason.REVOKED, FaultReason.INVALID_TRANSLATION)

    def test_nonresident_page_faults(self, space, tpt):
        buf, seg = self._register(space, tpt)
        buf.pages[1].evict()
        assert tpt.check_access(buf.base, buf.size, seg.capability) \
            is FaultReason.NOT_RESIDENT
        # First page alone still fine
        assert tpt.check_access(buf.base, PAGE_SIZE, seg.capability) is None

    def test_host_locked_page_faults(self, space, tpt):
        buf, seg = self._register(space, tpt)
        buf.pages[0].locked_by_host = True
        assert tpt.check_access(buf.base, 64, seg.capability) \
            is FaultReason.PAGE_LOCKED


class TestCapabilityAuthority:
    def test_issue_is_deterministic(self):
        auth = CapabilityAuthority(b"key")
        assert auth.issue(1, 100, 200) == auth.issue(1, 100, 200)

    def test_issue_varies_with_inputs(self):
        auth = CapabilityAuthority(b"key")
        base = auth.issue(1, 100, 200)
        assert auth.issue(2, 100, 200) != base
        assert auth.issue(1, 101, 200) != base
        assert auth.issue(1, 100, 201) != base

    def test_different_keys_differ(self):
        assert CapabilityAuthority(b"a").issue(1, 2, 3) != \
            CapabilityAuthority(b"b").issue(1, 2, 3)


class TestNicTLB:
    def test_load_and_hit(self, space):
        tlb = NicTLB(capacity=4)
        buf = space.alloc(PAGE_SIZE)
        page = buf.pages[0]
        assert not tlb.lookup(page)
        tlb.load(page)
        assert tlb.lookup(page)
        assert page.nic_loaded and page.pinned

    def test_lru_eviction_order(self, space):
        tlb = NicTLB(capacity=2)
        buf = space.alloc(3 * PAGE_SIZE)
        p0, p1, p2 = buf.pages
        tlb.load(p0)
        tlb.load(p1)
        tlb.lookup(p0)  # refresh p0; p1 becomes LRU
        evicted = tlb.load(p2)
        assert evicted is p1
        assert not p1.nic_loaded
        assert p0.nic_loaded and p2.nic_loaded

    def test_invalidate(self, space):
        tlb = NicTLB(capacity=2)
        buf = space.alloc(PAGE_SIZE)
        page = buf.pages[0]
        tlb.load(page)
        assert tlb.invalidate(page)
        assert not page.nic_loaded
        assert not tlb.invalidate(page)

    def test_flush(self, space):
        tlb = NicTLB(capacity=4)
        buf = space.alloc(2 * PAGE_SIZE)
        for page in buf.pages:
            tlb.load(page)
        tlb.flush()
        assert len(tlb) == 0
        assert not any(p.nic_loaded for p in buf.pages)

    def test_hit_rate(self, space):
        tlb = NicTLB(capacity=4)
        buf = space.alloc(PAGE_SIZE)
        page = buf.pages[0]
        tlb.lookup(page)  # miss
        tlb.load(page)
        tlb.lookup(page)  # hit
        assert tlb.hit_rate == pytest.approx(0.5)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            NicTLB(capacity=0)

    def test_reload_existing_refreshes_without_evicting(self, space):
        tlb = NicTLB(capacity=2)
        buf = space.alloc(2 * PAGE_SIZE)
        p0, p1 = buf.pages
        tlb.load(p0)
        tlb.load(p1)
        assert tlb.load(p0) is None  # refresh, no eviction
        assert len(tlb) == 2


class TestEffectiveTLBLimit:
    """Section 4.1: the OS caps the NIC TLB's effective size to bound the
    amount of memory the NIC pins."""

    def test_limit_evicts_and_unpins(self, space):
        tlb = NicTLB(capacity=8)
        buf = space.alloc(6 * PAGE_SIZE)
        for page in buf.pages:
            tlb.load(page)
        assert tlb.pinned_bytes() == 6 * PAGE_SIZE
        evicted = tlb.set_effective_limit(2)
        assert len(evicted) == 4
        assert not any(p.nic_loaded for p in evicted)
        assert len(tlb) == 2
        assert tlb.pinned_bytes() == 2 * PAGE_SIZE

    def test_future_loads_respect_limit(self, space):
        tlb = NicTLB(capacity=8)
        tlb.set_effective_limit(2)
        buf = space.alloc(4 * PAGE_SIZE)
        for page in buf.pages:
            tlb.load(page)
        assert len(tlb) == 2

    def test_limit_cannot_exceed_capacity(self, space):
        tlb = NicTLB(capacity=4)
        tlb.set_effective_limit(100)
        assert tlb.effective_limit == 4

    def test_invalid_limit_rejected(self, space):
        tlb = NicTLB(capacity=4)
        with pytest.raises(ValueError):
            tlb.set_effective_limit(0)
