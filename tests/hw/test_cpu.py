"""Unit tests for the CPU model."""

import pytest

from repro.hw.cpu import CPU, PRIO_INTERRUPT
from repro.params import HostParams
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def cpu(sim):
    return CPU(sim, HostParams())


def test_execute_charges_time_and_busy(sim, cpu):
    def proc():
        yield from cpu.execute(10.0, category="proto")
        return sim.now

    assert sim.run_process(proc()) == pytest.approx(10.0)
    assert cpu.busy.busy_us == pytest.approx(10.0)
    assert cpu.busy.by_category["proto"] == pytest.approx(10.0)


def test_execute_zero_cost_is_free(sim, cpu):
    def proc():
        yield from cpu.execute(0.0)
        return sim.now

    # A zero-cost execute must not even yield once into the queue.
    gen = proc()
    with pytest.raises(StopIteration):
        next(gen)


def test_execute_negative_rejected(sim, cpu):
    def proc():
        yield from cpu.execute(-1.0)

    with pytest.raises(ValueError):
        sim.run_process(proc())


def test_single_core_serializes(sim, cpu):
    done = []

    def proc(tag):
        yield from cpu.execute(10.0)
        done.append((tag, sim.now))

    sim.process(proc("a"))
    sim.process(proc("b"))
    sim.run()
    assert done == [("a", 10.0), ("b", 20.0)]


def test_interrupt_priority_jumps_queue(sim, cpu):
    done = []

    def normal(tag):
        yield from cpu.execute(10.0)
        done.append(tag)

    def intr():
        yield sim.timeout(1.0)
        yield from cpu.execute(2.0, priority=PRIO_INTERRUPT)
        done.append("intr")

    sim.process(normal("n1"))
    sim.process(normal("n2"))
    sim.process(intr())
    sim.run()
    assert done == ["n1", "intr", "n2"]


def test_copy_uses_configured_bandwidths(sim):
    params = HostParams(copy_bw_cached=100.0, copy_bw_uncached=50.0)
    cpu = CPU(sim, params)

    def proc():
        yield from cpu.copy(1000, cached=True)
        cached_done = sim.now
        yield from cpu.copy(1000, cached=False)
        return cached_done, sim.now

    cached_done, total = sim.run_process(proc())
    assert cached_done == pytest.approx(10.0)
    assert total == pytest.approx(30.0)


def test_interrupt_coalescing_skips_entry_cost(sim, cpu):
    def proc():
        yield from cpu.interrupt(coalesce_window_us=50.0)
        first = cpu.busy.busy_us
        yield from cpu.interrupt(coalesce_window_us=50.0)  # coalesced
        second = cpu.busy.busy_us
        yield sim.timeout(100.0)
        yield from cpu.interrupt(coalesce_window_us=50.0)  # window expired
        return first, second, cpu.busy.busy_us

    first, second, third = sim.run_process(proc())
    assert first == pytest.approx(cpu.params.interrupt_us)
    assert second == pytest.approx(first)  # no extra cost
    assert third == pytest.approx(2 * cpu.params.interrupt_us)


def test_interrupt_handler_work_always_charged(sim, cpu):
    def proc():
        yield from cpu.interrupt(handler_us=3.0, coalesce_window_us=1e9)
        yield from cpu.interrupt(handler_us=3.0, coalesce_window_us=1e9)
        return cpu.busy.busy_us

    total = sim.run_process(proc())
    assert total == pytest.approx(cpu.params.interrupt_us + 6.0)


def test_utilization_window(sim, cpu):
    def proc():
        yield sim.timeout(50.0)
        cpu.reset_measurement()
        yield from cpu.execute(25.0)
        yield sim.timeout(25.0)
        return cpu.utilization()

    assert sim.run_process(proc()) == pytest.approx(0.5)


def test_canned_paths_charge_expected_costs(sim, cpu):
    p = cpu.params

    def proc():
        yield from cpu.wakeup()
        yield from cpu.poll()
        yield from cpu.syscall()
        return cpu.busy.busy_us

    total = sim.run_process(proc())
    assert total == pytest.approx(p.wakeup_us + p.poll_us + p.syscall_us)
