"""NIC error paths and edge cases."""

import pytest

from repro.hw import Host, ProtectionError
from repro.net import Switch
from repro.params import default_params
from repro.sim import Simulator


@pytest.fixture
def rig():
    sim = Simulator()
    params = default_params()
    switch = Switch(sim, params.net)
    a = Host(sim, params, switch, "A")
    b = Host(sim, params, switch, "B")
    return sim, a, b


def test_plain_rdma_to_unregistered_memory_is_a_hard_error(rig):
    """Non-optimistic RDMA on unmapped memory is a stack bug, not a
    recoverable fault."""
    sim, a, b = rig

    def putter():
        yield from a.nic.rdma_put("B", 0xDEAD0000, 4096, data="x")

    sim.process(putter())
    with pytest.raises(ProtectionError):
        sim.run()


def test_plain_rdma_get_from_unregistered_memory_is_a_hard_error(rig):
    sim, a, b = rig
    local = a.mem.alloc(4096)

    def getter():
        yield from a.nic.rdma_get("B", 0xDEAD0000, 4096, local)

    sim.process(getter())
    with pytest.raises(ProtectionError):
        sim.run()


def test_posted_buffer_too_small_is_a_hard_error(rig):
    sim, a, b = rig
    b.nic.open_port(1)
    b.nic.post_receive(1, b.mem.alloc(64))

    def sender():
        yield from a.nic.gm_send("B", 1, 4096, data="big")

    sim.process(sender())
    with pytest.raises(ProtectionError):
        sim.run()


def test_eth_without_handler_is_a_hard_error(rig):
    sim, a, b = rig  # B never binds a UDP/TCP stack

    def sender():
        yield from a.nic.eth_send("B", 100, data="x")

    sim.process(sender())
    with pytest.raises(ProtectionError):
        sim.run()


def test_send_to_unknown_host_is_rejected(rig):
    sim, a, b = rig

    def sender():
        yield from a.nic.gm_send("ghost", 1, 64)

    sim.process(sender())
    with pytest.raises(KeyError):
        sim.run()


def test_duplicate_port_open_rejected(rig):
    sim, a, b = rig
    a.nic.open_port(5)
    with pytest.raises(ValueError):
        a.nic.open_port(5)


def test_zero_byte_gm_send_delivers(rig):
    sim, a, b = rig
    cq = b.nic.open_port(2)
    b.nic.post_receive(2, b.mem.alloc(64))

    def sender():
        yield from a.nic.gm_send("B", 2, 0, data="zero")

    def receiver():
        comp = yield from cq.get()
        return comp.message.size, comp.data

    sim.process(sender())
    proc = sim.process(receiver())
    sim.run()
    assert proc.value == (0, "zero")


def test_duplicate_rdma_ack_is_ignored(rig):
    """A stray duplicate completion for a finished op must not crash."""
    sim, a, b = rig
    target = b.mem.alloc(4096)
    seg = b.nic.tpt.register(target)

    def putter():
        yield from a.nic.rdma_put("B", seg.base, 4096, data="v",
                                  capability=seg.capability)
        # Simulate a duplicate ack arriving afterwards.
        a.nic._complete_rdma(12345, ok=True)

    sim.run_process(putter())
    assert target.data == "v"


def test_concurrent_sends_interleave_but_all_deliver(rig):
    sim, a, b = rig
    cq = b.nic.open_port(3)
    for _ in range(10):
        b.nic.post_receive(3, b.mem.alloc(70000))

    def sender(i):
        yield from a.nic.gm_send("B", 3, 64 * 1024 if i % 2 else 100,
                                 data=i)

    def receiver():
        got = []
        for _ in range(10):
            comp = yield from cq.get()
            got.append(comp.data)
        return sorted(got)

    for i in range(10):
        sim.process(sender(i))
    proc = sim.process(receiver())
    sim.run()
    assert proc.value == list(range(10))


def test_simulation_is_deterministic():
    """Two identical runs produce byte-identical results."""
    from repro.bench.figures import fig6_postmark

    def run():
        return fig6_postmark(hit_ratios=(0.5,), n_files=96,
                             transactions=400)

    a, b = run(), run()
    assert a == b
