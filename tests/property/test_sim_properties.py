"""Property-based tests for the simulation kernel."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fs.files import FileSystem
from repro.sim import BandwidthPipe, Resource, Simulator


@settings(max_examples=100)
@given(st.lists(st.floats(min_value=0.0, max_value=1000.0,
                          allow_nan=False), max_size=30))
def test_clock_is_monotone_and_exact(delays):
    """Time advances exactly by the scheduled amounts, in order."""
    sim = Simulator()
    observed = []

    def proc():
        for delay in delays:
            yield sim.timeout(delay)
            observed.append(sim.now)

    sim.run_process(proc())
    expected = []
    acc = 0.0
    for delay in delays:
        acc += delay
        expected.append(acc)
    assert observed == pytest.approx(expected)
    assert all(a <= b for a, b in zip(observed, observed[1:]))


@settings(max_examples=100)
@given(st.integers(min_value=1, max_value=5),
       st.lists(st.floats(min_value=0.1, max_value=50.0, allow_nan=False),
                min_size=1, max_size=20))
def test_resource_conserves_work(capacity, services):
    """Total completion time of an M-server queue equals the analytic
    makespan for identical arrival times (work conservation)."""
    sim = Simulator()
    res = Resource(sim, capacity=capacity)
    finished = []

    def user(service):
        req = res.request()
        yield req
        try:
            yield sim.timeout(service)
        finally:
            res.release(req)
        finished.append(sim.now)

    for service in services:
        sim.process(user(service))
    sim.run()
    assert len(finished) == len(services)
    # FIFO with equal arrivals: jobs start in submission order across
    # capacity servers; the busy-time integral must be conserved.
    assert max(finished) >= sum(services) / capacity - 1e-6
    assert max(finished) <= sum(services) + 1e-6


@settings(max_examples=100)
@given(st.lists(st.integers(min_value=0, max_value=100_000),
                min_size=1, max_size=20),
       st.floats(min_value=1.0, max_value=500.0, allow_nan=False))
def test_pipe_serialization_exact(sizes, bandwidth):
    """A FIFO pipe finishes all transfers at exactly sum(size)/bw."""
    sim = Simulator()
    pipe = BandwidthPipe(sim, bandwidth)
    done = []

    def sender(nbytes):
        yield pipe.transfer(nbytes)
        done.append(sim.now)

    for nbytes in sizes:
        sim.process(sender(nbytes))
    sim.run()
    assert max(done) == pytest.approx(sum(sizes) / bandwidth)
    assert pipe.stats_bytes == sum(sizes)


@settings(max_examples=100)
@given(st.integers(min_value=1, max_value=1 << 22),
       st.integers(min_value=512, max_value=65536),
       st.lists(st.integers(min_value=0, max_value=50), max_size=30))
def test_filesystem_write_versions_are_per_block(size, block_size, writes):
    fs = FileSystem(block_size)
    fs.create("f", size)
    counts = {}
    nblocks = fs.block_count("f")
    for idx in writes:
        if idx < nblocks:
            fs.write_block("f", idx)
            counts[idx] = counts.get(idx, 0) + 1
    for idx in range(nblocks):
        assert fs.block_content("f", idx) == ("f", idx, counts.get(idx, 0))
