"""Property-based tests for protocol-layer invariants (TCP, locks)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw import Host
from repro.nas.locks import EXCLUSIVE, SHARED, LockTable
from repro.net import Switch
from repro.params import default_params
from repro.proto.tcp import TCPStack
from repro.sim import RandomStreams, Simulator


class TestTCPDeliveryProperties:
    @settings(max_examples=12, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=64 * 1024),
                    min_size=1, max_size=12),
           st.sampled_from([0.0, 0.01, 0.05]))
    def test_all_messages_delivered_in_order_under_loss(self, sizes,
                                                        loss):
        """Whatever the message sizes and loss rate, every framed message
        arrives exactly once, in order, with intact metadata."""
        params = default_params()
        params.net.loss_probability = loss
        sim = Simulator()
        switch = Switch(sim, params.net,
                        rng=RandomStreams(5).stream("loss"))
        a = Host(sim, params, switch, "A")
        b = Host(sim, params, switch, "B")
        stack_a = TCPStack(a, rto_us=1500.0)
        stack_b = TCPStack(b, rto_us=1500.0)
        listener = stack_b.listen(80)
        received = []

        def client():
            conn = yield from stack_a.connect("B", 80)
            for i, size in enumerate(sizes):
                yield from conn.send("B", size, data=i,
                                     meta={"idx": i})

        def server():
            conn = yield from listener.accept()
            for _ in sizes:
                msg = yield from conn.recv()
                received.append((msg.data, msg.size, msg.meta["idx"]))

        sim.process(client())
        sim.process(server())
        sim.run()
        assert received == [(i, size, i) for i, size in enumerate(sizes)]


class TestLockTableProperties:
    @settings(max_examples=100)
    @given(st.lists(st.tuples(st.sampled_from([SHARED, EXCLUSIVE]),
                              st.integers(min_value=0, max_value=4),
                              st.floats(min_value=0.5, max_value=20.0,
                                        allow_nan=False)),
                    min_size=1, max_size=25))
    def test_exclusivity_invariant(self, requests):
        """At no instant do an exclusive holder and any other holder
        coexist, for arbitrary interleavings of lock requests."""
        sim = Simulator()
        table = LockTable(sim)
        violations = []

        def locker(mode, owner_id, hold):
            owner = f"c{owner_id}-{id(object())}"
            yield table.acquire("f", owner, mode)
            holders = table.holders("f")
            held_mode = table.mode("f")
            if held_mode == EXCLUSIVE and len(holders) > 1:
                violations.append(tuple(holders))
            if mode == EXCLUSIVE and held_mode != EXCLUSIVE:
                violations.append(("mode-mismatch", owner))
            yield sim.timeout(hold)
            table.release("f", owner)

        for i, (mode, owner_id, hold) in enumerate(requests):
            sim.process(locker(mode, owner_id, hold))
        sim.run()
        assert violations == []
        assert table.holders("f") == []  # everything released

    @settings(max_examples=60)
    @given(st.lists(st.sampled_from([SHARED, EXCLUSIVE]),
                    min_size=2, max_size=12))
    def test_all_requests_eventually_granted(self, modes):
        """FIFO queueing never starves any request."""
        sim = Simulator()
        table = LockTable(sim)
        granted = []

        def locker(i, mode):
            yield table.acquire("f", f"o{i}", mode)
            granted.append(i)
            yield sim.timeout(1.0)
            table.release("f", f"o{i}")

        for i, mode in enumerate(modes):
            sim.process(locker(i, mode))
        sim.run()
        assert sorted(granted) == list(range(len(modes)))
