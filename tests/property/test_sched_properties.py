"""Property-based invariants for the server admission scheduler.

Two families:

* pure scheduler properties over arbitrary admit/pop interleavings —
  conservation (every admitted request is popped exactly once, every
  overflow is explicitly counted) and fair-share starvation freedom
  (a client with a backlog is served within one rotation);
* end-to-end conservation through the RPC server — every application
  read completes with correct data and the scheduler's counters balance,
  including under injected link loss with retransmission.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster
from repro.faults import Injector
from repro.nas.server.sched import RequestScheduler
from repro.net.packet import Message, MsgKind
from repro.params import KB, default_params
from repro.sim import Simulator


def msg(src, xid):
    return Message(MsgKind.ETH, src, "server", 128,
                   meta={"rpc": "req", "rpc_xid": xid})


#: An arrival schedule: (client index, burst length) pairs.
arrivals = st.lists(st.tuples(st.integers(min_value=0, max_value=7),
                              st.integers(min_value=1, max_value=6)),
                    min_size=1, max_size=24)


class TestSchedulerConservation:
    @settings(max_examples=100)
    @given(arrivals, st.sampled_from(["fifo", "fair"]),
           st.integers(min_value=1, max_value=16))
    def test_admit_pop_conserves_every_message(self, schedule, policy,
                                               max_queue):
        """admitted == popped + rejected-at-admission, each exactly once."""
        sched = RequestScheduler(Simulator(), policy=policy,
                                 max_queue=max_queue)
        offered, admitted = [], 0
        xid = 0
        for client, burst in schedule:
            for _ in range(burst):
                m = msg(f"c{client}", xid)
                xid += 1
                offered.append(m)
                if sched.admit(m):
                    admitted += 1
        popped = []
        while True:
            entry = sched.pop()
            if entry is None:
                break
            popped.append(entry[0])
        assert len(popped) == admitted
        assert sched.stats.get("rejected") == len(offered) - admitted
        # Exactly-once: the popped multiset is a sub-multiset of offers.
        assert len({id(m) for m in popped}) == len(popped)
        assert sched.stats.get("admitted") == admitted
        assert sched.stats.get("dispatched") == admitted
        assert len(sched) == 0

    @settings(max_examples=100)
    @given(arrivals, st.integers(min_value=1, max_value=16))
    def test_fifo_preserves_arrival_order(self, schedule, max_queue):
        sched = RequestScheduler(Simulator(), policy="fifo",
                                 max_queue=max_queue)
        admitted = []
        xid = 0
        for client, burst in schedule:
            for _ in range(burst):
                m = msg(f"c{client}", xid)
                xid += 1
                if sched.admit(m):
                    admitted.append(m.meta["rpc_xid"])
        popped = []
        while (entry := sched.pop()) is not None:
            popped.append(entry[0].meta["rpc_xid"])
        assert popped == admitted

    @settings(max_examples=100)
    @given(arrivals)
    def test_fair_share_never_starves_a_client(self, schedule):
        """Every client with queued work is served within one rotation:
        between consecutive pops of the same client, each *other*
        backlogged client appears at most once."""
        sched = RequestScheduler(Simulator(), policy="fair",
                                 max_queue=1024)
        for client, burst in schedule:
            for i in range(burst):
                sched.admit(msg(f"c{client}", i))
        served = []
        while (entry := sched.pop()) is not None:
            served.append(entry[0].src)
        # Within any window between successive serves of client X, no
        # other client is served twice while X still has a backlog.
        last_seen = {}
        for pos, client in enumerate(served):
            if client in last_seen:
                window = served[last_seen[client] + 1:pos]
                assert all(window.count(other) <= 1
                           for other in set(window)), \
                    f"starvation window {window} before {client}"
            last_seen[client] = pos

    @settings(max_examples=100)
    @given(arrivals, st.sampled_from(["fifo", "fair"]))
    def test_drop_all_accounts_for_every_queued_request(self, schedule,
                                                        policy):
        sched = RequestScheduler(Simulator(), policy=policy,
                                 max_queue=1024)
        total = 0
        for client, burst in schedule:
            for i in range(burst):
                sched.admit(msg(f"c{client}", i))
                total += 1
        assert sched.drop_all() == total
        assert sched.stats.get("dropped_at_crash") == total
        assert sched.pop() is None


def run_scaled_reads(cluster, blocks=8):
    """All clients read the whole file; returns per-client result lists."""
    sim = cluster.sim
    out = [None] * len(cluster.clients)

    def client_main(idx):
        client = cluster.clients[idx]
        yield from client.open("f")
        got = []
        for i in range(blocks):
            got.append((yield from client.read("f", i * 4 * KB, 4 * KB)))
        out[idx] = got

    def main():
        procs = [sim.process(client_main(i), name=f"p{i}")
                 for i in range(len(cluster.clients))]
        yield sim.all_of(procs)

    sim.run_process(main())
    return out


class TestEndToEndConservation:
    @settings(max_examples=12, deadline=None)
    @given(st.integers(min_value=2, max_value=8),
           st.integers(min_value=1, max_value=3),
           st.integers(min_value=1, max_value=8),
           st.sampled_from(["fifo", "fair"]))
    def test_every_read_completes_once_despite_shedding(
            self, n_clients, threads, queue, policy):
        """Whatever the pool/queue sizing, no read is lost or duplicated
        and the scheduler's ledger balances when the system drains."""
        p = default_params()
        p.sched.policy = policy
        p.sched.service_threads = threads
        p.sched.max_queue = queue
        cluster = Cluster(p, system="nfs", n_clients=n_clients,
                          block_size=4 * KB,
                          client_kwargs={"bcache_entries": 2})
        cluster.create_file("f", 32 * KB)
        results = run_scaled_reads(cluster, blocks=8)
        for got in results:
            assert got == [("f", i, 0) for i in range(8)]
        stats = cluster.scheduler.stats
        assert stats.get("admitted") == stats.get("dispatched")
        assert stats.get("dispatched") == stats.get("completed")
        assert len(cluster.scheduler) == 0
        assert cluster.scheduler.active == 0
        assert cluster.scheduler.peak_active <= threads

    @settings(max_examples=6, deadline=None)
    @given(st.integers(min_value=0, max_value=2 ** 31),
           st.floats(min_value=0.01, max_value=0.15))
    def test_conservation_holds_under_link_loss(self, seed, loss):
        """Retransmissions re-enter admission; the ledger still balances
        (every admitted arrival is dispatched and completed — duplicate
        executions are absorbed by the xid cache, not double-served)."""
        p = default_params().copy(seed=seed)
        p.sched.policy = "fair"
        p.sched.service_threads = 2
        p.sched.max_queue = 8
        cluster = Cluster(p, system="nfs", n_clients=4,
                          block_size=4 * KB,
                          client_kwargs={"bcache_entries": 2})
        cluster.create_file("f", 32 * KB)
        injector = Injector(cluster)
        injector.link_loss(loss)
        injector.enable_resilience(timeout_us=2000.0, max_retries=16)
        results = run_scaled_reads(cluster, blocks=8)
        for got in results:
            assert got == [("f", i, 0) for i in range(8)]
        stats = cluster.scheduler.stats
        assert stats.get("admitted") == stats.get("dispatched")
        assert stats.get("dispatched") == stats.get("completed")
        assert len(cluster.scheduler) == 0
        assert cluster.scheduler.active == 0
