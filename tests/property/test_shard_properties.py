"""Property-based tests for the shard layer's core guarantee.

Striping is purely a routing and cache-warming concern: every server's
file system holds the full file, and block content is the logical
``(name, block_index, version)`` tuple. So a striped read through the
:class:`~repro.nas.shard.router.ShardRouter` must return byte-identical
content to a single-server :class:`~repro.cluster.Cluster` read of the
same range — for every system the shard layer supports, any server
count, either placement policy, and unaligned ranges included.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster
from repro.nas.shard import SHARD_SYSTEMS, ShardedCluster
from repro.params import default_params

FILE_BLOCKS = 16


def _client_kwargs(system):
    # Client block caches must hold the widest read: eviction inside one
    # multi-block request is a (pre-existing) single-server behavior, not
    # a routing property, so keep it out of the comparison.
    return {} if system == "nfs" else {"cache_blocks": 64}


def _shard_cluster(system, n_servers, placement, stripe_blocks, replicas):
    p = default_params()
    p.shard.n_servers = n_servers
    p.shard.placement = placement
    p.shard.stripe_blocks = stripe_blocks
    p.shard.replicas = replicas
    return ShardedCluster(p, system=system,
                          client_kwargs=_client_kwargs(system))


def _blocks_of(data):
    """Normalize a read payload to a list of block-content tuples."""
    if isinstance(data, tuple) and data and isinstance(data[0], str):
        return [data]  # a single (name, index, version) block
    return list(data)


def _run_reads(cluster, client, name, ranges):
    out = []

    def wl():
        yield from client.open(name)
        for offset, nbytes in ranges:
            data = yield from client.read(name, offset, nbytes)
            out.append(_blocks_of(data))
        yield from client.close(name)
    cluster.sim.run_process(wl())
    return out


def _ranges_strategy(block_size):
    size = FILE_BLOCKS * block_size
    offsets = st.integers(min_value=0, max_value=size - 1)

    def clip(offset_and_len):
        offset, nbytes = offset_and_len
        return (offset, max(1, min(nbytes, size - offset)))
    return st.lists(
        st.tuples(offsets,
                  st.integers(min_value=1, max_value=8 * block_size))
        .map(clip),
        min_size=1, max_size=6)


class TestStripedReadIdentity:
    @settings(max_examples=10, deadline=None)
    @given(st.sampled_from(SHARD_SYSTEMS),
           st.sampled_from([2, 4]),
           st.sampled_from(["stripe", "hash"]),
           st.sampled_from([1, 4]),
           st.data())
    def test_striped_reads_match_single_server_baseline(
            self, system, n_servers, placement, stripe_blocks, data):
        sharded = _shard_cluster(system, n_servers, placement,
                                 stripe_blocks, replicas=0)
        baseline = Cluster(default_params(), system=system,
                           client_kwargs=_client_kwargs(system))
        assert sharded.block_size == baseline.block_size
        ranges = data.draw(_ranges_strategy(sharded.block_size))

        sharded.create_file("f", FILE_BLOCKS * sharded.block_size)
        baseline.create_file("f", FILE_BLOCKS * baseline.block_size)
        got = _run_reads(sharded, sharded.clients[0], "f", ranges)
        want = _run_reads(baseline, baseline.clients[0], "f", ranges)
        assert got == want

    @settings(max_examples=6, deadline=None)
    @given(st.sampled_from([2, 3]), st.data())
    def test_replicated_reads_match_baseline_too(self, n_servers, data):
        """Replication changes where copies live, never what a read
        returns."""
        sharded = _shard_cluster("odafs", n_servers, "stripe",
                                 stripe_blocks=2, replicas=1)
        baseline = Cluster(default_params(), system="odafs",
                           client_kwargs=_client_kwargs("odafs"))
        ranges = data.draw(_ranges_strategy(sharded.block_size))
        sharded.create_file("f", FILE_BLOCKS * sharded.block_size)
        baseline.create_file("f", FILE_BLOCKS * baseline.block_size)
        got = _run_reads(sharded, sharded.clients[0], "f", ranges)
        want = _run_reads(baseline, baseline.clients[0], "f", ranges)
        assert got == want

    @settings(max_examples=8, deadline=None)
    @given(st.sampled_from(SHARD_SYSTEMS),
           st.sampled_from(["stripe", "hash"]),
           st.data())
    def test_one_server_shard_layer_is_transparent(self, system,
                                                   placement, data):
        """With n_servers=1 the router must be a pass-through: identical
        payloads to the unsharded cluster for arbitrary ranges."""
        sharded = _shard_cluster(system, 1, placement, stripe_blocks=4,
                                 replicas=0)
        baseline = Cluster(default_params(), system=system,
                           client_kwargs=_client_kwargs(system))
        ranges = data.draw(_ranges_strategy(sharded.block_size))
        sharded.create_file("f", FILE_BLOCKS * sharded.block_size)
        baseline.create_file("f", FILE_BLOCKS * baseline.block_size)
        got = _run_reads(sharded, sharded.clients[0], "f", ranges)
        want = _run_reads(baseline, baseline.clients[0], "f", ranges)
        assert got == want


class TestWriteVisibility:
    @settings(max_examples=6, deadline=None)
    @given(st.sampled_from([2, 4]),
           st.integers(min_value=0, max_value=FILE_BLOCKS - 1))
    def test_write_then_read_sees_new_version(self, n_servers, block):
        """A routed write bumps the version a subsequent routed read
        returns, wherever the block landed."""
        c = _shard_cluster("nfs", n_servers, "stripe", stripe_blocks=2,
                           replicas=0)
        c.create_file("f", FILE_BLOCKS * c.block_size)
        router = c.clients[0]
        seen = []

        def wl():
            yield from router.open("f", mode="write")
            yield from router.write("f", block * c.block_size,
                                    c.block_size)
            data = yield from router.read("f", block * c.block_size,
                                          c.block_size)
            seen.append(data)
        c.sim.run_process(wl())
        assert seen == [("f", block, 1)]
