"""Property-based invariants for the ORDMA reference directory.

The optimistic protocol's safety rests on two directory facts (Section
4.2): the directory never grows past its capacity bound, and an
invalidated reference can never be probed again until the server hands
out a fresh one. Both must hold for every policy over arbitrary
insert/probe/invalidate interleavings — exactly what a multi-client run
generates when eight clients race one server's eviction decisions.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nas.client.directory import ORDMADirectory
from repro.proto.ordma import RemoteRef

#: An operation stream over a small hot key space (forces collisions).
ops = st.lists(
    st.tuples(st.sampled_from(["insert", "probe", "invalidate"]),
              st.integers(min_value=0, max_value=15)),
    min_size=1, max_size=120)


def ref(i):
    return RemoteRef("server", 0x1000 * (i + 1), 4096)


class TestDirectoryProperties:
    @settings(max_examples=150)
    @given(st.integers(min_value=1, max_value=8),
           st.sampled_from(["lru", "mq"]), ops)
    def test_capacity_bound_always_holds(self, capacity, policy, stream):
        directory = ORDMADirectory(capacity, policy=policy)
        for op, key in stream:
            if op == "insert":
                directory.insert(f"k{key}", ref(key))
            elif op == "probe":
                directory.probe(f"k{key}")
            else:
                directory.invalidate(f"k{key}")
            assert len(directory) <= capacity

    @settings(max_examples=150)
    @given(st.integers(min_value=1, max_value=8),
           st.sampled_from(["lru", "mq"]), ops)
    def test_invalidated_refs_stay_gone_until_reinserted(
            self, capacity, policy, stream):
        """Model-checked staleness: track the live key set by hand; a
        probe may miss spuriously (eviction) but can never return a
        reference for a key whose last event was an invalidation."""
        directory = ORDMADirectory(capacity, policy=policy)
        live = {}
        for op, key in stream:
            name = f"k{key}"
            if op == "insert":
                directory.insert(name, ref(key))
                live[name] = ref(key)
            elif op == "invalidate":
                directory.invalidate(name)
                live.pop(name, None)
            else:
                got = directory.probe(name)
                if name not in live:
                    assert got is None
                else:
                    assert got is None or got == live[name]

    @settings(max_examples=100)
    @given(st.integers(min_value=1, max_value=8), ops)
    def test_stats_balance(self, capacity, stream):
        """hits + misses == probes, and inserts - evictions -
        invalidations == resident entries."""
        directory = ORDMADirectory(capacity)
        probes = inserts = 0
        for op, key in stream:
            name = f"k{key}"
            if op == "insert":
                fresh = directory.probe(name) is None
                probes += 1
                directory.insert(name, ref(key))
                if fresh:
                    inserts += 1
            elif op == "probe":
                directory.probe(name)
                probes += 1
            else:
                directory.invalidate(name)
        stats = directory.stats
        assert stats.get("hits") + stats.get("misses") == probes
        assert inserts - stats.get("evictions") \
            - stats.get("invalidations") == len(directory)
