"""Property-based tests for hardware substrate invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.memory import PAGE_SIZE, AddressSpace
from repro.hw.tpt import TPT, CapabilityAuthority, NicTLB
from repro.net.packet import Message, MsgKind, Reassembler, fragment


class TestAddressSpaceProperties:
    @settings(max_examples=100)
    @given(st.lists(st.integers(min_value=1, max_value=100_000),
                    min_size=1, max_size=30))
    def test_allocations_never_overlap(self, sizes):
        space = AddressSpace("p")
        buffers = [space.alloc(size) for size in sizes]
        spans = sorted((b.base, b.base + b.page_count * PAGE_SIZE)
                       for b in buffers)
        for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
            assert e1 <= s2
        for buf, size in zip(buffers, sizes):
            assert buf.size == size
            assert buf.page_count == (size + PAGE_SIZE - 1) // PAGE_SIZE

    @settings(max_examples=100)
    @given(st.integers(min_value=1, max_value=50_000),
           st.data())
    def test_pages_in_range_covers_exactly_the_span(self, size, data):
        space = AddressSpace("p")
        buf = space.alloc(size)
        offset = data.draw(st.integers(min_value=0, max_value=size - 1))
        nbytes = data.draw(st.integers(min_value=1, max_value=size - offset))
        pages = buf.pages_in_range(offset, nbytes)
        first = offset // PAGE_SIZE
        last = (offset + nbytes - 1) // PAGE_SIZE
        assert pages == buf.pages[first:last + 1]


class TestCapabilityProperties:
    @settings(max_examples=100)
    @given(st.integers(min_value=0, max_value=2**32),
           st.integers(min_value=0, max_value=2**48),
           st.integers(min_value=1, max_value=2**32))
    def test_issue_verify_roundtrip(self, seg_id, base, length):
        auth = CapabilityAuthority(b"k1")
        token = auth.issue(seg_id, base, length)
        assert len(token) == 16
        assert token == auth.issue(seg_id, base, length)

    @settings(max_examples=100)
    @given(st.binary(min_size=0, max_size=16))
    def test_forged_tokens_rejected(self, forged):
        space = AddressSpace("p")
        tpt = TPT(use_capabilities=True)
        buf = space.alloc(PAGE_SIZE)
        seg = tpt.register(buf, pin=False)
        genuine = seg.capability
        ok = tpt.authority.verify(seg, forged)
        assert ok == (forged == genuine)


class TestTLBProperties:
    @settings(max_examples=100)
    @given(st.integers(min_value=1, max_value=8),
           st.lists(st.integers(min_value=0, max_value=20), max_size=100))
    def test_tlb_never_exceeds_capacity_and_pins_match(self, capacity,
                                                       accesses):
        space = AddressSpace("p")
        buf = space.alloc(21 * PAGE_SIZE)
        tlb = NicTLB(capacity)
        for idx in accesses:
            page = buf.pages[idx]
            if not tlb.lookup(page):
                tlb.load(page)
            assert len(tlb) <= capacity
            loaded = {p.vaddr for p in buf.pages if p.nic_loaded}
            assert loaded == set(tlb._entries.keys())

    @settings(max_examples=60)
    @given(st.lists(st.integers(min_value=0, max_value=9),
                    min_size=1, max_size=60))
    def test_unbounded_tlb_misses_each_page_once(self, accesses):
        space = AddressSpace("p")
        buf = space.alloc(10 * PAGE_SIZE)
        tlb = NicTLB(1 << 20)
        for idx in accesses:
            page = buf.pages[idx]
            if not tlb.lookup(page):
                tlb.load(page)
        assert tlb.misses == len(set(accesses))
        assert tlb.hits == len(accesses) - len(set(accesses))


class TestFragmentationProperties:
    @settings(max_examples=150, deadline=None)
    @given(st.integers(min_value=0, max_value=1_000_000),
           st.integers(min_value=1, max_value=65536),
           st.integers(min_value=0, max_value=512))
    def test_fragments_partition_the_payload(self, size, mtu, header):
        msg = Message(MsgKind.GM_SEND, "a", "b", size)
        frames = fragment(msg, mtu, header)
        assert sum(f.payload_bytes for f in frames) == size
        assert all(f.payload_bytes <= mtu for f in frames)
        assert all(f.wire_bytes == f.payload_bytes + header for f in frames)
        assert [f.index for f in frames] == list(range(len(frames)))
        assert frames[-1].is_last
        assert all(f.count == len(frames) for f in frames)
        # Only the final fragment may be smaller than the MTU.
        for f in frames[:-1]:
            assert f.payload_bytes == mtu

    @settings(max_examples=100)
    @given(st.lists(st.integers(min_value=0, max_value=200_000),
                    min_size=1, max_size=10),
           st.integers(min_value=512, max_value=16384))
    def test_interleaved_reassembly_completes_each_message_once(
            self, sizes, mtu):
        """Round-robin-interleaved fragments of many messages reassemble
        each message exactly once."""
        frames_by_msg = [
            fragment(Message(MsgKind.GM_SEND, "a", "b", size), mtu, 64)
            for size in sizes
        ]
        reasm = Reassembler()
        completed = []
        cursors = [0] * len(frames_by_msg)
        progressed = True
        while progressed:
            progressed = False
            for i, frames in enumerate(frames_by_msg):
                if cursors[i] < len(frames):
                    out = reasm.add(frames[cursors[i]])
                    cursors[i] += 1
                    progressed = True
                    if out is not None:
                        completed.append(out.msg_id)
        expected = [frames[0].message.msg_id for frames in frames_by_msg]
        assert sorted(completed) == sorted(expected)
        assert reasm.in_flight == 0
