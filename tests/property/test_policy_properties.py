"""Property-based tests for replacement policies (LRU, MQ).

Invariants checked against arbitrary access traces:
* residency never exceeds capacity;
* a policy never evicts a key that is not resident;
* membership bookkeeping (contains/len/iter) stays consistent;
* LRU evicts exactly the least-recently-used key.
"""

from collections import OrderedDict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.lru import LRUPolicy
from repro.cache.mq import MQPolicy

KEYS = st.integers(min_value=0, max_value=30)
OPS = st.lists(
    st.tuples(st.sampled_from(["admit", "touch", "remove"]), KEYS),
    max_size=200)
CAPACITY = st.integers(min_value=1, max_value=10)


def apply_trace(policy, ops):
    """Run a trace, maintaining a reference membership set."""
    resident = set()
    for op, key in ops:
        if op == "admit":
            victim = policy.admit(key)
            if victim is not None:
                assert victim in resident
                assert victim != key
                resident.discard(victim)
            resident.add(key)
        elif op == "touch":
            if key in resident:
                policy.touch(key)
        else:
            policy.remove(key)
            resident.discard(key)
        yield resident


@settings(max_examples=150)
@given(CAPACITY, OPS)
def test_lru_membership_invariants(capacity, ops):
    policy = LRUPolicy(capacity)
    for resident in apply_trace(policy, ops):
        assert len(policy) == len(resident) <= capacity
        assert set(policy) == resident
        for key in resident:
            assert key in policy


@settings(max_examples=150)
@given(CAPACITY, OPS)
def test_mq_membership_invariants(capacity, ops):
    policy = MQPolicy(capacity)
    for resident in apply_trace(policy, ops):
        assert len(policy) == len(resident) <= capacity
        assert set(policy) == resident
        for key in resident:
            assert key in policy


@settings(max_examples=150)
@given(CAPACITY, st.lists(KEYS, max_size=120))
def test_lru_evicts_least_recently_used(capacity, accesses):
    """Model LRU with an OrderedDict oracle over an admit-only trace."""
    policy = LRUPolicy(capacity)
    oracle = OrderedDict()
    for key in accesses:
        victim = policy.admit(key)
        if key in oracle:
            oracle.move_to_end(key)
            assert victim is None
        else:
            if len(oracle) >= capacity:
                expected, _ = oracle.popitem(last=False)
                assert victim == expected
            else:
                assert victim is None
            oracle[key] = None
    assert list(policy) == list(oracle)


@settings(max_examples=100)
@given(CAPACITY, st.lists(KEYS, min_size=1, max_size=120))
def test_mq_internal_queue_consistency(capacity, accesses):
    """Every resident MQ key sits in exactly the queue its entry claims."""
    policy = MQPolicy(capacity)
    for key in accesses:
        policy.admit(key)
        for k, entry in policy._entries.items():
            assert k in policy._queues[entry.queue]
        queued = sum(len(q) for q in policy._queues)
        assert queued == len(policy._entries)
        assert len(policy._history) <= policy.history_size
