"""FaultSchedule: construction, expansion, determinism."""

import random

import pytest

from repro.faults import FaultSchedule
from repro.sim import RandomStreams


def test_at_sorts_and_carries_duration():
    sched = FaultSchedule.at([300.0, 100.0, 200.0], duration_us=50.0)
    assert sched.fires(random.Random(0)) == [
        (100.0, 50.0), (200.0, 50.0), (300.0, 50.0)]


def test_at_rejects_negative_times():
    with pytest.raises(ValueError):
        FaultSchedule.at([10.0, -1.0])


def test_at_does_not_consume_rng():
    rng = random.Random(42)
    before = rng.getstate()
    FaultSchedule.at([1.0, 2.0]).fires(rng)
    assert rng.getstate() == before


def test_burst_fixed_spacing():
    sched = FaultSchedule.burst(start_us=1000.0, count=3, spacing_us=10.0)
    assert sched.fires(random.Random(0)) == [
        (1000.0, 0.0), (1010.0, 0.0), (1020.0, 0.0)]


def test_burst_validation():
    with pytest.raises(ValueError):
        FaultSchedule.burst(0.0, count=0, spacing_us=1.0)
    with pytest.raises(ValueError):
        FaultSchedule.burst(0.0, count=2, spacing_us=-1.0)


def test_poisson_in_window_ascending_and_seeded():
    sched = FaultSchedule.poisson(rate_per_ms=2.0, start_us=1000.0,
                                  end_us=50_000.0)
    fires_a = sched.fires(RandomStreams(7).stream("s"))
    fires_b = sched.fires(RandomStreams(7).stream("s"))
    fires_c = sched.fires(RandomStreams(8).stream("s"))
    assert fires_a == fires_b          # same seed, same arrivals
    assert fires_a != fires_c          # different seed, different arrivals
    times = [t for t, _ in fires_a]
    assert times == sorted(times)
    assert all(1000.0 < t < 50_000.0 for t in times)
    # ~2/ms over 49ms: expect on the order of 100 arrivals, not 0 or 1e4.
    assert 20 < len(times) < 400


def test_poisson_validation():
    with pytest.raises(ValueError):
        FaultSchedule.poisson(0.0, 0.0, 100.0)
    with pytest.raises(ValueError):
        FaultSchedule.poisson(1.0, 100.0, 100.0)


def test_schedules_are_immutable():
    sched = FaultSchedule.at([1.0])
    with pytest.raises(Exception):
        sched.mode = "burst"
