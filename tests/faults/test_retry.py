"""RPC timeout/retry semantics: backoff, dedup by xid, span evidence."""

import pytest

from repro.cluster import Cluster
from repro.faults import Injector
from repro.params import KB
from repro.proto.rpc import RetryPolicy, RPCTimeoutError
from repro.sim import RandomStreams, Tracer


def make_cluster(**kw):
    kw.setdefault("block_size", 4 * KB)
    return Cluster(system="nfs", **kw)


# -- RetryPolicy --------------------------------------------------------------


def test_backoff_is_capped_exponential():
    policy = RetryPolicy(backoff_base_us=100.0, backoff_factor=2.0,
                         backoff_cap_us=400.0)
    assert [policy.backoff_us(a) for a in (1, 2, 3, 4, 5)] == \
        [100.0, 200.0, 400.0, 400.0, 400.0]


def test_backoff_jitter_is_seeded_and_bounded():
    def sequence():
        policy = RetryPolicy(backoff_base_us=100.0, backoff_factor=2.0,
                             backoff_cap_us=400.0, jitter=0.25,
                             rng=RandomStreams(5).stream("retry"))
        return [policy.backoff_us(a) for a in range(1, 6)]

    first, second = sequence(), sequence()
    assert first == second                       # same seed, same jitter
    nominal = [100.0, 200.0, 400.0, 400.0, 400.0]
    assert all(0.75 * n <= v <= 1.25 * n
               for v, n in zip(first, nominal))
    assert first != nominal                      # jitter actually applied


def test_retry_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(timeout_us=0.0)
    with pytest.raises(ValueError):
        RetryPolicy(max_retries=-1)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=1.0)


# -- duplicate suppression ----------------------------------------------------


def test_delayed_request_triggers_drc_replay_and_client_dedup():
    """A request delayed past the timeout is retransmitted; the late
    original is answered from the server's duplicate request cache and
    the client discards the extra reply by xid."""
    cluster = make_cluster()
    cluster.create_file("f", 16 * KB)
    inj = Injector(cluster)
    inj.enable_resilience(timeout_us=4000.0, jitter=0.0)
    inj.link.delay_next = 1
    inj.link.delay_us = 6000.0      # > timeout: forces a retransmission
    client = cluster.clients[0]

    def proc():
        yield from client.open("f")
        data = yield from client.read("f", 0, 4 * KB)
        return data

    assert cluster.sim.run_process(proc()) == ("f", 0, 0)
    rpc = client.rpc.stats
    assert rpc.get("retransmits") == 1
    # One of the two transmissions was served fresh, the other answered
    # from the DRC; whichever reply lost the race was suppressed.
    assert rpc.get("duplicate_replies") == 1
    assert cluster.server.rpc.stats.get("dup_replayed") == 1


def test_in_flight_duplicate_is_dropped_not_reexecuted():
    """A retransmission arriving while the original is still being
    served (slow cold read from disk) is dropped by the in-progress DRC
    entry — the handler runs once and one reply goes back."""
    cluster = make_cluster(server_cache_blocks=4)
    cluster.create_file("f", 16 * KB, warm=False)   # cold: ~5ms disk read
    inj = Injector(cluster)
    inj.enable_resilience(timeout_us=2000.0, jitter=0.0)
    client = cluster.clients[0]

    def proc():
        yield from client.open("f")
        data = yield from client.read("f", 0, 4 * KB)
        return data

    assert cluster.sim.run_process(proc()) == ("f", 0, 0)
    server = cluster.server.rpc.stats
    assert server.get("dup_dropped") >= 1
    assert server.get("dup_replayed") == 0
    assert client.rpc.stats.get("retransmits") >= 1


def test_retry_budget_exhaustion_raises_timeout_error():
    cluster = make_cluster()
    cluster.create_file("f", 16 * KB)
    inj = Injector(cluster)
    inj.enable_resilience(timeout_us=1000.0, max_retries=2, jitter=0.0)
    inj.partition("server")         # nothing gets through, ever
    client = cluster.clients[0]

    def proc():
        try:
            yield from client.open("f")
        except RPCTimeoutError as exc:
            return str(exc)
        return None

    result = cluster.sim.run_process(proc())
    assert result is not None and "no reply after 2" in result
    assert client.rpc.stats.get("rpc_timeouts") == 1
    assert client.rpc.stats.get("retransmits") == 2


# -- span evidence ------------------------------------------------------------


def test_retransmission_shows_up_in_span_breakdown():
    cluster = make_cluster()
    cluster.create_file("f", 16 * KB)
    tracer = Tracer.attach(cluster.sim)
    inj = Injector(cluster)
    inj.enable_resilience(timeout_us=4000.0, jitter=0.0)
    client = cluster.clients[0]

    def proc():
        yield from client.open("f")
        inj.link.drop_next = 1      # lose the next request frame
        yield from client.read("f", 0, 4 * KB)

    cluster.sim.run_process(proc())
    read_spans = [s for s in tracer.finished_spans() if s.op == "read"]
    assert len(read_spans) == 1
    breakdown = read_spans[0].breakdown()
    # The wait-until-timeout and the backoff sleep are separate stages
    # on the critical path, and they sum into the span's duration.
    assert breakdown["rpc.timeout"] == pytest.approx(4000.0, abs=1.0)
    assert breakdown["rpc.backoff"] == pytest.approx(200.0, abs=1.0)
    assert sum(breakdown.values()) == pytest.approx(
        read_spans[0].duration)
