"""Tests for the repro.faults fault-injection subsystem."""
