"""Injector: adapters, schedules, recovery, and zero-impact attachment."""

import pytest

from repro.cluster import Cluster
from repro.faults import FaultSchedule, Injector
from repro.params import KB
from repro.proto.rpc import RPCError


def make_cluster(system="nfs", **kw):
    kw.setdefault("block_size", 4 * KB)
    if system in ("dafs", "odafs"):
        kw.setdefault("client_kwargs",
                      {"cache_blocks": 8, "rpc_read_mode": "direct"})
    return Cluster(system=system, **kw)


def read_all(cluster, name="f", blocks=8, passes=1):
    client = cluster.clients[0]
    state = {"ok": 0, "failed": 0}

    def proc():
        yield from client.open(name)
        for _ in range(passes):
            for i in range(blocks):
                try:
                    data = yield from client.read(name, i * 4 * KB, 4 * KB)
                except RPCError:
                    state["failed"] += 1
                else:
                    assert data == (name, i, 0)
                    state["ok"] += 1

    cluster.sim.run_process(proc())
    return state


# -- link ---------------------------------------------------------------------


def test_link_drop_recovered_by_retransmission():
    cluster = make_cluster("nfs")
    cluster.create_file("f", 32 * KB)
    inj = Injector(cluster)
    inj.enable_resilience()
    inj.link.drop_next = 1          # exactly one lost frame
    state = read_all(cluster, blocks=8)
    assert state == {"ok": 8, "failed": 0}
    assert inj.stats.get("link.drop") == 1
    assert cluster.clients[0].rpc.stats.get("retransmits") >= 1


def test_link_partition_and_heal():
    cluster = make_cluster("nfs")
    cluster.create_file("f", 16 * KB)
    inj = Injector(cluster)
    inj.enable_resilience()
    # Partition for a window shorter than the full retry budget: reads
    # issued inside the window recover once the partition heals.
    inj.schedule_partition(
        FaultSchedule.at([100.0], duration_us=6000.0), "client0")
    inj.arm()
    state = read_all(cluster, blocks=4)
    assert state == {"ok": 4, "failed": 0}
    assert inj.stats.get("link.partition") >= 1


def test_link_delay_slows_but_does_not_break():
    fast = make_cluster("nfs")
    fast.create_file("f", 32 * KB)
    base = read_all(fast, blocks=8)
    slow = make_cluster("nfs")
    slow.create_file("f", 32 * KB)
    inj = Injector(slow)
    inj.enable_resilience()
    inj.link_delay(1.0, spike_us=100.0)
    state = read_all(slow, blocks=8)
    assert base == state == {"ok": 8, "failed": 0}
    assert slow.sim.now > fast.sim.now
    assert inj.stats.get("link.delay") > 0


# -- NIC ----------------------------------------------------------------------


def test_doorbell_stall_adds_latency():
    plain = make_cluster("nfs")
    plain.create_file("f", 16 * KB)
    read_all(plain, blocks=4)
    stalled = make_cluster("nfs")
    stalled.create_file("f", 16 * KB)
    inj = Injector(stalled)
    inj.nic(stalled.client_hosts[0]).stall_next = 1
    inj.nic(stalled.client_hosts[0]).stall_us = 500.0
    read_all(stalled, blocks=4)
    assert inj.stats.get("nic.doorbell_stall") == 1
    assert stalled.sim.now == pytest.approx(plain.sim.now + 500.0)


def test_ordma_storm_falls_back_to_rpc():
    cluster = make_cluster("odafs")
    cluster.create_file("f", 64 * KB)
    inj = Injector(cluster)
    inj.enable_resilience()
    # Every optimistic access faults for the first 4 attempts.
    inj.schedule_ordma_storm(FaultSchedule.at([0.0]), count=4)
    inj.arm()
    # Two passes through a tiny client cache: pass 2 goes optimistic.
    state = read_all(cluster, blocks=16, passes=2)
    assert state == {"ok": 32, "failed": 0}
    assert inj.stats.get("nic.ordma_reject") == 4
    assert cluster.clients[0].stats.get("ordma_faults") == 4
    # Recovery refreshed the references: later fills used ORDMA again.
    assert cluster.clients[0].stats.get("ordma_reads") > 0


# -- disk ---------------------------------------------------------------------


def test_transient_disk_error_is_retried():
    cluster = make_cluster("nfs", server_cache_blocks=4)
    cluster.create_file("f", 32 * KB, warm=False)   # cold: reads hit disk
    inj = Injector(cluster)
    inj.enable_resilience()
    inj.disk.error_next = 1
    state = read_all(cluster, blocks=8)
    assert state == {"ok": 8, "failed": 0}
    assert inj.stats.get("disk.io_error") == 1
    assert cluster.disk.stats.get("io_errors") == 1


def test_persistent_disk_error_surfaces_as_rpc_error():
    cluster = make_cluster("nfs", server_cache_blocks=4)
    cluster.create_file("f", 16 * KB, warm=False)
    inj = Injector(cluster)
    inj.enable_resilience()
    inj.disk_errors(1.0, max_retries=2)     # every attempt fails
    state = read_all(cluster, blocks=4)
    # The server's handler fault becomes an rpc_error reply, not a hang
    # and not a dead serve loop.
    assert state["ok"] == 0
    assert state["failed"] == 4
    assert cluster.server.rpc.stats.get("handler_faults") == 4


def test_disk_delay_spike_slows_cold_reads():
    cold = make_cluster("nfs", server_cache_blocks=4)
    cold.create_file("f", 16 * KB, warm=False)
    read_all(cold, blocks=4)
    spiky = make_cluster("nfs", server_cache_blocks=4)
    spiky.create_file("f", 16 * KB, warm=False)
    inj = Injector(spiky)
    inj.enable_resilience()
    inj.disk_delays(1.0, spike_us=2000.0)
    read_all(spiky, blocks=4)
    assert inj.stats.get("disk.delay") == 4
    assert spiky.sim.now > cold.sim.now


# -- server crash -------------------------------------------------------------


def test_server_crash_restart_and_cache_loss():
    cluster = make_cluster("nfs")
    cluster.create_file("f", 32 * KB)       # warm: 8 cached blocks
    inj = Injector(cluster)
    inj.enable_resilience()
    inj.schedule_server_crash(FaultSchedule.at([200.0]),
                              downtime_us=1500.0)
    inj.arm()
    state = read_all(cluster, blocks=8, passes=2)
    assert state == {"ok": 16, "failed": 0}
    rpc = cluster.server.rpc.stats
    assert rpc.get("crashes") == 1
    assert rpc.get("restarts") == 1
    assert inj.stats.get("server.crash") == 1
    # The file cache did not survive: blocks were lost and refilled.
    assert inj.stats.get("server.cache_blocks_lost") == 8
    assert cluster.clients[0].rpc.stats.get("retransmits") >= 1


def test_server_crash_invalidates_odafs_references():
    # Client cache smaller than the file so pass 2 actually refills.
    cluster = make_cluster(
        "odafs", client_kwargs={"cache_blocks": 4,
                                "rpc_read_mode": "direct"})
    cluster.create_file("f", 32 * KB)
    inj = Injector(cluster)
    inj.enable_resilience()
    client = cluster.clients[0]

    def proc():
        yield from client.open("f")
        # Pass 1 populates the reference directory.
        for i in range(8):
            yield from client.read("f", i * 4 * KB, 4 * KB)
        # Crash: the export map is torn down with the cache.
        inj.server.crash_now(cluster.server.rpc, 1000.0)
        yield cluster.sim.timeout(2000.0)
        # Pass 2 (cold client cache) goes optimistic with stale refs.
        for i in range(8):
            data = yield from client.read("f", i * 4 * KB, 4 * KB)
            assert data == ("f", i, 0)

    cluster.sim.run_process(proc())
    assert inj.stats.get("server.cache_blocks_lost") == 8
    assert client.stats.get("ordma_faults") > 0


# -- scheduling API -----------------------------------------------------------


def test_schedule_after_arm_is_rejected():
    cluster = make_cluster("nfs")
    inj = Injector(cluster)
    inj.arm()
    with pytest.raises(RuntimeError):
        inj.schedule(FaultSchedule.at([1.0]), "late", lambda: None)


def test_partition_schedule_requires_duration():
    inj = Injector(make_cluster("nfs"))
    with pytest.raises(ValueError):
        inj.schedule_partition(FaultSchedule.at([1.0]), "client0")


# -- the zero-impact guarantee ------------------------------------------------


@pytest.mark.parametrize("system", ["nfs", "dafs", "odafs"])
def test_unconfigured_injector_is_bit_identical(system):
    """Attaching (and arming) an injector with no faults configured and
    no resilience enabled must not move a single event: same finish
    time, same metrics, to the last counter."""
    def run(with_injector):
        cluster = make_cluster(system)
        cluster.create_file("f", 32 * KB)
        if with_injector:
            inj = Injector(cluster)
            _ = inj.link, inj.disk, inj.server          # install adapters
            inj.nic(cluster.server_host)
            inj.nic(cluster.client_hosts[0])
            inj.arm()
        read_all(cluster, blocks=8, passes=2)
        snap = cluster.metrics.snapshot()
        snap.pop("faults", None)
        return cluster.sim.now, snap

    assert run(False) == run(True)
