"""Chaos campaign runner: determinism, completion, CLI surface."""

import json

from repro.bench.chaos import (campaign_failures, chaos_campaign, main,
                               run_point)
from repro.params import default_params


FAULTY = "0.1000"


def tiny_campaign(seed=7):
    # 10% rate: the workload is tiny, so a lower rate can legitimately
    # draw zero faults for a class with few decision points.
    return chaos_campaign(params=default_params().copy(seed=seed),
                          systems=("nfs", "odafs"),
                          fault_classes=("link", "nic"),
                          rates=(0.0, 0.1), blocks=12, passes=2)


def test_campaign_is_deterministic_for_a_fixed_seed():
    a, b = tiny_campaign(seed=7), tiny_campaign(seed=7)
    assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)


def test_campaign_seed_actually_matters():
    # Different seed, different fault arrivals: some point must differ.
    a, b = tiny_campaign(seed=7), tiny_campaign(seed=8)
    assert json.dumps(a, sort_keys=True) != json.dumps(b, sort_keys=True)


def test_all_points_complete_and_faults_degrade_throughput():
    results = tiny_campaign()
    assert campaign_failures(results) == 0
    for system, per_class in results.items():
        for fault_class, series in per_class.items():
            clean = series["0.0000"]
            faulty = series[FAULTY]
            assert clean["ops_failed"] == 0
            assert clean["faults_injected"] == 0
            assert faulty["faults_injected"] > 0
            # Faults cost time: the faulty point is never faster.
            assert faulty["sim_us"] >= clean["sim_us"]


def test_odafs_fallback_fraction_is_reported():
    results = tiny_campaign()
    faulty = results["odafs"]["nic"][FAULTY]
    # Rejected optimistic accesses must show up as RPC fallbacks.
    assert faulty["ordma_faults"] > 0
    assert faulty["rpc_fallback_frac"] > \
        results["odafs"]["nic"]["0.0000"]["rpc_fallback_frac"]


def test_run_point_survives_every_class_at_5_percent():
    for fault_class in ("link", "nic", "disk", "server"):
        point, _ = run_point("dafs", fault_class, 0.05, blocks=12,
                             passes=2)
        assert point["completed"], fault_class
        assert point["ops_ok"] > 0, fault_class


def test_cli_json_output_round_trips(capsys):
    rc = main(["--seed", "7", "--json", "--systems", "nfs",
               "--classes", "link", "--rates", "0.0", "0.05",
               "--blocks", "8"])
    assert rc == 0
    out = json.loads(capsys.readouterr().out)
    assert out["seed"] == 7
    assert "nfs" in out["results"]
    assert set(out["results"]["nfs"]["link"]) == {"0.0000", "0.0500"}


def test_cli_dump_writes_loadable_trace(tmp_path, capsys):
    path = tmp_path / "chaos.jsonl"
    rc = main(["--seed", "7", "--systems", "odafs", "--classes", "nic",
               "--rates", "0.25", "--blocks", "12", "--json",
               "--dump", str(path)])
    assert rc == 0
    capsys.readouterr()
    from repro.sim import load_jsonl
    dump = load_jsonl(str(path))
    kinds = {ev.kind for ev in dump.events}
    assert "fault" in kinds          # injected faults round-trip
    assert dump.finished_spans()     # spans survived the dump too
