"""Tests for GM/VI endpoints and the UDP stack, anchored to Table 2."""

import pytest

from repro.hw import Host, NotifyMode
from repro.net import Switch
from repro.params import default_params
from repro.proto import GMEndpoint, UDPStack, VIEndpoint
from repro.sim import Simulator


def make_pair(params=None):
    sim = Simulator()
    params = params or default_params()
    switch = Switch(sim, params.net)
    a = Host(sim, params, switch, "A")
    b = Host(sim, params, switch, "B")
    return sim, a, b


def pingpong_rtt(sim, ep_a, ep_b, nbytes=1):
    """One-byte ping-pong round trip time over two endpoints."""

    def pong():
        yield from ep_b.recv()
        yield from ep_b.send("A", nbytes)

    def ping():
        start = sim.now
        yield from ep_a.send("B", nbytes)
        yield from ep_a.recv()
        return sim.now - start

    sim.process(pong())
    proc = sim.process(ping())
    sim.run()
    return proc.value


def stream_bandwidth(sim, send_fn, recv_fn, count, nbytes):
    """Throughput of `count` back-to-back messages of `nbytes`."""

    def sender():
        for i in range(count):
            yield from send_fn(i)

    def receiver():
        for _ in range(count):
            yield from recv_fn()
        return count * nbytes / sim.now

    sim.process(sender())
    proc = sim.process(receiver())
    sim.run()
    return proc.value


class TestVI:
    def test_poll_rtt_matches_table2(self):
        """Table 2: VI polling 1-byte RTT ~= 23 us."""
        sim, a, b = make_pair()
        ep_a = VIEndpoint(a, 1, mode=NotifyMode.POLL, slots=4, buf_size=4096)
        ep_b = VIEndpoint(b, 1, mode=NotifyMode.POLL, slots=4, buf_size=4096)
        rtt = pingpong_rtt(sim, ep_a, ep_b)
        assert rtt == pytest.approx(23.0, rel=0.20)

    def test_block_rtt_matches_table2(self):
        """Table 2: VI blocking 1-byte RTT ~= 53 us."""
        sim, a, b = make_pair()
        ep_a = VIEndpoint(a, 1, mode=NotifyMode.BLOCK, slots=4, buf_size=4096)
        ep_b = VIEndpoint(b, 1, mode=NotifyMode.BLOCK, slots=4, buf_size=4096)
        rtt = pingpong_rtt(sim, ep_a, ep_b)
        assert rtt == pytest.approx(53.0, rel=0.20)

    def test_block_slower_than_poll(self):
        sim1, a1, b1 = make_pair()
        poll = pingpong_rtt(
            sim1,
            VIEndpoint(a1, 1, mode=NotifyMode.POLL, slots=4, buf_size=4096),
            VIEndpoint(b1, 1, mode=NotifyMode.POLL, slots=4, buf_size=4096))
        sim2, a2, b2 = make_pair()
        block = pingpong_rtt(
            sim2,
            VIEndpoint(a2, 1, mode=NotifyMode.BLOCK, slots=4, buf_size=4096),
            VIEndpoint(b2, 1, mode=NotifyMode.BLOCK, slots=4, buf_size=4096))
        assert block > poll + 20.0

    def test_stream_bandwidth_matches_table2(self):
        """Table 2: VI streaming bandwidth ~= 244 MB/s."""
        sim, a, b = make_pair()
        size = 64 * 1024
        ep_a = VIEndpoint(a, 1, slots=4, buf_size=size)
        ep_b = VIEndpoint(b, 1, slots=64, buf_size=size)
        bw = stream_bandwidth(
            sim,
            lambda i: ep_a.send("B", size, data=i),
            ep_b.recv, count=48, nbytes=size)
        assert bw == pytest.approx(244.0, rel=0.05)


class TestGM:
    def test_recv_reposts_ring_buffer(self):
        sim, a, b = make_pair()
        ep_a = GMEndpoint(a, 1, slots=2, buf_size=4096)
        ep_b = GMEndpoint(b, 1, slots=2, buf_size=4096)

        def sender():
            for i in range(8):  # more messages than ring slots
                yield from ep_a.send("B", 1024, data=i)
                yield from ep_a.recv()  # simple ack to pace the ring

        def echo():
            for _ in range(8):
                msg = yield from ep_b.recv()
                yield from ep_b.send("A", 1, data=msg.data)

        sim.process(echo())
        proc = sim.process(sender())
        sim.run()
        assert proc.triggered
        assert b.nic.stats.get("gm_recv_drop") == 0


class TestUDP:
    def test_rtt_matches_table2(self):
        """Table 2: UDP/Ethernet 1-byte RTT ~= 80 us."""
        sim, a, b = make_pair()
        sock_a = UDPStack(a).socket(2049)
        sock_b = UDPStack(b).socket(2049)

        def pong():
            yield from sock_b.recv()
            yield from sock_b.send("A", 1)

        def ping():
            start = sim.now
            yield from sock_a.send("B", 1)
            yield from sock_a.recv()
            return sim.now - start

        sim.process(pong())
        proc = sim.process(ping())
        sim.run()
        assert proc.value == pytest.approx(80.0, rel=0.25)

    def test_stream_bandwidth_matches_table2(self):
        """Table 2: UDP streaming (netperf-style, copies both sides)
        ~= 166 MB/s."""
        sim, a, b = make_pair()
        sock_a = UDPStack(a).socket(9000)
        sock_b = UDPStack(b).socket(9000)
        size = 32 * 1024
        count = 64

        def send(i):
            yield from sock_a.send("B", size, data=i, copy="cached")

        def recv():
            msg = yield from sock_b.recv()
            yield from b.cpu.copy(msg.size, cached=True)

        bw = stream_bandwidth(sim, send, recv, count, size)
        assert bw == pytest.approx(166.0, rel=0.15)

    def test_duplicate_bind_rejected(self):
        sim, a, b = make_pair()
        stack = UDPStack(a)
        stack.socket(7)
        with pytest.raises(ValueError):
            stack.socket(7)

    def test_unbound_port_drops(self):
        sim, a, b = make_pair()
        UDPStack(b)  # stack exists, no socket bound
        sock_a = UDPStack(a).socket(5)

        def sender():
            yield from sock_a.send("B", 100, data="x")

        sim.process(sender())
        sim.run()  # must not raise

    def test_payload_delivered_intact(self):
        sim, a, b = make_pair()
        sock_a = UDPStack(a).socket(53)
        sock_b = UDPStack(b).socket(53)

        def sender():
            yield from sock_a.send("B", 24 * 1024, data={"k": "v"})

        def receiver():
            msg = yield from sock_b.recv()
            return msg.data, msg.size

        sim.process(sender())
        proc = sim.process(receiver())
        sim.run()
        assert proc.value == ({"k": "v"}, 24 * 1024)
