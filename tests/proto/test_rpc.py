"""Tests for the RPC layer over GM and UDP transports."""

import pytest

from repro.hw import Host
from repro.net import Switch
from repro.params import default_params
from repro.proto import (
    RPC_HEADER_BYTES,
    GMEndpoint,
    RPCClient,
    RPCError,
    RPCReply,
    RPCServer,
    UDPStack,
)
from repro.sim import Simulator


@pytest.fixture
def rig():
    sim = Simulator()
    params = default_params()
    switch = Switch(sim, params.net)
    client_host = Host(sim, params, switch, "client")
    server_host = Host(sim, params, switch, "server")
    return sim, client_host, server_host


def gm_rig(rig):
    sim, ch, sh = rig
    client_ep = GMEndpoint(ch, 10, slots=16, buf_size=128 * 1024)
    server_ep = GMEndpoint(sh, 10, slots=16, buf_size=128 * 1024)
    client = RPCClient(ch, client_ep, "server")
    server = RPCServer(sh, server_ep)
    return sim, client, server, ch, sh


def test_basic_call_response(rig):
    sim, client, server, ch, sh = gm_rig(rig)

    def echo(srv, req):
        yield from srv.host.cpu.execute(1.0)
        return RPCReply(meta={"echo": req.args["value"]})

    server.register("echo", echo)
    server.start()

    def caller():
        resp = yield from client.call("echo", {"value": 42})
        return resp.meta["echo"]

    assert sim.run_process(caller()) == 42


def test_inline_payload_delivered(rig):
    sim, client, server, ch, sh = gm_rig(rig)

    def read(srv, req):
        yield from srv.host.cpu.execute(1.0)
        return RPCReply(inline_bytes=req.args["nbytes"], data="filedata")

    server.register("read", read)
    server.start()

    def caller():
        resp = yield from client.call("read", {"nbytes": 8192})
        return resp.data, resp.size

    data, size = sim.run_process(caller())
    assert data == "filedata"
    assert size == RPC_HEADER_BYTES + 8192


def test_unknown_proc_raises(rig):
    sim, client, server, ch, sh = gm_rig(rig)
    server.start()

    def caller():
        try:
            yield from client.call("nope")
        except RPCError as exc:
            return str(exc)

    assert "nope" in sim.run_process(caller())


def test_concurrent_calls_matched_by_xid(rig):
    sim, client, server, ch, sh = gm_rig(rig)

    def slow_echo(srv, req):
        yield srv.host.sim.timeout(req.args["delay"])
        return RPCReply(meta={"value": req.args["value"]})

    server.register("echo", slow_echo)
    server.start()

    def one(value, delay):
        resp = yield from client.call("echo", {"value": value,
                                               "delay": delay})
        return resp.meta["value"]

    def main():
        procs = [sim.process(one(i, delay))
                 for i, delay in enumerate([300.0, 10.0, 100.0])]
        results = yield sim.all_of(procs)
        return [p.value for p in procs]

    assert sim.run_process(main()) == [0, 1, 2]


def test_duplicate_handler_rejected(rig):
    sim, client, server, ch, sh = gm_rig(rig)

    def h(srv, req):
        yield from srv.host.cpu.execute(1.0)
        return RPCReply()

    server.register("x", h)
    with pytest.raises(RPCError):
        server.register("x", h)


def test_server_double_start_rejected(rig):
    sim, client, server, ch, sh = gm_rig(rig)
    server.start()
    with pytest.raises(RPCError):
        server.start()


def test_kernel_client_charges_more_cpu(rig):
    sim, ch, sh = rig
    params = ch.params
    user_ep = GMEndpoint(ch, 10, slots=4, buf_size=4096)
    kern_ep = GMEndpoint(ch, 11, slots=4, buf_size=4096)
    server_ep10 = GMEndpoint(sh, 10, slots=4, buf_size=4096)
    server_ep11 = GMEndpoint(sh, 11, slots=4, buf_size=4096)
    user_client = RPCClient(ch, user_ep, "server", kernel=False)
    kern_client = RPCClient(ch, kern_ep, "server", kernel=True)
    for ep in (server_ep10, server_ep11):
        srv = RPCServer(sh, ep)

        def h(s, req):
            yield from s.host.cpu.execute(0.5)
            return RPCReply()

        srv.register("op", h)
        srv.start()

    def run(client):
        before = ch.cpu.busy.busy_us
        yield from client.call("op")
        return ch.cpu.busy.busy_us - before

    user_cost = sim.run_process(run(user_client))
    kern_cost = sim.run_process(run(kern_client))
    assert kern_cost == pytest.approx(
        user_cost + 2 * params.proto.kernel_rpc_extra_us)


def test_rpc_over_udp(rig):
    sim, ch, sh = rig
    client_sock = UDPStack(ch).socket(2049)
    server_sock = UDPStack(sh).socket(2049)
    client = RPCClient(ch, client_sock, "server", kernel=True)
    server = RPCServer(sh, server_sock)

    def read(srv, req):
        yield from srv.host.cpu.execute(1.0)
        return RPCReply(inline_bytes=16384, data="nfs-data")

    server.register("read", read)
    server.start()

    def caller():
        resp = yield from client.call("read")
        return resp.data

    assert sim.run_process(caller()) == "nfs-data"


def test_rddp_tagged_response_lands_in_user_buffer(rig):
    """RDDP-RPC end to end: the NIC header-splits the tagged response and
    the payload lands in the pre-posted user buffer with no copy."""
    sim, ch, sh = rig
    client_sock = UDPStack(ch).socket(2049)
    server_sock = UDPStack(sh).socket(2049)
    client = RPCClient(ch, client_sock, "server", kernel=True)
    server = RPCServer(sh, server_sock)

    def read(srv, req):
        yield from srv.host.cpu.execute(1.0)
        return RPCReply(inline_bytes=32768, data="direct-placed")

    server.register("read", read)
    server.start()
    user_buf = ch.mem.alloc(32768, name="user")

    def caller():
        resp = yield from client.call("read", rddp_buffer=user_buf)
        return resp.meta.get("rddp_split_done"), user_buf.data

    split_done, data = sim.run_process(caller())
    assert split_done is True
    assert data == "direct-placed"
    assert ch.nic.stats.get("rddp_split") == 1
    # Registration must be balanced: buffer unpinned after the call.
    assert not any(p.pinned for p in user_buf.pages)


def test_rddp_tag_cancelled_after_call(rig):
    sim, ch, sh = rig
    client_sock = UDPStack(ch).socket(2049)
    server_sock = UDPStack(sh).socket(2049)
    client = RPCClient(ch, client_sock, "server")
    server = RPCServer(sh, server_sock)

    def read(srv, req):
        yield from srv.host.cpu.execute(1.0)
        return RPCReply(inline_bytes=4096, data="x")

    server.register("read", read)
    server.start()
    buf = ch.mem.alloc(4096)

    def caller():
        yield from client.call("read", rddp_buffer=buf)
        return len(ch.nic._rddp_tags)

    assert sim.run_process(caller()) == 0
