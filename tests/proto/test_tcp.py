"""Tests for the TCP transport: handshake, framing, windowing, loss."""

import pytest

from repro.hw import Host
from repro.net import Switch
from repro.params import default_params
from repro.proto.rpc import RPCClient, RPCReply, RPCServer
from repro.proto.tcp import TCPError, TCPStack
from repro.sim import Simulator


def make_pair(params=None):
    sim = Simulator()
    params = params or default_params()
    switch = Switch(sim, params.net)
    a = Host(sim, params, switch, "A")
    b = Host(sim, params, switch, "B")
    return sim, a, b


def connect(sim, a, b, port=6000, **stack_kw):
    stack_a = TCPStack(a, **stack_kw)
    stack_b = TCPStack(b, **stack_kw)
    listener = stack_b.listen(port)
    client_conn = {}
    server_conn = {}

    def dial():
        conn = yield from stack_a.connect("B", port)
        client_conn["conn"] = conn

    def serve():
        conn = yield from listener.accept()
        server_conn["conn"] = conn

    sim.process(dial())
    sim.process(serve())
    sim.run()
    return client_conn["conn"], server_conn["conn"]


class TestHandshake:
    def test_connect_establishes_both_ends(self):
        sim, a, b = make_pair()
        c, s = connect(sim, a, b)
        assert c.peer == "B" and s.peer == "A"
        assert c._established.triggered and s._established.triggered

    def test_handshake_takes_about_one_rtt(self):
        sim, a, b = make_pair()
        connect(sim, a, b)
        assert 30.0 < sim.now < 200.0

    def test_duplicate_listen_rejected(self):
        sim, a, b = make_pair()
        stack = TCPStack(b)
        stack.listen(1)
        with pytest.raises(TCPError):
            stack.listen(1)


class TestDataTransfer:
    def test_small_message_roundtrip(self):
        sim, a, b = make_pair()
        c, s = connect(sim, a, b)

        def client():
            yield from c.send("B", 100, data="ping", meta={"k": 1})
            reply = yield from c.recv()
            return reply.data, reply.meta["k"]

        def server():
            msg = yield from s.recv()
            yield from s.send("A", 100, data=msg.data + "-pong",
                              meta={"k": msg.meta["k"] + 1})

        sim.process(server())
        proc = sim.process(client())
        sim.run()
        assert proc.value == ("ping-pong", 2)

    def test_large_message_segmented_and_reassembled(self):
        sim, a, b = make_pair()
        c, s = connect(sim, a, b)
        size = 256 * 1024  # 32 MSS

        def client():
            yield from c.send("B", size, data="bulk")

        def server():
            msg = yield from s.recv()
            return msg.size, msg.data

        sim.process(client())
        proc = sim.process(server())
        sim.run()
        assert proc.value == (size, "bulk")

    def test_send_to_wrong_peer_rejected(self):
        sim, a, b = make_pair()
        c, s = connect(sim, a, b)

        def client():
            yield from c.send("C", 10)

        sim.process(client())
        with pytest.raises(TCPError):
            sim.run()

    def test_interleaved_messages_frame_correctly(self):
        sim, a, b = make_pair()
        c, s = connect(sim, a, b)

        def client():
            procs = [sim.process(c.send("B", 64 * 1024, data=f"m{i}"))
                     for i in range(4)]
            yield sim.all_of(procs)

        def server():
            got = []
            for _ in range(4):
                msg = yield from s.recv()
                got.append(msg.data)
            return sorted(got)

        sim.process(client())
        proc = sim.process(server())
        sim.run()
        assert proc.value == ["m0", "m1", "m2", "m3"]


class TestCongestionWindow:
    def test_slow_start_grows_window(self):
        sim, a, b = make_pair()
        c, s = connect(sim, a, b, initial_cwnd=2, max_cwnd=32)

        def client():
            yield from c.send("B", 512 * 1024)

        def server():
            yield from s.recv()

        sim.process(client())
        sim.process(server())
        sim.run()
        assert c._cwnd > 2

    def test_throughput_below_udp_equivalent(self):
        """TCP's per-segment host costs keep it below the offloaded-UDP
        configuration — the paper's reason for choosing UDP (Section 5)."""
        from repro.proto.udp import UDPStack
        size, count = 64 * 1024, 32

        sim, a, b = make_pair()
        c, s = connect(sim, a, b)
        start = sim.now

        def client():
            for i in range(count):
                yield from c.send("B", size, data=i)

        def server():
            for _ in range(count):
                yield from s.recv()
            return count * size / (sim.now - start)

        sim.process(client())
        proc = sim.process(server())
        sim.run()
        tcp_bw = proc.value

        sim2, a2, b2 = make_pair()
        sa = UDPStack(a2).socket(9)
        sb = UDPStack(b2).socket(9)

        def usend():
            for i in range(count):
                yield from sa.send("B", size, data=i)

        def urecv():
            for _ in range(count):
                yield from sb.recv()
            return count * size / sim2.now

        sim2.process(usend())
        uproc = sim2.process(urecv())
        sim2.run()
        assert tcp_bw < uproc.value
        assert tcp_bw > 50.0  # but still a functional bulk transport


class TestLossRecovery:
    def test_messages_survive_loss(self):
        params = default_params()
        params.net.loss_probability = 0.02
        sim, a, b = make_pair(params)
        c, s = connect(sim, a, b, rto_us=2000.0)

        def client():
            for i in range(20):
                yield from c.send("B", 32 * 1024, data=i)

        def server():
            got = []
            for _ in range(20):
                msg = yield from s.recv()
                got.append(msg.data)
            return got

        sim.process(client())
        proc = sim.process(server())
        sim.run()
        assert sorted(proc.value) == list(range(20))
        assert c.retransmissions > 0

    def test_timeout_shrinks_window(self):
        params = default_params()
        params.net.loss_probability = 0.05
        sim, a, b = make_pair(params)
        c, s = connect(sim, a, b, rto_us=2000.0, initial_cwnd=2,
                       max_cwnd=64)

        def client():
            yield from c.send("B", 512 * 1024)

        def server():
            yield from s.recv()

        sim.process(client())
        sim.process(server())
        sim.run()
        assert c.retransmissions > 0
        assert c._ssthresh < 64


class TestRPCOverTCP:
    def test_rpc_works_over_tcp_transport(self):
        """The framed connection satisfies the RPC transport interface."""
        sim, a, b = make_pair()
        c, s = connect(sim, a, b)
        client = RPCClient(a, c, "B")
        server = RPCServer(b, s)

        def read(srv, req):
            yield from srv.host.cpu.execute(1.0)
            return RPCReply(inline_bytes=16384, data="tcp-nfs-data")

        server.register("read", read)
        server.start()

        def caller():
            resp = yield from client.call("read")
            return resp.data

        assert sim.run_process(caller()) == "tcp-nfs-data"
