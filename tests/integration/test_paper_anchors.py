"""Integration anchors: quick versions of the paper's headline numbers.

These run the same experiments as benchmarks/ at reduced scale so that
``pytest tests/`` alone validates the reproduction end to end.
"""

import pytest

from repro.bench.baseline import gm_baseline, udp_baseline, vi_baseline
from repro.bench.figures import (
    fig6_postmark,
    fig7_server_throughput,
    table3_response_time,
)
from repro.hw.nic import NotifyMode


class TestTransportAnchors:
    def test_gm(self):
        out = gm_baseline()
        assert out["roundtrip_us"] == pytest.approx(23.0, rel=0.15)
        assert out["bandwidth_mb_s"] == pytest.approx(244.0, rel=0.05)

    def test_vi_poll_vs_block(self):
        poll = vi_baseline(mode="poll")
        block = vi_baseline(mode="block")
        assert poll["roundtrip_us"] == pytest.approx(23.0, rel=0.15)
        assert block["roundtrip_us"] == pytest.approx(53.0, rel=0.15)

    def test_udp(self):
        out = udp_baseline()
        assert out["roundtrip_us"] == pytest.approx(80.0, rel=0.15)
        assert out["bandwidth_mb_s"] == pytest.approx(166.0, rel=0.15)


class TestTable3Anchors:
    @pytest.fixture(scope="class")
    def t3(self):
        return table3_response_time(n_blocks=192, measure_blocks=96)

    def test_ordma_fastest_and_near_92us(self, t3):
        assert t3["ordma"]["in_cache"] == pytest.approx(92.0, rel=0.10)

    def test_direct_rpc_near_144us(self, t3):
        assert t3["rpc_direct"]["in_cache"] == pytest.approx(144.0, rel=0.10)

    def test_inline_near_paper(self, t3):
        assert t3["rpc_inline"]["in_mem"] == pytest.approx(128.0, rel=0.10)
        assert t3["rpc_inline"]["in_cache"] == pytest.approx(153.0, rel=0.10)

    def test_response_time_improvement_near_36_percent(self, t3):
        gain = 1.0 - t3["ordma"]["in_cache"] / t3["rpc_direct"]["in_cache"]
        assert gain == pytest.approx(0.36, abs=0.06)


class TestServerThroughputAnchors:
    def test_polling_dafs_170_and_odafs_gain_32(self):
        out = fig7_server_throughput(block_sizes_kb=(4,),
                                     blocks_per_file=256,
                                     server_mode=NotifyMode.POLL)
        dafs = out["dafs"][4]["throughput_mb_s"]
        odafs = out["odafs"][4]["throughput_mb_s"]
        assert dafs == pytest.approx(170.0, rel=0.10)
        assert odafs / dafs - 1.0 == pytest.approx(0.32, abs=0.08)

    def test_odafs_zero_server_cpu(self):
        out = fig7_server_throughput(block_sizes_kb=(4,),
                                     blocks_per_file=192)
        assert out["odafs"][4]["server_cpu"] < 0.02
        assert out["odafs"][4]["throughput_mb_s"] > 200.0


class TestPostMarkAnchors:
    def test_odafs_gain_and_server_cpu(self):
        out = fig6_postmark(hit_ratios=(0.5,), n_files=192,
                            transactions=1200)
        gain = (out["odafs"][50]["txns_per_s"]
                / out["dafs"][50]["txns_per_s"] - 1.0)
        assert gain == pytest.approx(0.34, abs=0.10)
        assert out["odafs"][50]["server_cpu"] < 0.02
        assert out["dafs"][50]["server_cpu"] == pytest.approx(0.25, abs=0.06)
