"""Concurrency stress: multiple clients, mixed ops, integrity checked.

Random reads and writes from three clients against one ODAFS server, with
a VM-pressure daemon churning exports underneath — the full optimistic
machinery under concurrent load. Invariants:

* every read returns the correct block identity (never another block);
* block versions observed by readers never go backwards once a write is
  known-complete (checked with whole-file locks in the strict phase);
* the simulation drains (no deadlock, no leaked processes).
"""

import pytest

from repro.cluster import Cluster
from repro.nas.server.vm_pressure import MemoryPressure
from repro.params import KB


N_FILES = 8
BLOCKS_PER_FILE = 8
BLOCK = 4 * KB


@pytest.fixture
def cluster():
    c = Cluster(system="odafs", n_clients=3, block_size=BLOCK,
                server_cache_blocks=N_FILES * BLOCKS_PER_FILE + 8,
                client_kwargs={"cache_blocks": 4})
    for i in range(N_FILES):
        c.create_file(f"s{i}", BLOCKS_PER_FILE * BLOCK)
    return c


def test_mixed_ops_under_pressure_keep_integrity(cluster):
    sim = cluster.sim
    violations = []
    ops_done = []

    def client_loop(idx, client):
        rng = cluster.rand.stream(f"stress{idx}")
        for _ in range(150):
            fname = f"s{rng.randrange(N_FILES)}"
            block = rng.randrange(BLOCKS_PER_FILE)
            if rng.random() < 0.25:
                yield from client.write(fname, block * BLOCK, BLOCK)
            else:
                data = yield from client.read(fname, block * BLOCK, BLOCK)
                if data[0] != fname or data[1] != block:
                    violations.append((fname, block, data))
            ops_done.append(idx)

    procs = [sim.process(client_loop(i, c))
             for i, c in enumerate(cluster.clients)]
    daemon = MemoryPressure(sim, cluster.cache, interval_us=1500.0,
                            rng=cluster.rand.stream("churn"))
    daemon.start(stop_on=procs[0])
    sim.run()
    assert all(p.triggered and p.ok for p in procs)
    assert violations == []
    assert len(ops_done) == 450


def test_locked_writers_serialize_version_history(cluster):
    """With explicit whole-file locks (Section 4.2.2's recipe for UNIX
    semantics), writers serialize and versions advance exactly once per
    write."""
    sim = cluster.sim

    def writer(client, rounds):
        for _ in range(rounds):
            yield from client.lock("s0")
            data = yield from client.read("s0", 0, BLOCK)
            version_before = data[2]
            yield from client.write("s0", 0, BLOCK)
            data = yield from client.read("s0", 0, BLOCK)
            assert data[2] == version_before + 1  # exactly our write
            yield from client.unlock("s0")

    procs = [sim.process(writer(c, 10)) for c in cluster.clients]
    sim.run()
    assert all(p.triggered and p.ok for p in procs)
    assert cluster.fs.lookup("s0").version_of(0) == 30


def test_version_monotonicity_without_locks(cluster):
    """Even lock-free, versions a single client observes on one block
    never go backwards (server applies writes in order; client cache
    invalidation on write prevents stale rereads of own writes)."""
    sim = cluster.sim
    regressions = []

    def actor(client, writes):
        last_seen = -1
        for i in range(60):
            if writes and i % 3 == 0:
                yield from client.write("s1", 0, BLOCK)
            data = yield from client.read("s1", 0, BLOCK)
            if data[2] < last_seen:
                regressions.append((last_seen, data[2]))
            last_seen = max(last_seen, data[2])

    procs = [sim.process(actor(cluster.clients[0], True)),
             sim.process(actor(cluster.clients[1], False))]
    sim.run()
    assert all(p.triggered and p.ok for p in procs)
    assert regressions == []
