"""Differential correctness: every NAS system returns identical data.

The six systems differ only in *how* bytes move (copies, header
splitting, page flipping, server- or client-initiated RDMA) — never in
*what* arrives. Run one randomized operation script against each system
and require byte-identical logical results.
"""

import pytest

from repro.cluster import SYSTEMS, Cluster
from repro.params import KB, default_params
from repro.sim import RandomStreams

N_FILES = 4
BLOCKS_PER_FILE = 6
BLOCK = 4 * KB
OPS = 120


def build_script(seed=99):
    """A deterministic op script shared by every system under test."""
    rng = RandomStreams(seed).stream("script")
    script = []
    for _ in range(OPS):
        fname = f"d{rng.randrange(N_FILES)}"
        block = rng.randrange(BLOCKS_PER_FILE)
        op = "write" if rng.random() < 0.3 else "read"
        script.append((op, fname, block))
    return script


def run_script(system, script):
    kwargs = ({"cache_blocks": 3}
              if system in ("dafs", "odafs") else {})
    cluster = Cluster(default_params(), system=system, block_size=BLOCK,
                      server_cache_blocks=64, client_kwargs=kwargs)
    for i in range(N_FILES):
        cluster.create_file(f"d{i}", BLOCKS_PER_FILE * BLOCK)
    client = cluster.clients[0]
    results = []

    def main():
        for op, fname, block in script:
            if op == "write":
                yield from client.write(fname, block * BLOCK, BLOCK)
                results.append(("w", fname, block))
            else:
                data = yield from client.read(fname, block * BLOCK, BLOCK)
                results.append(("r", data))

    cluster.sim.run_process(main())
    return results


@pytest.fixture(scope="module")
def reference():
    return run_script("nfs", build_script())


@pytest.mark.parametrize("system", [s for s in SYSTEMS if s != "nfs"])
def test_system_matches_reference(system, reference):
    assert run_script(system, build_script()) == reference


def test_reference_is_self_consistent(reference):
    """Sanity: each read in the reference reflects the writes before it."""
    version = {}
    for entry in reference:
        if entry[0] == "w":
            _, fname, block = entry
            version[(fname, block)] = version.get((fname, block), 0) + 1
        else:
            _, (fname, block, v) = entry
            assert v == version.get((fname, block), 0)
