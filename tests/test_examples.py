"""Smoke tests: every example script runs to completion and prints what
its docstring promises."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, timeout: float = 240.0) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=timeout)
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "ORDMA" in out
    assert "delegation=True" in out
    assert "('demo.dat', 0, 1)" in out  # write bumped the version


def test_media_streaming():
    out = run_example("media_streaming.py")
    assert "nfs" in out and "dafs" in out
    # NFS copy-bound, DAFS near the wire.
    for line in out.splitlines():
        if line.startswith("nfs "):
            assert float(line.split()[1]) < 100.0
        if line.startswith("dafs"):
            assert float(line.split()[1]) > 200.0


def test_oltp_small_io():
    out = run_example("oltp_small_io.py")
    assert "dafs" in out and "odafs" in out
    assert "0.0%" in out  # ODAFS server CPU


def test_fault_handling():
    out = run_example("fault_handling.py")
    assert "!!" not in out  # no unexpected access was allowed
    assert "capability check failed" in out
    assert "segment access revoked" in out
    assert "page not resident" in out
    assert "page locked by host" in out


def test_remote_paging():
    out = run_example("remote_paging.py")
    assert "dafs" in out and "odafs" in out


def test_examples_are_documented():
    for script in EXAMPLES.glob("*.py"):
        source = script.read_text()
        assert source.lstrip().startswith(('#!/usr/bin/env python3\n"""',
                                           '"""')), script


def test_profile_hotpath():
    out = run_example("profile_hotpath.py")
    assert "kernel events" in out
    assert "cumulative" in out  # pstats table header


def test_tracing_analysis():
    out = run_example("tracing_analysis.py")
    assert "event counts" in out
    assert "rdma-get" in out
    assert "full trace" in out and ".jsonl" in out
