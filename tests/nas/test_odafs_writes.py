"""Tests for the ODAFS optimistic write extension."""

import pytest

from repro.cluster import Cluster
from repro.params import KB


@pytest.fixture
def cluster():
    c = Cluster(system="odafs", block_size=4 * KB,
                client_kwargs={"cache_blocks": 4})
    c.create_file("f", 32 * KB)
    return c


def warm(cluster, client):
    def proc():
        for i in range(8):
            yield from client.read("f", i * 4 * KB, 4 * KB)

    cluster.sim.run_process(proc())


def test_optimistic_write_uses_ordma_plus_metadata_rpc(cluster):
    client = cluster.clients[0]
    warm(cluster, client)

    def proc():
        server_mark = cluster.server_host.cpu.busy.busy_us
        yield from client.write_optimistic("f", 0, 4 * KB)
        server_cost = cluster.server_host.cpu.busy.busy_us - server_mark
        return server_cost

    server_cost = cluster.sim.run_process(proc())
    assert client.stats.get("ordma_writes") == 1
    # The metadata RPC still costs server CPU — writes can never be
    # server-free (Section 4.2.2) — but much less than a full data write.
    assert 0.0 < server_cost < 60.0


def test_optimistic_write_updates_file_version(cluster):
    client = cluster.clients[0]
    warm(cluster, client)

    def proc():
        yield from client.write_optimistic("f", 4 * KB, 4 * KB)
        data = yield from client.read("f", 4 * KB, 4 * KB)
        return data

    assert cluster.sim.run_process(proc()) == ("f", 1, 1)


def test_optimistic_write_without_ref_falls_back(cluster):
    client = cluster.clients[0]  # directory cold: no warm pass

    def proc():
        yield from client.write_optimistic("f", 0, 4 * KB)
        data = yield from client.read("f", 0, 4 * KB)
        return data

    assert cluster.sim.run_process(proc()) == ("f", 0, 1)
    assert client.stats.get("ordma_writes") == 0
    assert client.stats.get("writes") == 1


def test_optimistic_write_fault_falls_back(cluster):
    client = cluster.clients[0]
    warm(cluster, client)
    cluster.cache.invalidate(("f", 0))  # stale reference

    def proc():
        yield from client.write_optimistic("f", 0, 4 * KB)
        data = yield from client.read("f", 0, 4 * KB)
        return data

    assert cluster.sim.run_process(proc()) == ("f", 0, 1)
    assert client.stats.get("ordma_faults") >= 1


def test_partial_block_optimistic_write_rejected(cluster):
    client = cluster.clients[0]

    def proc():
        yield from client.write_optimistic("f", 100, 4 * KB)

    with pytest.raises(ValueError):
        cluster.sim.run_process(proc())

    def proc2():
        yield from client.write_optimistic("f", 0, 2 * KB)

    with pytest.raises(ValueError):
        cluster.sim.run_process(proc2())


def test_second_client_sees_optimistic_write(cluster):
    cluster2 = Cluster(system="odafs", n_clients=2, block_size=4 * KB,
                       client_kwargs={"cache_blocks": 2})
    cluster2.create_file("f", 16 * KB)
    writer, reader = cluster2.clients

    def proc():
        for i in range(4):
            yield from writer.read("f", i * 4 * KB, 4 * KB)
        yield from writer.write_optimistic("f", 0, 4 * KB)
        data = yield from reader.read("f", 0, 4 * KB)
        return data

    assert cluster2.sim.run_process(proc()) == ("f", 0, 1)
