"""End-to-end reads and writes across all five NAS systems."""

import pytest

from repro.cluster import SYSTEMS, Cluster
from repro.params import KB


def make_cluster(system, **kw):
    kw.setdefault("block_size", 4 * KB)
    if system in ("dafs", "odafs"):
        kw.setdefault("client_kwargs", {"cache_blocks": 8})
    return Cluster(system=system, **kw)


@pytest.mark.parametrize("system", SYSTEMS)
def test_read_returns_correct_block_content(system):
    cluster = make_cluster(system)
    cluster.create_file("f", 64 * KB)

    def reader(client):
        yield from client.open("f")
        data = yield from client.read("f", 8 * KB, 4 * KB)
        yield from client.close("f")
        return data

    data = cluster.sim.run_process(reader(cluster.clients[0]))
    assert data == ("f", 2, 0)  # block 2, version 0


@pytest.mark.parametrize("system", SYSTEMS)
def test_multi_block_read(system):
    cluster = make_cluster(system)
    cluster.create_file("f", 64 * KB)

    def reader(client):
        data = yield from client.read("f", 0, 16 * KB)
        return data

    data = cluster.sim.run_process(reader(cluster.clients[0]))
    assert data == tuple(("f", i, 0) for i in range(4))


@pytest.mark.parametrize("system", SYSTEMS)
def test_write_bumps_version_and_read_sees_it(system):
    cluster = make_cluster(system)
    cluster.create_file("f", 16 * KB)

    def writer_reader(client):
        yield from client.write("f", 4 * KB, 4 * KB)
        data = yield from client.read("f", 4 * KB, 4 * KB)
        return data

    data = cluster.sim.run_process(writer_reader(cluster.clients[0]))
    assert data == ("f", 1, 1)  # version bumped by the write


@pytest.mark.parametrize("system", SYSTEMS)
def test_read_of_missing_file_raises(system):
    from repro.proto.rpc import RPCError
    cluster = make_cluster(system)
    cluster.create_file("exists", 4 * KB)

    def reader(client):
        try:
            yield from client.open("missing")
        except RPCError as exc:
            return str(exc)

    result = cluster.sim.run_process(reader(cluster.clients[0]))
    assert "ENOENT" in result


def test_open_delegation_makes_reopens_local():
    cluster = make_cluster("dafs")
    cluster.create_file("f", 4 * KB)
    client = cluster.clients[0]

    def proc():
        yield from client.open("f")
        yield from client.open("f")
        yield from client.open("f")
        yield from client.close("f")
        return (client.stats.get("remote_opens"),
                client.stats.get("local_opens"),
                client.stats.get("local_closes"))

    remote, local, closes = cluster.sim.run_process(proc())
    assert remote == 1
    assert local == 2
    assert closes == 1


def test_write_open_conflict_recalls_read_delegation():
    cluster = make_cluster("dafs", n_clients=2)
    cluster.create_file("f", 4 * KB)
    reader, writer = cluster.clients

    def proc():
        handle = yield from reader.open("f")
        assert handle.delegated
        yield from writer.open("f", mode="write")
        # The reader learns about the recall on its next RPC.
        yield from reader.getattr("f")
        return handle.delegated

    assert cluster.sim.run_process(proc()) is False


def test_odafs_second_read_uses_ordma():
    cluster = make_cluster("odafs",
                           client_kwargs={"cache_blocks": 2})
    cluster.create_file("f", 64 * KB)
    client = cluster.clients[0]

    def proc():
        # Pass 1: RPC fills; references piggybacked into the directory.
        for i in range(16):
            yield from client.read("f", i * 4 * KB, 4 * KB)
        rpc_fills = client.stats.get("rpc_fills")
        # Pass 2: cache (2 blocks) misses again, but ORDMA now succeeds.
        for i in range(16):
            yield from client.read("f", i * 4 * KB, 4 * KB)
        return rpc_fills, client.stats.get("ordma_reads")

    rpc_fills, ordma_reads = cluster.sim.run_process(proc())
    assert rpc_fills == 16
    assert ordma_reads >= 14  # all pass-2 misses served by ORDMA


def test_odafs_ordma_bypasses_server_cpu():
    cluster = make_cluster("odafs", client_kwargs={"cache_blocks": 2})
    cluster.create_file("f", 32 * KB)
    client = cluster.clients[0]

    def proc():
        for i in range(8):
            yield from client.read("f", i * 4 * KB, 4 * KB)
        cluster.server_host.cpu.reset_measurement()
        for i in range(8):
            yield from client.read("f", i * 4 * KB, 4 * KB)
        return (cluster.server_host.cpu.busy.busy_us
                - cluster.server_host.cpu.busy._window_busy_mark)

    extra_server_cpu = cluster.sim.run_process(proc())
    assert extra_server_cpu == 0.0


def test_odafs_fault_falls_back_to_rpc_and_recovers():
    cluster = make_cluster("odafs", client_kwargs={"cache_blocks": 2})
    cluster.create_file("f", 16 * KB)
    client = cluster.clients[0]

    def proc():
        for i in range(4):
            yield from client.read("f", i * 4 * KB, 4 * KB)
        # Server evicts a block: its export is revoked; the client's
        # directory entry is now stale.
        cluster.cache.invalidate(("f", 0))
        data = yield from client.read("f", 0, 4 * KB)
        return data, client.stats.get("ordma_faults")

    data, faults = cluster.sim.run_process(proc())
    assert data == ("f", 0, 0)
    assert faults == 1


def test_odafs_write_invalidates_stale_client_state():
    cluster = make_cluster("odafs", n_clients=2,
                           client_kwargs={"cache_blocks": 2})
    cluster.create_file("f", 16 * KB)
    c0, c1 = cluster.clients

    def proc():
        for i in range(4):
            yield from c0.read("f", i * 4 * KB, 4 * KB)
        yield from c1.write("f", 0, 4 * KB)
        # c0's cache (2 blocks) has evicted block 0; the directory ref is
        # still valid (data updated in place), so ORDMA sees new data.
        data = yield from c0.read("f", 0, 4 * KB)
        return data

    assert cluster.sim.run_process(proc()) == ("f", 0, 1)


def test_dafs_batch_read():
    cluster = make_cluster("dafs", client_kwargs={"cache_blocks": 0})
    cluster.create_file("f", 64 * KB)
    client = cluster.clients[0]

    def proc():
        bufs = [client.host.mem.alloc(4 * KB) for _ in range(4)]
        extents = [(i * 4 * KB, 4 * KB, bufs[i]) for i in range(4)]
        datas = yield from client.read_batch("f", extents)
        return datas

    datas = cluster.sim.run_process(proc())
    assert datas == [("f", i, 0) for i in range(4)]


def test_cold_cache_read_goes_to_disk():
    cluster = make_cluster("dafs", client_kwargs={"cache_blocks": 0})
    cluster.create_file("cold", 16 * KB, warm=False)
    client = cluster.clients[0]

    def proc():
        start = cluster.sim.now
        yield from client.read("cold", 0, 4 * KB)
        first = cluster.sim.now - start
        start = cluster.sim.now
        yield from client.read("cold", 0, 4 * KB)
        second = cluster.sim.now - start
        return first, second

    first, second = cluster.sim.run_process(proc())
    disk_latency = cluster.params.storage.disk_latency_us
    assert first > disk_latency  # cold: disk access
    assert second < disk_latency / 2  # warm: served from the file cache
    assert cluster.disk.stats.get("reads") == 1
