"""Tests for advisory file locks and eager reference fetching."""

import pytest

from repro.cluster import Cluster
from repro.nas.locks import EXCLUSIVE, SHARED, LockTable
from repro.params import KB
from repro.sim import Simulator


class TestLockTable:
    def test_exclusive_excludes(self):
        sim = Simulator()
        table = LockTable(sim)
        order = []

        def locker(owner, hold_us):
            grant = table.acquire("f", owner, EXCLUSIVE)
            yield grant
            order.append((owner, sim.now))
            yield sim.timeout(hold_us)
            table.release("f", owner)

        sim.process(locker("a", 10.0))
        sim.process(locker("b", 10.0))
        sim.run()
        assert order == [("a", 0.0), ("b", 10.0)]

    def test_shared_locks_coexist(self):
        sim = Simulator()
        table = LockTable(sim)
        granted = []

        def reader(owner):
            yield table.acquire("f", owner, SHARED)
            granted.append((owner, sim.now))
            yield sim.timeout(5.0)
            table.release("f", owner)

        sim.process(reader("a"))
        sim.process(reader("b"))
        sim.run()
        assert granted == [("a", 0.0), ("b", 0.0)]

    def test_fifo_fairness_no_writer_starvation(self):
        """A writer queued behind readers blocks later readers (FIFO)."""
        sim = Simulator()
        table = LockTable(sim)
        order = []

        def holder(owner, mode, delay, hold):
            yield sim.timeout(delay)
            yield table.acquire("f", owner, mode)
            order.append(owner)
            yield sim.timeout(hold)
            table.release("f", owner)

        sim.process(holder("r1", SHARED, 0.0, 10.0))
        sim.process(holder("w", EXCLUSIVE, 1.0, 5.0))
        sim.process(holder("r2", SHARED, 2.0, 5.0))
        sim.run()
        assert order == ["r1", "w", "r2"]

    def test_release_without_hold_raises(self):
        sim = Simulator()
        table = LockTable(sim)
        with pytest.raises(KeyError):
            table.release("f", "nobody")

    def test_bad_mode_rejected(self):
        sim = Simulator()
        table = LockTable(sim)
        with pytest.raises(ValueError):
            table.acquire("f", "a", "banana")


class TestLockRPC:
    def test_lock_serializes_two_clients(self):
        cluster = Cluster(system="dafs", n_clients=2, block_size=4 * KB,
                          client_kwargs={"cache_blocks": 4})
        cluster.create_file("f", 16 * KB)
        c0, c1 = cluster.clients
        sim = cluster.sim
        events = []

        def critical(client, tag, hold_us):
            yield from client.lock("f")
            events.append((tag, "in", sim.now))
            yield sim.timeout(hold_us)
            yield from client.write("f", 0, 4 * KB)
            yield from client.unlock("f")
            events.append((tag, "out", sim.now))

        sim.process(critical(c0, "c0", 500.0))
        sim.process(critical(c1, "c1", 500.0))
        sim.run()
        ins = [e for e in events if e[1] == "in"]
        outs = [e for e in events if e[1] == "out"]
        # The second entrant enters only after the first exits.
        assert ins[1][2] >= outs[0][2]

    def test_unlock_without_lock_is_an_error(self):
        from repro.proto.rpc import RPCError
        cluster = Cluster(system="dafs", block_size=4 * KB,
                          client_kwargs={"cache_blocks": 4})
        cluster.create_file("f", 4 * KB)
        client = cluster.clients[0]

        def proc():
            try:
                yield from client.unlock("f")
            except RPCError as exc:
                return str(exc)

        assert "not locked" in cluster.sim.run_process(proc())


class TestEagerRefs:
    def test_prefetch_refs_fills_directory(self):
        cluster = Cluster(system="odafs", block_size=4 * KB,
                          client_kwargs={"cache_blocks": 2})
        cluster.create_file("f", 32 * KB)
        client = cluster.clients[0]

        def proc():
            count = yield from client.prefetch_refs("f")
            return count, len(client.directory)

        count, dir_len = cluster.sim.run_process(proc())
        assert count == 8
        assert dir_len == 8

    def test_eager_refs_enable_first_read_ordma(self):
        """With an eagerly built directory, even the *first* miss on a
        block is served by ORDMA — no RPC fill ever happens."""
        cluster = Cluster(system="odafs", block_size=4 * KB,
                          client_kwargs={"cache_blocks": 2})
        cluster.create_file("f", 32 * KB)
        client = cluster.clients[0]

        def proc():
            yield from client.prefetch_refs("f")
            for i in range(8):
                yield from client.read("f", i * 4 * KB, 4 * KB)
            return (client.stats.get("ordma_reads"),
                    client.stats.get("rpc_fills"))

        ordma, rpc = cluster.sim.run_process(proc())
        assert ordma == 8
        assert rpc == 0

    def test_prefetch_on_uncached_file_returns_zero(self):
        cluster = Cluster(system="odafs", block_size=4 * KB,
                          client_kwargs={"cache_blocks": 2})
        cluster.create_file("cold", 16 * KB, warm=False)
        client = cluster.clients[0]

        def proc():
            count = yield from client.prefetch_refs("cold")
            return count

        assert cluster.sim.run_process(proc()) == 0
