"""Unit tests for the delegation table."""

import pytest

from repro.nas.delegation import READ, WRITE, DelegationTable


@pytest.fixture
def table():
    return DelegationTable()


def test_read_delegations_shared(table):
    assert table.grant("f", "c0", READ)
    assert table.grant("f", "c1", READ)
    assert sorted(table.holders("f")) == ["c0", "c1"]


def test_write_delegation_exclusive(table):
    assert table.grant("f", "c0", WRITE)
    # The conflicting request is denied, but it recalls the holder, so a
    # retry succeeds (the holder learns via its piggybacked recall).
    assert not table.grant("f", "c1", WRITE)
    assert not table.holds("f", "c0")
    assert table.take_recalls("c0") == ["f"]
    assert table.grant("f", "c1", WRITE)


def test_conflict_recalls_existing_readers(table):
    table.grant("f", "c0", READ)
    table.grant("f", "c1", READ)
    assert not table.grant("f", "c2", WRITE)
    assert table.take_recalls("c0") == ["f"]
    assert table.take_recalls("c1") == ["f"]
    # Recalls are consumed.
    assert table.take_recalls("c0") == []
    # The readers lost their delegations.
    assert not table.holds("f", "c0")


def test_same_client_upgrade_is_not_a_conflict(table):
    table.grant("f", "c0", READ)
    assert table.grant("f", "c0", WRITE)
    assert table.holds("f", "c0")


def test_release(table):
    table.grant("f", "c0", READ)
    table.release("f", "c0")
    assert not table.holds("f", "c0")
    assert table.holders("f") == []
    table.release("f", "c0")  # idempotent


def test_write_then_read_conflict_recalls_writer(table):
    table.grant("f", "c0", WRITE)
    assert not table.grant("f", "c1", READ)
    assert table.take_recalls("c0") == ["f"]
    # After the recall, the reader can retry successfully.
    assert table.grant("f", "c1", READ)


def test_bad_mode_rejected(table):
    with pytest.raises(ValueError):
        table.grant("f", "c0", "exclusive-banana")


def test_recalls_accumulate_across_files(table):
    table.grant("a", "c0", READ)
    table.grant("b", "c0", READ)
    table.grant("a", "c1", WRITE)
    table.grant("b", "c1", WRITE)
    assert table.take_recalls("c0") == ["a", "b"]
