"""Tests for the untagged RDDP-RPC (page re-mapping) NFS client."""

import pytest

from repro.cluster import Cluster
from repro.params import KB


@pytest.fixture
def cluster():
    c = Cluster(system="nfs-remap", block_size=4 * KB)
    c.create_file("f", 64 * KB)
    return c


def test_read_is_split_and_remapped(cluster):
    client = cluster.clients[0]

    def proc():
        data = yield from client.read("f", 0, 16 * KB)
        return data

    data = cluster.sim.run_process(proc())
    assert data == tuple(("f", i, 0) for i in range(4))
    assert cluster.client_hosts[0].nic.stats.get("rddp_untagged_split") == 1
    assert client.stats.get("pages_remapped") == 4
    assert client.stats.get("tail_copies") == 0


def test_no_tag_table_interaction(cluster):
    """Untagged splitting never touches the NIC tag table — that is the
    whole point (no per-I/O pre-posting)."""
    client = cluster.clients[0]

    def proc():
        yield from client.read("f", 0, 4 * KB)
        return len(cluster.client_hosts[0].nic._rddp_tags)

    assert cluster.sim.run_process(proc()) == 0
    assert cluster.client_hosts[0].nic.stats.get("rddp_split") == 0


def test_sub_page_tail_pays_a_copy():
    cluster = Cluster(system="nfs-remap", block_size=6000)
    cluster.create_file("odd", 6000)
    client = cluster.clients[0]

    def proc():
        yield from client.read("odd", 0, 6000)
        return (client.stats.get("pages_remapped"),
                client.stats.get("tail_copies"))

    remapped, tails = cluster.sim.run_process(proc())
    assert remapped == 1   # one full page flipped
    assert tails == 1      # 6000 - 4096 bytes copied


def test_no_per_io_pinning(cluster):
    """Unlike the pre-posting client, user buffer pages are never pinned."""
    client = cluster.clients[0]
    buf = cluster.client_hosts[0].mem.alloc(4 * KB)

    def proc():
        yield from client.read("f", 0, 4 * KB, app_buffer=buf)

    cluster.sim.run_process(proc())
    assert not any(p.pinned for p in buf.pages)


def test_cheaper_than_prepost_per_large_read():
    """Flipping pages beats per-I/O registration + tag doorbells for
    large transfers (the variant's raison d'etre)."""
    results = {}
    for system in ("nfs-remap", "nfs-prepost"):
        cluster = Cluster(system=system, block_size=256 * KB)
        cluster.create_file("big", 16 * 256 * KB)
        client = cluster.clients[0]

        def proc():
            yield from client.read("big", 0, 256 * KB)  # warm
            mark = cluster.client_hosts[0].cpu.busy.busy_us
            for i in range(1, 16):
                yield from client.read("big", i * 256 * KB, 256 * KB)
            return (cluster.client_hosts[0].cpu.busy.busy_us - mark) / 15

        results[system] = cluster.sim.run_process(proc())
    assert results["nfs-remap"] < results["nfs-prepost"]


def test_write_path(cluster):
    client = cluster.clients[0]

    def proc():
        yield from client.write("f", 0, 4 * KB)
        data = yield from client.read("f", 0, 4 * KB)
        return data

    assert cluster.sim.run_process(proc()) == ("f", 0, 1)
