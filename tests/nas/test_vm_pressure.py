"""Tests for the server VM-pressure (reclaim) daemon."""

import pytest

from repro.cluster import Cluster
from repro.nas.server.vm_pressure import MemoryPressure
from repro.params import KB


def make_cluster():
    cluster = Cluster(system="odafs", block_size=4 * KB,
                      server_cache_blocks=40,
                      client_kwargs={"cache_blocks": 2})
    cluster.create_file("f", 32 * 4 * KB)
    return cluster


def test_daemon_reclaims_and_stops_with_workload():
    cluster = make_cluster()
    client = cluster.clients[0]

    def workload():
        for _ in range(4):
            for i in range(32):
                yield from client.read("f", i * 4 * KB, 4 * KB)

    proc = cluster.sim.process(workload())
    daemon = MemoryPressure(cluster.sim, cluster.cache, interval_us=500.0)
    daemon.start(stop_on=proc)
    cluster.sim.run()
    assert proc.triggered and proc.ok
    assert daemon.stats.get("reclaimed") > 0


def test_reclaim_causes_ordma_faults_but_correct_data():
    cluster = make_cluster()
    client = cluster.clients[0]
    results = []

    def workload():
        for _ in range(4):
            for i in range(32):
                data = yield from client.read("f", i * 4 * KB, 4 * KB)
                results.append((i, data))

    proc = cluster.sim.process(workload())
    daemon = MemoryPressure(cluster.sim, cluster.cache, interval_us=300.0,
                            rng=cluster.rand.stream("t"))
    daemon.start(stop_on=proc)
    cluster.sim.run()
    assert client.stats.get("ordma_faults") > 0
    for i, data in results:
        assert data == ("f", i, 0)  # every read returned the right block


def test_reclaimed_exports_are_shot_down():
    cluster = make_cluster()
    client = cluster.clients[0]

    def warm():
        for i in range(32):
            yield from client.read("f", i * 4 * KB, 4 * KB)

    cluster.sim.run_process(warm())
    shootdowns_before = cluster.cache.stats.get("tlb_shootdowns")
    cluster.cache.invalidate(("f", 0))
    assert cluster.cache.stats.get("tlb_shootdowns") > shootdowns_before


def test_explicit_stop():
    cluster = make_cluster()
    daemon = MemoryPressure(cluster.sim, cluster.cache, interval_us=100.0)
    daemon.start()

    def stopper():
        yield cluster.sim.timeout(1000.0)
        daemon.stop()

    cluster.sim.run_process(stopper())
    cluster.sim.run()  # heap must drain after stop
    assert daemon.stats.get("reclaimed") <= 10


def test_double_start_rejected():
    cluster = make_cluster()
    daemon = MemoryPressure(cluster.sim, cluster.cache, interval_us=100.0)
    daemon.start()
    with pytest.raises(RuntimeError):
        daemon.start()


def test_parameter_validation():
    cluster = make_cluster()
    with pytest.raises(ValueError):
        MemoryPressure(cluster.sim, cluster.cache, interval_us=0.0)
    with pytest.raises(ValueError):
        MemoryPressure(cluster.sim, cluster.cache, interval_us=10.0,
                       blocks_per_round=0)
