"""Unit tests for the shard layer: placement, router, cluster wiring,
and crash failover.

The property suite (``tests/property/test_shard_properties.py``) covers
read byte-identity against the single-server baseline; here we pin the
mechanics — placement math, segment splitting, failover bookkeeping,
and the typed error surface.
"""

import pytest

from repro.faults import FaultSchedule, Injector
from repro.nas.shard import (HashPlacement, ShardDownError, ShardedCluster,
                             StripePlacement, make_placement)
from repro.params import ShardParams, default_params


def shard_params(**kwargs):
    p = default_params()
    for key, value in kwargs.items():
        setattr(p.shard, key, value)
    return p


def make_cluster(system="odafs", n_servers=2, n_clients=1, replicas=0,
                 placement="stripe", cache_blocks=64, **cluster_kwargs):
    p = shard_params(n_servers=n_servers, replicas=replicas,
                     placement=placement)
    kwargs = ({"cache_blocks": cache_blocks}
              if system in ("dafs", "odafs") else {})
    return ShardedCluster(p, system=system, n_clients=n_clients,
                          client_kwargs=kwargs, **cluster_kwargs)


class TestPlacement:
    def test_stripe_walks_servers_round_robin(self):
        pl = StripePlacement(n_servers=4, stripe_blocks=1, replicas=0,
                             seed=7)
        base = pl.shard_of("f", 0)
        for i in range(16):
            assert pl.shard_of("f", i) == (base + i) % 4

    def test_stripe_unit_keeps_runs_contiguous(self):
        pl = StripePlacement(n_servers=2, stripe_blocks=4, replicas=0,
                             seed=7)
        shards = [pl.shard_of("f", i) for i in range(8)]
        assert shards[0:4] == [shards[0]] * 4
        assert shards[4:8] == [1 - shards[0]] * 4

    def test_placement_is_a_pure_function_of_seed(self):
        for cls in (StripePlacement, HashPlacement):
            a = cls(n_servers=4, stripe_blocks=2, replicas=1, seed=11)
            b = cls(n_servers=4, stripe_blocks=2, replicas=1, seed=11)
            c = cls(n_servers=4, stripe_blocks=2, replicas=1, seed=12)
            keys = [(f"file{i}", b) for i in range(8) for b in range(8)]
            assert [a.shard_of(*k) for k in keys] == \
                [b.shard_of(*k) for k in keys]
            assert [a.shard_of(*k) for k in keys] != \
                [c.shard_of(*k) for k in keys]

    def test_replica_chain_is_distinct_and_starts_at_primary(self):
        for placement in ("stripe", "hash"):
            pl = make_placement(
                ShardParams(n_servers=4, placement=placement, replicas=2),
                seed=3)
            for block in range(8):
                chain = pl.replica_chain("f", block)
                assert chain[0] == pl.shard_of("f", block)
                assert len(chain) == 3
                assert len(set(chain)) == 3

    def test_hash_placement_moves_few_units_when_growing(self):
        small = HashPlacement(n_servers=3, stripe_blocks=1, replicas=0,
                              seed=5)
        big = HashPlacement(n_servers=4, stripe_blocks=1, replicas=0,
                            seed=5)
        keys = [(f"file{i}", b) for i in range(32) for b in range(16)]
        moved = sum(1 for k in keys
                    if small.shard_of(*k) != big.shard_of(*k))
        # Consistent hashing relocates ~1/4 of the keys, not ~3/4 as
        # modulo placement would.
        assert moved / len(keys) < 0.45

    def test_rejects_bad_configs(self):
        with pytest.raises(ValueError):
            StripePlacement(n_servers=0, stripe_blocks=1, replicas=0,
                            seed=1)
        with pytest.raises(ValueError):
            StripePlacement(n_servers=2, stripe_blocks=0, replicas=0,
                            seed=1)
        with pytest.raises(ValueError):
            StripePlacement(n_servers=2, stripe_blocks=1, replicas=2,
                            seed=1)
        with pytest.raises(ValueError):
            make_placement(ShardParams(placement="rendezvous"), seed=1)


class TestRouterSegments:
    def test_single_server_reads_are_one_segment(self):
        c = make_cluster(n_servers=1)
        router = c.clients[0]
        segs = router._segments("f", 0, 8 * c.block_size)
        assert len(segs) == 1
        assert segs[0][1:] == (0, 8 * c.block_size, 8)

    def test_alternating_blocks_split_per_block(self):
        c = make_cluster(n_servers=2)
        router = c.clients[0]
        bs = c.block_size
        segs = router._segments("f", 0, 4 * bs)
        # stripe_blocks=1: consecutive blocks alternate shards.
        assert len(segs) == 4
        assert [s[3] for s in segs] == [1, 1, 1, 1]
        shards = [s[0] for s in segs]
        assert shards == [shards[0], 1 - shards[0]] * 2

    def test_unaligned_range_is_clipped_to_request(self):
        c = make_cluster(n_servers=2)
        router = c.clients[0]
        bs = c.block_size
        segs = router._segments("f", bs // 2, bs)
        # Straddles two blocks on two shards; byte extents must cover
        # exactly the request.
        assert len(segs) == 2
        assert segs[0][1] == bs // 2 and segs[0][2] == bs // 2
        assert segs[1][1] == bs and segs[1][2] == bs // 2
        assert sum(s[2] for s in segs) == bs


class TestClusterWiring:
    def test_one_full_server_stack_per_shard(self):
        c = make_cluster(n_servers=4, n_clients=2)
        assert len(c.servers) == len(c.disks) == len(c.caches) == 4
        assert [h.name for h in c.server_hosts] == \
            [f"server{k}" for k in range(4)]
        for router in c.clients:
            assert len(router.subclients) == 4

    def test_subclients_bind_per_shard_ports(self):
        c = make_cluster(n_servers=3)
        ports = [server.rpc.transport.port for server in c.servers]
        assert ports == sorted(ports) and len(set(ports)) == 3

    def test_warm_create_preloads_only_owned_blocks(self):
        c = make_cluster(n_servers=2)
        c.create_file("f", 8 * c.block_size)
        for k, cache in enumerate(c.caches):
            owned = {i for i in range(8)
                     if k in c.placement.replica_chain("f", i)}
            cached = {idx for (name, idx) in cache._blocks
                      if name == "f"}
            assert cached == owned

    def test_replicas_are_warmed_too(self):
        c = make_cluster(n_servers=2, replicas=1)
        c.create_file("f", 4 * c.block_size)
        for cache in c.caches:
            cached = {idx for (name, idx) in cache._blocks
                      if name == "f"}
            assert cached == set(range(4))

    def test_rejects_unknown_system(self):
        with pytest.raises(ValueError):
            make_cluster(system="nfs-hybrid")

    def test_metrics_namespace_per_shard_and_router(self):
        c = make_cluster(n_servers=2)
        names = set(c.metrics.names())
        for want in ("server0.rpc", "server1.rpc", "server0.disk",
                     "client0.shard", "client0.s0.rpc", "client0.s1.rpc"):
            assert want in names


class TestReadsAndWrites:
    def test_striped_read_counts_segments_and_fanout(self):
        c = make_cluster(n_servers=2)
        c.create_file("f", 8 * c.block_size)
        router = c.clients[0]

        def wl():
            yield from router.open("f")
            yield from router.read("f", 0, 4 * c.block_size)
        c.sim.run_process(wl())
        assert router.stats.get("reads") == 1
        assert router.stats.get("routed_segments") == 4
        assert router.stats.get("fanout_reads") == 1

    def test_write_updates_every_replica(self):
        c = make_cluster(system="nfs", n_servers=2, replicas=1)
        c.create_file("f", 2 * c.block_size)
        router = c.clients[0]

        def wl():
            yield from router.open("f", mode="write")
            yield from router.write("f", 0, c.block_size)
        c.sim.run_process(wl())
        for fs in c.filesystems:
            assert fs.lookup("f").version_of(0) == 1

    def test_create_broadcasts_to_every_namespace(self):
        c = make_cluster(system="nfs", n_servers=3)
        router = c.clients[0]

        def wl():
            yield from router.create("new", 2 * c.block_size)
        c.sim.run_process(wl())
        for fs in c.filesystems:
            assert fs.exists("new")


class TestFailover:
    def crashed_cluster(self, replicas, system="odafs", reads=40):
        c = make_cluster(system=system, n_servers=2, replicas=replicas)
        blocks = 8
        c.create_file("f", blocks * c.block_size)
        inj = Injector(c)
        inj.enable_resilience(timeout_us=2000.0, max_retries=2)
        inj.schedule_server_crash(FaultSchedule.at([2000.0]),
                                  downtime_us=1e6, shard=0)
        inj.arm()
        router = c.clients[0]
        outcome = {"ok": 0, "down": 0}

        def wl():
            yield from router.open("f")
            for i in range(reads):
                try:
                    yield from router.read("f", (i % blocks) *
                                           c.block_size, c.block_size)
                except ShardDownError as e:
                    assert e.shard == 0
                    assert e.op == "read"
                    outcome["down"] += 1
                else:
                    outcome["ok"] += 1
                yield c.sim.timeout(200.0)
        c.sim.run_process(wl())
        return c, router, outcome

    def test_replica_serves_reads_after_crash(self):
        c, router, outcome = self.crashed_cluster(replicas=1)
        assert outcome["down"] == 0
        assert outcome["ok"] == 40
        assert router.stats.get("failovers") >= 1
        assert router.stats.get("replica_reads") >= 1
        assert router.stats.get("down_marks") >= 1

    def test_without_replicas_raises_typed_error(self):
        c, router, outcome = self.crashed_cluster(replicas=0)
        # The run completes — no hang — with the dead shard's reads
        # surfacing as ShardDownError and the live shard still serving.
        assert outcome["down"] > 0
        assert outcome["ok"] > 0
        assert router.down_shards() >= 0  # gauge callable, no crash

    def test_crash_loses_only_that_shards_cache(self):
        c, router, _ = self.crashed_cluster(replicas=1)
        assert len(c.caches[0]) == 0
        assert len(c.caches[1]) > 0

    def test_cooldown_recovers_after_restart(self):
        c = make_cluster(system="odafs", n_servers=2, replicas=1)
        c.create_file("f", 4 * c.block_size)
        p = c.params.shard
        inj = Injector(c)
        inj.enable_resilience(timeout_us=2000.0, max_retries=1)
        # Short downtime: the server restarts well before the workload
        # ends, and after the router's cooldown the primary serves again.
        inj.schedule_server_crash(FaultSchedule.at([1500.0]),
                                  downtime_us=4000.0, shard=0)
        inj.arm()
        router = c.clients[0]

        def wl():
            yield from router.open("f")
            for i in range(60):
                yield from router.read("f", (i % 4) * c.block_size,
                                       c.block_size)
                yield c.sim.timeout(p.down_cooldown_us / 10)
        c.sim.run_process(wl())
        assert router.stats.get("failovers") >= 1
        assert not router.is_down(0)


class TestBroadcastUnderCrash:
    """Namespace broadcasts (`_broadcast`/`_swallow_timeout`) and the
    home-shard paths (open/close/lock) when a shard dies mid-run."""

    def test_create_broadcast_survives_a_crashed_shard(self):
        c = make_cluster(system="nfs", n_servers=3)
        inj = Injector(c)
        inj.enable_resilience(timeout_us=2000.0, max_retries=2)
        inj.schedule_server_crash(FaultSchedule.at([1000.0]),
                                  downtime_us=1e6, shard=0)
        inj.arm()
        router = c.clients[0]

        def wl():
            yield c.sim.timeout(3000.0)   # crash lands first
            yield from router.create("new", 2 * c.block_size)
        c.sim.run_process(wl())
        # The dead shard's timeout is swallowed (and down-marks it); the
        # live shards all got the create. (The run itself ends at the
        # server's restart, long past the down-cooldown, so we assert
        # the mark, not is_down.)
        assert router.stats.get("creates") == 1
        assert router.stats.get("timeouts") >= 1
        assert router.stats.get("down_marks") >= 1
        assert not c.filesystems[0].exists("new")
        assert c.filesystems[1].exists("new")
        assert c.filesystems[2].exists("new")

    def test_broadcast_skips_a_shard_already_marked_down(self):
        c = make_cluster(system="nfs", n_servers=3)
        router = c.clients[0]
        router._down_until[0] = 1e12   # inside its cooldown window

        def wl():
            yield from router.create("new", 2 * c.block_size)
        c.sim.run_process(wl())
        # No RPC was even attempted against the down shard: no timeout
        # burned, and its namespace never saw the create.
        assert router.stats.get("timeouts") == 0
        assert not c.filesystems[0].exists("new")
        assert c.filesystems[1].exists("new")
        assert c.filesystems[2].exists("new")

    def test_broadcast_with_every_shard_down_raises_typed(self):
        c = make_cluster(system="nfs", n_servers=2)
        router = c.clients[0]
        for shard in range(2):
            router._down_until[shard] = 1e12
        with pytest.raises(ShardDownError):
            c.sim.run_process(router.create("new", c.block_size))

    def test_close_swallows_timeout_after_home_crash(self):
        # Two conflicting write-opens: the second client is denied a
        # delegation, so its close must go over RPC — into the crash.
        c = make_cluster(system="nfs", n_servers=2, n_clients=2)
        c.create_file("f", 2 * c.block_size)
        home = c.placement.shard_of("f", 0)
        inj = Injector(c)
        inj.enable_resilience(timeout_us=2000.0, max_retries=2)
        inj.schedule_server_crash(FaultSchedule.at([1000.0]),
                                  downtime_us=1e6, shard=home)
        inj.arm()
        holder, closer = c.clients

        def wl():
            yield from holder.open("f", mode="write")
            yield from closer.open("f", mode="write")  # no delegation
            yield c.sim.timeout(3000.0)   # the home shard crashes
            yield from closer.close("f")
        c.sim.run_process(wl())
        # The close completed: the crashed server's open state died with
        # it, so the timeout is swallowed rather than surfaced.
        assert closer.stats.get("closes") == 1
        assert closer.stats.get("timeouts") >= 1
        assert closer.stats.get("down_marks") >= 1

    def test_lock_on_a_dead_home_without_replicas_is_typed(self):
        c = make_cluster(system="nfs", n_servers=2, replicas=0)
        c.create_file("f", 2 * c.block_size)
        home = c.placement.shard_of("f", 0)
        inj = Injector(c)
        inj.enable_resilience(timeout_us=2000.0, max_retries=2)
        inj.schedule_server_crash(FaultSchedule.at([1000.0]),
                                  downtime_us=1e6, shard=home)
        inj.arm()
        router = c.clients[0]
        caught = {}

        def wl():
            yield c.sim.timeout(3000.0)
            try:
                yield from router.lock("f")
            except ShardDownError as e:
                caught["err"] = e
        c.sim.run_process(wl())
        assert caught["err"].shard == home
        assert caught["err"].op == "lock"


class TestResetContract:
    def test_sharded_reset_zeroes_rpc_sessions(self):
        c = make_cluster(n_servers=2)
        c.create_file("f", 2 * c.block_size)
        router = c.clients[0]

        def wl():
            yield from router.open("f")
            yield from router.read("f", 0, c.block_size)
        c.sim.run_process(wl())
        for sub in router.subclients:
            sub.rpc._pending.clear()
        c.reset()
        assert all(next(sub.rpc._xids) == 1
                   for sub in router.subclients)

    def test_single_server_cluster_exposes_same_reset(self):
        from repro.cluster import Cluster
        c = Cluster(default_params(), system="nfs")
        c.reset()
        assert next(c.clients[0].rpc._xids) == 1
        assert not c.server.rpc._dup_cache
