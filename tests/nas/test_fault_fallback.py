"""ORDMA fault -> RPC fallback when the server invalidates concurrently.

The optimistic protocol's core claim (Section 4.2): a client may issue
an ORDMA against a reference the server is invalidating at that very
moment, and the worst case is a recoverable fault plus an RPC retry —
never wrong data, never a hang.
"""

from repro.cluster import Cluster
from repro.params import KB
from repro.sim import Tracer


def make_odafs(cache_blocks=4):
    return Cluster(system="odafs", block_size=4 * KB,
                   client_kwargs={"cache_blocks": cache_blocks,
                                  "rpc_read_mode": "direct"})


def warm_directory(cluster, blocks=8):
    """First pass: fill the client's reference directory (and overflow
    its block cache so re-reads go optimistic)."""
    client = cluster.clients[0]

    def proc():
        yield from client.open("f")
        for i in range(blocks):
            yield from client.read("f", i * 4 * KB, 4 * KB)

    cluster.sim.run_process(proc())


def test_invalidation_racing_an_inflight_ordma_falls_back_to_rpc():
    cluster = make_odafs()
    cluster.create_file("f", 32 * KB)
    tracer = Tracer.attach(cluster.sim)
    warm_directory(cluster)
    client = cluster.clients[0]

    def proc():
        # Evict the block server-side 5us into the optimistic re-read:
        # after the client has committed to ORDMA, before the server NIC
        # has validated the access.
        cluster.sim.call_at(cluster.sim.now + 5.0,
                            lambda: cluster.cache.invalidate(("f", 0)))
        data = yield from client.read("f", 0, 4 * KB)
        return data

    assert cluster.sim.run_process(proc()) == ("f", 0, 0)
    assert client.stats.get("ordma_faults") == 1
    span = tracer.finished_spans()[-1]
    assert span.op == "read" and span.path == "ordma-fallback"
    # The accounting helper keeps counter and span marks in lockstep.
    assert any(stage == "ordma.fault" for _, _, stage, _ in span.marks)


def test_fallback_rpc_refreshes_the_stale_reference():
    cluster = make_odafs()
    cluster.create_file("f", 32 * KB)
    warm_directory(cluster)
    client = cluster.clients[0]

    def proc():
        cluster.sim.call_at(cluster.sim.now + 5.0,
                            lambda: cluster.cache.invalidate(("f", 0)))
        yield from client.read("f", 0, 4 * KB)      # faults, RPC refills
        # Thrash the tiny client cache so block 0 must be fetched again.
        for i in range(4, 8):
            yield from client.read("f", i * 4 * KB, 4 * KB)
        data = yield from client.read("f", 0, 4 * KB)
        return data

    assert cluster.sim.run_process(proc()) == ("f", 0, 0)
    # Exactly one fault: the RPC fallback's piggybacked reference made
    # the final re-read a clean optimistic hit again.
    assert client.stats.get("ordma_faults") == 1
    assert client.stats.get("ordma_reads") >= 1


def test_every_block_invalidated_midway_still_serves_correct_data():
    """Crash-scale concurrent invalidation: the whole export map is torn
    down while a scan is running; every read still returns right data."""
    cluster = make_odafs()
    cluster.create_file("f", 32 * KB)
    warm_directory(cluster)
    client = cluster.clients[0]

    def proc():
        cluster.sim.call_at(cluster.sim.now + 5.0, cluster.cache.clear)
        out = []
        for i in range(8):
            data = yield from client.read("f", i * 4 * KB, 4 * KB)
            out.append(data)
        return out

    result = cluster.sim.run_process(proc())
    assert result == [("f", i, 0) for i in range(8)]
    assert client.stats.get("ordma_faults") >= 1
