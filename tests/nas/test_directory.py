"""Unit tests for the ORDMA reference directory."""

import pytest

from repro.nas.client.directory import ORDMADirectory, make_policy
from repro.proto.ordma import RemoteRef


def ref(i):
    return RemoteRef("server", 0x1000 * (i + 1), 4096)


def test_probe_miss_then_insert_then_hit():
    directory = ORDMADirectory(4)
    assert directory.probe("k") is None
    directory.insert("k", ref(0))
    assert directory.probe("k") == ref(0)
    assert directory.stats.get("hits") == 1
    assert directory.stats.get("misses") == 1


def test_capacity_evicts_lru():
    directory = ORDMADirectory(2, policy="lru")
    directory.insert("a", ref(0))
    directory.insert("b", ref(1))
    directory.probe("a")
    directory.insert("c", ref(2))
    assert directory.probe("b") is None
    assert directory.probe("a") == ref(0)
    assert directory.stats.get("evictions") == 1


def test_invalidate_on_fault():
    directory = ORDMADirectory(4)
    directory.insert("k", ref(0))
    assert directory.invalidate("k")
    assert not directory.invalidate("k")
    assert directory.probe("k") is None
    assert directory.stats.get("invalidations") == 1


def test_reinsert_updates_reference():
    """An RPC retry refreshes a stale reference (Section 4.2.1)."""
    directory = ORDMADirectory(4)
    directory.insert("k", ref(0))
    directory.insert("k", ref(1))
    assert directory.probe("k") == ref(1)
    assert len(directory) == 1


def test_mq_policy_variant():
    directory = ORDMADirectory(4, policy="mq")
    directory.insert("k", ref(0))
    assert directory.probe("k") == ref(0)
    assert directory.policy_name == "mq"


def test_unknown_policy_rejected():
    with pytest.raises(ValueError):
        ORDMADirectory(4, policy="clock")
    with pytest.raises(ValueError):
        make_policy("fifo", 4)


def test_hit_ratio():
    directory = ORDMADirectory(4)
    directory.insert("k", ref(0))
    directory.probe("k")
    directory.probe("x")
    directory.probe("k")
    assert directory.hit_ratio() == pytest.approx(2 / 3)


def test_remote_ref_validation():
    with pytest.raises(ValueError):
        RemoteRef("server", 0x1000, 0)
