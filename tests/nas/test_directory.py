"""Unit tests for the ORDMA reference directory — plus multi-client
scale tests: eight clients' directories under capacity pressure and
concurrent server-side eviction (never stale, never wrong)."""

import pytest

from repro.cluster import Cluster
from repro.nas.client.directory import ORDMADirectory, make_policy
from repro.params import KB
from repro.proto.ordma import RemoteRef


def ref(i):
    return RemoteRef("server", 0x1000 * (i + 1), 4096)


def test_probe_miss_then_insert_then_hit():
    directory = ORDMADirectory(4)
    assert directory.probe("k") is None
    directory.insert("k", ref(0))
    assert directory.probe("k") == ref(0)
    assert directory.stats.get("hits") == 1
    assert directory.stats.get("misses") == 1


def test_capacity_evicts_lru():
    directory = ORDMADirectory(2, policy="lru")
    directory.insert("a", ref(0))
    directory.insert("b", ref(1))
    directory.probe("a")
    directory.insert("c", ref(2))
    assert directory.probe("b") is None
    assert directory.probe("a") == ref(0)
    assert directory.stats.get("evictions") == 1


def test_invalidate_on_fault():
    directory = ORDMADirectory(4)
    directory.insert("k", ref(0))
    assert directory.invalidate("k")
    assert not directory.invalidate("k")
    assert directory.probe("k") is None
    assert directory.stats.get("invalidations") == 1


def test_reinsert_updates_reference():
    """An RPC retry refreshes a stale reference (Section 4.2.1)."""
    directory = ORDMADirectory(4)
    directory.insert("k", ref(0))
    directory.insert("k", ref(1))
    assert directory.probe("k") == ref(1)
    assert len(directory) == 1


def test_mq_policy_variant():
    directory = ORDMADirectory(4, policy="mq")
    directory.insert("k", ref(0))
    assert directory.probe("k") == ref(0)
    assert directory.policy_name == "mq"


def test_unknown_policy_rejected():
    with pytest.raises(ValueError):
        ORDMADirectory(4, policy="clock")
    with pytest.raises(ValueError):
        make_policy("fifo", 4)


def test_hit_ratio():
    directory = ORDMADirectory(4)
    directory.insert("k", ref(0))
    directory.probe("k")
    directory.probe("x")
    directory.probe("k")
    assert directory.hit_ratio() == pytest.approx(2 / 3)


def test_remote_ref_validation():
    with pytest.raises(ValueError):
        RemoteRef("server", 0x1000, 0)


# -- multi-client scale (>= 8 clients against one server) ---------------------


N_CLIENTS = 8
BLOCKS = 8


def make_scaled_odafs(n_clients=N_CLIENTS, directory_capacity=1 << 20,
                      cache_blocks=2):
    return Cluster(system="odafs", n_clients=n_clients, block_size=4 * KB,
                   client_kwargs={"cache_blocks": cache_blocks,
                                  "rpc_read_mode": "direct",
                                  "directory_capacity": directory_capacity})


def scan_all(cluster, blocks=BLOCKS, passes=1):
    """Every client scans the file ``passes`` times; returns per-client
    lists of block tuples from the final pass."""
    sim = cluster.sim
    out = [None] * len(cluster.clients)

    def client_main(idx):
        client = cluster.clients[idx]
        yield from client.open("f")
        for _ in range(passes):
            got = []
            for i in range(blocks):
                got.append((yield from client.read("f", i * 4 * KB,
                                                   4 * KB)))
            out[idx] = got

    def main():
        procs = [sim.process(client_main(i), name=f"scan{i}")
                 for i in range(len(cluster.clients))]
        yield sim.all_of(procs)

    sim.run_process(main())
    return out


def test_eight_client_directories_respect_capacity():
    """Every client's reference directory stays within its capacity
    bound even when the working set is twice its size."""
    cluster = make_scaled_odafs(directory_capacity=4)
    cluster.create_file("f", BLOCKS * 4 * KB)
    results = scan_all(cluster, passes=2)
    for got in results:
        assert got == [("f", i, 0) for i in range(BLOCKS)]
    for client in cluster.clients:
        assert len(client.directory) <= 4
        assert client.directory.stats.get("evictions") > 0


def test_eight_clients_all_go_optimistic_on_the_warm_pass():
    """With ample directory capacity, the second pass runs over ORDMA on
    every one of the eight clients (the scale-out claim: no server CPU)."""
    cluster = make_scaled_odafs()
    cluster.create_file("f", BLOCKS * 4 * KB)
    results = scan_all(cluster, passes=2)
    for got in results:
        assert got == [("f", i, 0) for i in range(BLOCKS)]
    for client in cluster.clients:
        assert client.stats.get("ordma_reads") >= BLOCKS
        assert client.stats.get("ordma_faults") == 0


def test_eight_clients_never_stale_after_server_eviction():
    """The server rewrites and evicts every block after the clients have
    built their directories; each of the eight clients' stale references
    must fault and refetch — every re-read sees the new version, never
    the old one."""
    cluster = make_scaled_odafs()
    cluster.create_file("f", BLOCKS * 4 * KB)
    scan_all(cluster, passes=1)                  # warm all 8 directories
    for i in range(BLOCKS):                      # server-side update
        cluster.fs.write_block("f", i, now=cluster.sim.now)
        cluster.cache.invalidate(("f", i))
    results = scan_all(cluster, passes=1)
    for got in results:
        assert got == [("f", i, 1) for i in range(BLOCKS)]
    for client in cluster.clients:
        assert client.stats.get("ordma_faults") >= 1


def test_eight_clients_survive_a_racing_invalidation_storm():
    """The whole export map is torn down while eight clients are
    mid-scan; every read on every client still returns correct data."""
    cluster = make_scaled_odafs()
    cluster.create_file("f", BLOCKS * 4 * KB)
    scan_all(cluster, passes=1)
    cluster.sim.call_at(cluster.sim.now + 5.0, cluster.cache.clear)
    results = scan_all(cluster, passes=1)
    for got in results:
        assert got == [("f", i, 0) for i in range(BLOCKS)]
    total_faults = sum(c.stats.get("ordma_faults")
                       for c in cluster.clients)
    assert total_faults >= 1


def test_eight_clients_with_admission_scheduler_and_eviction():
    """Scale pressure end to end: tiny accept queue, one service thread,
    server eviction mid-run — correctness holds on all eight clients."""
    from repro.params import default_params
    p = default_params()
    p.sched.policy = "fair"
    p.sched.service_threads = 1
    p.sched.max_queue = 2
    cluster = Cluster(p, system="odafs", n_clients=N_CLIENTS,
                      block_size=4 * KB,
                      client_kwargs={"cache_blocks": 2,
                                     "rpc_read_mode": "direct"})
    cluster.create_file("f", BLOCKS * 4 * KB)
    scan_all(cluster, passes=1)
    cluster.sim.call_at(cluster.sim.now + 5.0, cluster.cache.clear)
    results = scan_all(cluster, passes=1)
    for got in results:
        assert got == [("f", i, 0) for i in range(BLOCKS)]
    stats = cluster.scheduler.stats
    assert stats.get("admitted") == stats.get("dispatched")
    assert stats.get("dispatched") == stats.get("completed")
