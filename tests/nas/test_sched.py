"""Server admission/request scheduler: unit + RPC-integration tests."""

import pytest

from repro.cluster import Cluster
from repro.nas.server.sched import RequestScheduler
from repro.net.packet import Message, MsgKind
from repro.params import KB, default_params
from repro.proto.rpc import RPCError
from repro.sim import Simulator, Tracer


def msg(src, xid=0):
    return Message(MsgKind.ETH, src, "server", 128,
                   meta={"rpc": "req", "rpc_xid": xid})


def make_cluster(system="nfs", n_clients=4, policy="fifo", threads=2,
                 queue=8, **client_kwargs):
    p = default_params()
    p.sched.policy = policy
    p.sched.service_threads = threads
    p.sched.max_queue = queue
    return Cluster(p, system=system, n_clients=n_clients, block_size=4 * KB,
                   client_kwargs=client_kwargs or None)


def run_reads(cluster, name="f", blocks=8, per_client=None):
    """Every client reads the file; returns the list of result lists."""
    sim = cluster.sim
    out = [None] * len(cluster.clients)

    def client_main(idx):
        client = cluster.clients[idx]
        yield from client.open(name)
        got = []
        n = per_client or blocks
        for i in range(n):
            got.append((yield from client.read(name, (i % blocks) * 4 * KB,
                                               4 * KB)))
        out[idx] = got

    def main():
        procs = [sim.process(client_main(i), name=f"t{i}")
                 for i in range(len(cluster.clients))]
        yield sim.all_of(procs)

    sim.run_process(main())
    return out


class TestSchedulerUnit:
    def test_policy_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            RequestScheduler(sim, policy="srpt")
        with pytest.raises(ValueError):
            RequestScheduler(sim, service_threads=0)
        with pytest.raises(ValueError):
            RequestScheduler(sim, max_queue=0)

    def test_fifo_serves_in_arrival_order(self):
        sched = RequestScheduler(Simulator(), policy="fifo")
        for i in range(5):
            assert sched.admit(msg(f"c{i}", xid=i))
        order = [sched.pop()[0].meta["rpc_xid"] for _ in range(5)]
        assert order == [0, 1, 2, 3, 4]
        assert sched.pop() is None

    def test_fair_round_robin_interleaves_clients(self):
        sched = RequestScheduler(Simulator(), policy="fair")
        # One greedy client with a deep backlog, two polite ones.
        for i in range(4):
            sched.admit(msg("greedy", xid=i))
        sched.admit(msg("polite1", xid=100))
        sched.admit(msg("polite2", xid=200))
        served = [sched.pop()[0].src for _ in range(6)]
        # Both polite clients are served within one rotation, not after
        # the greedy client's whole backlog.
        assert served.index("polite1") <= 2
        assert served.index("polite2") <= 2
        assert served.count("greedy") == 4

    def test_bounded_queue_rejects_overflow(self):
        sched = RequestScheduler(Simulator(), max_queue=2)
        assert sched.admit(msg("a"))
        assert sched.admit(msg("b"))
        assert not sched.admit(msg("c"))
        assert sched.stats.get("rejected") == 1
        assert sched.stats.get("admitted") == 2
        assert len(sched) == 2

    def test_peak_watermarks(self):
        sched = RequestScheduler(Simulator(), max_queue=8)
        for i in range(3):
            sched.admit(msg("a", xid=i))
        assert sched.peak_qdepth == 3
        sched.note_active(+1)
        sched.note_active(+1)
        sched.note_active(-1)
        assert sched.peak_active == 2
        assert sched.active == 1

    def test_drop_all_empties_every_queue(self):
        for policy in ("fifo", "fair"):
            sched = RequestScheduler(Simulator(), policy=policy)
            for i in range(4):
                sched.admit(msg(f"c{i % 2}", xid=i))
            assert sched.drop_all() == 4
            assert len(sched) == 0
            assert sched.pop() is None
            assert sched.stats.get("dropped_at_crash") == 4

    def test_gauges_expose_qdepth_and_active(self):
        sched = RequestScheduler(Simulator())
        gauges = sched.gauges()
        assert set(gauges) == {"qdepth", "active", "rejected_s"}
        sched.admit(msg("a"))
        sched.note_active(+1)
        assert gauges["qdepth"]() == 1.0
        assert gauges["active"]() == 1.0


class TestRPCIntegration:
    def test_cluster_without_policy_has_no_scheduler(self):
        cluster = Cluster(system="nfs", n_clients=1, block_size=4 * KB)
        assert cluster.scheduler is None
        assert cluster.server.rpc.scheduler is None

    def test_attach_twice_rejected(self):
        cluster = make_cluster(n_clients=1)
        with pytest.raises(RPCError):
            cluster.server.rpc.attach_scheduler(cluster.scheduler)

    @pytest.mark.parametrize("policy", ["fifo", "fair"])
    def test_all_reads_complete_and_return_correct_data(self, policy):
        cluster = make_cluster(n_clients=4, policy=policy, threads=2,
                               queue=64, bcache_entries=2)
        cluster.create_file("f", 32 * KB)
        results = run_reads(cluster, blocks=8)
        for got in results:
            assert got == [("f", i, 0) for i in range(8)]

    def test_thread_pool_bounds_concurrency(self):
        cluster = make_cluster(n_clients=8, policy="fifo", threads=2,
                               queue=64, bcache_entries=2)
        cluster.create_file("f", 32 * KB)
        run_reads(cluster, blocks=8)
        sched = cluster.scheduler
        assert sched.peak_active <= 2
        # With 8 clients contending for 2 threads, requests really queue.
        assert sched.peak_qdepth > 1

    def test_overload_rejects_and_clients_retry_to_completion(self):
        cluster = make_cluster(n_clients=8, policy="fifo", threads=1,
                               queue=2, bcache_entries=2)
        cluster.create_file("f", 32 * KB)
        results = run_reads(cluster, blocks=8)
        sched = cluster.scheduler
        assert sched.stats.get("rejected") > 0
        rejected_calls = sum(c.rpc.stats.get("rejected_calls")
                             for c in cluster.clients)
        assert rejected_calls > 0
        # Load shedding is loss-free end to end: every read completed
        # with correct data despite the busy replies.
        for got in results:
            assert got == [("f", i, 0) for i in range(8)]

    def test_admitted_conserved_through_dispatch_and_completion(self):
        cluster = make_cluster(n_clients=6, policy="fair", threads=2,
                               queue=4, bcache_entries=2)
        cluster.create_file("f", 32 * KB)
        run_reads(cluster, blocks=8)
        stats = cluster.scheduler.stats
        assert stats.get("admitted") == stats.get("dispatched")
        assert stats.get("dispatched") == stats.get("completed")
        assert len(cluster.scheduler) == 0

    def test_reject_without_policy_raises_rpc_error(self):
        cluster = make_cluster(n_clients=4, policy="fifo", threads=1,
                               queue=1, bcache_entries=2)
        # Strip the backoff policy: a rejection must surface, not hang.
        for client in cluster.clients:
            client.rpc.reject_retry = None
        cluster.create_file("f", 64 * KB)
        with pytest.raises(RPCError, match="rejected"):
            run_reads(cluster, blocks=16)

    def test_queue_wait_attributed_to_span(self):
        cluster = make_cluster(n_clients=4, policy="fifo", threads=1,
                               queue=64, bcache_entries=2)
        cluster.create_file("f", 32 * KB)
        tracer = Tracer.attach(cluster.sim)
        run_reads(cluster, blocks=8)
        marks = [stage for span in tracer.finished_spans()
                 for _, _, stage, _ in span.marks]
        assert "sched.queue" in marks

    def test_rejection_marked_on_span(self):
        cluster = make_cluster(n_clients=8, policy="fifo", threads=1,
                               queue=1, bcache_entries=2)
        cluster.create_file("f", 32 * KB)
        tracer = Tracer.attach(cluster.sim)
        run_reads(cluster, blocks=8)
        marks = [stage for span in tracer.finished_spans()
                 for _, _, stage, _ in span.marks]
        assert "sched.reject" in marks and "rpc.rejected" in marks

    def test_metrics_registry_exports_sched_counters(self):
        cluster = make_cluster(n_clients=2, policy="fifo", threads=1,
                               queue=4, bcache_entries=2)
        cluster.create_file("f", 16 * KB)
        run_reads(cluster, blocks=4)
        snap = cluster.metrics.snapshot()
        assert snap["server.sched.admitted"] > 0

    def test_sampler_probes_sched_gauges(self):
        cluster = make_cluster(n_clients=2, policy="fifo", threads=1,
                               queue=4, bcache_entries=2)
        cluster.create_file("f", 16 * KB)
        sampler = cluster.attach_sampler(interval_us=10.0)
        names = set(sampler.names())
        assert {"server.sched.qdepth", "server.sched.active",
                "server.sched.rejected_s"} <= names
