"""Tests for parameter handling and cluster wiring."""

import pytest

from repro.cluster import SYSTEMS, Cluster
from repro.params import KB, MB, Params, default_params


class TestParams:
    def test_defaults_are_calibrated_values(self):
        params = default_params()
        assert params.net.link_bw == 250.0
        assert params.nic.pci_bw == 450.0
        assert params.net.gm_mtu == 4 * KB
        assert params.net.ip_fragment_payload == 8 * KB

    def test_copy_is_deep_for_nested_dataclasses(self):
        params = default_params()
        clone = params.copy()
        clone.net.link_bw = 1.0
        clone.host.interrupt_us = 99.0
        assert params.net.link_bw == 250.0
        assert params.host.interrupt_us == 5.0

    def test_copy_with_override(self):
        params = default_params()
        clone = params.copy(seed=42)
        assert clone.seed == 42
        assert params.seed == 2003

    def test_units(self):
        assert KB == 1024
        assert MB == 1_000_000  # decimal, matching 2 Gb/s = 250 MB/s


class TestCluster:
    def test_unknown_system_rejected(self):
        with pytest.raises(ValueError):
            Cluster(system="afs")

    def test_all_systems_construct(self):
        for system in SYSTEMS:
            kwargs = ({"cache_blocks": 4}
                      if system in ("dafs", "odafs") else {})
            cluster = Cluster(system=system, client_kwargs=kwargs)
            assert cluster.clients

    def test_only_odafs_exports_cache(self):
        odafs = Cluster(system="odafs",
                        client_kwargs={"cache_blocks": 4})
        dafs = Cluster(system="dafs", client_kwargs={"cache_blocks": 4})
        odafs.create_file("f", 4 * KB)
        dafs.create_file("f", 4 * KB)
        assert odafs.cache.export
        assert not dafs.cache.export
        assert odafs.server_host.nic.tpt.segment_count() >= 1

    def test_n_clients(self):
        cluster = Cluster(system="nfs", n_clients=3)
        assert len(cluster.clients) == 3
        assert [h.name for h in cluster.client_hosts] == \
            ["client0", "client1", "client2"]

    def test_warm_false_leaves_cache_cold(self):
        cluster = Cluster(system="dafs", block_size=4 * KB,
                          client_kwargs={"cache_blocks": 4})
        cluster.create_file("cold", 16 * KB, warm=False)
        assert len(cluster.cache) == 0
        cluster.create_file("warm", 16 * KB, warm=True)
        assert len(cluster.cache) == 4

    def test_block_size_defaults_to_storage_param(self):
        params = default_params()
        cluster = Cluster(params, system="nfs")
        assert cluster.block_size == params.storage.server_cache_block

    def test_seed_controls_rand_streams(self):
        a = Cluster(default_params().copy(seed=1), system="nfs")
        b = Cluster(default_params().copy(seed=1), system="nfs")
        assert a.rand.stream("x").random() == b.rand.stream("x").random()
