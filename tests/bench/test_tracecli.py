"""Tests for the ``repro-bench trace`` analysis subcommand."""

import json

from repro.bench import tracecli
from repro.bench.cli import main as bench_main


class TestWorkload:
    def test_odafs_run_covers_all_paths(self):
        live = tracecli.run_workload(system="odafs", blocks=16)
        spans = live["tracer"].finished_spans(op="read")
        paths = {s.path for s in spans}
        assert {"rdma", "ordma", "ordma-fallback"} <= paths

    def test_span_sums_match_meter_within_one_percent(self):
        live = tracecli.run_workload(system="odafs", blocks=16)
        meter = live["meter"]
        spans = live["tracer"].finished_spans(op="read")
        assert len(spans) == meter.count
        span_mean = tracecli.span_sum_mean(spans)
        assert abs(span_mean - meter.mean) / meter.mean < 0.01


class TestCLI:
    def test_text_output_sections(self, capsys):
        assert tracecli.main(["--quick"]) == 0
        out = capsys.readouterr().out
        for section in ("Path mix", "Per-stage latency", "waterfalls",
                        "ORDMA fault timeline", "Cache summary",
                        "Consistency check"):
            assert section in out
        assert "[OK <1%]" in out
        for path in ("rdma", "ordma", "ordma-fallback"):
            assert path in out

    def test_rpc_path_for_plain_nfs(self, capsys):
        assert tracecli.main(["--quick", "--system", "nfs"]) == 0
        out = capsys.readouterr().out
        assert "path=rpc" in out

    def test_json_output(self, capsys):
        assert tracecli.main(["--quick", "--json"]) == 0
        result = json.loads(capsys.readouterr().out)
        assert result["path_mix"]
        assert result["meter_mean_us"] > 0
        delta = abs(result["span_sum_mean_us"] - result["meter_mean_us"])
        assert delta / result["meter_mean_us"] < 0.01

    def test_dump_and_input_round_trip(self, tmp_path, capsys):
        dump = tmp_path / "t.jsonl"
        assert tracecli.main(["--quick", "--dump", str(dump)]) == 0
        capsys.readouterr()
        assert tracecli.main(["--input", str(dump)]) == 0
        out = capsys.readouterr().out
        assert "Path mix" in out and "ordma" in out

    def test_dispatch_from_bench_cli(self, capsys):
        assert bench_main(["trace", "--quick", "--waterfalls", "1"]) == 0
        assert "Consistency check" in capsys.readouterr().out
