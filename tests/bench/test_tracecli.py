"""Tests for the ``repro-bench trace`` analysis subcommand."""

import json

from repro.bench import tracecli
from repro.bench.cli import main as bench_main


class TestWorkload:
    def test_odafs_run_covers_all_paths(self):
        live = tracecli.run_workload(system="odafs", blocks=16)
        spans = live["tracer"].finished_spans(op="read")
        paths = {s.path for s in spans}
        assert {"rdma", "ordma", "ordma-fallback"} <= paths

    def test_span_sums_match_meter_within_one_percent(self):
        live = tracecli.run_workload(system="odafs", blocks=16)
        meter = live["meter"]
        spans = live["tracer"].finished_spans(op="read")
        assert len(spans) == meter.count
        span_mean = tracecli.span_sum_mean(spans)
        assert abs(span_mean - meter.mean) / meter.mean < 0.01


class TestCriticalPath:
    def _spans(self):
        live = tracecli.run_workload(system="odafs", blocks=16)
        return live["tracer"].finished_spans(op="read"), live["sampler"]

    def test_attribution_reconciles_with_duration(self):
        spans, _sampler = self._spans()
        assert tracecli.critical_path_consistency(spans) <= 1e-6

    def test_splits_cover_every_path(self):
        spans, _sampler = self._spans()
        tables = tracecli.critical_path(spans)
        assert {"rdma", "ordma", "ordma-fallback"} <= set(tables)
        for splits in tables.values():
            for split in splits.values():
                # Every span spends at least one floor of service.
                assert split.service.minimum >= split.floor - 1e-9
                assert split.occurrences >= split.service.count

    def test_floor_is_minimum_observed_interval(self):
        spans, _sampler = self._spans()
        floors = tracecli.service_floors(spans)
        for span in spans:
            for stage, _component, _start, dur in span.stages():
                assert floors[(span.path, stage)] <= dur + 1e-9

    def test_dominant_resource_named_from_sampler(self):
        live = tracecli.run_workload(system="odafs", blocks=16,
                                     sample_interval_us=50.0)
        spans = live["tracer"].finished_spans(op="read")
        dominant = tracecli.dominant_resources(spans, live["sampler"])
        assert dominant
        for name, mean in dominant.values():
            assert name.endswith(tracecli._UTIL_SUFFIXES)
            assert 0.0 <= mean <= 1.0

    def test_dominant_resources_empty_without_telemetry(self):
        spans, _sampler = self._spans()
        assert tracecli.dominant_resources(spans, None) == {}


class TestCLI:
    def test_text_output_sections(self, capsys):
        assert tracecli.main(["--quick"]) == 0
        out = capsys.readouterr().out
        for section in ("Path mix", "Per-stage latency", "waterfalls",
                        "ORDMA fault timeline", "Cache summary",
                        "Consistency check"):
            assert section in out
        assert "[OK <1%]" in out
        for path in ("rdma", "ordma", "ordma-fallback"):
            assert path in out

    def test_rpc_path_for_plain_nfs(self, capsys):
        assert tracecli.main(["--quick", "--system", "nfs"]) == 0
        out = capsys.readouterr().out
        assert "path=rpc" in out

    def test_json_output(self, capsys):
        assert tracecli.main(["--quick", "--json"]) == 0
        result = json.loads(capsys.readouterr().out)
        assert result["path_mix"]
        assert result["meter_mean_us"] > 0
        delta = abs(result["span_sum_mean_us"] - result["meter_mean_us"])
        assert delta / result["meter_mean_us"] < 0.01

    def test_dump_and_input_round_trip(self, tmp_path, capsys):
        dump = tmp_path / "t.jsonl"
        assert tracecli.main(["--quick", "--dump", str(dump)]) == 0
        capsys.readouterr()
        assert tracecli.main(["--input", str(dump)]) == 0
        out = capsys.readouterr().out
        assert "Path mix" in out and "ordma" in out

    def test_critical_path_text_output(self, capsys):
        assert tracecli.main(["--quick", "--critical-path"]) == 0
        out = capsys.readouterr().out
        assert "Critical path: service vs queueing wait" in out
        assert "dominant resource:" in out
        assert "reconciliation" in out and "[OK]" in out

    def test_critical_path_json_output(self, capsys):
        assert tracecli.main(["--quick", "--critical-path",
                              "--json"]) == 0
        result = json.loads(capsys.readouterr().out)
        assert result["critical_path_max_error_us"] <= 1e-6
        for path, table in result["critical_path"].items():
            for stage, split in table["stages"].items():
                assert split["count"] > 0
                assert split["service"]["mean"] >= 0.0
                assert split["wait"]["mean"] >= 0.0

    def test_perfetto_and_timeseries_outputs(self, tmp_path, capsys):
        from repro.bench import traceexport
        from repro.sim import load_timeseries_jsonl
        perfetto = tmp_path / "trace.json"
        ts = tmp_path / "ts.jsonl"
        assert tracecli.main(["--quick", "--perfetto", str(perfetto),
                              "--timeseries", str(ts)]) == 0
        capsys.readouterr()
        assert traceexport.main([str(perfetto)]) == 0
        assert "OK" in capsys.readouterr().out
        dump = load_timeseries_jsonl(str(ts))
        assert dump.ticks > 0 and "server.cpu.util" in dump.names()

    def test_perfetto_from_input_dump(self, tmp_path, capsys):
        dump = tmp_path / "t.jsonl"
        perfetto = tmp_path / "trace.json"
        assert tracecli.main(["--quick", "--dump", str(dump)]) == 0
        assert tracecli.main(["--input", str(dump),
                              "--perfetto", str(perfetto)]) == 0
        capsys.readouterr()
        from repro.bench import traceexport
        assert traceexport.main([str(perfetto)]) == 0

    def test_dispatch_from_bench_cli(self, capsys):
        assert bench_main(["trace", "--quick", "--waterfalls", "1"]) == 0
        assert "Consistency check" in capsys.readouterr().out

    def test_telemetry_dispatch_from_bench_cli(self, capsys):
        assert bench_main(["telemetry", "--quick", "--seed", "7",
                           "--series", "server.cpu"]) == 0
        out = capsys.readouterr().out
        assert "Telemetry" in out and "server.cpu.util" in out
