"""The ``repro-bench telemetry`` subcommand: sparklines and campaigns."""

import json

import pytest

from repro.bench import telemetry


class TestSparkline:
    def test_resample_preserves_short_series(self):
        assert telemetry.resample([1.0, 2.0], 10) == [1.0, 2.0]

    def test_resample_buckets_long_series(self):
        values = [float(x) for x in range(100)]
        out = telemetry.resample(values, 10)
        assert len(out) == 10
        assert out[0] == pytest.approx(4.5)   # mean of 0..9
        assert out[-1] == pytest.approx(94.5)  # mean of 90..99

    def test_sparkline_scales_to_range(self):
        line = telemetry.sparkline([0.0, 1.0], width=10)
        assert line[0] == telemetry.SPARK[0]
        assert line[-1] == telemetry.SPARK[-1]

    def test_flat_series_renders_low_glyph(self):
        assert telemetry.sparkline([5.0] * 4) == telemetry.SPARK[0] * 4

    def test_empty_series(self):
        assert telemetry.sparkline([]) == ""


class TestRenderTimelines:
    def _series(self):
        return {"a.util": [(10.0, 0.1), (20.0, 0.9)],
                "b.queue": [(10.0, 3.0)]}

    def test_all_series_listed(self):
        out = telemetry.render_timelines(self._series())
        assert "a.util" in out and "b.queue" in out
        assert "n=   2" in out

    def test_match_filters(self):
        out = telemetry.render_timelines(self._series(), match=["a."])
        assert "a.util" in out and "b.queue" not in out
        assert telemetry.render_timelines(self._series(),
                                          match=["zzz"]) == \
            "  (no matching series)"

    def test_summary_stats(self):
        summary = telemetry.series_summary(self._series())
        assert summary["a.util"] == {
            "n": 2, "min": 0.1, "mean": pytest.approx(0.5), "max": 0.9,
            "last": 0.9}


class TestCampaign:
    @pytest.fixture(scope="class")
    def results(self):
        return telemetry.run_campaign(["nfs", "odafs"], blocks=16,
                                      seed=7, jobs=1)

    def test_results_in_point_order(self, results):
        assert [r["system"] for r in results] == ["nfs", "odafs"]
        assert all(r["ticks"] > 0 for r in results)

    def test_fig7_story_in_means(self, results):
        by_system = {r["system"]: r["means"] for r in results}
        assert by_system["odafs"]["server.cpu.util"] < \
            by_system["nfs"]["server.cpu.util"] / 2
        assert by_system["odafs"]["server.cpu.util.copy"] == 0.0

    def test_render_names_the_story(self, results):
        out = telemetry.render_campaign(results)
        assert "server CPU out of the data path" in out
        assert "% lower" in out


class TestCli:
    def test_json_output(self, capsys):
        assert telemetry.main(["--quick", "--seed", "7", "--json"]) == 0
        result = json.loads(capsys.readouterr().out)
        assert result["system"] == "odafs"
        assert result["ticks"] > 0
        assert result["series"]["server.cpu.util"]["n"] == result["ticks"]

    def test_campaign_json_output(self, capsys):
        assert telemetry.main(["--quick", "--seed", "7", "--systems",
                               "nfs,odafs", "--json"]) == 0
        result = json.loads(capsys.readouterr().out)
        assert set(result) == {"nfs", "odafs"}

    def test_unknown_system_rejected(self, capsys):
        with pytest.raises(SystemExit):
            telemetry.main(["--systems", "nfs,bogus"])

    def test_dump_writes_jsonl(self, tmp_path, capsys):
        from repro.sim import load_timeseries_jsonl
        path = tmp_path / "ts.jsonl"
        assert telemetry.main(["--quick", "--seed", "7",
                               "--dump", str(path)]) == 0
        dump = load_timeseries_jsonl(str(path))
        assert dump.ticks > 0
        assert "server.cpu.util" in dump.names()
