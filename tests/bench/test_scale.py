"""Determinism and acceptance tests for the client-scaling campaign.

Three layers of regression guard:

* byte-identical JSON for same-seed campaigns (serial and parallel);
* the single-client default path reproduces the seed kernel's exact
  ``rpc_reads`` digest — the scheduler must be invisible when off;
* the paper's scale-out claim — ODAFS small-I/O throughput at the
  NFS-saturating client count beats NFS by >= 30% (slow sweep).
"""

import json

import pytest

from repro.bench import perf, scale
from repro.params import default_params

#: Tiny same-shape grid so the determinism tests stay fast.
TINY = dict(systems=("nfs", "odafs"), mixes=("smallio",),
            client_counts=(1, 2, 4), blocks=8)


@pytest.fixture(scope="module")
def tiny_campaign():
    return scale.scale_campaign(**TINY)


class TestDeterminism:
    def test_same_seed_campaigns_byte_identical(self, tiny_campaign):
        again = scale.scale_campaign(**TINY)
        assert json.dumps(tiny_campaign, sort_keys=True) == \
            json.dumps(again, sort_keys=True)

    def test_parallel_grid_byte_identical_to_serial(self, tiny_campaign):
        parallel = scale.scale_campaign(jobs=2, **TINY)
        assert json.dumps(tiny_campaign, sort_keys=True) == \
            json.dumps(parallel, sort_keys=True)

    def test_distinct_seeds_differ(self):
        a = scale.scale_campaign(params=default_params().copy(seed=1),
                                 systems=("nfs",), mixes=("postmark",),
                                 client_counts=(2,))
        b = scale.scale_campaign(params=default_params().copy(seed=2),
                                 systems=("nfs",), mixes=("postmark",),
                                 client_counts=(2,))
        # The PostMark mix draws file choices from the seeded stream, so
        # different seeds must produce observably different runs.
        assert json.dumps(a, sort_keys=True) != \
            json.dumps(b, sort_keys=True)

    def test_both_mixes_emit_full_grids(self):
        results = scale.scale_campaign(systems=("odafs",),
                                       client_counts=(1, 2), blocks=8,
                                       transactions=8, n_files=8)
        for mix in scale.MIXES:
            points = results[mix]["odafs"]
            assert set(points) == {"1", "2"}
            for point in points.values():
                assert point["ops"] > 0
                assert point["throughput_mb_s"] > 0
                assert point["sched"]["admitted"] == \
                    point["sched"]["completed"]


class TestSeedKernelRegression:
    def test_scheduler_is_off_by_default(self):
        assert default_params().sched.policy == "none"

    def test_single_client_default_reproduces_seed_digest(self):
        """The exact (ops, sim_us, events) triple recorded from the
        pre-scheduler kernel: the admission layer must leave the default
        single-client path untouched down to the event count."""
        result = perf.bench_rpc_reads(quick=True)
        assert result["ops"] == 128
        assert result["sim_us"] == 18638.490222222088
        assert result["events"] == 14287


class TestRender:
    def test_render_mentions_every_system_and_summary(self, tiny_campaign):
        text = scale.render_campaign(tiny_campaign)
        assert "nfs" in text and "odafs" in text
        assert "saturates at" in text
        assert "ODAFS over NFS" in text

    def test_cli_json_round_trips(self, capsys):
        assert scale.main(["--systems", "nfs", "--mixes", "smallio",
                           "--clients", "1", "2", "--blocks", "8",
                           "--seed", "3", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["seed"] == 3
        assert set(doc["results"]["smallio"]["nfs"]) == {"1", "2"}

    def test_cli_rejects_unknown_system(self):
        with pytest.raises(SystemExit):
            scale.main(["--systems", "zfs"])


class TestScaleOutClaim:
    def test_odafs_beats_nfs_at_eight_clients(self):
        """Fast acceptance proxy: by 8 clients NFS is near server-CPU
        saturation and ODAFS already exceeds it by far more than the
        paper's 30%."""
        nfs = scale.run_point_smallio("nfs", 8, blocks=24)
        odafs = scale.run_point_smallio("odafs", 8, blocks=24)
        assert nfs["server_cpu"] > 0.9
        assert odafs["server_cpu"] < 0.1
        assert odafs["throughput_mb_s"] >= 1.3 * nfs["throughput_mb_s"]

    @pytest.mark.slow
    def test_full_sweep_shows_crossover_and_30pct_gain(self):
        """The full acceptance criterion: sweep to 32 clients, find the
        NFS saturation point, and verify the ODAFS gain there plus the
        latency crossover (NFS p95 blows up with queueing, ODAFS's
        stays an order of magnitude lower)."""
        results = scale.scale_campaign(
            systems=("nfs", "odafs"), mixes=("smallio",),
            client_counts=(1, 2, 4, 8, 16, 32))
        smallio = results["smallio"]
        summary = smallio["summary"]
        assert summary["odafs_vs_nfs_at_saturation"] >= 0.3
        sat = str(summary["nfs"]["saturation_clients"])
        assert int(sat) <= 16                    # NFS saturates early
        # Throughput crossover: ODAFS keeps scaling past NFS's plateau.
        assert summary["odafs"]["peak_mb_s"] >= \
            1.3 * summary["nfs"]["peak_mb_s"]
        # Latency story: queueing delay balloons NFS tails at 32 clients.
        assert smallio["nfs"]["32"]["p95_us"] > \
            4 * smallio["odafs"]["32"]["p95_us"]
        # The admission layer really engaged: requests queued at the
        # saturated server, and the thread pool stayed bounded.
        assert smallio["nfs"]["32"]["sched"]["peak_qdepth"] > 1
        assert smallio["nfs"]["32"]["sched"]["peak_active"] <= 4

    @pytest.mark.slow
    def test_full_quick_cli_byte_identical_across_runs(self, capsys):
        """The CI determinism gate in-process: two --quick --seed 7 JSON
        campaigns must match byte for byte."""
        assert scale.main(["--quick", "--seed", "7", "--json"]) == 0
        first = capsys.readouterr().out
        assert scale.main(["--quick", "--seed", "7", "--json"]) == 0
        assert capsys.readouterr().out == first
