"""Tests for the ASCII chart renderer."""

import pytest

from repro.bench.plot import ascii_chart, chart_from_sweep


def test_chart_dimensions_and_legend():
    out = ascii_chart({"a": {4: 10.0, 64: 100.0},
                       "b": {4: 50.0, 64: 50.0}},
                      width=40, height=10, ylabel="MB/s")
    lines = out.splitlines()
    assert len(lines) == 10 + 3  # grid + axis + ticks + legend
    assert "o=a" in lines[-1] and "*=b" in lines[-1]
    assert "MB/s" in lines[-1]


def test_points_placed_monotonically():
    out = ascii_chart({"s": {1: 0.0, 2: 50.0, 3: 100.0}},
                      width=30, height=11)
    grid = out.splitlines()[:11]  # exclude axis/ticks/legend
    placements = [(line.index("o", 10), i) for i, line in enumerate(grid)
                  if "o" in line[10:]]
    placements.sort()  # by column (i.e. by x)
    rows = [row for _col, row in placements]
    # Larger y must land on an upper (smaller-index) row.
    assert rows == sorted(rows, reverse=True)
    assert len(rows) == 3


def test_ymax_clamps():
    out = ascii_chart({"s": {1: 1000.0}}, width=20, height=5, ymax=100.0)
    # Point lands on the top row despite exceeding ymax.
    assert "o" in out.splitlines()[0]


def test_empty_rejected():
    with pytest.raises(ValueError):
        ascii_chart({})
    with pytest.raises(ValueError):
        ascii_chart({"s": {}})


def test_chart_from_sweep():
    sweep = {"dafs": {4: {"throughput_mb_s": 90.0},
                      64: {"throughput_mb_s": 230.0}}}
    out = chart_from_sweep(sweep, "throughput_mb_s", width=30, height=8)
    assert "o=dafs" in out
