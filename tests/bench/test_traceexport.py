"""Perfetto/Chrome Trace Event Format export: schema validity,
byte-for-byte determinism, and the Fig. 7 counter-track story."""

import json

import pytest

from repro.bench import telemetry, traceexport, tracecli
from repro.params import default_params


def run_sampled(system="odafs", blocks=8, seed=7):
    return tracecli.run_workload(
        system=system, blocks=blocks, passes=2,
        params=default_params().copy(seed=seed), sample_interval_us=50.0)


@pytest.fixture(scope="module")
def live():
    return run_sampled()


@pytest.fixture(scope="module")
def doc(live):
    tracer = live["tracer"]
    return traceexport.build_trace(events=list(tracer),
                                   spans=tracer.finished_spans(),
                                   series=live["sampler"])


class TestBuildTrace:
    def test_valid_against_schema(self, doc):
        assert traceexport.validate(doc) == []

    def test_document_envelope(self, doc):
        assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
        phases = {row["ph"] for row in doc["traceEvents"]}
        assert phases == {"M", "X", "i", "C"}

    def test_every_host_has_a_process_row(self, doc):
        names = {row["args"]["name"] for row in doc["traceEvents"]
                 if row["ph"] == "M" and row["name"] == "process_name"}
        assert {"server", "client0", "net"} <= names

    def test_counter_tracks_cover_sampler_series(self, doc, live):
        tracks = traceexport.counter_tracks(doc)
        assert set(tracks) == set(live["sampler"].series)
        assert all(count > 0 for count in tracks.values())

    def test_span_rows_carry_request_ids(self, doc):
        requests = [row for row in doc["traceEvents"]
                    if row["ph"] == "X" and row["name"] == "read"]
        assert requests
        assert all("rid" in row["args"] for row in requests)


class TestValidate:
    def test_rejects_non_document(self):
        assert traceexport.validate([]) != []
        assert traceexport.validate({"traceEvents": []}) != []

    def test_rejects_unknown_phase(self):
        doc = {"traceEvents": [{"ph": "Q", "pid": 1, "name": "x"}]}
        assert any("unknown phase" in p for p in traceexport.validate(doc))

    def test_rejects_negative_duration(self):
        doc = {"traceEvents": [
            {"ph": "M", "pid": 1, "tid": 0, "name": "process_name",
             "args": {"name": "p"}},
            {"ph": "X", "pid": 1, "tid": 0, "ts": 0.0, "dur": -1.0,
             "name": "x"},
        ]}
        assert any("dur" in p for p in traceexport.validate(doc))

    def test_rejects_counter_time_regression(self):
        doc = {"traceEvents": [
            {"ph": "M", "pid": 1, "tid": 0, "name": "process_name",
             "args": {"name": "p"}},
            {"ph": "C", "pid": 1, "tid": 0, "ts": 10.0, "name": "c",
             "args": {"value": 1.0}},
            {"ph": "C", "pid": 1, "tid": 0, "ts": 5.0, "name": "c",
             "args": {"value": 2.0}},
        ]}
        assert any("regresses" in p for p in traceexport.validate(doc))

    def test_rejects_unnamed_pid(self):
        doc = {"traceEvents": [
            {"ph": "i", "pid": 9, "tid": 0, "ts": 0.0, "name": "x",
             "s": "t", "args": {}},
        ]}
        assert any("no process_name" in p
                   for p in traceexport.validate(doc))


class TestDeterminism:
    def test_same_seed_same_bytes(self):
        def export():
            live = run_sampled(blocks=4)
            tracer = live["tracer"]
            doc = traceexport.build_trace(
                events=list(tracer), spans=tracer.finished_spans(),
                series=live["sampler"])
            return traceexport.to_json(doc), live["sampler"].to_jsonl()

        assert export() == export()

    def test_campaign_jobs_parallel_equivalence(self):
        kwargs = dict(blocks=4, seed=7)
        serial = telemetry.run_campaign(["nfs", "odafs"], jobs=1, **kwargs)
        parallel = telemetry.run_campaign(["nfs", "odafs"], jobs=2,
                                          **kwargs)
        assert serial == parallel
        assert [r["jsonl"] for r in serial] == \
            [r["jsonl"] for r in parallel]


class TestDumpAndCli:
    def test_dump_validates_via_cli(self, tmp_path, live, capsys):
        tracer = live["tracer"]
        path = tmp_path / "trace.json"
        count = traceexport.dump_perfetto(
            str(path), events=list(tracer),
            spans=tracer.finished_spans(), series=live["sampler"])
        assert count > 0
        assert traceexport.main([str(path)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_cli_flags_invalid_file(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(
            {"traceEvents": [{"ph": "Q", "pid": 1, "name": "x"}]}))
        assert traceexport.main([str(path)]) == 1
        assert "INVALID" in capsys.readouterr().out

    def test_cli_without_args(self, capsys):
        assert traceexport.main([]) == 2

    def test_export_from_trace_dump_without_series(self, tmp_path, live):
        # --input mode: spans reloaded from JSONL, no sampler attached.
        from repro.sim import load_jsonl
        dump_path = tmp_path / "trace.jsonl"
        live["tracer"].dump_jsonl(str(dump_path))
        dump = load_jsonl(str(dump_path))
        doc = traceexport.build_trace(events=dump.events,
                                      spans=dump.finished_spans())
        assert traceexport.validate(doc) == []
        assert traceexport.counter_tracks(doc) == {}


class TestFig7Story:
    def test_odafs_drops_server_cpu_counter_track(self):
        """The paper's core claim, read off the exported counter tracks:
        ODAFS moves the server CPU out of the data path."""
        means = {}
        for system in ("nfs", "odafs"):
            # 16 blocks: long enough that the steady ORDMA phase (not
            # the RPC warm-up pass) dominates the ODAFS run.
            live = run_sampled(system=system, blocks=16)
            doc = traceexport.build_trace(series=live["sampler"])
            values = [row["args"]["value"]
                      for row in doc["traceEvents"]
                      if row["ph"] == "C"
                      and row["name"] == "server.cpu.util"]
            assert values
            means[system] = sum(values) / len(values)
        assert means["odafs"] < means["nfs"] / 2
