"""The parallel campaign runner: ordering, seeding, and the byte-identity
guarantee — campaign output must not depend on the job count."""

import json
import os

import pytest

from repro.bench import chaos, figures
from repro.bench.runner import (JOBS_ENV, default_jobs, derive_seed,
                                run_points)


def _square(x):
    return x * x


def _spec_tag(spec):
    return f"{spec[0]}:{spec[1]}"


class TestRunPoints:
    def test_serial_preserves_order(self):
        assert run_points(_square, [3, 1, 2], jobs=1) == [9, 1, 4]

    def test_parallel_preserves_order(self):
        points = list(range(20))
        assert run_points(_square, points, jobs=4) == [p * p for p in points]

    def test_parallel_matches_serial(self):
        points = [("dafs", 4), ("nfs", 64), ("odafs", 256)]
        assert (run_points(_spec_tag, points, jobs=3)
                == run_points(_spec_tag, points, jobs=1))

    def test_single_point_stays_in_process(self):
        # len(points) <= 1 must not spin up a pool at all.
        state = []
        run_points(state.append, [42], jobs=8)
        assert state == [42]

    def test_empty_points(self):
        assert run_points(_square, [], jobs=4) == []


class TestDefaultJobs:
    def test_unset_means_serial(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV, raising=False)
        assert default_jobs() == 1

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "6")
        assert default_jobs() == 6

    def test_garbage_env_falls_back(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "many")
        assert default_jobs() == 1

    def test_env_floor_is_one(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "0")
        assert default_jobs() == 1


class TestDeriveSeed:
    def test_stable_across_calls(self):
        assert derive_seed(7, "fig3") == derive_seed(7, "fig3")

    def test_distinct_per_name_and_seed(self):
        seeds = {derive_seed(7, "fig3"), derive_seed(7, "fig5"),
                 derive_seed(8, "fig3")}
        assert len(seeds) == 3

    def test_fits_in_63_bits(self):
        assert 0 <= derive_seed(123456, "x") < 2 ** 63


class TestCampaignByteIdentity:
    """--jobs N output must be byte-identical to --jobs 1 (ISSUE
    acceptance: fixed seed, any job count, same JSON)."""

    def _canon(self, obj):
        return json.dumps(obj, indent=2, sort_keys=True, default=str)

    def test_fig3_sweep(self):
        kwargs = dict(block_sizes_kb=(4, 64), blocks_per_point=16)
        serial = figures.fig3_fig4(jobs=1, **kwargs)
        parallel = figures.fig3_fig4(jobs=2, **kwargs)
        assert self._canon(serial) == self._canon(parallel)

    def test_table3(self):
        kwargs = dict(n_blocks=32, measure_blocks=16)
        serial = figures.table3_response_time(jobs=1, **kwargs)
        parallel = figures.table3_response_time(jobs=3, **kwargs)
        assert self._canon(serial) == self._canon(parallel)

    def test_chaos_grid(self):
        kwargs = dict(systems=("dafs",), fault_classes=("link", "nic"),
                      rates=(0.0, 0.02), blocks=16, passes=1)
        serial = chaos.chaos_campaign(jobs=1, **kwargs)
        parallel = chaos.chaos_campaign(jobs=2, **kwargs)
        assert self._canon(serial) == self._canon(parallel)

    def test_jobs_env_does_not_change_results(self, monkeypatch):
        kwargs = dict(block_sizes_kb=(4,), blocks_per_point=16)
        monkeypatch.delenv(JOBS_ENV, raising=False)
        serial = figures.fig3_fig4(**kwargs)
        monkeypatch.setenv(JOBS_ENV, "2")
        parallel = figures.fig3_fig4(**kwargs)
        assert self._canon(serial) == self._canon(parallel)
