"""The parallel campaign runner: ordering, seeding, and the byte-identity
guarantee — campaign output must not depend on the job count."""

import json
import os

import pytest

from repro.bench import chaos, figures, runner
from repro.bench.runner import (JOBS_ENV, base_params, default_jobs,
                                derive_seed, run_points, shutdown_pool,
                                warm_pool)
from repro.params import default_params


def _square(x):
    return x * x


def _spec_tag(spec):
    return f"{spec[0]}:{spec[1]}"


def _base_seed(_point):
    return base_params().seed


def _nested(point):
    # A worker calling run_points must degrade to serial, not fork.
    return run_points(_square, [point, point + 1], jobs=4)


class TestRunPoints:
    def test_serial_preserves_order(self):
        assert run_points(_square, [3, 1, 2], jobs=1) == [9, 1, 4]

    def test_parallel_preserves_order(self):
        points = list(range(20))
        assert run_points(_square, points, jobs=4) == [p * p for p in points]

    def test_parallel_matches_serial(self):
        points = [("dafs", 4), ("nfs", 64), ("odafs", 256)]
        assert (run_points(_spec_tag, points, jobs=3)
                == run_points(_spec_tag, points, jobs=1))

    def test_single_point_stays_in_process(self):
        # len(points) <= 1 must not spin up a pool at all.
        state = []
        run_points(state.append, [42], jobs=8)
        assert state == [42]

    def test_empty_points(self):
        assert run_points(_square, [], jobs=4) == []

    def test_cost_ordering_restores_point_order(self):
        # LPT submits big points first; results still line up 1:1 with
        # the input order.
        points = list(range(12))
        assert (run_points(_square, points, jobs=3, cost=lambda p: -p)
                == [p * p for p in points])

    def test_cost_serial_path_matches(self):
        points = [5, 3, 9]
        assert (run_points(_square, points, jobs=1, cost=lambda p: p)
                == run_points(_square, points, jobs=2, cost=lambda p: p))


class TestWarmPool:
    def test_pool_reused_across_grids(self):
        base = default_params()
        run_points(_square, [1, 2, 3], jobs=2, base=base)
        pool = runner._pool
        assert pool is not None
        run_points(_square, [4, 5, 6], jobs=2, base=base)
        assert runner._pool is pool  # same pool, no refork

    def test_pool_rebuilt_on_base_change(self):
        run_points(_square, [1, 2], jobs=2, base=default_params())
        pool = runner._pool
        run_points(_square, [1, 2], jobs=2,
                   base=default_params().copy(seed=4242))
        assert runner._pool is not pool

    def test_workers_see_base_params(self):
        base = default_params().copy(seed=31337)
        seeds = run_points(_base_seed, [0, 1, 2, 3], jobs=2, base=base)
        assert seeds == [31337] * 4

    def test_serial_path_sees_base_params(self):
        base = default_params().copy(seed=777)
        assert run_points(_base_seed, [0], jobs=1, base=base) == [777]

    def test_nested_run_points_degrades_to_serial(self):
        out = run_points(_nested, [10, 20], jobs=2)
        assert out == [[100, 121], [400, 441]]

    def test_warm_pool_then_reuse(self):
        base = default_params()
        warm_pool(2, base)
        pool = runner._pool
        assert pool is not None
        assert run_points(_square, [7, 8], jobs=2, base=base) == [49, 64]
        assert runner._pool is pool

    def test_shutdown_idempotent(self):
        warm_pool(2)
        shutdown_pool()
        assert runner._pool is None
        shutdown_pool()  # second call is a no-op
        # and the next parallel call transparently reforks
        assert run_points(_square, [2, 3], jobs=2) == [4, 9]


class TestDefaultJobs:
    def test_unset_means_serial(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV, raising=False)
        assert default_jobs() == 1

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "6")
        assert default_jobs() == 6

    def test_garbage_env_falls_back(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "many")
        assert default_jobs() == 1

    def test_env_floor_is_one(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "0")
        assert default_jobs() == 1


class TestDeriveSeed:
    def test_stable_across_calls(self):
        assert derive_seed(7, "fig3") == derive_seed(7, "fig3")

    def test_distinct_per_name_and_seed(self):
        seeds = {derive_seed(7, "fig3"), derive_seed(7, "fig5"),
                 derive_seed(8, "fig3")}
        assert len(seeds) == 3

    def test_fits_in_63_bits(self):
        assert 0 <= derive_seed(123456, "x") < 2 ** 63


class TestCampaignByteIdentity:
    """--jobs N output must be byte-identical to --jobs 1 (ISSUE
    acceptance: fixed seed, any job count, same JSON)."""

    def _canon(self, obj):
        return json.dumps(obj, indent=2, sort_keys=True, default=str)

    def test_fig3_sweep(self):
        kwargs = dict(block_sizes_kb=(4, 64), blocks_per_point=16)
        serial = figures.fig3_fig4(jobs=1, **kwargs)
        parallel = figures.fig3_fig4(jobs=2, **kwargs)
        assert self._canon(serial) == self._canon(parallel)

    def test_table3(self):
        kwargs = dict(n_blocks=32, measure_blocks=16)
        serial = figures.table3_response_time(jobs=1, **kwargs)
        parallel = figures.table3_response_time(jobs=3, **kwargs)
        assert self._canon(serial) == self._canon(parallel)

    def test_chaos_grid(self):
        kwargs = dict(systems=("dafs",), fault_classes=("link", "nic"),
                      rates=(0.0, 0.02), blocks=16, passes=1)
        serial = chaos.chaos_campaign(jobs=1, **kwargs)
        parallel = chaos.chaos_campaign(jobs=2, **kwargs)
        assert self._canon(serial) == self._canon(parallel)

    def test_jobs_env_does_not_change_results(self, monkeypatch):
        kwargs = dict(block_sizes_kb=(4,), blocks_per_point=16)
        monkeypatch.delenv(JOBS_ENV, raising=False)
        serial = figures.fig3_fig4(**kwargs)
        monkeypatch.setenv(JOBS_ENV, "2")
        parallel = figures.fig3_fig4(**kwargs)
        assert self._canon(serial) == self._canon(parallel)
