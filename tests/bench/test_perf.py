"""The engine perf suite: document shape, deterministic digest, and the
normalized regression gate."""

import copy

import pytest

from repro.bench import perf


@pytest.fixture(scope="module")
def suite_doc():
    return perf.run_suite(quick=True, repeat=1, sweep=False)


class TestRunSuite:
    def test_document_shape(self, suite_doc):
        assert suite_doc["schema"] == perf.SCHEMA_VERSION
        assert suite_doc["quick"] is True
        assert suite_doc["calibration_ops_per_s"] > 0
        assert suite_doc["host"]["cpu_count"] >= 1
        assert set(perf.BENCHES) <= set(suite_doc["benches"])

    def test_rates_and_normalization(self, suite_doc):
        calib = suite_doc["calibration_ops_per_s"]
        for name, (fn, rate_key) in perf.BENCHES.items():
            bench = suite_doc["benches"][name]
            assert bench["wall_s"] > 0
            assert bench[rate_key] > 0
            assert bench["normalized"] == pytest.approx(
                bench[rate_key] / calib)

    def test_reference_trajectory_embedded(self, suite_doc):
        # BENCH_perf.json must always carry the pre-optimization numbers
        # so the before/after story survives regeneration.
        ref = suite_doc["reference_seed_kernel"]
        assert set(perf.BENCHES) <= set(ref)
        assert all(v > 0 for v in ref.values())

    def test_telemetry_bench_included(self, suite_doc):
        bench = suite_doc["benches"]["telemetry_reads"]
        assert bench["ops"] == suite_doc["benches"]["rpc_reads"]["ops"]
        assert bench["samples"] > 0
        assert bench["normalized"] > 0

    def test_scale_bench_included(self, suite_doc):
        bench = suite_doc["benches"]["scale_smallio"]
        assert bench["clients"] == perf.SCALE_CLIENTS[True]
        assert bench["ops"] == 2 * 16 * bench["clients"]
        assert bench["rate_key"] == "events_per_s"
        assert bench["normalized"] > 0

    def test_disabled_telemetry_leaves_rpc_reads_digest_unchanged(
            self, suite_doc):
        # The sampler-overhead guard: with telemetry off, the rpc_reads
        # bench must simulate exactly what the committed baseline did.
        import json
        import os
        path = os.path.join(os.path.dirname(__file__), os.pardir,
                            os.pardir, "BENCH_perf.json")
        with open(path) as fh:
            baseline = json.load(fh)
        assert baseline["schema"] == perf.SCHEMA_VERSION
        result = perf.bench_rpc_reads(quick=False)
        base = baseline["benches"]["rpc_reads"]
        for key in ("events", "sim_us", "ops"):
            assert result[key] == base[key]


class TestDigest:
    def test_digest_is_deterministic(self, suite_doc):
        again = perf.run_suite(quick=True, repeat=1, sweep=False)
        assert perf.digest(suite_doc) == perf.digest(again)

    def test_digest_excludes_timing(self, suite_doc):
        flat = str(perf.digest(suite_doc))
        assert "wall_s" not in flat
        assert "normalized" not in flat


class TestCheckRegression:
    def _docs(self, suite_doc):
        return copy.deepcopy(suite_doc), copy.deepcopy(suite_doc)

    def test_identical_docs_pass(self, suite_doc):
        doc, base = self._docs(suite_doc)
        assert perf.check_regression(doc, base) == []

    def test_small_drop_within_tolerance(self, suite_doc):
        doc, base = self._docs(suite_doc)
        doc["benches"]["kernel_events"]["normalized"] *= 0.9
        assert perf.check_regression(doc, base, tolerance=0.25) == []

    def test_large_drop_fails(self, suite_doc):
        doc, base = self._docs(suite_doc)
        doc["benches"]["kernel_events"]["normalized"] *= 0.5
        problems = perf.check_regression(doc, base, tolerance=0.25)
        assert problems and "kernel_events" in problems[0]

    def test_schema_mismatch_fails(self, suite_doc):
        doc, base = self._docs(suite_doc)
        base["schema"] = perf.SCHEMA_VERSION - 1
        problems = perf.check_regression(doc, base)
        assert problems and "schema" in problems[0]

    def test_new_bench_without_baseline_is_skipped(self, suite_doc):
        doc, base = self._docs(suite_doc)
        doc["benches"]["brand_new"] = {"normalized": 0.0001,
                                       "rate_key": "x_per_s"}
        assert perf.check_regression(doc, base) == []

    def test_diverged_sweep_fails(self, suite_doc):
        doc, base = self._docs(suite_doc)
        for d in (doc, base):
            d["benches"]["figure_sweep"] = {
                "normalized": 1.0, "rate_key": "speedup",
                "identical": True, "jobs": 2}
        doc["benches"]["figure_sweep"]["identical"] = False
        problems = perf.check_regression(doc, base)
        assert problems and "determinism" in problems[0]

    def test_strict_tolerance_caps_loose_flag(self, suite_doc):
        # kernel_events may never drop more than 20%, even when the
        # blanket --tolerance is looser.
        doc, base = self._docs(suite_doc)
        doc["benches"]["kernel_events"]["normalized"] *= 0.7
        problems = perf.check_regression(doc, base, tolerance=0.50)
        assert problems and "kernel_events" in problems[0]
        assert "20%" in problems[0]

    def test_strict_tolerance_only_covers_named_benches(self, suite_doc):
        doc, base = self._docs(suite_doc)
        doc["benches"]["link_frames"]["normalized"] *= 0.7
        assert perf.check_regression(doc, base, tolerance=0.50) == []


class TestCheckSpeedup:
    def _doc(self, speedup, cpu_count):
        return {"benches": {"figure_sweep": {"speedup": speedup,
                                             "jobs": 4}},
                "host": {"cpu_count": cpu_count}}

    def test_pass_above_minimum(self):
        assert perf.check_speedup(self._doc(2.1, 4), 1.3) is None

    def test_fail_below_minimum(self):
        problem = perf.check_speedup(self._doc(0.9, 4), 1.3)
        assert problem and "figure_sweep" in problem

    def test_single_core_host_skips_with_notice(self, capsys):
        assert perf.check_speedup(self._doc(0.9, 1), 1.3) is None
        assert "skipped" in capsys.readouterr().err

    def test_no_sweep_is_not_applicable(self):
        assert perf.check_speedup({"benches": {}, "host": {}}, 1.3) is None


class TestCli:
    def test_digest_output_and_exit_code(self, capsys):
        assert perf.main(["--quick", "--repeat", "1", "--no-sweep",
                          "--digest"]) == 0
        out = capsys.readouterr().out
        assert '"kernel_events"' in out and '"wall_s"' not in out

    def test_check_against_own_output(self, tmp_path, capsys):
        # --out writes before --check reads, so one invocation checking
        # its own document exercises the gate plumbing deterministically
        # (a second timed run would race wall-clock noise against the
        # strict kernel_events/scale_smallio caps on a loaded host).
        out_path = tmp_path / "BENCH_perf.json"
        assert perf.main(["--quick", "--repeat", "1", "--no-sweep",
                          "--out", str(out_path),
                          "--check", str(out_path)]) == 0
        assert "ok" in capsys.readouterr().out

    def test_render_mentions_reference_gain(self, capsys):
        assert perf.main(["--quick", "--repeat", "1", "--no-sweep"]) == 0
        out = capsys.readouterr().out
        assert "vs seed" in out

    def test_profile_prints_cumulative_tables(self, capsys):
        assert perf.main(["--quick", "--profile", "3"]) == 0
        out = capsys.readouterr().out
        assert "kernel_events (top 3 by cumulative)" in out
        assert "scale_smallio" in out and "cumtime" in out
