"""Determinism and acceptance tests for the shard scale-out campaign.

Three layers of regression guard:

* byte-identical JSON for same-seed campaigns (serial and parallel);
* the crash-failover point completes over replica reroutes, never hangs;
* the scale-out claim — ODAFS aggregate small-I/O throughput grows
  near-linearly 1 -> 4 servers while NFS stays clearly sublinear.
"""

import json

import pytest

from repro.bench import shard
from repro.params import default_params

#: Tiny same-shape grid so the determinism tests stay fast.
TINY = dict(systems=("nfs", "odafs"), mixes=("smallio",),
            server_counts=(1, 2), n_clients=2, blocks=16,
            failover=False)


@pytest.fixture(scope="module")
def tiny_campaign():
    return shard.shard_campaign(**TINY)


class TestDeterminism:
    def test_same_seed_campaigns_byte_identical(self, tiny_campaign):
        again = shard.shard_campaign(**TINY)
        assert json.dumps(tiny_campaign, sort_keys=True) == \
            json.dumps(again, sort_keys=True)

    def test_parallel_grid_byte_identical_to_serial(self, tiny_campaign):
        parallel = shard.shard_campaign(jobs=2, **TINY)
        assert json.dumps(tiny_campaign, sort_keys=True) == \
            json.dumps(parallel, sort_keys=True)

    def test_distinct_seeds_differ(self):
        kwargs = dict(systems=("nfs",), mixes=("postmark",),
                      server_counts=(2,), n_clients=2, n_files=8,
                      transactions=8, failover=False)
        a = shard.shard_campaign(params=default_params().copy(seed=1),
                                 **kwargs)
        b = shard.shard_campaign(params=default_params().copy(seed=2),
                                 **kwargs)
        # PostMark draws file choices (and the hash placement its ring)
        # from seeded streams, so different seeds must be observable.
        assert json.dumps(a, sort_keys=True) != \
            json.dumps(b, sort_keys=True)

    def test_both_mixes_emit_full_grids(self):
        results = shard.shard_campaign(
            systems=("odafs",), server_counts=(1, 2), n_clients=2,
            blocks=16, n_files=8, transactions=8, failover=False)
        for mix in shard.MIXES:
            points = results[mix]["odafs"]
            assert set(points) == {"1", "2"}
            for point in points.values():
                assert point["ops"] > 0
                assert point["throughput_mb_s"] > 0
        # Striping engaged: the 2-server smallio point fanned reads out.
        assert results["smallio"]["odafs"]["2"]["fanout_reads"] > 0
        assert results["smallio"]["odafs"]["1"]["fanout_reads"] == 0

    def test_summary_reports_speedups_over_one_server(self, tiny_campaign):
        summary = tiny_campaign["smallio"]["summary"]
        for system in ("nfs", "odafs"):
            speedup = summary[system]["speedup"]
            assert speedup["1"] == 1.0
            assert speedup["2"] > 0


class TestFailover:
    def test_crash_point_completes_via_replica(self):
        point = shard.run_failover_point("odafs", n_servers=2,
                                         blocks=32, reads=60)
        assert point["completed"]
        assert point["server_crashes"] == 1
        assert point["cache_blocks_lost"] > 0
        assert point["ops_failed"] == 0          # the replica absorbed it
        assert point["ops_ok"] == 60
        assert point["failovers"] >= 1
        assert point["replica_reads"] >= 1
        assert point["down_marks"] >= 1


class TestRender:
    def test_render_mentions_every_system_and_summary(self, tiny_campaign):
        text = shard.render_campaign(tiny_campaign)
        assert "nfs" in text and "odafs" in text
        assert "speedup" in text

    def test_render_reports_failover_outcome(self):
        results = {}  # minimal doc: just a failover point
        results["failover"] = {"completed": True, "ops_ok": 10,
                               "ops_failed": 0, "failovers": 1,
                               "replica_reads": 5,
                               "cache_blocks_lost": 16}
        text = shard.render_campaign(results)
        assert "completed" in text and "failover" in text

    def test_cli_json_round_trips(self, capsys):
        assert shard.main(["--systems", "odafs", "--mixes", "smallio",
                           "--servers", "1", "2", "--clients", "2",
                           "--blocks", "16", "--no-failover",
                           "--seed", "3", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["seed"] == 3
        assert doc["placement"] == "stripe"
        assert set(doc["results"]["smallio"]["odafs"]) == {"1", "2"}

    def test_cli_rejects_unknown_system(self):
        with pytest.raises(SystemExit):
            shard.main(["--systems", "zfs"])

    def test_campaign_rejects_unknown_mix(self):
        with pytest.raises(ValueError):
            shard.shard_campaign(mixes=("sfs",))


class TestScaleOutClaim:
    @pytest.mark.slow
    def test_odafs_scales_near_linearly_nfs_sublinearly(self):
        """The campaign's acceptance criterion at the default operating
        point (8 clients, 128-block file, 64 KB application reads)."""
        points = {system: {n: shard.run_point_smallio(system, n)
                           for n in (1, 4)}
                  for system in ("nfs", "odafs")}
        odafs = points["odafs"][4]["throughput_mb_s"] / \
            points["odafs"][1]["throughput_mb_s"]
        nfs = points["nfs"][4]["throughput_mb_s"] / \
            points["nfs"][1]["throughput_mb_s"]
        assert odafs >= 3.0                      # near-linear at 4 servers
        assert nfs <= 0.75 * odafs               # clearly sublinear
        # Why: one NFS server is CPU-saturated; spreading load frees the
        # server but the client-side copy cost caps the gain.
        assert points["nfs"][1]["server_cpu"] > 0.9
        # Both passes are counted: pass 1 fills every block over RPC,
        # the measured pass runs entirely over ORDMA — so ~half of all
        # cache fills were direct even including the warm-up.
        assert points["odafs"][4]["ordma_frac"] >= 0.45

    @pytest.mark.slow
    def test_full_quick_cli_byte_identical_across_runs(self, capsys):
        """The CI shard-smoke gate in-process: two --quick --seed 7 JSON
        campaigns must match byte for byte."""
        assert shard.main(["--quick", "--seed", "7", "--json"]) == 0
        first = capsys.readouterr().out
        assert shard.main(["--quick", "--seed", "7", "--json"]) == 0
        assert capsys.readouterr().out == first
