"""Tests for report rendering and the benchmark CLI plumbing."""

import pytest

from repro.bench.report import (
    format_table,
    render_dict_table,
    render_fig6,
    render_fig7,
    render_sweep,
    render_table2,
    render_table3,
)


class TestFormatTable:
    def test_alignment_and_rule(self):
        out = format_table(["name", "value"], [["a", 1], ["long-name", 22]])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert set(lines[1].replace(" ", "")) == {"-"}
        assert len(lines) == 4
        # Columns align: 'value' column starts at the same offset everywhere.
        col = lines[0].index("value")
        assert lines[2][col - 1] == " "

    def test_empty_rows(self):
        out = format_table(["a"], [])
        assert out.splitlines()[0] == "a"


class TestRenderers:
    def test_table2(self):
        measured = {"GM": {"roundtrip_us": 23.5, "bandwidth_mb_s": 243.6}}
        paper = {"GM": {"roundtrip_us": 23.0, "bandwidth_mb_s": 244.0}}
        out = render_table2(measured, paper)
        assert "GM" in out and "23.5" in out and "244" in out

    def test_sweep(self):
        results = {"dafs": {4: {"x": 1.0}, 64: {"x": 2.0}},
                   "nfs": {4: {"x": 0.5}}}
        out = render_sweep(results, "x", "MB/s")
        assert "dafs" in out and "-" in out  # missing cell rendered as '-'
        assert out.splitlines()[0].startswith("x (MB/s)")

    def test_table3(self):
        measured = {k: {"in_mem": 100.0, "in_cache": 120.0}
                    for k in ("rpc_inline", "rpc_direct", "ordma")}
        paper = {k: {"in_mem": 128.0, "in_cache": 153.0}
                 for k in ("rpc_inline", "rpc_direct", "ordma")}
        out = render_table3(measured, paper)
        assert "ORDMA read" in out and "100" in out and "128" in out

    def test_fig6(self):
        measured = {
            "dafs": {25: {"txns_per_s": 1000.0, "server_cpu": 0.3}},
            "odafs": {25: {"txns_per_s": 1340.0, "server_cpu": 0.0}},
        }
        out = render_fig6(measured)
        assert "34.0%" in out

    def test_fig7(self):
        measured = {
            "dafs": {4: {"throughput_mb_s": 91.0, "server_cpu": 1.0}},
            "odafs": {4: {"throughput_mb_s": 222.0, "server_cpu": 0.0}},
        }
        out = render_fig7(measured)
        assert "4 KB" in out and "222" in out

    def test_dict_table(self):
        out = render_dict_table({"a": {"m": 1.5, "n": "x"}}, "key")
        assert "key" in out and "1.50" in out and "x" in out


class TestCLI:
    def test_unknown_target_rejected(self):
        from repro.bench.cli import main
        with pytest.raises(SystemExit):
            main(["not-a-target"])

    def test_table2_target_runs(self, capsys):
        from repro.bench.cli import main
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "GM" in out and "UDP/Ethernet" in out

    def test_quick_flag_accepted(self, capsys):
        from repro.bench.cli import main
        assert main(["table3", "--quick"]) == 0
        assert "ORDMA read" in capsys.readouterr().out


class TestJSONOutput:
    def test_json_emits_parseable_results(self, capsys):
        import json
        from repro.bench.cli import main
        assert main(["table2", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert "GM" in data["table2"]
        assert data["table2"]["GM"]["roundtrip_us"] > 0

    def test_json_rejected_for_aggregate_targets(self):
        from repro.bench.cli import main
        with pytest.raises(SystemExit):
            main(["all", "--json"])
