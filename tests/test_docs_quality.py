"""Documentation quality gates: every public item carries a docstring."""

import importlib
import inspect
import pkgutil

import repro

EXEMPT_MODULES = set()


def _public_modules():
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if any(part.startswith("_") for part in info.name.split(".")):
            continue
        yield importlib.import_module(info.name)


def test_every_module_has_a_docstring():
    missing = [m.__name__ for m in _public_modules()
               if not (m.__doc__ or "").strip()]
    assert missing == []


def test_every_public_class_and_function_has_a_docstring():
    missing = []
    for module in _public_modules():
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                continue
            if getattr(obj, "__module__", None) != module.__name__:
                continue  # re-export
            if not (obj.__doc__ or "").strip():
                missing.append(f"{module.__name__}.{name}")
    assert missing == []


def test_public_methods_documented_on_key_apis():
    """The user-facing surfaces must be fully documented."""
    from repro.cluster import Cluster
    from repro.nas.client.base import NASClient
    from repro.nas.client.odafs import ODAFSClient
    from repro.sim.core import Simulator

    missing = []
    for cls in (Cluster, NASClient, ODAFSClient, Simulator):
        for name, member in inspect.getmembers(cls):
            if name.startswith("_") or not callable(member):
                continue
            if not (member.__doc__ or "").strip():
                missing.append(f"{cls.__name__}.{name}")
    assert missing == []


def test_params_fields_have_provenance_comments():
    """Every calibrated constant in params.py carries a `#:` comment."""
    import re
    from pathlib import Path
    import repro.params as params_module

    source = Path(params_module.__file__).read_text().splitlines()
    undocumented = []
    for i, line in enumerate(source):
        match = re.match(r"^    (\w+): (float|int|bool) = ", line)
        if match and not source[i - 1].lstrip().startswith("#"):
            undocumented.append(match.group(1))
    assert undocumented == []
