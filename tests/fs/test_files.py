"""Unit tests for the server file system namespace."""

import pytest

from repro.fs.files import FileSystem, FileSystemError


@pytest.fixture
def fs():
    return FileSystem(block_size=4096)


def test_create_and_lookup(fs):
    inode = fs.create("a", 10000)
    assert fs.lookup("a") is inode
    assert inode.size == 10000
    assert fs.exists("a")


def test_duplicate_create_rejected(fs):
    fs.create("a", 100)
    with pytest.raises(FileSystemError):
        fs.create("a", 100)


def test_lookup_missing_raises(fs):
    with pytest.raises(FileSystemError):
        fs.lookup("nope")


def test_remove(fs):
    fs.create("a", 100)
    fs.remove("a")
    assert not fs.exists("a")
    with pytest.raises(FileSystemError):
        fs.remove("a")


def test_block_count_rounds_up(fs):
    fs.create("a", 4096)
    fs.create("b", 4097)
    fs.create("c", 0)
    assert fs.block_count("a") == 1
    assert fs.block_count("b") == 2
    assert fs.block_count("c") == 0


def test_block_content_identity(fs):
    fs.create("a", 8192)
    assert fs.block_content("a", 0) == ("a", 0, 0)
    assert fs.block_content("a", 1) == ("a", 1, 0)
    with pytest.raises(FileSystemError):
        fs.block_content("a", 2)


def test_write_bumps_version_and_mtime(fs):
    fs.create("a", 4096)
    content = fs.write_block("a", 0, now=123.0)
    assert content == ("a", 0, 1)
    assert fs.lookup("a").mtime == 123.0
    assert fs.write_block("a", 0) == ("a", 0, 2)
    # Other blocks unaffected
    fs.create("b", 8192)
    fs.write_block("b", 1)
    assert fs.block_content("b", 0) == ("b", 0, 0)


def test_blocks_in_range(fs):
    fs.create("a", 16384)
    assert fs.blocks_in_range("a", 0, 4096) == [0]
    assert fs.blocks_in_range("a", 4095, 2) == [0, 1]
    assert fs.blocks_in_range("a", 0, 16384) == [0, 1, 2, 3]
    assert fs.blocks_in_range("a", 8192, 0) == []
    with pytest.raises(FileSystemError):
        fs.blocks_in_range("a", 8192, 16384)
    with pytest.raises(FileSystemError):
        fs.blocks_in_range("a", -1, 4096)


def test_names(fs):
    fs.create("x", 1)
    fs.create("y", 1)
    assert sorted(fs.names()) == ["x", "y"]


def test_bad_block_size():
    with pytest.raises(FileSystemError):
        FileSystem(block_size=0)


def test_negative_size_rejected(fs):
    with pytest.raises(FileSystemError):
        fs.create("a", -1)
