"""Unit tests for the disk model."""

import pytest

from repro.fs.disk import Disk
from repro.params import StorageParams
from repro.sim import Simulator


@pytest.fixture
def rig():
    sim = Simulator()
    disk = Disk(sim, StorageParams(disk_latency_us=1000.0, disk_bw=40.0))
    return sim, disk


def test_read_time_is_latency_plus_transfer(rig):
    sim, disk = rig

    def proc():
        yield from disk.read(4096)
        return sim.now

    elapsed = sim.run_process(proc())
    assert elapsed == pytest.approx(1000.0 + 4096 / 40.0)


def test_spindle_serializes_concurrent_accesses(rig):
    sim, disk = rig
    done = []

    def proc():
        yield from disk.read(0)
        done.append(sim.now)

    sim.process(proc())
    sim.process(proc())
    sim.run()
    assert done == [pytest.approx(1000.0), pytest.approx(2000.0)]


def test_stats(rig):
    sim, disk = rig

    def proc():
        yield from disk.read(100)
        yield from disk.write(200)

    sim.run_process(proc())
    assert disk.stats.get("reads") == 1
    assert disk.stats.get("writes") == 1
    assert disk.stats.get("bytes") == 300


def test_negative_size_rejected(rig):
    sim, disk = rig

    def proc():
        yield from disk.read(-1)

    with pytest.raises(ValueError):
        sim.run_process(proc())
