"""Replacement policy interface shared by caches and the ORDMA directory.

The paper uses LRU for the ORDMA reference directory and observes that a
Multi-Queue policy (Zhou, Philbin, Li — USENIX '01) would fit better since
ORDMA accesses happen on client-cache *misses*, i.e. they see the same
filtered access stream as a second-level cache (Section 4.2). Both are
implemented here and an ablation bench compares them.
"""

from __future__ import annotations

from typing import Hashable, Iterator, Optional


class ReplacementPolicy:
    """Tracks a bounded set of keys and picks eviction victims."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1: {capacity}")
        self.capacity = capacity

    def touch(self, key: Hashable) -> None:
        """Record an access to a resident key."""
        raise NotImplementedError

    def admit(self, key: Hashable) -> Optional[Hashable]:
        """Insert ``key``; return the evicted victim if over capacity."""
        raise NotImplementedError

    def remove(self, key: Hashable) -> None:
        """Drop a key without an eviction decision (invalidation)."""
        raise NotImplementedError

    def __contains__(self, key: Hashable) -> bool:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def __iter__(self) -> Iterator[Hashable]:
        raise NotImplementedError
