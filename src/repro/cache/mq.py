"""Multi-Queue (MQ) replacement — Zhou, Philbin & Li, USENIX '01.

MQ is designed for second-level caches whose access stream has had its
recency filtered out by an upstream cache — exactly the situation of the
ODAFS client's ORDMA reference directory, which is consulted only on
client-cache misses (Section 4.2 suggests MQ as the better fit over LRU).

Structure: ``m`` LRU queues Q0..Qm-1 partitioned by access frequency
(queue index = floor(log2(freq)), capped), per-block expiry after
``life_time`` accesses demotes stale blocks one level, and a FIFO history
("Qout") remembers evicted blocks' frequencies so a quick return resumes
at full priority.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Deque, Dict, Hashable, Iterator, Optional

from .policy import ReplacementPolicy


class _Entry:
    __slots__ = ("freq", "queue", "expire")

    def __init__(self, freq: int, queue: int, expire: int):
        self.freq = freq
        self.queue = queue
        self.expire = expire


class MQPolicy(ReplacementPolicy):
    """Multi-Queue replacement with history."""

    def __init__(self, capacity: int, num_queues: int = 8,
                 life_time: Optional[int] = None,
                 history_size: Optional[int] = None):
        super().__init__(capacity)
        if num_queues < 1:
            raise ValueError(f"num_queues must be >= 1: {num_queues}")
        self.num_queues = num_queues
        #: Accesses a block may sit untouched before demotion; the authors
        #: recommend the peak temporal distance, ~capacity works well.
        self.life_time = life_time if life_time is not None else capacity
        self.history_size = (history_size if history_size is not None
                             else 4 * capacity)
        self._queues = [OrderedDict() for _ in range(num_queues)]
        self._entries: Dict[Hashable, _Entry] = {}
        self._history: "OrderedDict[Hashable, int]" = OrderedDict()
        self._clock = 0

    # -- internals ----------------------------------------------------------

    def _queue_for(self, freq: int) -> int:
        level = freq.bit_length() - 1  # floor(log2(freq)) for freq >= 1
        return min(level, self.num_queues - 1)

    def _place(self, key: Hashable, freq: int) -> None:
        queue = self._queue_for(freq)
        self._entries[key] = _Entry(freq, queue,
                                    self._clock + self.life_time)
        self._queues[queue][key] = None

    def _adjust(self) -> None:
        """Demote expired heads one level (the MQ 'Adjust' step)."""
        for level in range(self.num_queues - 1, 0, -1):
            queue = self._queues[level]
            if not queue:
                continue
            head = next(iter(queue))
            entry = self._entries[head]
            if entry.expire < self._clock:
                del queue[head]
                entry.queue = level - 1
                entry.expire = self._clock + self.life_time
                self._queues[level - 1][head] = None

    # -- policy interface ------------------------------------------------------

    def touch(self, key: Hashable) -> None:
        entry = self._entries.get(key)
        if entry is None:
            raise KeyError(f"touch of non-resident key {key!r}")
        self._clock += 1
        del self._queues[entry.queue][key]
        entry.freq += 1
        entry.queue = self._queue_for(entry.freq)
        entry.expire = self._clock + self.life_time
        self._queues[entry.queue][key] = None
        self._adjust()

    def admit(self, key: Hashable) -> Optional[Hashable]:
        if key in self._entries:
            self.touch(key)
            return None
        self._clock += 1
        victim = None
        if len(self._entries) >= self.capacity:
            victim = self._evict()
        freq = self._history.pop(key, 0) + 1  # resume remembered frequency
        self._place(key, freq)
        self._adjust()
        return victim

    def _evict(self) -> Hashable:
        for queue in self._queues:  # lowest non-empty queue's LRU head
            if queue:
                victim = next(iter(queue))
                del queue[victim]
                entry = self._entries.pop(victim)
                self._history[victim] = entry.freq
                while len(self._history) > self.history_size:
                    self._history.popitem(last=False)
                return victim
        raise RuntimeError("evict from empty MQ")  # pragma: no cover

    def remove(self, key: Hashable) -> None:
        entry = self._entries.pop(key, None)
        if entry is not None:
            del self._queues[entry.queue][key]

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[Hashable]:
        for queue in self._queues:
            yield from queue
