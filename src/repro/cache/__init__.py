"""Caching: replacement policies and the client block cache."""

from .block_cache import BlockKey, CacheBlock, ClientFileCache
from .lru import LRUPolicy
from .mq import MQPolicy
from .policy import ReplacementPolicy

__all__ = [
    "BlockKey",
    "CacheBlock",
    "ClientFileCache",
    "LRUPolicy",
    "MQPolicy",
    "ReplacementPolicy",
]
