"""Client file cache: bounded data blocks over registered buffers.

The DAFS/ODAFS client cache (Section 4.2.1, [Addetia TR-14-01]) holds a
fixed pool of cache-block buffers, registered with the NIC *once* at mount
(registration caching: neither DAFS nor ODAFS pays per-I/O registration).
Block *headers* are modelled by the separate ORDMA reference directory,
which may be far larger than the data cache — references live on in
"empty" headers after their data is reclaimed.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Optional

from ..hw.host import Host
from ..hw.memory import Buffer
from ..sim import Counter, trace_emit
from .lru import LRUPolicy
from .policy import ReplacementPolicy

#: Cache keys are (file name, block index).
BlockKey = Hashable


class CacheBlock:
    """One resident data block bound to a pooled, registered buffer."""

    __slots__ = ("key", "buffer", "data")

    def __init__(self, key: BlockKey, buffer: Buffer, data: Any):
        self.key = key
        self.buffer = buffer
        self.data = data


class ClientFileCache:
    """Fixed-capacity block cache with pluggable replacement."""

    def __init__(self, host: Host, block_size: int, capacity_blocks: int,
                 policy: Optional[ReplacementPolicy] = None,
                 register: bool = True, name: str = "fcache"):
        if capacity_blocks < 1:
            raise ValueError(f"capacity must be >= 1: {capacity_blocks}")
        if block_size < 1:
            raise ValueError(f"block size must be >= 1: {block_size}")
        self.host = host
        self.name = name
        self.block_size = block_size
        self.capacity_blocks = capacity_blocks
        self.policy = policy or LRUPolicy(capacity_blocks)
        self.stats = Counter()
        self._blocks: Dict[BlockKey, CacheBlock] = {}
        self._free: List[Buffer] = []
        for i in range(capacity_blocks):
            buf = host.mem.alloc(block_size, name=f"{name}:{i}")
            if register:
                # Registration caching: the block pool is registered with
                # the NIC once, so per-I/O RDMA needs no (de)registration.
                host.nic.tpt.register(buf, pin=True)
            self._free.append(buf)

    def __len__(self) -> int:
        return len(self._blocks)

    def probe(self, key: BlockKey) -> Optional[CacheBlock]:
        """Look up a block; refreshes recency on hit."""
        sim = self.host.sim
        block = self._blocks.get(key)
        if block is None:
            self.stats.incr("misses")
            if sim.tracer is not None:
                trace_emit(sim, f"{self.host.name}.{self.name}",
                           "cache-miss", key=str(key))
            return None
        self.policy.touch(key)
        self.stats.incr("hits")
        if sim.tracer is not None:
            trace_emit(sim, f"{self.host.name}.{self.name}",
                       "cache-hit", key=str(key))
        return block

    def peek(self, key: BlockKey) -> Optional[CacheBlock]:
        """Look up without touching recency or hit statistics."""
        return self._blocks.get(key)

    def claim(self, key: BlockKey) -> CacheBlock:
        """Reserve a block frame for ``key`` (evicting if needed) so an
        incoming transfer can land directly in its registered buffer."""
        existing = self._blocks.get(key)
        if existing is not None:
            self.policy.touch(key)
            return existing
        victim_key = self.policy.admit(key)
        if victim_key is not None:
            victim = self._blocks.pop(victim_key)
            victim.buffer.data = None
            self._free.append(victim.buffer)
            self.stats.incr("evictions")
            if self.host.sim.tracer is not None:
                trace_emit(self.host.sim,
                           f"{self.host.name}.{self.name}",
                           "cache-evict", key=str(victim_key),
                           for_key=str(key))
        buffer = self._free.pop()
        block = CacheBlock(key, buffer, None)
        self._blocks[key] = block
        return block

    def fill(self, block: CacheBlock, data: Any) -> None:
        """Complete a claim with the arrived data."""
        block.data = data
        if block.buffer.data is None:
            block.buffer.data = data

    def insert(self, key: BlockKey, data: Any) -> CacheBlock:
        """Claim + fill in one step (for copy-in paths)."""
        block = self.claim(key)
        self.fill(block, data)
        return block

    def invalidate(self, key: BlockKey) -> bool:
        block = self._blocks.pop(key, None)
        if block is None:
            return False
        self.policy.remove(key)
        block.buffer.data = None
        self._free.append(block.buffer)
        self.stats.incr("invalidations")
        return True

    def invalidate_file(self, name: str) -> int:
        """Drop every cached block of ``name`` (consistency barrier,
        e.g. on lock acquisition). Returns the number dropped."""
        victims = [key for key in self._blocks
                   if isinstance(key, tuple) and key and key[0] == name]
        for key in victims:
            self.invalidate(key)
        return len(victims)

    def hit_ratio(self) -> float:
        hits = self.stats.get("hits")
        total = hits + self.stats.get("misses")
        return hits / total if total else 0.0
