"""Least-recently-used replacement."""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable, Iterator, Optional

from .policy import ReplacementPolicy


class LRUPolicy(ReplacementPolicy):
    """Classic LRU over an ordered dict."""

    def __init__(self, capacity: int):
        super().__init__(capacity)
        self._order: "OrderedDict[Hashable, None]" = OrderedDict()

    def touch(self, key: Hashable) -> None:
        if key not in self._order:
            raise KeyError(f"touch of non-resident key {key!r}")
        self._order.move_to_end(key)

    def admit(self, key: Hashable) -> Optional[Hashable]:
        if key in self._order:
            self._order.move_to_end(key)
            return None
        victim = None
        if len(self._order) >= self.capacity:
            victim, _ = self._order.popitem(last=False)
        self._order[key] = None
        return victim

    def remove(self, key: Hashable) -> None:
        self._order.pop(key, None)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._order

    def __len__(self) -> int:
        return len(self._order)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._order)
