"""Background scrubber: proactive verification of a server's cached blocks.

Read-path verification only protects blocks somebody reads; bit rot in a
cold corner of the cache sits undetected until the worst moment (the
primary just failed and the replica turns out to be rotten too). The
scrubber closes that window: a sim-time process wakes every
``params.integrity.scrub_interval_us``, verifies the next
``scrub_blocks_per_pass`` resident blocks round-robin against the
server's checksum store, and runs the server's re-read/repair ladder on
any mismatch — repairing from disk or quarantining (evicting) copies
that cannot be repaired.

Like :class:`repro.sim.TimeSeriesSampler`, the daemon takes an optional
``stop_on`` event (typically the measured workload's process) so the
event heap can drain once the run is over; without it the scrubber runs
for as long as the simulation does.

Everything lands in the server's ``integrity`` counter under ``scrub.*``
(passes, blocks, detected, repaired, quarantined), so campaign output
and telemetry see the scrubber through the same registry as read-path
verification.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..sim import Event
from .checksum import IntegrityError


class Scrubber:
    """Walks one file server's cache, verifying and repairing blocks."""

    def __init__(self, server):
        if server.checksums is None:
            raise ValueError("scrubber requires integrity checksums")
        self.server = server
        self.stats = server.integrity
        self._running = False
        self._stop_on: Optional[Event] = None
        #: Round-robin resume position over the cache's key order.
        self._cursor = 0

    def start(self, stop_on: Optional[Event] = None) -> None:
        """Spawn the scrub daemon (idempotent start is an error)."""
        if self._running:
            raise RuntimeError("scrubber already running")
        self._running = True
        self._stop_on = stop_on
        sim = self.server.host.sim
        sim.process(self._daemon(), name=f"{self.server.name}.scrub")

    def stop(self) -> None:
        self._running = False

    def _daemon(self) -> Generator:
        interval = self.server.host.params.integrity.scrub_interval_us
        sim = self.server.host.sim
        while self._running:
            yield sim.timeout(interval)
            if not self._running:
                return
            if self._stop_on is not None and self._stop_on.triggered:
                return
            yield from self.scrub_pass()

    def scrub_pass(self) -> Generator:
        """Verify one batch of resident blocks, repairing mismatches."""
        server = self.server
        batch = server.host.params.integrity.scrub_blocks_per_pass
        keys = server.cache.keys()
        if not keys:
            self.stats.incr("scrub.passes")
            return
        if self._cursor >= len(keys):
            self._cursor = 0
        for key in keys[self._cursor:self._cursor + batch]:
            # Peek, not lookup: scrubbing must not perturb LRU order or
            # hit/miss accounting of the cache it audits.
            block = server.cache.peek(key)
            if block is None:
                continue
            yield from server._charge_checksum()
            self.stats.incr("scrub.blocks")
            if server.checksums.verify(key, block.data):
                continue
            self.stats.incr("scrub.detected")
            try:
                yield from server._repair_block(key)
            except IntegrityError:
                # _repair_block already counted the quarantine; the
                # scrubber's job is done — the bad copy is evicted and
                # the next read pays a (verified) disk fill.
                self.stats.incr("scrub.quarantined")
            else:
                self.stats.incr("scrub.repaired")
        self._cursor += batch
        self.stats.incr("scrub.passes")
