"""Block checksum primitives and the silent-corruption payload model.

Block content in this simulation is the logical tuple
``(name, index, version)`` (:data:`repro.fs.files.BlockContent`) — no
real bytes move. Silent corruption is therefore modelled by *wrapping*
a payload in a marker tuple whose first element can never be a file
name: the corrupted payload is a different Python value, so it produces
a different checksum, exactly as flipped bits would — but any consumer
that does not verify checksums consumes it as if it were clean data.

This module must stay dependency-free within ``repro`` (stdlib only):
:mod:`repro.proto.rpc` and :mod:`repro.hw.nic` import from it, and both
sit below every other integrity component in the import graph.
"""

from __future__ import annotations

import zlib
from typing import Any

#: Marker heading every corrupted payload. File names are caller-chosen
#: strings, but no workload names a file ``"!corrupt"`` — and the wrapped
#: tuple also differs in shape from multi-block payloads (whose elements
#: are block tuples, not strings).
CORRUPT_MARKER = "!corrupt"


class IntegrityError(RuntimeError):
    """A block failed checksum verification and could not be repaired.

    Raised by the server's verify/re-read ladder (and surfaced to RPC
    clients as an ``EINTEGRITY`` error reply), by the shard router when
    every replica of a block fails verification, and by the scrubber's
    repair path. Deliberately *not* a subclass of
    :class:`repro.proto.rpc.RPCError`: callers that must distinguish
    "the server is unreachable" from "the data is bad" catch the two
    types separately.
    """


def block_checksum(data: Any) -> int:
    """The checksum of one logical payload (CRC32 of its ``repr``).

    ``repr`` rather than ``hash()``: builtin string hashing is salted
    per process (``PYTHONHASHSEED``), which would break the byte-identical
    serial-vs-``--jobs`` campaign contract. CRC32 of the canonical repr
    is stable across processes and interpreter restarts.
    """
    return zlib.crc32(repr(data).encode())


def corrupt_payload(data: Any, mode: str) -> Any:
    """Wrap ``data`` as silently corrupted by ``mode`` (e.g. "bitrot").

    The wrapper flips the payload's identity — and therefore its
    checksum — without tripping any *detected* fault path: no exception,
    no dropped frame, no error reply. Only checksum verification (or
    :func:`is_corrupt`, the campaign-side oracle) can tell.
    """
    return (CORRUPT_MARKER, mode, data)


def corruption_mode(data: Any) -> str:
    """The corruption mode of a wrapped payload ("" if not corrupted)."""
    if isinstance(data, tuple) and len(data) == 3 \
            and data[0] == CORRUPT_MARKER:
        return data[1]
    return ""


def is_corrupt(data: Any) -> bool:
    """Whether ``data`` (or any nested block of it) is corrupted.

    Multi-block payloads are tuples of per-block tuples; the check
    recurses so a campaign can ask "did corrupt data reach the
    application?" about any read result. This is the *oracle*, not the
    detector — the simulated systems themselves only learn about
    corruption through checksum verification.
    """
    if isinstance(data, tuple):
        if len(data) == 3 and data[0] == CORRUPT_MARKER:
            return True
        return any(is_corrupt(item) for item in data)
    return False
