"""Per-block checksum metadata, recorded at write time on the server.

The store models the checksum *metadata* path — the part of a real
system (ZFS parental checksums, T10 DIF tags) that is engineered to be
reliable even when the data path is not. Checksums are recorded when a
block is written (or warmed into the cache) from the file system's
authoritative content; the *data* copies flowing through disk reads,
caches and DMA are what the fault injectors corrupt. Verification
compares a possibly-corrupt data copy against the recorded metadata.

Consequently the store must never be fed data read back from disk or a
cache: :meth:`record` and the lazy path of :meth:`expected` always
recompute from :meth:`repro.fs.files.FileSystem.block_content`, the
simulation's ground truth.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..fs.files import FileSystem
from .checksum import block_checksum

BlockKey = Tuple[str, int]


class ChecksumStore:
    """Reliable per-block checksum metadata for one server's namespace."""

    def __init__(self, fs: FileSystem):
        self.fs = fs
        self._sums: Dict[BlockKey, int] = {}

    def __len__(self) -> int:
        return len(self._sums)

    def record(self, key: BlockKey) -> int:
        """(Re)compute and store ``key``'s checksum from the file system
        truth — called at write and cache-warm time, never from a data
        copy that may already be corrupt."""
        csum = block_checksum(self.fs.block_content(*key))
        self._sums[key] = csum
        return csum

    def expected(self, key: BlockKey) -> int:
        """The recorded checksum for ``key``, computing it lazily for
        blocks that were never explicitly written or warmed."""
        csum = self._sums.get(key)
        if csum is None:
            csum = self.record(key)
        return csum

    def verify(self, key: BlockKey, data) -> bool:
        """Whether a data copy of ``key`` matches its recorded checksum."""
        return block_checksum(data) == self.expected(key)

    def forget(self, name: str) -> None:
        """Drop every recorded checksum of ``name`` (file removal)."""
        for key in [k for k in self._sums if k[0] == name]:
            del self._sums[key]
