"""End-to-end data integrity: checksums, silent corruption, scrubbing.

The direct-access read path deliberately bypasses the server CPU
(Section 4), which means the server can never vet the bytes a client
DMAs out of its cache — and every fault the simulator injected before
this package was *detected* (CRC-dropped frames, timeouts, crashes).
This package adds the missing failure class and its defence:

* :mod:`~repro.integrity.checksum` — the per-block checksum model and
  the silent-corruption payload wrappers (plus :func:`is_corrupt`, the
  campaign-side oracle), and the typed :class:`IntegrityError`;
* :mod:`~repro.integrity.store` — checksum metadata recorded at write
  time on the server (the reliable-metadata model);
* :mod:`~repro.integrity.scrub` — the background scrubber walking a
  server's cached blocks.

Enable with ``params.integrity.enabled``; inject silent faults with
:meth:`repro.faults.Injector.disk_bitrot`,
:meth:`~repro.faults.Injector.disk_misdirected_writes` and
:meth:`~repro.faults.Injector.ordma_silent_corruption`; sweep both with
``repro-bench scrub``.
"""

from .checksum import (CORRUPT_MARKER, IntegrityError, block_checksum,
                       corrupt_payload, corruption_mode, is_corrupt)
from .scrub import Scrubber
from .store import ChecksumStore

__all__ = [
    "CORRUPT_MARKER",
    "ChecksumStore",
    "IntegrityError",
    "Scrubber",
    "block_checksum",
    "corrupt_payload",
    "corruption_mode",
    "is_corrupt",
]
