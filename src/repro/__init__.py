"""repro — reproduction of *Making the Most out of Direct-Access Network
Attached Storage* (Magoutis, Addetia, Fedorova, Seltzer; FAST 2003).

The package simulates the paper's complete testbed — hosts, NICs with
RDMA/ORDMA support, a 2 Gb/s fabric, GM/VI/UDP transports, RPC — and the
five NAS systems evaluated on it (standard NFS, NFS pre-posting, NFS
hybrid, DAFS, Optimistic DAFS), plus the workloads and benchmark harness
that regenerate every table and figure in the paper's evaluation.

Quick start::

    from repro import Cluster, default_params
    cluster = Cluster(default_params(), system="odafs",
                      client_kwargs={"cache_blocks": 64})
    cluster.create_file("data.db", 1 << 20)
    client = cluster.clients[0]
    # drive `client.open/read/write/close` from generator processes; see
    # README.md and the examples/ directory.
"""

from .params import (
    KB,
    MB,
    HostParams,
    NetworkParams,
    NicParams,
    Params,
    ProtocolParams,
    StorageParams,
    default_params,
)

__version__ = "1.0.0"

__all__ = [
    "KB",
    "MB",
    "HostParams",
    "NetworkParams",
    "NicParams",
    "Params",
    "ProtocolParams",
    "StorageParams",
    "default_params",
    "__version__",
]


def __getattr__(name):
    # Lazy import of the cluster wiring to avoid import cycles for users
    # who only need parameters.
    if name == "Cluster":
        from .cluster import Cluster
        return Cluster
    if name in ("Injector", "FaultSchedule"):
        from . import faults
        return getattr(faults, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
