"""Benchmark harness: one entry point per paper table/figure + ablations."""

from . import ablations, baseline, figures, report

__all__ = ["ablations", "baseline", "figures", "report"]
