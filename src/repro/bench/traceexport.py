"""Chrome/Perfetto Trace Event Format export for spans + telemetry.

Converts a run's three observability products — trace events, request
spans, and sampled time series — into one Trace Event Format JSON
document (the ``{"traceEvents": [...]}`` dialect understood by Perfetto
and ``chrome://tracing``):

* one **process row per host** (server, clientN, plus a ``net`` pseudo
  process for fabric-level series and a ``switch`` process when the
  switch emitted events);
* **thread rows per component layer** within a host — a ``requests``
  row holding one complete event per span, one row per stage layer
  (``rpc``, ``nic``, ``net``, ``ordma``, ...) holding the span's stage
  intervals, and an ``events`` row of instants;
* **counter tracks** (``ph: "C"``) from the sampler's series, one per
  dotted gauge name, attributed to the owning host's process.

Sim time is microseconds, which is exactly the Trace Event Format's
``ts`` unit — timestamps map through unchanged (rounded to 3 decimals).

The export is deterministic byte-for-byte for a fixed seed: rows are
emitted in a fixed structural order and serialized with sorted keys, so
CI can diff two same-seed runs. ``python -m repro.bench.traceexport
out.json`` re-validates a written file (used by the CI smoke job).
"""

from __future__ import annotations

import json
import sys
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..sim import Span, TraceEvent

#: Stage-name prefixes mapped to thread rows, in display order. The
#: ``requests`` row (whole spans) always sorts first and ``events``
#: (instants) last; unknown prefixes slot in alphabetically after these.
LAYER_ORDER = ("app", "rpc", "nic", "net", "ordma", "rdma", "server",
               "cache", "disk")

_REQUESTS_ROW = "requests"
_EVENTS_ROW = "events"

_PHASES = {"M", "X", "i", "C"}
_METADATA_NAMES = {"process_name", "thread_name"}


def _r3(value: float) -> float:
    return round(value, 3)


def _layer(stage: str) -> str:
    """Thread row for a stage mark: its dotted prefix (``rpc.marshal``
    -> ``rpc``); bare stages like ``deliver`` belong to the app row."""
    head, _, rest = stage.partition(".")
    return head if rest else "app"


def _series_items(series: Any) -> List[Tuple[str, List[Tuple[float, float]]]]:
    """Normalize the ``series`` argument: a ``TimeSeriesSampler``, a
    ``TimeSeriesDump``, or a plain ``{name: [(ts, value), ...]}`` dict."""
    if series is None:
        return []
    mapping = getattr(series, "series", series)
    out = []
    for name, points in mapping.items():
        values = getattr(points, "points", points)
        out.append((name, [(ts, value) for ts, value in values]))
    return out


def _json_safe(detail: Dict[str, Any]) -> Dict[str, Any]:
    return {key: value if isinstance(value, (int, float, str, bool,
                                             type(None))) else str(value)
            for key, value in detail.items()}


def build_trace(events: Iterable[TraceEvent] = (),
                spans: Iterable[Span] = (),
                series: Any = None) -> Dict[str, Any]:
    """Build the Trace Event Format document (pure data, no I/O)."""
    events = list(events)
    spans = [s for s in spans if s.finished]
    series_items = _series_items(series)

    # Process rows: every host/component that contributes anything.
    names = set()
    for span in spans:
        names.add(span.origin)
        for _ts, component, _stage, _detail in span.marks:
            names.add(component)
    for ev in events:
        names.add(ev.component)
    for name, _points in series_items:
        names.add(name.split(".", 1)[0])
    pids = {name: idx + 1 for idx, name in enumerate(sorted(names))}

    # Thread rows used per process, in stable layer order.
    used: Dict[str, set] = {name: set() for name in pids}
    for span in spans:
        used[span.origin].add(_REQUESTS_ROW)
        for stage, component, _start, _dur in span.stages():
            used[component].add(_layer(stage))
    for ev in events:
        used[ev.component].add(_EVENTS_ROW)

    def row_key(row: str) -> Tuple[int, str]:
        if row == _REQUESTS_ROW:
            return (-1, row)
        if row == _EVENTS_ROW:
            return (len(LAYER_ORDER) + 1, row)
        try:
            return (LAYER_ORDER.index(row), row)
        except ValueError:
            return (len(LAYER_ORDER), row)

    tids: Dict[Tuple[str, str], int] = {}
    for name in sorted(names):
        for tid, row in enumerate(sorted(used[name], key=row_key)):
            tids[(name, row)] = tid

    out: List[Dict[str, Any]] = []
    for name in sorted(names):
        pid = pids[name]
        out.append({"ph": "M", "pid": pid, "tid": 0,
                    "name": "process_name", "args": {"name": name}})
        for row in sorted(used[name], key=row_key):
            out.append({"ph": "M", "pid": pid, "tid": tids[(name, row)],
                        "name": "thread_name", "args": {"name": row}})

    for span in spans:
        out.append({
            "ph": "X", "pid": pids[span.origin],
            "tid": tids[(span.origin, _REQUESTS_ROW)],
            "ts": _r3(span.start_ts), "dur": _r3(span.duration),
            "name": span.op, "cat": span.path,
            "args": {"rid": span.rid, "path": span.path},
        })
        for stage, component, start, dur in span.stages():
            out.append({
                "ph": "X", "pid": pids[component],
                "tid": tids[(component, _layer(stage))],
                "ts": _r3(start), "dur": _r3(max(0.0, dur)),
                "name": stage, "cat": span.path,
                "args": {"rid": span.rid},
            })

    for ev in events:
        out.append({
            "ph": "i", "pid": pids[ev.component],
            "tid": tids[(ev.component, _EVENTS_ROW)],
            "ts": _r3(ev.ts), "name": ev.kind, "s": "t",
            "args": _json_safe(ev.detail),
        })

    for name, points in series_items:
        pid = pids[name.split(".", 1)[0]]
        for ts, value in points:
            out.append({"ph": "C", "pid": pid, "tid": 0,
                        "ts": _r3(ts), "name": name,
                        "args": {"value": round(value, 6)}})

    return {
        "traceEvents": out,
        "displayTimeUnit": "ms",
        "otherData": {"clock": "sim-us",
                      "generator": "repro-bench trace --perfetto"},
    }


def to_json(doc: Dict[str, Any]) -> str:
    """Canonical serialization: sorted keys, no whitespace — the same
    document always produces the same bytes."""
    return json.dumps(doc, sort_keys=True, separators=(",", ":"),
                      default=str)


def dump_perfetto(path: str, events: Iterable[TraceEvent] = (),
                  spans: Iterable[Span] = (),
                  series: Any = None) -> int:
    """Write the export to ``path``; returns the trace-event count."""
    doc = build_trace(events=events, spans=spans, series=series)
    with open(path, "w") as fh:
        fh.write(to_json(doc))
        fh.write("\n")
    return len(doc["traceEvents"])


def validate(doc: Any) -> List[str]:
    """Schema-check a Trace Event Format document.

    Returns a list of problem descriptions (empty when valid): required
    keys per phase, known phases, non-negative timestamps/durations,
    numeric counter values with per-track monotonic timestamps, and
    process_name metadata for every referenced pid.
    """
    problems: List[str] = []
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        return ["document must be an object with a 'traceEvents' key"]
    rows = doc["traceEvents"]
    if not isinstance(rows, list) or not rows:
        return ["'traceEvents' must be a non-empty array"]

    named_pids = set()
    used_pids = set()
    counter_last_ts: Dict[Tuple[int, str], float] = {}
    for idx, row in enumerate(rows):
        where = f"traceEvents[{idx}]"
        if not isinstance(row, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = row.get("ph")
        if ph not in _PHASES:
            problems.append(f"{where}: unknown phase {ph!r}")
            continue
        if not isinstance(row.get("pid"), int):
            problems.append(f"{where}: missing integer 'pid'")
            continue
        pid = row["pid"]
        name = row.get("name")
        if not isinstance(name, str) or not name:
            problems.append(f"{where}: missing 'name'")
            continue
        if ph == "M":
            if name not in _METADATA_NAMES:
                problems.append(f"{where}: unknown metadata {name!r}")
            elif not isinstance(row.get("args", {}).get("name"), str):
                problems.append(f"{where}: metadata without args.name")
            elif name == "process_name":
                named_pids.add(pid)
            continue
        used_pids.add(pid)
        ts = row.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where}: bad 'ts' {ts!r}")
            continue
        if ph == "X":
            dur = row.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: bad 'dur' {dur!r}")
            if not isinstance(row.get("tid"), int):
                problems.append(f"{where}: complete event without 'tid'")
        elif ph == "C":
            value = row.get("args", {}).get("value")
            if not isinstance(value, (int, float)):
                problems.append(f"{where}: counter without numeric value")
            track = (pid, name)
            last = counter_last_ts.get(track)
            if last is not None and ts < last:
                problems.append(
                    f"{where}: counter track {name!r} ts regresses "
                    f"({ts} < {last})")
            counter_last_ts[track] = ts

    for pid in sorted(used_pids - named_pids):
        problems.append(f"pid {pid} has no process_name metadata")
    return problems


def counter_tracks(doc: Dict[str, Any]) -> Dict[str, int]:
    """Counter-track names mapped to their sample counts."""
    out: Dict[str, int] = {}
    for row in doc.get("traceEvents", []):
        if isinstance(row, dict) and row.get("ph") == "C":
            out[row["name"]] = out.get(row["name"], 0) + 1
    return out


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Validate Trace Event Format files (the CI smoke entry point)."""
    paths = list(argv if argv is not None else sys.argv[1:])
    if not paths:
        print("usage: python -m repro.bench.traceexport FILE [FILE...]")
        return 2
    failed = False
    for path in paths:
        try:
            with open(path) as fh:
                doc = json.load(fh)
        except (OSError, ValueError) as exc:
            print(f"{path}: unreadable: {exc}")
            failed = True
            continue
        problems = validate(doc)
        if problems:
            failed = True
            print(f"{path}: INVALID")
            for problem in problems[:20]:
                print(f"  - {problem}")
            if len(problems) > 20:
                print(f"  ... and {len(problems) - 20} more")
        else:
            rows = doc["traceEvents"]
            processes = sum(1 for r in rows if r.get("ph") == "M"
                            and r.get("name") == "process_name")
            tracks = len(counter_tracks(doc))
            print(f"{path}: OK ({len(rows)} events, {processes} "
                  f"processes, {tracks} counter tracks)")
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI job
    sys.exit(main())
