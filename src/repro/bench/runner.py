"""Parallel campaign runner: fan sweep points across a process pool.

Every campaign in :mod:`repro.bench` — the figure sweeps, the ablation
studies, the chaos grids — is a grid of *points*, and every point is a
pure function of ``(master seed, point spec)``: each point builds a fresh
:class:`~repro.cluster.Cluster`, and every RNG the cluster touches is a
named :class:`~repro.sim.RandomStreams` stream derived from the master
seed with a stable hash. Points therefore share no mutable state and can
run in any order, on any worker, with byte-identical results.

:func:`run_points` exploits that: it maps a module-level worker function
over the point list, either serially (``jobs <= 1``) or on a *warm*
``multiprocessing`` pool, and always returns results in point order — so
assembling the campaign dict from the returned list produces output
byte-identical to a serial run (the parallel-equivalence tests and the CI
perf-smoke job both verify this).

The pool is persistent: the first parallel :func:`run_points` of a CLI
invocation forks it, every later sub-grid reuses it, and an ``atexit``
hook drains it cleanly. Workers are primed by an initializer that
pre-imports the campaign modules and materializes the campaign's base
:class:`~repro.params.Params` once per worker (exposed to point
functions via :func:`base_params`), so per-point pickles shrink to
tuples of primitives. Callers may pass a ``cost`` key; points are then
submitted largest-first (LPT scheduling) so one late 512 KB point can't
serialize the tail of the grid — results are still returned in the
original point order.

Workers must be module-level functions and point specs must be picklable
(tuples of primitives plus :class:`~repro.params.Params` dataclasses).
"""

from __future__ import annotations

import argparse
import atexit
import hashlib
import json
import multiprocessing
import os
from typing import (Any, Callable, Dict, List, Optional, Sequence, Tuple)

from ..params import Params, default_params

#: Environment override for the default job count (used by CI).
JOBS_ENV = "REPRO_BENCH_JOBS"


def default_jobs() -> int:
    """The job count used when a CLI is invoked without ``--jobs``.

    Reads ``REPRO_BENCH_JOBS`` if set, else 1 (serial): parallelism is
    opt-in so plain invocations behave exactly as before.
    """
    value = os.environ.get(JOBS_ENV)
    if value:
        try:
            return max(1, int(value))
        except ValueError:
            pass
    return 1


def derive_seed(master_seed: int, name: str) -> int:
    """A stable 63-bit seed for a named sub-campaign of ``master_seed``.

    Mirrors :class:`repro.sim.RandomStreams` derivation (sha256, not
    ``hash()``) so the value survives interpreter restarts and
    ``PYTHONHASHSEED`` salting — a worker process re-deriving its stream
    gets exactly the seed the serial run would have used.
    """
    digest = hashlib.sha256(f"{master_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def _pool_context() -> multiprocessing.context.BaseContext:
    # fork is substantially cheaper and the benchmark processes are
    # single-threaded, so prefer it where the platform offers it.
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")


#: The base Params the current campaign materialized for its point
#: functions — set by the pool initializer in workers and by
#: :func:`run_points` in the parent (so the serial path sees the same
#: value through the same accessor).
_worker_base: Optional[Params] = None

#: The persistent pool and the (jobs, base) it was built for.
_pool: Optional[Any] = None
_pool_jobs: int = 0
_pool_base: Optional[Params] = None


def _init_worker(base: Optional[Params]) -> None:
    """Pool initializer: prime a worker once instead of per point.

    Stashes the campaign's base :class:`Params` (reachable through
    :func:`base_params`) and pre-imports the campaign modules so spawn
    platforms pay the import cost here, not inside the first mapped
    point. Fork platforms inherit the parent's modules for free and this
    is a no-op beyond the base assignment.
    """
    global _worker_base
    _worker_base = base
    from . import (ablations, chaos, figures, scale,  # noqa: F401
                   scrub, shard)


def base_params() -> Params:
    """The campaign's base :class:`Params` as primed by the pool.

    Point functions call this instead of carrying a ``Params`` in every
    point spec — one pickle per worker at pool creation, not one per
    point. Falls back to :func:`default_params` when no campaign primed
    a base (e.g. a point function invoked directly from a test).
    """
    return _worker_base if _worker_base is not None else default_params()


def _in_worker() -> bool:
    # Pool workers are daemonic and cannot have children; a point
    # function that itself calls run_points degrades to serial there.
    return multiprocessing.current_process().daemon


def shutdown_pool() -> None:
    """Drain and discard the persistent pool (idempotent).

    Registered with ``atexit`` on first use; ``close``/``join`` rather
    than ``terminate`` so workers flush coverage data and exit cleanly.
    """
    global _pool
    if _pool is not None:
        _pool.close()
        _pool.join()
        _pool = None


def _get_pool(jobs: int, base: Optional[Params]) -> Any:
    """The persistent pool, rebuilt only when ``jobs`` or ``base`` change.

    ``base=None`` reuses whatever pool is warm regardless of its base
    (the mapped function doesn't consult :func:`base_params`); a concrete
    ``base`` must match the pool's, by :class:`Params` value equality,
    or the pool is rebuilt so workers re-prime.
    """
    global _pool, _pool_jobs, _pool_base
    if _pool is not None and _pool_jobs == jobs and (
            base is None or base == _pool_base):
        return _pool
    shutdown_pool()
    ctx = _pool_context()
    _pool = ctx.Pool(processes=jobs, initializer=_init_worker,
                     initargs=(base,))
    _pool_jobs, _pool_base = jobs, base
    atexit.register(shutdown_pool)
    return _pool


def warm_pool(jobs: int, base: Optional[Params] = None) -> None:
    """Pre-fork the pool and wait for every worker to come up.

    Benchmarks call this before timing a parallel region so the
    measurement sees the steady state a campaign CLI actually runs in
    (pool forked once, reused across sub-grids) rather than charging
    pool construction to the first grid.
    """
    if jobs <= 1 or _in_worker():
        return
    pool = _get_pool(jobs, base)
    pool.map(_prime, range(jobs), chunksize=1)


def _prime(_index: int) -> None:
    """No-op mapped by :func:`warm_pool` to force worker start-up."""


def run_points(fn: Callable[[Any], Any], points: Sequence[Any],
               jobs: Optional[int] = None, chunksize: int = 1,
               base: Optional[Params] = None,
               cost: Optional[Callable[[Any], float]] = None) -> List[Any]:
    """Map ``fn`` over ``points``, preserving point order in the result.

    ``jobs`` <= 1 (or a single point) runs serially in-process with no
    multiprocessing machinery at all. Otherwise the points fan out across
    the persistent ``jobs``-worker pool; ``chunksize=1`` load-balances
    unequal point costs (a 512 KB figure point costs far more than a 4 KB
    one). Results come back in point order either way, so callers can
    zip them against the point list.

    ``base`` is the campaign's base :class:`Params`, primed once per
    worker and read back via :func:`base_params`. ``cost`` estimates a
    point's relative expense (any monotonic proxy: bytes moved, client
    count); when given, points are *submitted* most-expensive-first —
    classic largest-processing-time scheduling, which stops a big point
    picked up last from leaving every other worker idle — and the result
    list is re-ordered back to match ``points`` exactly.
    """
    global _worker_base
    points = list(points)
    if jobs is None:
        jobs = default_jobs()
    if base is not None:
        _worker_base = base  # serial path + parent-side helpers
    if jobs <= 1 or len(points) <= 1 or _in_worker():
        return [fn(point) for point in points]
    pool = _get_pool(jobs, base)
    if cost is None:
        return pool.map(fn, points, chunksize=chunksize)
    # Stable sort: equal-cost points keep grid order, so the submission
    # order — and therefore the result bytes — is deterministic.
    order = sorted(range(len(points)), key=lambda i: -cost(points[i]))
    mapped = pool.map(fn, [points[i] for i in order], chunksize=chunksize)
    results: List[Any] = [None] * len(points)
    for slot, result in zip(order, mapped):
        results[slot] = result
    return results


def run_grid(fn: Callable[[Any], Any], specs: Sequence[Any],
             path_of: Callable[[Any], Tuple],
             jobs: Optional[int] = None,
             base: Optional[Params] = None,
             cost: Optional[Callable[[Any], float]] = None
             ) -> Dict[str, Any]:
    """Run a spec grid and fold the points into a nested result dict.

    ``path_of(spec)`` names where a spec's point lands: a tuple of dict
    keys, outermost first (e.g. ``(system, fault_class, "0.0100")``).
    Insertion order follows spec order, so the folded dict — and JSON
    dumped from it — is byte-identical for any ``jobs`` count.
    ``base``/``cost`` pass through to :func:`run_points`.
    """
    specs = list(specs)
    points = run_points(fn, specs, jobs=jobs, base=base, cost=cost)
    results: Dict[str, Any] = {}
    for spec, point in zip(specs, points):
        path = path_of(spec)
        node = results
        for key in path[:-1]:
            node = node.setdefault(key, {})
        node[path[-1]] = point
    return results


def seeded_params(seed: Optional[int],
                  params: Optional[Params] = None) -> Params:
    """The campaign's base :class:`Params`, reseeded when ``--seed`` was
    given. Every campaign CLI resolves its master seed through this."""
    p = params if params is not None else default_params()
    return p.copy(seed=seed) if seed is not None else p


def add_campaign_args(parser: argparse.ArgumentParser,
                      seed_help: str = "master seed for every RNG "
                                       "stream") -> None:
    """The ``--seed/--jobs/--json`` trio every campaign CLI shares."""
    parser.add_argument("--seed", type=int, default=None, help=seed_help)
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes for the campaign grid "
                             "(default: serial; output is byte-identical "
                             "for any job count)")
    parser.add_argument("--json", action="store_true",
                        help="emit the raw campaign results as JSON")


def campaign_json(results: Any, **header: Any) -> str:
    """The canonical campaign JSON: header fields in keyword order, then
    ``results``, 2-space indent — the byte layout the CI smoke jobs diff."""
    return json.dumps({**header, "results": results}, indent=2)
