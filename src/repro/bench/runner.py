"""Parallel campaign runner: fan sweep points across a process pool.

Every campaign in :mod:`repro.bench` — the figure sweeps, the ablation
studies, the chaos grids — is a grid of *points*, and every point is a
pure function of ``(master seed, point spec)``: each point builds a fresh
:class:`~repro.cluster.Cluster`, and every RNG the cluster touches is a
named :class:`~repro.sim.RandomStreams` stream derived from the master
seed with a stable hash. Points therefore share no mutable state and can
run in any order, on any worker, with byte-identical results.

:func:`run_points` exploits that: it maps a module-level worker function
over the point list, either serially (``jobs <= 1``) or on a
``multiprocessing`` pool, and always returns results in point order — so
assembling the campaign dict from the returned list produces output
byte-identical to a serial run (the parallel-equivalence tests and the CI
perf-smoke job both verify this).

Workers must be module-level functions and point specs must be picklable
(tuples of primitives plus :class:`~repro.params.Params` dataclasses).
"""

from __future__ import annotations

import argparse
import hashlib
import json
import multiprocessing
import os
from typing import (Any, Callable, Dict, List, Optional, Sequence, Tuple)

from ..params import Params, default_params

#: Environment override for the default job count (used by CI).
JOBS_ENV = "REPRO_BENCH_JOBS"


def default_jobs() -> int:
    """The job count used when a CLI is invoked without ``--jobs``.

    Reads ``REPRO_BENCH_JOBS`` if set, else 1 (serial): parallelism is
    opt-in so plain invocations behave exactly as before.
    """
    value = os.environ.get(JOBS_ENV)
    if value:
        try:
            return max(1, int(value))
        except ValueError:
            pass
    return 1


def derive_seed(master_seed: int, name: str) -> int:
    """A stable 63-bit seed for a named sub-campaign of ``master_seed``.

    Mirrors :class:`repro.sim.RandomStreams` derivation (sha256, not
    ``hash()``) so the value survives interpreter restarts and
    ``PYTHONHASHSEED`` salting — a worker process re-deriving its stream
    gets exactly the seed the serial run would have used.
    """
    digest = hashlib.sha256(f"{master_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def _pool_context() -> multiprocessing.context.BaseContext:
    # fork is substantially cheaper and the benchmark processes are
    # single-threaded, so prefer it where the platform offers it.
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")


def run_points(fn: Callable[[Any], Any], points: Sequence[Any],
               jobs: Optional[int] = None,
               chunksize: int = 1) -> List[Any]:
    """Map ``fn`` over ``points``, preserving point order in the result.

    ``jobs`` <= 1 (or a single point) runs serially in-process with no
    multiprocessing machinery at all. Otherwise the points fan out across
    ``min(jobs, len(points))`` workers; ``chunksize=1`` load-balances
    unequal point costs (a 512 KB figure point costs far more than a 4 KB
    one). Results come back in submission order either way, so callers
    can zip them against the point list.
    """
    points = list(points)
    if jobs is None:
        jobs = default_jobs()
    if jobs <= 1 or len(points) <= 1:
        return [fn(point) for point in points]
    ctx = _pool_context()
    with ctx.Pool(processes=min(jobs, len(points))) as pool:
        return pool.map(fn, points, chunksize=chunksize)


def run_grid(fn: Callable[[Any], Any], specs: Sequence[Any],
             path_of: Callable[[Any], Tuple],
             jobs: Optional[int] = None) -> Dict[str, Any]:
    """Run a spec grid and fold the points into a nested result dict.

    ``path_of(spec)`` names where a spec's point lands: a tuple of dict
    keys, outermost first (e.g. ``(system, fault_class, "0.0100")``).
    Insertion order follows spec order, so the folded dict — and JSON
    dumped from it — is byte-identical for any ``jobs`` count.
    """
    specs = list(specs)
    points = run_points(fn, specs, jobs=jobs)
    results: Dict[str, Any] = {}
    for spec, point in zip(specs, points):
        path = path_of(spec)
        node = results
        for key in path[:-1]:
            node = node.setdefault(key, {})
        node[path[-1]] = point
    return results


def seeded_params(seed: Optional[int],
                  params: Optional[Params] = None) -> Params:
    """The campaign's base :class:`Params`, reseeded when ``--seed`` was
    given. Every campaign CLI resolves its master seed through this."""
    p = params if params is not None else default_params()
    return p.copy(seed=seed) if seed is not None else p


def add_campaign_args(parser: argparse.ArgumentParser,
                      seed_help: str = "master seed for every RNG "
                                       "stream") -> None:
    """The ``--seed/--jobs/--json`` trio every campaign CLI shares."""
    parser.add_argument("--seed", type=int, default=None, help=seed_help)
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes for the campaign grid "
                             "(default: serial; output is byte-identical "
                             "for any job count)")
    parser.add_argument("--json", action="store_true",
                        help="emit the raw campaign results as JSON")


def campaign_json(results: Any, **header: Any) -> str:
    """The canonical campaign JSON: header fields in keyword order, then
    ``results``, 2-space indent — the byte layout the CI smoke jobs diff."""
    return json.dumps({**header, "results": results}, indent=2)
