"""``repro-bench`` command line: regenerate any table or figure.

Examples::

    repro-bench table2
    repro-bench fig7 --quick
    repro-bench all
    repro-bench ablations
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict

from . import ablations, baseline, decompose, figures, report


def _run_table2(quick: bool) -> None:
    print(report.render_table2(baseline.table2(), baseline.PAPER_TABLE2))


def _run_fig3(quick: bool) -> None:
    kwargs = {"blocks_per_point": 192} if quick else {}
    results = figures.fig3_fig4(**kwargs)
    print("Fig. 3 — client read throughput (paper plateaus: NFS ~65, "
          "pre-posting ~235, hybrid ~230, DAFS ~230 MB/s)")
    print(report.render_sweep(results, "throughput_mb_s", "MB/s"))
    from .plot import chart_from_sweep
    print()
    print(chart_from_sweep(results, "throughput_mb_s", ymax=250.0,
                           ylabel="MB/s", xlabel="block KB"))


def _run_fig4(quick: bool) -> None:
    kwargs = {"blocks_per_point": 192} if quick else {}
    results = figures.fig3_fig4(**kwargs)
    print("Fig. 4 — client CPU utilization (DAFS <15% at >=64 KB)")
    print(report.render_sweep(results, "client_cpu", "%", scale=100.0))


def _run_fig5(quick: bool) -> None:
    kwargs = {"n_records": 128} if quick else {}
    results = figures.fig5_berkeley_db(**kwargs)
    print("Fig. 5 — Berkeley DB throughput vs bytes copied per record (KB)")
    flat = {s: {k: {"mb_s": v} for k, v in series.items()}
            for s, series in results.items()}
    print(report.render_sweep(flat, "mb_s", "MB/s"))


def _run_table3(quick: bool) -> None:
    kwargs = {"n_blocks": 256, "measure_blocks": 128} if quick else {}
    print("Table 3 — 4 KB read response time")
    print(report.render_table3(figures.table3_response_time(**kwargs),
                               figures.PAPER_TABLE3))


def _run_fig6(quick: bool) -> None:
    kwargs = {"n_files": 256, "transactions": 1500} if quick else {}
    print("Fig. 6 — PostMark throughput vs client cache hit ratio")
    print(report.render_fig6(figures.fig6_postmark(**kwargs)))


def _run_fig7(quick: bool) -> None:
    kwargs = {"blocks_per_file": 384} if quick else {}
    print("Fig. 7 — server throughput, two clients (interrupt-mode server)")
    fig7 = figures.fig7_server_throughput(**kwargs)
    print(report.render_fig7(fig7))
    from .plot import chart_from_sweep
    print()
    print(chart_from_sweep(fig7, "throughput_mb_s", ymax=250.0,
                           ylabel="MB/s", xlabel="cache block KB"))
    from ..hw.nic import NotifyMode
    poll = figures.fig7_server_throughput(
        block_sizes_kb=(4,), server_mode=NotifyMode.POLL, **kwargs)
    dafs = poll["dafs"][4]["throughput_mb_s"]
    odafs = poll["odafs"][4]["throughput_mb_s"]
    print(f"\npolling server @4KB: DAFS {dafs:.0f} MB/s (paper ~170), "
          f"ODAFS {odafs:.0f} MB/s, gain {(odafs / dafs - 1) * 100:.0f}% "
          f"(paper ~32%)")


def _run_ablations(quick: bool) -> None:
    print("Interrupts vs polling (4 KB, two clients):")
    print(report.render_dict_table(ablations.ablation_polling(
        blocks_per_file=256 if quick else 512), "server mode"))
    print("\nORDMA success rate (server cache fraction of file set):")
    print(report.render_dict_table(ablations.ablation_ordma_hit_rate(
        transactions=600 if quick else 1200), "cache fraction"))
    print("\nDirectory replacement policy (hot/cold mix):")
    print(report.render_dict_table(ablations.ablation_directory_policy(
        transactions=1200 if quick else 3000), "policy"))
    print("\nRegistration caching (NFS hybrid, 64 KB):")
    print(report.render_dict_table(
        ablations.ablation_registration_cache(
            blocks=192 if quick else 384), "registrations"))
    print("\nNIC TLB size (ORDMA, reduced 200 us miss penalty):")
    print(report.render_dict_table(ablations.ablation_nic_tlb(
        n_blocks=128 if quick else 256), "TLB entries"))
    print("\nBatch I/O (4 KB reads):")
    print(report.render_dict_table(ablations.ablation_batch_io(
        total_reads=128 if quick else 256), "batch size"))
    print("\nSFS-mix sensitivity (throughput relative to 1.0x, knob x4):")
    sens = ablations.ablation_overhead_sensitivity(
        ops_per_client=200 if quick else 400)
    for knob, series in sens.items():
        base = series[1.0]
        scaled = {k: round(v / base, 3) for k, v in sorted(series.items())}
        print(f"  {knob}: {scaled}")
    print("\nServer VM pressure (reclaim interval us; 0 = none):")
    print(report.render_dict_table(ablations.ablation_memory_pressure(
        transactions=600 if quick else 1200,
        n_files=128 if quick else 256), "interval"))
    print("\nClient scaling (4 KB reads through the client cache):")
    scaling = ablations.ablation_client_scaling(
        blocks_per_file=192 if quick else 384)
    for system, series in scaling.items():
        print(f"  {system}:")
        print("  " + report.render_dict_table(
            series, "clients").replace("\n", "\n  "))
    print("\nRead/write mix (ODAFS gain vs read ratio):")
    print(report.render_dict_table(ablations.ablation_read_write_mix(
        transactions=800 if quick else 1500,
        n_files=128 if quick else 256), "read ratio"))
    print("\nNFS transport: UDP vs host TCP (64 KB streaming):")
    print(report.render_dict_table(ablations.ablation_tcp_transport(
        blocks=96 if quick else 192), "transport"))
    print("\nEager vs lazy directory building (cold pass, warm server):")
    print(report.render_dict_table(ablations.ablation_eager_vs_lazy_refs(
        n_blocks=128 if quick else 256), "strategy"))
    print("\nCapability verification:")
    caps = ablations.ablation_capabilities(n_blocks=128 if quick else 256)
    for key, value in caps.items():
        print(f"  {key}: {value:.2f}")


def _run_decompose(quick: bool) -> None:
    print("Overhead decomposition o(m) = m*o_byte + o_io (Section 2.2 fit)")
    result = decompose.decompose(n_ios=48 if quick else 96)
    print(decompose.render(result))


TARGETS: Dict[str, Callable[[bool], None]] = {
    "table2": _run_table2,
    "fig3": _run_fig3,
    "fig4": _run_fig4,
    "fig5": _run_fig5,
    "table3": _run_table3,
    "fig6": _run_fig6,
    "fig7": _run_fig7,
    "ablations": _run_ablations,
    "decompose": _run_decompose,
}


#: Raw-data collectors for --json output (machine-readable results).
COLLECTORS: Dict[str, Callable[[bool], object]] = {
    "table2": lambda quick: baseline.table2(),
    "fig3": lambda quick: figures.fig3_fig4(
        **({"blocks_per_point": 192} if quick else {})),
    "fig4": lambda quick: figures.fig3_fig4(
        **({"blocks_per_point": 192} if quick else {})),
    "fig5": lambda quick: figures.fig5_berkeley_db(
        **({"n_records": 128} if quick else {})),
    "table3": lambda quick: figures.table3_response_time(
        **({"n_blocks": 256, "measure_blocks": 128} if quick else {})),
    "fig6": lambda quick: figures.fig6_postmark(
        **({"n_files": 256, "transactions": 1500} if quick else {})),
    "fig7": lambda quick: figures.fig7_server_throughput(
        **({"blocks_per_file": 384} if quick else {})),
    "decompose": lambda quick: decompose.decompose(
        n_ios=48 if quick else 96),
}


def main(argv=None) -> int:
    """Entry point for the ``repro-bench`` console script."""
    import json

    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "trace":
        # Span/trace analysis has its own option set (see tracecli).
        from .tracecli import main as trace_main
        return trace_main(list(argv[1:]))

    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Regenerate the FAST'03 paper's tables and figures. "
                    "The extra 'trace' subcommand analyzes end-to-end "
                    "request spans (repro-bench trace --help).")
    parser.add_argument("target", choices=list(TARGETS) + ["all"],
                        help="which table/figure to regenerate "
                             "(or 'trace' for span analysis)")
    parser.add_argument("--quick", action="store_true",
                        help="smaller workloads (same shapes, faster)")
    parser.add_argument("--json", action="store_true",
                        help="emit raw results as JSON instead of tables "
                             "(not available for 'ablations'/'all')")
    args = parser.parse_args(argv)
    if args.json:
        collector = COLLECTORS.get(args.target)
        if collector is None:
            parser.error(f"--json not supported for {args.target!r}")
        print(json.dumps({args.target: collector(args.quick)},
                         indent=2, default=str))
        return 0
    targets = list(TARGETS) if args.target == "all" else [args.target]
    for name in targets:
        start = time.time()
        print(f"=== {name} ===")
        TARGETS[name](args.quick)
        print(f"[{name}: {time.time() - start:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
