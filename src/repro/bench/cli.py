"""``repro-bench`` command line: regenerate any table or figure.

Examples::

    repro-bench table2
    repro-bench fig7 --quick
    repro-bench all --seed 7 --jobs 4
    repro-bench ablations --jobs 8
    repro-bench chaos --quick        # fault-injection campaigns
    repro-bench perf --quick         # engine microbenchmarks
"""

from __future__ import annotations

import argparse
import sys
import time
import traceback
from typing import Callable, Dict, Optional

from ..params import Params, default_params
from . import ablations, baseline, decompose, figures, report


def _run_table2(quick: bool, params: Optional[Params],
                jobs: Optional[int]) -> None:
    print(report.render_table2(baseline.table2(params=params),
                               baseline.PAPER_TABLE2))


def _run_fig3(quick: bool, params: Optional[Params],
              jobs: Optional[int]) -> None:
    kwargs = {"blocks_per_point": 192} if quick else {}
    results = figures.fig3_fig4(params=params, jobs=jobs, **kwargs)
    print("Fig. 3 — client read throughput (paper plateaus: NFS ~65, "
          "pre-posting ~235, hybrid ~230, DAFS ~230 MB/s)")
    print(report.render_sweep(results, "throughput_mb_s", "MB/s"))
    from .plot import chart_from_sweep
    print()
    print(chart_from_sweep(results, "throughput_mb_s", ymax=250.0,
                           ylabel="MB/s", xlabel="block KB"))


def _run_fig4(quick: bool, params: Optional[Params],
              jobs: Optional[int]) -> None:
    kwargs = {"blocks_per_point": 192} if quick else {}
    results = figures.fig3_fig4(params=params, jobs=jobs, **kwargs)
    print("Fig. 4 — client CPU utilization (DAFS <15% at >=64 KB)")
    print(report.render_sweep(results, "client_cpu", "%", scale=100.0))


def _run_fig5(quick: bool, params: Optional[Params],
              jobs: Optional[int]) -> None:
    kwargs = {"n_records": 128} if quick else {}
    results = figures.fig5_berkeley_db(params=params, jobs=jobs, **kwargs)
    print("Fig. 5 — Berkeley DB throughput vs bytes copied per record (KB)")
    flat = {s: {k: {"mb_s": v} for k, v in series.items()}
            for s, series in results.items()}
    print(report.render_sweep(flat, "mb_s", "MB/s"))


def _run_table3(quick: bool, params: Optional[Params],
                jobs: Optional[int]) -> None:
    kwargs = {"n_blocks": 256, "measure_blocks": 128} if quick else {}
    print("Table 3 — 4 KB read response time")
    print(report.render_table3(
        figures.table3_response_time(params=params, jobs=jobs, **kwargs),
        figures.PAPER_TABLE3))


def _run_fig6(quick: bool, params: Optional[Params],
              jobs: Optional[int]) -> None:
    kwargs = {"n_files": 256, "transactions": 1500} if quick else {}
    print("Fig. 6 — PostMark throughput vs client cache hit ratio")
    print(report.render_fig6(figures.fig6_postmark(params=params, jobs=jobs,
                                                   **kwargs)))


def _run_fig7(quick: bool, params: Optional[Params],
              jobs: Optional[int]) -> None:
    kwargs = {"blocks_per_file": 384} if quick else {}
    print("Fig. 7 — server throughput, two clients (interrupt-mode server)")
    fig7 = figures.fig7_server_throughput(params=params, jobs=jobs, **kwargs)
    print(report.render_fig7(fig7))
    from .plot import chart_from_sweep
    print()
    print(chart_from_sweep(fig7, "throughput_mb_s", ymax=250.0,
                           ylabel="MB/s", xlabel="cache block KB"))
    from ..hw.nic import NotifyMode
    poll = figures.fig7_server_throughput(
        params=params, block_sizes_kb=(4,), server_mode=NotifyMode.POLL,
        jobs=jobs, **kwargs)
    dafs = poll["dafs"][4]["throughput_mb_s"]
    odafs = poll["odafs"][4]["throughput_mb_s"]
    print(f"\npolling server @4KB: DAFS {dafs:.0f} MB/s (paper ~170), "
          f"ODAFS {odafs:.0f} MB/s, gain {(odafs / dafs - 1) * 100:.0f}% "
          f"(paper ~32%)")


def _run_ablations(quick: bool, params: Optional[Params],
                   jobs: Optional[int]) -> None:
    data = ablations.collect(params=params, quick=quick, jobs=jobs)
    print("Interrupts vs polling (4 KB, two clients):")
    print(report.render_dict_table(data["polling"], "server mode"))
    print("\nORDMA success rate (server cache fraction of file set):")
    print(report.render_dict_table(data["ordma_hit_rate"],
                                   "cache fraction"))
    print("\nDirectory replacement policy (hot/cold mix):")
    print(report.render_dict_table(data["directory_policy"], "policy"))
    print("\nRegistration caching (NFS hybrid, 64 KB):")
    print(report.render_dict_table(data["registration_cache"],
                                   "registrations"))
    print("\nNIC TLB size (ORDMA, reduced 200 us miss penalty):")
    print(report.render_dict_table(data["nic_tlb"], "TLB entries"))
    print("\nBatch I/O (4 KB reads):")
    print(report.render_dict_table(data["batch_io"], "batch size"))
    print("\nSFS-mix sensitivity (throughput relative to 1.0x, knob x4):")
    for knob, series in data["overhead_sensitivity"].items():
        base = series[1.0]
        scaled = {k: round(v / base, 3) for k, v in sorted(series.items())}
        print(f"  {knob}: {scaled}")
    print("\nServer VM pressure (reclaim interval us; 0 = none):")
    print(report.render_dict_table(data["memory_pressure"], "interval"))
    print("\nClient scaling (4 KB reads through the client cache):")
    for system, series in data["client_scaling"].items():
        print(f"  {system}:")
        print("  " + report.render_dict_table(
            series, "clients").replace("\n", "\n  "))
    print("\nRead/write mix (ODAFS gain vs read ratio):")
    print(report.render_dict_table(data["read_write_mix"], "read ratio"))
    print("\nNFS transport: UDP vs host TCP (64 KB streaming):")
    print(report.render_dict_table(data["tcp_transport"], "transport"))
    print("\nEager vs lazy directory building (cold pass, warm server):")
    print(report.render_dict_table(data["eager_vs_lazy_refs"], "strategy"))
    print("\nCapability verification:")
    for key, value in data["capabilities"].items():
        print(f"  {key}: {value:.2f}")


def _run_decompose(quick: bool, params: Optional[Params],
                   jobs: Optional[int]) -> None:
    print("Overhead decomposition o(m) = m*o_byte + o_io (Section 2.2 fit)")
    result = decompose.decompose(params=params, n_ios=48 if quick else 96)
    print(decompose.render(result))


TARGETS: Dict[str, Callable[[bool, Optional[Params], Optional[int]],
                            None]] = {
    "table2": _run_table2,
    "fig3": _run_fig3,
    "fig4": _run_fig4,
    "fig5": _run_fig5,
    "table3": _run_table3,
    "fig6": _run_fig6,
    "fig7": _run_fig7,
    "ablations": _run_ablations,
    "decompose": _run_decompose,
}


#: Raw-data collectors for --json output (machine-readable results).
COLLECTORS: Dict[str, Callable[[bool, Optional[Params], Optional[int]],
                               object]] = {
    "table2": lambda quick, params, jobs: baseline.table2(params=params),
    "fig3": lambda quick, params, jobs: figures.fig3_fig4(
        params=params, jobs=jobs,
        **({"blocks_per_point": 192} if quick else {})),
    "fig4": lambda quick, params, jobs: figures.fig3_fig4(
        params=params, jobs=jobs,
        **({"blocks_per_point": 192} if quick else {})),
    "fig5": lambda quick, params, jobs: figures.fig5_berkeley_db(
        params=params, jobs=jobs, **({"n_records": 128} if quick else {})),
    "table3": lambda quick, params, jobs: figures.table3_response_time(
        params=params, jobs=jobs,
        **({"n_blocks": 256, "measure_blocks": 128} if quick else {})),
    "fig6": lambda quick, params, jobs: figures.fig6_postmark(
        params=params, jobs=jobs,
        **({"n_files": 256, "transactions": 1500} if quick else {})),
    "fig7": lambda quick, params, jobs: figures.fig7_server_throughput(
        params=params, jobs=jobs,
        **({"blocks_per_file": 384} if quick else {})),
    "ablations": lambda quick, params, jobs: ablations.collect(
        params=params, quick=quick, jobs=jobs),
    "decompose": lambda quick, params, jobs: decompose.decompose(
        params=params, n_ios=48 if quick else 96),
}


def main(argv=None) -> int:
    """Entry point for the ``repro-bench`` console script."""
    import json

    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "trace":
        # Span/trace analysis has its own option set (see tracecli).
        from .tracecli import main as trace_main
        return trace_main(list(argv[1:]))
    if argv and argv[0] == "chaos":
        # Fault-injection campaigns likewise (see chaos).
        from .chaos import main as chaos_main
        return chaos_main(list(argv[1:]))
    if argv and argv[0] == "perf":
        # Engine microbenchmarks and the tracked perf trajectory.
        from .perf import main as perf_main
        return perf_main(list(argv[1:]))
    if argv and argv[0] == "telemetry":
        # Continuous-telemetry timelines and cross-system comparisons.
        from .telemetry import main as telemetry_main
        return telemetry_main(list(argv[1:]))
    if argv and argv[0] == "scale":
        # Client-scaling sweeps against the admission scheduler.
        from .scale import main as scale_main
        return scale_main(list(argv[1:]))
    if argv and argv[0] == "shard":
        # Multi-server scale-out sweeps over the shard layer.
        from .shard import main as shard_main
        return shard_main(list(argv[1:]))
    if argv and argv[0] == "scrub":
        # End-to-end integrity: silent corruption vs checksums.
        from .scrub import main as scrub_main
        return scrub_main(list(argv[1:]))

    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Regenerate the FAST'03 paper's tables and figures. "
                    "Extra subcommands: 'trace' analyzes end-to-end "
                    "request spans, 'chaos' runs fault-injection "
                    "degradation campaigns, 'perf' benchmarks the "
                    "simulation engine itself, 'telemetry' renders "
                    "sampled gauge timelines, 'scale' sweeps client "
                    "counts against the server admission scheduler, "
                    "'shard' sweeps server counts over striped files, "
                    "'scrub' runs end-to-end integrity campaigns "
                    "(repro-bench perf --help).")
    parser.add_argument("target", choices=list(TARGETS) + ["all"],
                        help="which table/figure to regenerate (or "
                             "'trace'/'chaos'/'perf'/'telemetry'/'scale'"
                             "/'shard'/'scrub' subcommands)")
    parser.add_argument("--quick", action="store_true",
                        help="smaller workloads (same shapes, faster)")
    parser.add_argument("--seed", type=int, default=None,
                        help="master seed for every simulation RNG stream "
                             "(default: the calibrated Params seed)")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes for sweep grids (default: "
                             "serial; results are byte-identical for any "
                             "job count)")
    parser.add_argument("--json", action="store_true",
                        help="emit raw results as JSON instead of tables "
                             "(not available for 'all')")
    args = parser.parse_args(argv)
    params = (default_params().copy(seed=args.seed)
              if args.seed is not None else None)
    if args.json:
        collector = COLLECTORS.get(args.target)
        if collector is None:
            parser.error(f"--json not supported for {args.target!r}")
        try:
            result = collector(args.quick, params, args.jobs)
        except Exception:
            traceback.print_exc()
            return 1
        print(json.dumps({args.target: result}, indent=2, default=str))
        return 0
    targets = list(TARGETS) if args.target == "all" else [args.target]
    failures = 0
    for name in targets:
        start = time.time()
        print(f"=== {name} ===")
        try:
            TARGETS[name](args.quick, params, args.jobs)
        except Exception:
            # A failed target must not mask the others, but the process
            # exit code has to say the run was not clean.
            traceback.print_exc()
            failures += 1
            print(f"[{name}: FAILED]\n")
            continue
        print(f"[{name}: {time.time() - start:.1f}s]\n")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
