"""``repro-bench`` command line: regenerate any table or figure.

Examples::

    repro-bench table2
    repro-bench fig7 --quick
    repro-bench all --seed 7
    repro-bench ablations
    repro-bench chaos --quick        # fault-injection campaigns
"""

from __future__ import annotations

import argparse
import sys
import time
import traceback
from typing import Callable, Dict, Optional

from ..params import Params, default_params
from . import ablations, baseline, decompose, figures, report


def _run_table2(quick: bool, params: Optional[Params]) -> None:
    print(report.render_table2(baseline.table2(params=params),
                               baseline.PAPER_TABLE2))


def _run_fig3(quick: bool, params: Optional[Params]) -> None:
    kwargs = {"blocks_per_point": 192} if quick else {}
    results = figures.fig3_fig4(params=params, **kwargs)
    print("Fig. 3 — client read throughput (paper plateaus: NFS ~65, "
          "pre-posting ~235, hybrid ~230, DAFS ~230 MB/s)")
    print(report.render_sweep(results, "throughput_mb_s", "MB/s"))
    from .plot import chart_from_sweep
    print()
    print(chart_from_sweep(results, "throughput_mb_s", ymax=250.0,
                           ylabel="MB/s", xlabel="block KB"))


def _run_fig4(quick: bool, params: Optional[Params]) -> None:
    kwargs = {"blocks_per_point": 192} if quick else {}
    results = figures.fig3_fig4(params=params, **kwargs)
    print("Fig. 4 — client CPU utilization (DAFS <15% at >=64 KB)")
    print(report.render_sweep(results, "client_cpu", "%", scale=100.0))


def _run_fig5(quick: bool, params: Optional[Params]) -> None:
    kwargs = {"n_records": 128} if quick else {}
    results = figures.fig5_berkeley_db(params=params, **kwargs)
    print("Fig. 5 — Berkeley DB throughput vs bytes copied per record (KB)")
    flat = {s: {k: {"mb_s": v} for k, v in series.items()}
            for s, series in results.items()}
    print(report.render_sweep(flat, "mb_s", "MB/s"))


def _run_table3(quick: bool, params: Optional[Params]) -> None:
    kwargs = {"n_blocks": 256, "measure_blocks": 128} if quick else {}
    print("Table 3 — 4 KB read response time")
    print(report.render_table3(
        figures.table3_response_time(params=params, **kwargs),
        figures.PAPER_TABLE3))


def _run_fig6(quick: bool, params: Optional[Params]) -> None:
    kwargs = {"n_files": 256, "transactions": 1500} if quick else {}
    print("Fig. 6 — PostMark throughput vs client cache hit ratio")
    print(report.render_fig6(figures.fig6_postmark(params=params, **kwargs)))


def _run_fig7(quick: bool, params: Optional[Params]) -> None:
    kwargs = {"blocks_per_file": 384} if quick else {}
    print("Fig. 7 — server throughput, two clients (interrupt-mode server)")
    fig7 = figures.fig7_server_throughput(params=params, **kwargs)
    print(report.render_fig7(fig7))
    from .plot import chart_from_sweep
    print()
    print(chart_from_sweep(fig7, "throughput_mb_s", ymax=250.0,
                           ylabel="MB/s", xlabel="cache block KB"))
    from ..hw.nic import NotifyMode
    poll = figures.fig7_server_throughput(
        params=params, block_sizes_kb=(4,), server_mode=NotifyMode.POLL,
        **kwargs)
    dafs = poll["dafs"][4]["throughput_mb_s"]
    odafs = poll["odafs"][4]["throughput_mb_s"]
    print(f"\npolling server @4KB: DAFS {dafs:.0f} MB/s (paper ~170), "
          f"ODAFS {odafs:.0f} MB/s, gain {(odafs / dafs - 1) * 100:.0f}% "
          f"(paper ~32%)")


def _run_ablations(quick: bool, params: Optional[Params]) -> None:
    print("Interrupts vs polling (4 KB, two clients):")
    print(report.render_dict_table(ablations.ablation_polling(
        params=params,
        blocks_per_file=256 if quick else 512), "server mode"))
    print("\nORDMA success rate (server cache fraction of file set):")
    print(report.render_dict_table(ablations.ablation_ordma_hit_rate(
        params=params,
        transactions=600 if quick else 1200), "cache fraction"))
    print("\nDirectory replacement policy (hot/cold mix):")
    print(report.render_dict_table(ablations.ablation_directory_policy(
        params=params,
        transactions=1200 if quick else 3000), "policy"))
    print("\nRegistration caching (NFS hybrid, 64 KB):")
    print(report.render_dict_table(
        ablations.ablation_registration_cache(
            params=params,
            blocks=192 if quick else 384), "registrations"))
    print("\nNIC TLB size (ORDMA, reduced 200 us miss penalty):")
    print(report.render_dict_table(ablations.ablation_nic_tlb(
        params=params,
        n_blocks=128 if quick else 256), "TLB entries"))
    print("\nBatch I/O (4 KB reads):")
    print(report.render_dict_table(ablations.ablation_batch_io(
        params=params,
        total_reads=128 if quick else 256), "batch size"))
    print("\nSFS-mix sensitivity (throughput relative to 1.0x, knob x4):")
    sens = ablations.ablation_overhead_sensitivity(
        params=params,
        ops_per_client=200 if quick else 400)
    for knob, series in sens.items():
        base = series[1.0]
        scaled = {k: round(v / base, 3) for k, v in sorted(series.items())}
        print(f"  {knob}: {scaled}")
    print("\nServer VM pressure (reclaim interval us; 0 = none):")
    print(report.render_dict_table(ablations.ablation_memory_pressure(
        params=params,
        transactions=600 if quick else 1200,
        n_files=128 if quick else 256), "interval"))
    print("\nClient scaling (4 KB reads through the client cache):")
    scaling = ablations.ablation_client_scaling(
        params=params,
        blocks_per_file=192 if quick else 384)
    for system, series in scaling.items():
        print(f"  {system}:")
        print("  " + report.render_dict_table(
            series, "clients").replace("\n", "\n  "))
    print("\nRead/write mix (ODAFS gain vs read ratio):")
    print(report.render_dict_table(ablations.ablation_read_write_mix(
        params=params,
        transactions=800 if quick else 1500,
        n_files=128 if quick else 256), "read ratio"))
    print("\nNFS transport: UDP vs host TCP (64 KB streaming):")
    print(report.render_dict_table(ablations.ablation_tcp_transport(
        params=params,
        blocks=96 if quick else 192), "transport"))
    print("\nEager vs lazy directory building (cold pass, warm server):")
    print(report.render_dict_table(ablations.ablation_eager_vs_lazy_refs(
        params=params,
        n_blocks=128 if quick else 256), "strategy"))
    print("\nCapability verification:")
    caps = ablations.ablation_capabilities(params=params,
                                           n_blocks=128 if quick else 256)
    for key, value in caps.items():
        print(f"  {key}: {value:.2f}")


def _run_decompose(quick: bool, params: Optional[Params]) -> None:
    print("Overhead decomposition o(m) = m*o_byte + o_io (Section 2.2 fit)")
    result = decompose.decompose(params=params, n_ios=48 if quick else 96)
    print(decompose.render(result))


TARGETS: Dict[str, Callable[[bool, Optional[Params]], None]] = {
    "table2": _run_table2,
    "fig3": _run_fig3,
    "fig4": _run_fig4,
    "fig5": _run_fig5,
    "table3": _run_table3,
    "fig6": _run_fig6,
    "fig7": _run_fig7,
    "ablations": _run_ablations,
    "decompose": _run_decompose,
}


#: Raw-data collectors for --json output (machine-readable results).
COLLECTORS: Dict[str, Callable[[bool, Optional[Params]], object]] = {
    "table2": lambda quick, params: baseline.table2(params=params),
    "fig3": lambda quick, params: figures.fig3_fig4(
        params=params, **({"blocks_per_point": 192} if quick else {})),
    "fig4": lambda quick, params: figures.fig3_fig4(
        params=params, **({"blocks_per_point": 192} if quick else {})),
    "fig5": lambda quick, params: figures.fig5_berkeley_db(
        params=params, **({"n_records": 128} if quick else {})),
    "table3": lambda quick, params: figures.table3_response_time(
        params=params,
        **({"n_blocks": 256, "measure_blocks": 128} if quick else {})),
    "fig6": lambda quick, params: figures.fig6_postmark(
        params=params,
        **({"n_files": 256, "transactions": 1500} if quick else {})),
    "fig7": lambda quick, params: figures.fig7_server_throughput(
        params=params, **({"blocks_per_file": 384} if quick else {})),
    "decompose": lambda quick, params: decompose.decompose(
        params=params, n_ios=48 if quick else 96),
}


def main(argv=None) -> int:
    """Entry point for the ``repro-bench`` console script."""
    import json

    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "trace":
        # Span/trace analysis has its own option set (see tracecli).
        from .tracecli import main as trace_main
        return trace_main(list(argv[1:]))
    if argv and argv[0] == "chaos":
        # Fault-injection campaigns likewise (see chaos).
        from .chaos import main as chaos_main
        return chaos_main(list(argv[1:]))

    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Regenerate the FAST'03 paper's tables and figures. "
                    "Extra subcommands: 'trace' analyzes end-to-end "
                    "request spans, 'chaos' runs fault-injection "
                    "degradation campaigns (repro-bench chaos --help).")
    parser.add_argument("target", choices=list(TARGETS) + ["all"],
                        help="which table/figure to regenerate "
                             "(or 'trace'/'chaos' subcommands)")
    parser.add_argument("--quick", action="store_true",
                        help="smaller workloads (same shapes, faster)")
    parser.add_argument("--seed", type=int, default=None,
                        help="master seed for every simulation RNG stream "
                             "(default: the calibrated Params seed)")
    parser.add_argument("--json", action="store_true",
                        help="emit raw results as JSON instead of tables "
                             "(not available for 'ablations'/'all')")
    args = parser.parse_args(argv)
    params = (default_params().copy(seed=args.seed)
              if args.seed is not None else None)
    if args.json:
        collector = COLLECTORS.get(args.target)
        if collector is None:
            parser.error(f"--json not supported for {args.target!r}")
        try:
            result = collector(args.quick, params)
        except Exception:
            traceback.print_exc()
            return 1
        print(json.dumps({args.target: result}, indent=2, default=str))
        return 0
    targets = list(TARGETS) if args.target == "all" else [args.target]
    failures = 0
    for name in targets:
        start = time.time()
        print(f"=== {name} ===")
        try:
            TARGETS[name](args.quick, params)
        except Exception:
            # A failed target must not mask the others, but the process
            # exit code has to say the run was not clean.
            traceback.print_exc()
            failures += 1
            print(f"[{name}: FAILED]\n")
            continue
        print(f"[{name}: {time.time() - start:.1f}s]\n")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
