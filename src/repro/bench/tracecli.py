"""``repro-bench trace`` — span waterfalls and per-stage latency tables.

Runs a small-I/O workload with a tracer attached (or loads a previously
dumped JSONL trace) and prints where each request's time went: ASCII span
waterfalls, per-stage p50/p95/p99 tables grouped by data path (RPC, RDMA,
ORDMA, ORDMA-fault-fallback, local), the ORDMA fault timeline, and cache
hit-rate summaries. In live mode it also cross-checks the spans against
an independent response-time meter: the per-span stage sums must agree
with the measured end-to-end mean.

Examples::

    repro-bench trace                          # live ODAFS 4 KB reads
    repro-bench trace --system dafs --blocks 32
    repro-bench trace --dump /tmp/t.jsonl      # save the raw trace
    repro-bench trace --input /tmp/t.jsonl     # re-analyze a dump
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..cluster import SYSTEMS, Cluster
from ..params import KB, Params, default_params
from ..sim import (LatencyStats, SimulationError, Span, Tracer, load_jsonl)
from ..sim.timeseries import window_mean
from . import traceexport

#: Order in which data paths are reported.
PATH_ORDER = ("rpc", "rdma", "ordma", "ordma-fallback", "local")

_WATERFALL_WIDTH = 44


# ---------------------------------------------------------------------------
# Live workload
# ---------------------------------------------------------------------------

def run_workload(system: str = "odafs", blocks: int = 64,
                 block_kb: int = 4, passes: int = 2,
                 fault_blocks: int = 4,
                 params: Optional[Params] = None,
                 sample_interval_us: Optional[float] = None
                 ) -> Dict[str, Any]:
    """Run the Table 3-style small-I/O microbenchmark with tracing on.

    A file warm in the server cache is read ``passes`` times in
    ``block_kb`` KB increments through a small (8-block) client cache.
    For ODAFS, ``fault_blocks`` server cache blocks are invalidated
    between the passes so the optimistic path demonstrably faults and
    falls back to RPC. ``sample_interval_us`` additionally attaches the
    cluster's continuous-telemetry sampler at that sim-time interval.
    Returns the cluster, tracer, response meter, and sampler (``None``
    when telemetry is off).
    """
    if system not in SYSTEMS:
        raise ValueError(f"unknown system {system!r}; one of {SYSTEMS}")
    block = block_kb * KB
    client_kwargs: Dict[str, Any] = {}
    if system in ("dafs", "odafs"):
        client_kwargs = {"cache_blocks": 8, "rpc_read_mode": "direct"}
    cluster = Cluster(params or default_params(), system=system,
                      block_size=block,
                      server_cache_blocks=blocks + 8,
                      client_kwargs=client_kwargs)
    cluster.create_file("micro", blocks * block)
    tracer = Tracer.attach(cluster.sim)
    client = cluster.clients[0]
    meter = LatencyStats("read_response")

    def main():
        yield from client.open("micro")
        for pass_no in range(passes):
            if pass_no == 1 and system == "odafs":
                # Stale references: the next optimistic read of these
                # blocks faults at the server NIC and retries via RPC.
                for i in range(min(fault_blocks, blocks)):
                    cluster.cache.invalidate(("micro", i))
            for i in range(blocks):
                start = cluster.sim.now
                yield from client.read("micro", i * block, block)
                meter.record(cluster.sim.now - start)

    proc = cluster.sim.process(main())
    sampler = None
    if sample_interval_us is not None:
        sampler = cluster.attach_sampler(interval_us=sample_interval_us)
        sampler.start(stop_on=proc)
    cluster.sim.run()
    if not proc.triggered:
        raise SimulationError(
            f"workload did not finish by t={cluster.sim.now}")
    if not proc.ok:
        raise proc.value
    return {"cluster": cluster, "tracer": tracer, "meter": meter,
            "sampler": sampler}


# ---------------------------------------------------------------------------
# Analysis
# ---------------------------------------------------------------------------

def path_mix(spans: Sequence[Span]) -> Dict[str, int]:
    """Count finished spans by the data path they took."""
    out: Dict[str, int] = {}
    for span in spans:
        out[span.path] = out.get(span.path, 0) + 1
    return out


def stage_tables(spans: Sequence[Span]) -> Dict[str, Dict[str, LatencyStats]]:
    """{path: {stage: LatencyStats of per-span stage time}}."""
    tables: Dict[str, Dict[str, LatencyStats]] = {}
    for span in spans:
        stages = tables.setdefault(span.path, {})
        for stage, us in span.breakdown().items():
            stats = stages.get(stage)
            if stats is None:
                stats = stages[stage] = LatencyStats(stage)
            stats.record(us)
    return tables


def span_sum_mean(spans: Sequence[Span]) -> float:
    """Mean of per-span stage sums (== mean duration by construction)."""
    if not spans:
        return 0.0
    return sum(sum(s.breakdown().values()) for s in spans) / len(spans)


def _sorted_paths(keys) -> List[str]:
    order = {p: i for i, p in enumerate(PATH_ORDER)}
    return sorted(keys, key=lambda p: (order.get(p, len(order)), p))


# ---------------------------------------------------------------------------
# Critical-path attribution: service time vs. queueing wait
# ---------------------------------------------------------------------------

def service_floors(spans: Sequence[Span]) -> Dict[Tuple[str, str], float]:
    """Estimated pure service time per (path, stage).

    Each mark interval is service time plus whatever queueing the request
    suffered in that stage; the *minimum* interval observed across all
    spans of the same path is the contention-free floor (some request got
    through without waiting), so anything above it is attributed to
    queueing. The same decomposition a production profiler applies when
    it subtracts the uncontended baseline from a stage's latency.
    """
    floors: Dict[Tuple[str, str], float] = {}
    for span in spans:
        for stage, _component, _start, dur in span.stages():
            key = (span.path, stage)
            if key not in floors or dur < floors[key]:
                floors[key] = dur
    return floors


class StageSplit:
    """Aggregated service/wait split for one (path, stage)."""

    __slots__ = ("stage", "floor", "occurrences", "service", "wait")

    def __init__(self, stage: str, floor: float):
        self.stage = stage
        self.floor = floor
        self.occurrences = 0
        self.service = LatencyStats(f"{stage}.service")
        self.wait = LatencyStats(f"{stage}.wait")


def critical_path(spans: Sequence[Span]
                  ) -> Dict[str, Dict[str, StageSplit]]:
    """{path: {stage: StageSplit}} with per-span service/wait samples.

    For every span, each stage's total time splits into ``floor ×
    occurrences`` of service and the remainder of queueing wait; the two
    per-stage sums reconcile with ``span.duration`` exactly by
    construction (verified by :func:`critical_path_consistency`).
    """
    floors = service_floors(spans)
    tables: Dict[str, Dict[str, StageSplit]] = {}
    for span in spans:
        splits = tables.setdefault(span.path, {})
        totals: Dict[str, Tuple[float, int]] = {}
        for stage, _component, _start, dur in span.stages():
            total, count = totals.get(stage, (0.0, 0))
            totals[stage] = (total + dur, count + 1)
        for stage, (total, count) in totals.items():
            split = splits.get(stage)
            if split is None:
                split = splits[stage] = StageSplit(
                    stage, floors[(span.path, stage)])
            service = split.floor * count
            split.occurrences += count
            split.service.record(service)
            split.wait.record(max(0.0, total - service))
    return tables


def critical_path_consistency(spans: Sequence[Span]) -> float:
    """Max absolute error |Σ stage (service+wait) − duration| over spans.

    The acceptance bar for the attribution: per-span sums must reconcile
    with the span's end-to-end duration within float tolerance.
    """
    floors = service_floors(spans)
    worst = 0.0
    for span in spans:
        totals: Dict[str, Tuple[float, int]] = {}
        for stage, _component, _start, dur in span.stages():
            total, count = totals.get(stage, (0.0, 0))
            totals[stage] = (total + dur, count + 1)
        attributed = 0.0
        for stage, (total, count) in totals.items():
            service = floors[(span.path, stage)] * count
            attributed += service + max(0.0, total - service)
        worst = max(worst, abs(attributed - span.duration))
    return worst


#: A sampler series is a utilization fraction (comparable across
#: resources) iff its name ends with one of these.
_UTIL_SUFFIXES = (".util", "_util")


def dominant_resources(spans: Sequence[Span],
                       series: Any) -> Dict[str, Tuple[str, float]]:
    """{path: (series name, mean util)} — the busiest utilization-type
    sampler series over each path's span time envelope. Empty without
    telemetry (e.g. ``--input`` mode)."""
    items = traceexport._series_items(series)
    candidates = [(name, points) for name, points in items
                  if name.endswith(_UTIL_SUFFIXES)]
    if not candidates:
        return {}
    envelopes: Dict[str, Tuple[float, float]] = {}
    for span in spans:
        t0, t1 = envelopes.get(span.path, (float("inf"), 0.0))
        envelopes[span.path] = (min(t0, span.start_ts),
                                max(t1, span.end_ts))
    out: Dict[str, Tuple[str, float]] = {}
    for path, (t0, t1) in envelopes.items():
        best: Optional[Tuple[str, float]] = None
        for name, points in candidates:
            mean = window_mean(points, t0, t1)
            if mean is None:
                continue
            if best is None or mean > best[1]:
                best = (name, mean)
        if best is not None:
            out[path] = best
    return out


def render_critical_path(
        tables: Dict[str, Dict[str, StageSplit]],
        dominant: Dict[str, Tuple[str, float]],
        consistency_us: float, n_spans: int,
        tolerance_us: float = 1e-6) -> Tuple[str, bool]:
    """The "where did p50/p95/p99 go" tables; returns (text, ok)."""
    lines: List[str] = []
    for path in _sorted_paths(tables):
        splits = tables[path]
        n = max(s.service.count for s in splits.values())
        header = f"path={path} ({n} spans)"
        resource = dominant.get(path)
        if resource is not None:
            header += (f"   dominant resource: {resource[0]} "
                       f"(mean util {resource[1]:.2f})")
        lines.append(header)
        lines.append(f"  {'stage':<16} {'count':>5} {'occ':>5} "
                     f"{'svc mean':>9} {'wait mean':>9} {'wait p50':>9} "
                     f"{'wait p95':>9} {'wait p99':>9} {'wait%':>6}")
        path_service = sum(s.service.mean * s.service.count
                           for s in splits.values()) / n
        path_wait = sum(s.wait.mean * s.wait.count
                        for s in splits.values()) / n
        path_total = path_service + path_wait
        for stage, split in sorted(
                splits.items(),
                key=lambda kv: -(kv[1].service.mean + kv[1].wait.mean)):
            share = (split.wait.mean * split.wait.count / n / path_total
                     if path_total else 0.0)
            lines.append(
                f"  {stage:<16} {split.service.count:>5} "
                f"{split.occurrences:>5} {split.service.mean:>9.2f} "
                f"{split.wait.mean:>9.2f} "
                f"{split.wait.percentile(50):>9.2f} "
                f"{split.wait.percentile(95):>9.2f} "
                f"{split.wait.percentile(99):>9.2f} {share:>6.1%}")
        service_share = path_service / path_total if path_total else 0.0
        lines.append(f"  per span: {path_total:.2f}us mean = "
                     f"{path_service:.2f}us service "
                     f"({service_share:.1%}) + {path_wait:.2f}us wait")
    ok = consistency_us <= tolerance_us
    lines.append(f"reconciliation: max |attributed - duration| = "
                 f"{consistency_us:.3e} us over {n_spans} spans "
                 + ("[OK]" if ok else "[MISMATCH]"))
    return "\n".join(lines), ok


def critical_path_json(
        tables: Dict[str, Dict[str, StageSplit]],
        dominant: Dict[str, Tuple[str, float]]) -> Dict[str, Any]:
    """JSON-friendly view of :func:`critical_path`."""
    out: Dict[str, Any] = {}
    for path, splits in tables.items():
        resource = dominant.get(path)
        out[path] = {
            "dominant_resource": resource[0] if resource else None,
            "dominant_util": resource[1] if resource else None,
            "stages": {
                stage: {
                    "count": split.service.count,
                    "occurrences": split.occurrences,
                    "service_floor_us": split.floor,
                    "service": split.service.summary(),
                    "wait": split.wait.summary(),
                }
                for stage, split in splits.items()
            },
        }
    return out


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------

def render_waterfall(span: Span) -> str:
    """ASCII waterfall of one span: per-stage bars on a shared time axis."""
    total = span.duration if span.finished else None
    if not total:
        return f"span #{span.rid} {span.op} (unfinished)"
    lines = [f"span #{span.rid} {span.op} origin={span.origin} "
             f"path={span.path} total={total:.2f}us"]
    for stage, component, start, dur in span.stages():
        rel = start - span.start_ts
        lead = int(round(rel / total * _WATERFALL_WIDTH))
        width = max(1, int(round(dur / total * _WATERFALL_WIDTH)))
        bar = " " * min(lead, _WATERFALL_WIDTH - 1) + "#" * width
        lines.append(f"  {rel:9.2f} {dur:8.2f}us  {stage:<16} "
                     f"{component:<12} {bar[:_WATERFALL_WIDTH + 8]}")
    return "\n".join(lines)


def render_stage_tables(
        tables: Dict[str, Dict[str, LatencyStats]]) -> str:
    """Per-path stage tables (count/mean/p50/p95/p99) plus a sum row."""
    lines: List[str] = []
    for path in _sorted_paths(tables):
        stages = tables[path]
        n = max(s.count for s in stages.values())
        lines.append(f"path={path} ({n} spans)")
        lines.append(f"  {'stage':<16} {'count':>5} {'mean':>9} "
                     f"{'p50':>9} {'p95':>9} {'p99':>9}")
        total_mean = 0.0
        for stage, stats in sorted(stages.items(),
                                   key=lambda kv: -kv[1].mean):
            total_mean += stats.mean * stats.count / n
            lines.append(
                f"  {stage:<16} {stats.count:>5} {stats.mean:>9.2f} "
                f"{stats.percentile(50):>9.2f} "
                f"{stats.percentile(95):>9.2f} "
                f"{stats.percentile(99):>9.2f}")
        lines.append(f"  {'(stage sum/span)':<16} {'':>5} "
                     f"{total_mean:>9.2f}us")
    return "\n".join(lines)


#: Event kinds that belong on the fault/recovery timeline: injected
#: faults ('fault', from repro.faults adapters) interleaved with the
#: resilience machinery's reactions to them.
FAULT_TIMELINE_KINDS = ("ordma-fault", "fault", "rpc-retransmit",
                        "rpc-timeout", "rdma-timeout")


def fault_timeline_events(events) -> List:
    """Chronological injected-fault and recovery events."""
    return [ev for ev in events if ev.kind in FAULT_TIMELINE_KINDS]


def render_fault_timeline(events) -> str:
    """Fault -> retry -> recovery timeline: ORDMA faults, injected
    faults, and the RPC/RDMA timeout and retransmission reactions."""
    faults = fault_timeline_events(events)
    if not faults:
        return "  (no faults)"
    lines = []
    for ev in faults:
        detail = ev.detail
        if ev.kind == "ordma-fault":
            what = (f"initiator={detail.get('initiator')} "
                    f"reason={detail.get('reason')!r}")
        elif ev.kind == "fault":
            rest = {k: v for k, v in detail.items()
                    if k not in ("cls", "mode")}
            what = (f"injected {detail.get('cls')}.{detail.get('mode')}"
                    + (f" {rest}" if rest else ""))
        elif ev.kind == "rpc-retransmit":
            what = (f"retransmit xid={detail.get('xid')} "
                    f"attempt={detail.get('attempt')} "
                    f"backoff={detail.get('backoff_us')}us")
        elif ev.kind == "rpc-timeout":
            what = (f"rpc gave up xid={detail.get('xid')} "
                    f"after {detail.get('attempts')} attempts")
        else:  # rdma-timeout
            what = (f"rdma {detail.get('op')} timeout "
                    f"msg={detail.get('msg')}")
        lines.append(f"  [{ev.ts:12.2f}us] {ev.component:<10} "
                     f"{ev.kind:<14} {what}")
    return "\n".join(lines)


def render_cache_summary(events,
                         cluster: Optional[Cluster] = None) -> str:
    """Client-cache event tallies, plus server-cache hit rate if live."""
    counts: Dict[str, int] = {}
    for ev in events:
        if ev.kind in ("cache-hit", "cache-miss", "cache-evict"):
            counts[ev.kind] = counts.get(ev.kind, 0) + 1
    hits = counts.get("cache-hit", 0)
    total = hits + counts.get("cache-miss", 0)
    lines = [f"  client cache events: {hits} hits, "
             f"{counts.get('cache-miss', 0)} misses, "
             f"{counts.get('cache-evict', 0)} evictions"
             + (f" (hit rate {hits / total:.1%})" if total else "")]
    if cluster is not None:
        server = cluster.metrics.subtree("server.cache")
        s_hits = server.get("server.cache.hits", 0)
        s_total = s_hits + server.get("server.cache.misses", 0)
        lines.append(f"  server cache: {s_hits} hits, "
                     f"{server.get('server.cache.misses', 0)} misses"
                     + (f" (hit rate {s_hits / s_total:.1%})"
                        if s_total else ""))
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------

def _select_waterfalls(spans: Sequence[Span], limit: int) -> List[Span]:
    """One exemplar per path first, longest-duration extras after."""
    chosen: List[Span] = []
    seen_paths = set()
    for span in spans:
        if span.path not in seen_paths:
            seen_paths.add(span.path)
            chosen.append(span)
    extras = sorted((s for s in spans if s not in chosen),
                    key=lambda s: -s.duration)
    chosen.extend(extras)
    return chosen[:max(0, limit)]


def main(argv=None) -> int:
    """Entry point for ``repro-bench trace``."""
    parser = argparse.ArgumentParser(
        prog="repro-bench trace",
        description="Analyze end-to-end request spans: waterfalls, "
                    "per-stage latency tables, fault timelines.")
    parser.add_argument("--input", metavar="PATH",
                        help="analyze a dumped JSONL trace instead of "
                             "running a workload")
    parser.add_argument("--system", default="odafs", choices=SYSTEMS,
                        help="NAS system for the live workload")
    parser.add_argument("--blocks", type=int, default=64,
                        help="blocks per pass in the live workload")
    parser.add_argument("--block-kb", type=int, default=4,
                        help="I/O size in KB")
    parser.add_argument("--passes", type=int, default=2,
                        help="number of read passes over the file")
    parser.add_argument("--dump", metavar="PATH",
                        help="also write the raw trace as JSONL")
    parser.add_argument("--perfetto", metavar="PATH",
                        help="export spans + events + telemetry as "
                             "Chrome/Perfetto Trace Event Format JSON")
    parser.add_argument("--timeseries", metavar="PATH",
                        help="also write the sampled time series as "
                             "JSONL (live mode)")
    parser.add_argument("--critical-path", action="store_true",
                        help="print the service-vs-queueing attribution "
                             "table per path class")
    parser.add_argument("--sample-interval", type=float, default=50.0,
                        metavar="US",
                        help="telemetry sampling interval in sim-us "
                             "(default 50)")
    parser.add_argument("--waterfalls", type=int, default=3,
                        help="how many span waterfalls to print")
    parser.add_argument("--quick", action="store_true",
                        help="smaller workload (16 blocks, 1+1 passes)")
    parser.add_argument("--seed", type=int, default=None,
                        help="master seed for the live workload's RNGs")
    parser.add_argument("--json", action="store_true",
                        help="emit the analysis as JSON")
    args = parser.parse_args(argv)
    params = (default_params().copy(seed=args.seed)
              if args.seed is not None else None)

    meter = None
    cluster = None
    sampler = None
    if args.input:
        try:
            dump = load_jsonl(args.input)
        except (OSError, ValueError) as exc:
            parser.error(f"cannot read --input trace: {exc}")
        events = dump.events
        spans = dump.finished_spans()
        source = f"{args.input} ({dump.emitted} emitted, "\
                 f"{dump.dropped} dropped)"
    else:
        blocks = 16 if args.quick else args.blocks
        # Telemetry rides along only when an output needs it, so the
        # default trace run stays event-for-event identical to the seed.
        want_sampler = bool(args.perfetto or args.timeseries
                            or args.critical_path)
        live = run_workload(system=args.system, blocks=blocks,
                            block_kb=args.block_kb, passes=args.passes,
                            params=params,
                            sample_interval_us=(args.sample_interval
                                                if want_sampler else None))
        cluster = live["cluster"]
        tracer = live["tracer"]
        meter = live["meter"]
        sampler = live["sampler"]
        if args.dump:
            tracer.dump_jsonl(args.dump)
        if args.timeseries and sampler is not None:
            sampler.dump_jsonl(args.timeseries)
        events = list(tracer)
        spans = tracer.finished_spans()
        source = (f"live {args.system}, {blocks}x{args.block_kb}KB reads "
                  f"x{args.passes} passes")

    if args.perfetto:
        traceexport.dump_perfetto(args.perfetto, events=events,
                                  spans=spans, series=sampler)

    read_spans = [s for s in spans if s.op == "read"]
    tables = stage_tables(read_spans)
    mix = path_mix(read_spans)

    cp_tables = cp_dominant = None
    cp_error = 0.0
    cp_ok = True
    if args.critical_path:
        cp_tables = critical_path(read_spans)
        cp_dominant = dominant_resources(read_spans, sampler)
        cp_error = critical_path_consistency(read_spans)
        cp_ok = cp_error <= 1e-6

    if args.json:
        out: Dict[str, Any] = {
            "source": source,
            "path_mix": mix,
            "stages": {path: {stage: stats.summary()
                              for stage, stats in stages.items()}
                       for path, stages in tables.items()},
            "faults": [ev.as_dict() for ev in fault_timeline_events(events)],
        }
        if meter is not None:
            out["meter_mean_us"] = meter.mean
            out["span_sum_mean_us"] = span_sum_mean(read_spans)
        if cp_tables is not None:
            out["critical_path"] = critical_path_json(cp_tables,
                                                      cp_dominant)
            out["critical_path_max_error_us"] = cp_error
        print(json.dumps(out, indent=2, default=str))
        return 0 if cp_ok else 1

    print(f"Trace analysis — {source}")
    print(f"\n== Path mix ({len(read_spans)} read spans) ==")
    for path in _sorted_paths(mix):
        print(f"  {path:<16} {mix[path]:>5}")

    print("\n== Per-stage latency by path (us) ==")
    print(render_stage_tables(tables))

    if cp_tables is not None:
        print("\n== Critical path: service vs queueing wait (us) ==")
        text, cp_ok = render_critical_path(cp_tables, cp_dominant,
                                           cp_error, len(read_spans))
        print(text)

    print("\n== Span waterfalls ==")
    for span in _select_waterfalls(read_spans, args.waterfalls):
        print(render_waterfall(span))

    print("\n== ORDMA fault timeline ==")
    print(render_fault_timeline(events))

    print("\n== Cache summary ==")
    print(render_cache_summary(events, cluster))

    if meter is not None and meter.count:
        spans_mean = span_sum_mean(read_spans)
        delta = abs(spans_mean - meter.mean) / meter.mean * 100.0
        print(f"\n== Consistency check ==")
        print(f"  meter mean response time : {meter.mean:10.2f} us "
              f"({meter.count} reads)")
        print(f"  span stage-sum mean      : {spans_mean:10.2f} us "
              f"({len(read_spans)} spans)")
        print(f"  delta                    : {delta:10.3f} %"
              + ("  [OK <1%]" if delta < 1.0 else "  [MISMATCH]"))
        if delta >= 1.0:
            return 1
    return 0 if cp_ok else 1


if __name__ == "__main__":
    sys.exit(main())
