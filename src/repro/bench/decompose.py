"""Overhead decomposition: fit the paper's Section 2.2 cost equation.

The paper models host communication overhead as
``o(m) = m * o_per_byte + o_per_I/O``. This tool measures client and
server CPU time per I/O across a sweep of transfer sizes for any system
and least-squares-fits the two coefficients, producing the per-byte and
per-I/O overhead decomposition the paper argues from:

* per-byte overhead is the copy cost RDDP eliminates (Fig. 3's story);
* per-I/O overhead is the RPC processing ORDMA eliminates (Fig. 7's).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..cluster import Cluster
from ..params import KB, Params, default_params

#: Transfer sizes used for the fit.
DEFAULT_SIZES_KB = (4, 16, 64, 256)


def measure_cpu_per_io(params: Params, system: str, block_kb: int,
                       n_ios: int = 128) -> Tuple[float, float]:
    """Mean client and server CPU microseconds per synchronous I/O."""
    block = block_kb * KB
    kwargs = {"cache_blocks": 0} if system in ("dafs", "odafs") else {}
    cluster = Cluster(params.copy(), system=system, block_size=block,
                      server_cache_blocks=n_ios + 8, client_kwargs=kwargs)
    cluster.create_file("probe", n_ios * block)
    client = cluster.clients[0]

    def main():
        yield from client.open("probe")
        # Warm the path, then measure.
        yield from client.read("probe", 0, block)
        cluster.reset_measurements()
        client_mark = cluster.client_hosts[0].cpu.busy.busy_us
        server_mark = cluster.server_host.cpu.busy.busy_us
        for i in range(1, n_ios):
            yield from client.read("probe", i * block, block)
        client_us = (cluster.client_hosts[0].cpu.busy.busy_us - client_mark)
        server_us = (cluster.server_host.cpu.busy.busy_us - server_mark)
        return client_us / (n_ios - 1), server_us / (n_ios - 1)

    return cluster.sim.run_process(main())


def fit_overhead(points: List[Tuple[int, float]]) -> Tuple[float, float]:
    """Least-squares fit of ``o(m) = m*o_byte + o_io``.

    ``points`` is [(bytes, microseconds)]. Returns (o_byte_us_per_kb,
    o_io_us). The per-byte coefficient is reported per KB for
    readability.
    """
    if len(points) < 2:
        raise ValueError("need at least two sizes to fit two coefficients")
    m = np.array([[float(size), 1.0] for size, _ in points])
    y = np.array([usec for _, usec in points])
    (o_byte, o_io), *_ = np.linalg.lstsq(m, y, rcond=None)
    return o_byte * 1024.0, max(0.0, o_io)


def decompose(params: Optional[Params] = None,
              systems: Iterable[str] = ("nfs", "nfs-prepost",
                                        "nfs-hybrid", "dafs"),
              sizes_kb: Iterable[int] = DEFAULT_SIZES_KB,
              n_ios: int = 96) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Full decomposition: {system: {side: {per_kb_us, per_io_us}}}."""
    params = params or default_params()
    out: Dict[str, Dict[str, Dict[str, float]]] = {}
    for system in systems:
        client_points: List[Tuple[int, float]] = []
        server_points: List[Tuple[int, float]] = []
        for size_kb in sizes_kb:
            client_us, server_us = measure_cpu_per_io(params, system,
                                                      size_kb, n_ios)
            client_points.append((size_kb * KB, client_us))
            server_points.append((size_kb * KB, server_us))
        c_byte, c_io = fit_overhead(client_points)
        s_byte, s_io = fit_overhead(server_points)
        out[system] = {
            "client": {"per_kb_us": c_byte, "per_io_us": c_io},
            "server": {"per_kb_us": s_byte, "per_io_us": s_io},
        }
    return out


def render(decomposition: Dict[str, Dict[str, Dict[str, float]]]) -> str:
    """Readable table of the fitted coefficients."""
    from .report import format_table
    rows = []
    for system, sides in decomposition.items():
        rows.append([
            system,
            f"{sides['client']['per_kb_us']:.3f}",
            f"{sides['client']['per_io_us']:.1f}",
            f"{sides['server']['per_kb_us']:.3f}",
            f"{sides['server']['per_io_us']:.1f}",
        ])
    return format_table(
        ["system", "client us/KB", "client us/IO",
         "server us/KB", "server us/IO"], rows)
