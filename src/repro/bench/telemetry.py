"""``repro-bench telemetry`` — ASCII sparkline timelines of sampled gauges.

Runs the trace CLI's small-I/O workload with the cluster's continuous
telemetry sampler attached and renders each recorded series as a compact
sparkline timeline — queue depths filling and draining, windowed CPU
utilization per category, cache hit rate converging — the same counter
tracks the Perfetto export carries, readable without leaving the
terminal.

With ``--systems a,b`` it becomes a comparison campaign instead: each
system runs as one point through the parallel campaign runner
(:func:`repro.bench.runner.run_points`), and the report tabulates mean
utilizations side by side — the Fig. 7 story ("the server CPU leaves the
data path under ODAFS") read directly off the ``server.cpu.util`` track.
Campaign points are pure functions of (system, seed), so results are
byte-identical for any ``--jobs`` count.

Examples::

    repro-bench telemetry                         # odafs timelines
    repro-bench telemetry --series server.cpu     # filter series
    repro-bench telemetry --systems nfs,odafs     # Fig. 7 comparison
    repro-bench telemetry --dump /tmp/ts.jsonl    # raw series JSONL
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..cluster import SYSTEMS
from ..params import default_params
from . import runner, tracecli

#: Sparkline glyph ramp, lowest to highest.
SPARK = "▁▂▃▄▅▆▇█"


# ---------------------------------------------------------------------------
# Sparklines
# ---------------------------------------------------------------------------


def resample(values: Sequence[float], width: int) -> List[float]:
    """Reduce ``values`` to at most ``width`` bucket means, preserving
    order. Fewer values than buckets pass through unchanged."""
    n = len(values)
    if n <= width:
        return list(values)
    out = []
    for i in range(width):
        lo = i * n // width
        hi = max(lo + 1, (i + 1) * n // width)
        bucket = values[lo:hi]
        out.append(sum(bucket) / len(bucket))
    return out


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """Render ``values`` as a fixed-width run of block glyphs, scaled to
    the series' own min..max (a flat series renders as the low glyph)."""
    if not values:
        return ""
    samples = resample(values, width)
    lo, hi = min(samples), max(samples)
    span = hi - lo
    if span <= 0:
        return SPARK[0] * len(samples)
    top = len(SPARK) - 1
    return "".join(SPARK[min(top, int((v - lo) / span * len(SPARK)))]
                   for v in samples)


def render_timelines(series: Dict[str, List[Tuple[float, float]]],
                     width: int = 60,
                     match: Optional[Sequence[str]] = None) -> str:
    """One line per series: name, sample count, min/mean/max, sparkline.

    ``match`` filters to series whose dotted name contains any of the
    given substrings (the CLI's ``--series`` option).
    """
    names = [name for name in series
             if not match or any(m in name for m in match)]
    if not names:
        return "  (no matching series)"
    name_w = max(len(name) for name in names)
    lines = []
    for name in names:
        values = [v for _ts, v in series[name]]
        if not values:
            lines.append(f"  {name:<{name_w}}  (no samples)")
            continue
        mean = sum(values) / len(values)
        lines.append(
            f"  {name:<{name_w}} n={len(values):>4} "
            f"min {min(values):>9.3f} mean {mean:>9.3f} "
            f"max {max(values):>9.3f}  {sparkline(values, width)}")
    return "\n".join(lines)


def series_summary(series: Dict[str, List[Tuple[float, float]]]
                   ) -> Dict[str, Dict[str, Any]]:
    """JSON-friendly per-series stats (count/min/mean/max/last)."""
    out: Dict[str, Dict[str, Any]] = {}
    for name, points in series.items():
        values = [v for _ts, v in points]
        if not values:
            out[name] = {"n": 0}
            continue
        out[name] = {
            "n": len(values), "min": min(values),
            "mean": sum(values) / len(values), "max": max(values),
            "last": values[-1],
        }
    return out


# ---------------------------------------------------------------------------
# Comparison campaign (module-level worker: must stay picklable)
# ---------------------------------------------------------------------------


def telemetry_point(system: str, blocks: int = 64, block_kb: int = 4,
                    passes: int = 2, interval_us: float = 50.0,
                    seed: Optional[int] = None) -> Tuple:
    """One campaign point spec: a tuple of primitives (picklable)."""
    return (system, blocks, block_kb, passes, interval_us, seed)


def run_telemetry_point(point: Tuple) -> Dict[str, Any]:
    """Campaign worker: run one sampled workload, return plain data.

    A pure function of the point spec — fresh cluster, seeded RNG streams
    — so :func:`repro.bench.runner.run_points` yields byte-identical
    results at any job count. The returned dict carries the serialized
    series (``jsonl``), whole-run means per series, and tick accounting;
    no live simulator objects cross the process boundary.
    """
    system, blocks, block_kb, passes, interval_us, seed = point
    params = (default_params().copy(seed=seed)
              if seed is not None else None)
    live = tracecli.run_workload(system=system, blocks=blocks,
                                 block_kb=block_kb, passes=passes,
                                 params=params,
                                 sample_interval_us=interval_us)
    sampler = live["sampler"]
    return {
        "system": system,
        "ticks": sampler.ticks,
        "dropped": sampler.dropped,
        "means": {name: series.mean()
                  for name, series in sampler.series.items()},
        "jsonl": sampler.to_jsonl(),
    }


def run_campaign(systems: Sequence[str], blocks: int = 64,
                 block_kb: int = 4, passes: int = 2,
                 interval_us: float = 50.0, seed: Optional[int] = None,
                 jobs: Optional[int] = None) -> List[Dict[str, Any]]:
    """Run one telemetry point per system, in point order."""
    points = [telemetry_point(system, blocks=blocks, block_kb=block_kb,
                              passes=passes, interval_us=interval_us,
                              seed=seed)
              for system in systems]
    return runner.run_points(run_telemetry_point, points, jobs=jobs)

#: Mean-utilization columns of the comparison table, in display order.
COMPARE_COLUMNS = ("server.cpu.util", "server.cpu.util.copy",
                   "client0.cpu.util", "net.server.tx_util")


def render_campaign(results: Sequence[Dict[str, Any]]) -> str:
    """Side-by-side mean utilizations per system, plus the Fig. 7 read:
    how far ODAFS drops the server CPU relative to the NFS data path."""
    lines = [f"  {'system':<12} {'ticks':>6} "
             + " ".join(f"{col:>20}" for col in COMPARE_COLUMNS)]
    for result in results:
        means = result["means"]
        cells = []
        for col in COMPARE_COLUMNS:
            value = means.get(col)
            cells.append(f"{value:>20.4f}" if value is not None
                         else f"{'-':>20}")
        lines.append(f"  {result['system']:<12} {result['ticks']:>6} "
                     + " ".join(cells))
    by_system = {r["system"]: r["means"] for r in results}
    nfs = by_system.get("nfs", {}).get("server.cpu.util")
    odafs = by_system.get("odafs", {}).get("server.cpu.util")
    if nfs and odafs is not None:
        lines.append(
            f"  server CPU out of the data path: odafs mean util "
            f"{odafs:.4f} vs nfs {nfs:.4f} "
            f"({(1 - odafs / nfs) * 100:.0f}% lower)")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def main(argv=None) -> int:
    """Entry point for ``repro-bench telemetry``."""
    parser = argparse.ArgumentParser(
        prog="repro-bench telemetry",
        description="Sample component gauges over a live workload and "
                    "render sparkline timelines, or compare mean "
                    "utilizations across systems (--systems).")
    parser.add_argument("--system", default="odafs", choices=SYSTEMS,
                        help="NAS system for the single-run timelines")
    parser.add_argument("--systems", metavar="A,B,...",
                        help="comparison campaign over these systems "
                             "instead of single-run timelines")
    parser.add_argument("--blocks", type=int, default=64,
                        help="blocks per pass in the workload")
    parser.add_argument("--block-kb", type=int, default=4,
                        help="I/O size in KB")
    parser.add_argument("--passes", type=int, default=2,
                        help="number of read passes over the file")
    parser.add_argument("--interval", type=float, default=50.0,
                        metavar="US", help="sampling interval in sim-us")
    parser.add_argument("--quick", action="store_true",
                        help="smaller workload (16 blocks)")
    parser.add_argument("--series", metavar="SUBSTR[,SUBSTR...]",
                        help="only show series whose name contains one "
                             "of these substrings")
    parser.add_argument("--width", type=int, default=60,
                        help="sparkline width in characters")
    parser.add_argument("--dump", metavar="PATH",
                        help="also write the sampled series as JSONL "
                             "(single-run mode)")
    # The shared campaign surface (--seed/--jobs/--json), registered
    # through the one common helper like every other campaign CLI.
    runner.add_campaign_args(
        parser, seed_help="master seed for every simulation RNG")
    args = parser.parse_args(argv)
    blocks = 16 if args.quick else args.blocks

    if args.systems:
        systems = [s.strip() for s in args.systems.split(",") if s.strip()]
        unknown = [s for s in systems if s not in SYSTEMS]
        if unknown:
            parser.error(f"unknown systems {unknown}; choose from "
                         f"{SYSTEMS}")
        results = run_campaign(systems, blocks=blocks,
                               block_kb=args.block_kb,
                               passes=args.passes,
                               interval_us=args.interval, seed=args.seed,
                               jobs=args.jobs)
        if args.json:
            print(json.dumps(
                {r["system"]: {"ticks": r["ticks"],
                               "means": r["means"]} for r in results},
                indent=2, default=str))
            return 0
        print(f"Telemetry campaign — {blocks}x{args.block_kb}KB reads "
              f"x{args.passes} passes, interval {args.interval:g}us "
              f"(mean of each utilization series over the whole run)")
        print(render_campaign(results))
        return 0

    live = tracecli.run_workload(system=args.system, blocks=blocks,
                                 block_kb=args.block_kb,
                                 passes=args.passes,
                                 params=(default_params().copy(
                                     seed=args.seed)
                                     if args.seed is not None else None),
                                 sample_interval_us=args.interval)
    sampler = live["sampler"]
    if args.dump:
        sampler.dump_jsonl(args.dump)
    series = {name: list(ts.points)
              for name, ts in sampler.series.items()}
    match = ([m.strip() for m in args.series.split(",") if m.strip()]
             if args.series else None)
    if args.json:
        summary = series_summary(series)
        if match:
            summary = {name: stats for name, stats in summary.items()
                       if any(m in name for m in match)}
        print(json.dumps({
            "system": args.system, "ticks": sampler.ticks,
            "interval_us": sampler.interval_us,
            "dropped": sampler.dropped, "series": summary,
        }, indent=2, default=str))
        return 0
    print(f"Telemetry — live {args.system}, {blocks}x{args.block_kb}KB "
          f"reads x{args.passes} passes, interval {args.interval:g}us: "
          f"{sampler.ticks} ticks, {len(series)} series"
          + (f", {sampler.dropped} dropped" if sampler.dropped else ""))
    print(render_timelines(series, width=args.width, match=match))
    return 0

if __name__ == "__main__":
    sys.exit(main())
