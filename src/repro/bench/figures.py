"""One entry point per evaluation table/figure (Section 5).

Each function builds fresh clusters, runs the paper's workload at a scaled
size (steady-state rates are size-independent; the scale factors are
documented in EXPERIMENTS.md), and returns structured results next to the
paper's published values where the paper prints them.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..cluster import Cluster
from ..hw.nic import NotifyMode
from ..params import KB, Params, default_params
from ..sim import LatencyStats
from ..workloads.bdb import BerkeleyDBJoinWorkload
from ..workloads.postmark import PostMarkWorkload
from ..workloads.sequential import SequentialReadWorkload
from ..workloads.smallio import MultiClientReadWorkload
from .runner import base_params, run_points

#: Fig. 3/4 application block sizes (KB), as in the paper.
FIG3_BLOCK_SIZES_KB = (4, 8, 16, 32, 64, 128, 256, 512)
#: Fig. 3 systems.
FIG3_SYSTEMS = ("nfs", "nfs-prepost", "nfs-hybrid", "dafs")
#: Fig. 7 cache block sizes (KB).
FIG7_BLOCK_SIZES_KB = (4, 8, 16, 32, 64)

#: Published anchor values for side-by-side reporting.
PAPER_FIG3_PLATEAU = {"nfs": 65.0, "nfs-prepost": 235.0,
                      "nfs-hybrid": 230.0, "dafs": 230.0}
PAPER_TABLE3 = {
    "rpc_inline": {"in_mem": 128.0, "in_cache": 153.0},
    "rpc_direct": {"in_mem": 144.0, "in_cache": 144.0},
    "ordma": {"in_mem": 92.0, "in_cache": 92.0},
}
PAPER_FIG6_GAIN = 0.34   # ODAFS ~34% over DAFS at every hit ratio
PAPER_FIG7_GAIN = 0.32   # ODAFS ~32% over polling DAFS at 4 KB


# ---------------------------------------------------------------------------
# Fig. 3 + Fig. 4: client read throughput and CPU utilization
# ---------------------------------------------------------------------------

def _fig3_point(spec) -> Dict[str, float]:
    """One (system, block size) cell of the Fig. 3/4 sweep."""
    system, block_kb, blocks_per_point, window = spec
    params = base_params()
    block = block_kb * KB
    cluster = Cluster(params.copy(), system=system,
                      block_size=block,
                      server_cache_blocks=blocks_per_point + 8,
                      client_kwargs=_streaming_client_kwargs(system))
    cluster.create_file("stream", blocks_per_point * block)
    workload = SequentialReadWorkload(
        cluster, "stream", blocks_per_point * block, block,
        window=window)
    out = workload.run()
    return {
        "throughput_mb_s": out["throughput_mb_s"],
        "client_cpu": out["client_cpu"],
    }


def fig3_fig4(params: Optional[Params] = None,
              systems: Iterable[str] = FIG3_SYSTEMS,
              block_sizes_kb: Iterable[int] = FIG3_BLOCK_SIZES_KB,
              blocks_per_point: int = 512,
              window: int = 16,
              jobs: Optional[int] = None
              ) -> Dict[str, Dict[int, Dict[str, float]]]:
    """Sequential read-ahead sweep over application block size.

    Returns {system: {block_kb: {throughput_mb_s, client_cpu}}}. The paper
    used a 1.5 GB file; we scale the file with the block size
    (``blocks_per_point`` blocks) since steady-state rates are
    size-independent. ``jobs`` fans the grid across a process pool; each
    point is seed-deterministic, so the result is identical for any job
    count.
    """
    params = params or default_params()
    systems = list(systems)
    block_sizes_kb = list(block_sizes_kb)
    specs = [(system, block_kb, blocks_per_point, window)
             for system in systems for block_kb in block_sizes_kb]
    cells = run_points(_fig3_point, specs, jobs=jobs, base=params,
                       cost=lambda s: s[1])  # bytes moved ~ block size
    results: Dict[str, Dict[int, Dict[str, float]]] = \
        {system: {} for system in systems}
    for (system, block_kb, _, _), cell in zip(specs, cells):
        results[system][block_kb] = cell
    return results


def _streaming_client_kwargs(system: str) -> Dict:
    if system in ("dafs", "odafs"):
        return {"cache_blocks": 0}  # Fig. 3 reads bypass the client cache
    return {}


# ---------------------------------------------------------------------------
# Fig. 5: Berkeley DB join throughput vs per-record copying
# ---------------------------------------------------------------------------

def _fig5_point(spec) -> float:
    """One (system, copied KB) cell of the Fig. 5 sweep."""
    system, copied_kb, n_records, window = spec
    params = base_params()
    io = BerkeleyDBJoinWorkload.IO_BYTES
    copy_bytes = min(copied_kb * KB, BerkeleyDBJoinWorkload.RECORD_BYTES)
    if copied_kb == 0:
        copy_bytes = 1
    cluster = Cluster(params.copy(), system=system, block_size=io,
                      server_cache_blocks=n_records + 8,
                      client_kwargs=_streaming_client_kwargs(system))
    cluster.create_file("db", n_records * io)
    workload = BerkeleyDBJoinWorkload(cluster, "db", n_records,
                                      copy_bytes, window=window)
    return workload.run()["throughput_mb_s"]


def fig5_berkeley_db(params: Optional[Params] = None,
                     systems: Iterable[str] = FIG3_SYSTEMS,
                     copy_points_kb: Iterable[int] = (0, 8, 16, 32, 64),
                     n_records: int = 256,
                     window: int = 8,
                     jobs: Optional[int] = None
                     ) -> Dict[str, Dict[int, float]]:
    """Returns {system: {copied_kb: throughput_mb_s}}.

    ``copied_kb=0`` copies one byte (the paper's minimum); 64 means the
    whole 60 KB record (the paper's axis tops at its record size).
    """
    params = params or default_params()
    systems = list(systems)
    copy_points_kb = list(copy_points_kb)
    specs = [(system, copied_kb, n_records, window)
             for system in systems for copied_kb in copy_points_kb]
    cells = run_points(_fig5_point, specs, jobs=jobs, base=params,
                       cost=lambda s: s[1])  # per-record copy bytes
    results: Dict[str, Dict[int, float]] = {system: {} for system in systems}
    for (system, copied_kb, _, _), cell in zip(specs, cells):
        results[system][copied_kb] = cell
    return results


# ---------------------------------------------------------------------------
# Table 3: 4 KB read response time
# ---------------------------------------------------------------------------

def _table3_point(spec) -> float:
    """One (system, rpc mode) microbenchmark of the Table 3 grid."""
    system, rpc_mode, n_blocks, measure_blocks = spec
    return _response_time(base_params(), system, rpc_mode, n_blocks,
                          measure_blocks)


def table3_response_time(params: Optional[Params] = None,
                         n_blocks: int = 1024,
                         measure_blocks: int = 512,
                         jobs: Optional[int] = None
                         ) -> Dict[str, Dict[str, float]]:
    """Response time of 4 KB reads by network I/O mechanism.

    The paper's microbenchmark reads a file warm in the server cache twice
    in 4 KB increments with a small, cold client cache; the second pass
    still misses the client cache but (for ORDMA) hits the reference
    directory. Reported: mean second-pass response time.
    """
    params = params or default_params()
    specs = [("dafs", "inline-mem", n_blocks, measure_blocks),
             ("dafs", "inline", n_blocks, measure_blocks),
             ("dafs", "direct", n_blocks, measure_blocks),
             ("odafs", "direct", n_blocks, measure_blocks)]
    inline_mem, inline, direct, ordma = \
        run_points(_table3_point, specs, jobs=jobs, base=params)
    return {
        "rpc_inline": {"in_mem": inline_mem, "in_cache": inline},
        "rpc_direct": {"in_mem": direct, "in_cache": direct},
        "ordma": {"in_mem": ordma, "in_cache": ordma},
    }


def _response_time(params: Params, system: str, rpc_mode: str,
                   n_blocks: int, measure_blocks: int) -> float:
    block = 4 * KB
    cluster = Cluster(params.copy(), system=system, block_size=block,
                      server_cache_blocks=n_blocks + 8,
                      client_kwargs={"cache_blocks": 8,
                                     "rpc_read_mode": rpc_mode})
    cluster.create_file("micro", n_blocks * block)
    client = cluster.clients[0]
    stats = LatencyStats()

    def main():
        yield from client.open("micro")
        for i in range(n_blocks):  # pass 1: cold, fills the directory
            yield from client.read("micro", i * block, block)
        for i in range(measure_blocks):  # pass 2: measured
            start = cluster.sim.now
            yield from client.read("micro", i * block, block)
            stats.record(cluster.sim.now - start)
        return stats.mean

    return cluster.sim.run_process(main())


# ---------------------------------------------------------------------------
# Fig. 6: PostMark throughput vs client cache hit ratio
# ---------------------------------------------------------------------------

def _fig6_point(spec) -> Dict[str, float]:
    """One (system, hit ratio) cell of the Fig. 6 sweep."""
    system, ratio, n_files, transactions = spec
    params = base_params()
    cache_blocks = max(1, int(n_files * ratio))
    cluster = Cluster(params.copy(), system=system,
                      block_size=4 * KB,
                      server_cache_blocks=n_files + 8,
                      client_kwargs={"cache_blocks": cache_blocks})
    workload = PostMarkWorkload(cluster, n_files=n_files,
                                transactions=transactions)
    workload.setup()
    out = workload.run()
    return {
        "txns_per_s": out["txns_per_s"],
        "server_cpu": out["server_cpu"],
        "hit_ratio": out.get("client_cache_hit_ratio", 0.0),
    }


def fig6_postmark(params: Optional[Params] = None,
                  hit_ratios: Iterable[float] = (0.25, 0.50, 0.75),
                  n_files: int = 512,
                  transactions: int = 4000,
                  jobs: Optional[int] = None
                  ) -> Dict[str, Dict[int, Dict[str, float]]]:
    """Returns {system: {hit_pct: {txns_per_s, server_cpu, hit_ratio}}}.

    The client cache hit ratio is controlled by sizing the client cache
    relative to the fixed file set, exactly as the paper varies it.
    """
    params = params or default_params()
    systems = ("dafs", "odafs")
    hit_ratios = list(hit_ratios)
    specs = [(system, ratio, n_files, transactions)
             for system in systems for ratio in hit_ratios]
    cells = run_points(_fig6_point, specs, jobs=jobs, base=params)
    results: Dict[str, Dict[int, Dict[str, float]]] = \
        {system: {} for system in systems}
    for (system, ratio, _, _), cell in zip(specs, cells):
        results[system][int(ratio * 100)] = cell
    return results


# ---------------------------------------------------------------------------
# Fig. 7: server throughput, two clients, small I/O
# ---------------------------------------------------------------------------

def _fig7_point(spec) -> Dict[str, float]:
    """One (system, cache block size) cell of the Fig. 7 sweep."""
    system, block_kb, blocks_per_file, mode_value, app_blocks = spec
    params = base_params()
    block = block_kb * KB
    file_size = blocks_per_file * block
    cluster = Cluster(params.copy(), system=system,
                      block_size=block, n_clients=2,
                      server_cache_blocks=blocks_per_file + 8,
                      server_notify_mode=NotifyMode(mode_value),
                      client_kwargs={"cache_blocks": 32})
    cluster.create_file("big", file_size)
    workload = MultiClientReadWorkload(
        cluster, "big", file_size, app_block_size=app_blocks * block)
    out = workload.run()
    return {
        "throughput_mb_s": out["throughput_mb_s"],
        "server_cpu": out["server_cpu"],
    }


def fig7_server_throughput(params: Optional[Params] = None,
                           block_sizes_kb: Iterable[int] = FIG7_BLOCK_SIZES_KB,
                           blocks_per_file: int = 768,
                           server_mode: NotifyMode = NotifyMode.BLOCK,
                           systems: Iterable[str] = ("dafs", "odafs"),
                           app_blocks: int = 8,
                           jobs: Optional[int] = None
                           ) -> Dict[str, Dict[int, Dict[str, float]]]:
    """Returns {system: {cache_block_kb: {throughput_mb_s, server_cpu}}}.

    Two clients read the same warm file twice; throughput is measured over
    the second pass. ``server_mode`` selects interrupt- vs polling-driven
    DAFS service (the paper reports both at 4 KB).
    """
    params = params or default_params()
    systems = list(systems)
    block_sizes_kb = list(block_sizes_kb)
    specs = [(system, block_kb, blocks_per_file,
              server_mode.value, app_blocks)
             for system in systems for block_kb in block_sizes_kb]
    cells = run_points(_fig7_point, specs, jobs=jobs, base=params,
                       cost=lambda s: s[1])  # cache block size
    results: Dict[str, Dict[int, Dict[str, float]]] = \
        {system: {} for system in systems}
    for (system, block_kb, _, _, _), cell in zip(specs, cells):
        results[system][block_kb] = cell
    return results
