"""Ablations of the design choices the paper calls out.

Each function isolates one knob discussed in the paper and returns a
structured comparison:

* interrupts vs polling at the DAFS server (Section 5.2);
* ORDMA success rate — server cache hit rate sweep (Section 4.2.2);
* LRU vs Multi-Queue ORDMA directory replacement (Section 4.2);
* registration caching vs per-I/O registration (Section 3 / 5.1);
* NIC TLB size and miss penalty (Sections 4.1 / 4.2.2);
* batch I/O amortization of the client's per-I/O RPC cost (Section 2.2);
* capability verification cost (Section 4 — implemented here although the
  paper's prototype omitted capabilities).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from ..cluster import Cluster
from ..hw.nic import NotifyMode
from ..params import KB, Params, default_params
from ..sim import LatencyStats
from ..workloads.postmark import PostMarkWorkload
from ..workloads.smallio import MultiClientReadWorkload
from .figures import _response_time


def ablation_polling(params: Optional[Params] = None,
                     blocks_per_file: int = 512) -> Dict[str, Dict[str, float]]:
    """DAFS server notification mode at 4 KB blocks (Fig. 7 text)."""
    params = params or default_params()
    out: Dict[str, Dict[str, float]] = {}
    for label, mode in [("interrupts", NotifyMode.BLOCK),
                        ("polling", NotifyMode.POLL)]:
        block = 4 * KB
        file_size = blocks_per_file * block
        results = {}
        for system in ("dafs", "odafs"):
            cluster = Cluster(params.copy(), system=system, block_size=block,
                              n_clients=2,
                              server_cache_blocks=blocks_per_file + 8,
                              server_notify_mode=mode,
                              client_kwargs={"cache_blocks": 32})
            cluster.create_file("big", file_size)
            workload = MultiClientReadWorkload(cluster, "big", file_size,
                                               app_block_size=8 * block)
            results[system] = workload.run()["throughput_mb_s"]
        out[label] = {
            "dafs_mb_s": results["dafs"],
            "odafs_mb_s": results["odafs"],
            "odafs_gain": results["odafs"] / results["dafs"] - 1.0,
        }
    return out


def ablation_ordma_hit_rate(params: Optional[Params] = None,
                            server_cache_fractions: Iterable[float] =
                            (1.0, 0.5, 0.25, 0.1),
                            n_files: int = 256,
                            transactions: int = 1200
                            ) -> Dict[float, Dict[str, float]]:
    """Shrink the server cache below the file set: ORDMA faults rise and
    the ODAFS advantage collapses into disk latency (Section 4.2.2)."""
    params = params or default_params()
    out: Dict[float, Dict[str, float]] = {}
    for fraction in server_cache_fractions:
        cache_blocks = max(4, int(n_files * fraction))
        per_system = {}
        faults = ordma_reads = 0
        for system in ("dafs", "odafs"):
            cluster = Cluster(params.copy(), system=system,
                              block_size=4 * KB,
                              server_cache_blocks=cache_blocks,
                              client_kwargs={"cache_blocks":
                                             max(1, n_files // 8)})
            workload = PostMarkWorkload(cluster, n_files=n_files,
                                        transactions=transactions)
            workload.setup()
            result = workload.run()
            per_system[system] = result["txns_per_s"]
            if system == "odafs":
                client = cluster.clients[0]
                faults = client.stats.get("ordma_faults")
                ordma_reads = client.stats.get("ordma_reads")
        total = faults + ordma_reads
        out[fraction] = {
            "dafs_txns_s": per_system["dafs"],
            "odafs_txns_s": per_system["odafs"],
            "odafs_gain": per_system["odafs"] / per_system["dafs"] - 1.0,
            "ordma_fault_rate": faults / total if total else 0.0,
        }
    return out


def ablation_directory_policy(params: Optional[Params] = None,
                              n_files: int = 512,
                              directory_fraction: float = 0.2,
                              transactions: int = 3000
                              ) -> Dict[str, Dict[str, float]]:
    """LRU vs Multi-Queue directory replacement under a hot/cold mix.

    The access stream is 80% over a hot eighth of the files and 20%
    scans — the pattern MQ is designed for (Section 4.2's suggestion).
    The directory holds only ``directory_fraction`` of the file set.
    """
    params = params or default_params()
    out: Dict[str, Dict[str, float]] = {}
    directory_capacity = max(8, int(n_files * directory_fraction))
    for policy in ("lru", "mq"):
        cluster = Cluster(params.copy(), system="odafs", block_size=4 * KB,
                          server_cache_blocks=n_files + 8,
                          client_kwargs={
                              "cache_blocks": max(1, n_files // 16),
                              "directory_capacity": directory_capacity,
                              "directory_policy": policy,
                          })
        workload = _HotColdPostMark(cluster, n_files=n_files,
                                    transactions=transactions)
        workload.setup()
        result = workload.run()
        client = cluster.clients[0]
        out[policy] = {
            "txns_per_s": result["txns_per_s"],
            "directory_hit_ratio": client.directory.hit_ratio(),
            "ordma_reads": client.stats.get("ordma_reads"),
            "rpc_fills": client.stats.get("rpc_fills"),
        }
    return out


class _HotColdPostMark(PostMarkWorkload):
    """PostMark with an 80/20 hot-set access skew plus periodic scans."""

    HOT_FRACTION = 0.125
    HOT_PROBABILITY = 0.8

    def _pick(self) -> int:
        hot = max(1, int(self.n_files * self.HOT_FRACTION))
        if self.rng.random() < self.HOT_PROBABILITY:
            return self.rng.randrange(hot)
        return self.rng.randrange(self.n_files)

    def _one_transaction(self, client, warming, index):
        if warming:
            result = yield from super()._one_transaction(client, warming,
                                                         index)
            return result
        name = self._name(self._pick())
        proto = client.host.params.proto
        yield from client.host.cpu.execute(proto.app_txn_us, category="app")
        yield from client.open(name)
        yield from client.read(name, 0, self.file_size)
        yield from client.close(name)
        return "read"


def ablation_registration_cache(params: Optional[Params] = None,
                                blocks: int = 384,
                                block_kb: int = 64
                                ) -> Dict[str, Dict[str, float]]:
    """NFS hybrid with and without registration caching (Section 3)."""
    from ..workloads.sequential import SequentialReadWorkload
    params = params or default_params()
    out: Dict[str, Dict[str, float]] = {}
    for label, cached in [("cached", True), ("per_io", False)]:
        block = block_kb * KB
        cluster = Cluster(params.copy(), system="nfs-hybrid",
                          block_size=block,
                          server_cache_blocks=blocks + 8,
                          client_kwargs={"cache_registrations": cached})
        cluster.create_file("stream", blocks * block)
        workload = SequentialReadWorkload(cluster, "stream", blocks * block,
                                          block, window=16)
        result = workload.run()
        out[label] = {
            "throughput_mb_s": result["throughput_mb_s"],
            "client_cpu": result["client_cpu"],
        }
    return out


def ablation_nic_tlb(params: Optional[Params] = None,
                     tlb_sizes: Iterable[int] = (1 << 20, 512, 128, 32),
                     n_blocks: int = 256,
                     miss_penalty_us: float = 200.0
                     ) -> Dict[int, Dict[str, float]]:
    """ORDMA response time as the NIC TLB shrinks (Section 4.2.2).

    Uses a reduced miss penalty (``miss_penalty_us``) representing the
    NIC improvements the paper anticipates (big TLBs, memory-bus NICs);
    the prototype's 9 ms penalty simply multiplies the same curve.
    """
    params = params or default_params()
    out: Dict[int, Dict[str, float]] = {}
    for entries in tlb_sizes:
        p = params.copy()
        p.nic.tlb_entries = entries
        p.nic.tlb_miss_ordma_us = miss_penalty_us
        block = 4 * KB
        cluster = Cluster(p, system="odafs", block_size=block,
                          server_cache_blocks=n_blocks + 8,
                          server_preload_tlb=False,
                          client_kwargs={"cache_blocks": 8})
        cluster.create_file("micro", n_blocks * block)
        client = cluster.clients[0]
        stats = LatencyStats()
        rng = cluster.rand.stream("tlb-ablation")
        order = list(range(n_blocks))
        rng.shuffle(order)

        def main():
            yield from client.open("micro")
            for i in range(n_blocks):  # pass 1: RPC fills the directory
                yield from client.read("micro", i * block, block)
            for i in range(n_blocks):  # pass 2: ORDMA warms the NIC TLB
                yield from client.read("micro", i * block, block)
            tlb = cluster.server_host.nic.tlb
            tlb.hits = tlb.misses = 0
            for i in order:  # pass 3 (random): measured
                start = cluster.sim.now
                yield from client.read("micro", i * block, block)
                stats.record(cluster.sim.now - start)
            return stats.mean

        mean = cluster.sim.run_process(main())
        tlb = cluster.server_host.nic.tlb
        out[entries] = {
            "mean_response_us": mean,
            "tlb_hit_rate": tlb.hit_rate,
        }
    return out


def ablation_batch_io(params: Optional[Params] = None,
                      batch_sizes: Iterable[int] = (1, 4, 16),
                      total_reads: int = 256
                      ) -> Dict[int, Dict[str, float]]:
    """Batch I/O: client CPU per I/O falls as the RPC is amortized."""
    params = params or default_params()
    out: Dict[int, Dict[str, float]] = {}
    block = 4 * KB
    for batch in batch_sizes:
        cluster = Cluster(params.copy(), system="dafs", block_size=block,
                          server_cache_blocks=total_reads + 8,
                          client_kwargs={"cache_blocks": 0})
        cluster.create_file("f", total_reads * block)
        client = cluster.clients[0]

        def main():
            buffers = [client.host.mem.alloc(block) for _ in range(batch)]
            client.host.cpu.reset_measurement()
            start = cluster.sim.now
            for group in range(total_reads // batch):
                extents = [((group * batch + j) * block, block, buffers[j])
                           for j in range(batch)]
                if batch == 1:
                    yield from client.read_direct("f", extents[0][0], block,
                                                  buffers[0])
                else:
                    yield from client.read_batch("f", extents)
            elapsed = cluster.sim.now - start
            busy = client.host.cpu.busy.busy_us
            return {"client_us_per_io": busy / total_reads,
                    "elapsed_us_per_io": elapsed / total_reads}

        out[batch] = cluster.sim.run_process(main())
    return out


def ablation_eager_vs_lazy_refs(params: Optional[Params] = None,
                                n_blocks: int = 256
                                ) -> Dict[str, Dict[str, float]]:
    """Eager vs lazy ORDMA directory building (Section 4.2 principle (a):
    "directories can be built either eagerly when clients ask the server
    for memory references, or lazily when the server piggybacks").

    Measures one cold pass over a warm file: the lazy client pays a full
    RPC per block the first time; the eager client fetches every
    reference in one RPC up front and runs the pass over ORDMA.
    """
    params = params or default_params()
    out: Dict[str, Dict[str, float]] = {}
    for strategy in ("lazy", "eager"):
        block = 4 * KB
        cluster = Cluster(params.copy(), system="odafs", block_size=block,
                          server_cache_blocks=n_blocks + 8,
                          client_kwargs={"cache_blocks": 8})
        cluster.create_file("f", n_blocks * block)
        client = cluster.clients[0]

        def main():
            yield from client.open("f")
            if strategy == "eager":
                yield from client.prefetch_refs("f")
            start = cluster.sim.now
            for i in range(n_blocks):
                yield from client.read("f", i * block, block)
            elapsed = cluster.sim.now - start
            return {
                "first_pass_us_per_read": elapsed / n_blocks,
                "ordma_reads": client.stats.get("ordma_reads"),
                "rpc_fills": client.stats.get("rpc_fills"),
                "server_cpu_us_per_read":
                    cluster.server_host.cpu.busy.busy_us / n_blocks,
            }

        out[strategy] = cluster.sim.run_process(main())
    return out


def ablation_overhead_sensitivity(params: Optional[Params] = None,
                                  scales: Iterable[float] = (0.5, 1.0,
                                                             2.0, 4.0),
                                  n_clients: int = 2,
                                  ops_per_client: int = 400
                                  ) -> Dict[str, Dict[float, float]]:
    """SFS-mix server throughput sensitivity to each overhead component.

    Reproduces Martin & Culler's qualitative result the paper cites
    (Section 2.3): scale one overhead knob at a time — per-I/O host CPU
    cost, network latency, link bandwidth — and measure delivered NFS
    operation throughput. Throughput should be far more sensitive to host
    CPU overhead than to latency or (at this message size) bandwidth.
    Returns {knob: {scale: ops_per_s}}.
    """
    from ..workloads.sfs import SFSWorkload

    params = params or default_params()

    def run(p: Params) -> float:
        cluster = Cluster(p, system="nfs", block_size=4 * KB,
                          server_cache_blocks=512, n_clients=n_clients)
        workload = SFSWorkload(cluster, ops_per_client=ops_per_client)
        workload.setup()
        return workload.run()["ops_per_s"]

    out: Dict[str, Dict[float, float]] = {
        "cpu_overhead": {}, "latency": {}, "bandwidth": {},
    }
    for scale in scales:
        p = params.copy()
        p.proto.fs_op_us *= scale
        p.proto.udp_frag_us *= scale
        p.proto.rpc_marshal_us *= scale
        p.host.interrupt_us *= scale
        p.host.wakeup_us *= scale
        out["cpu_overhead"][scale] = run(p)

        p = params.copy()
        p.net.switch_us *= scale
        p.net.propagation_us *= scale
        out["latency"][scale] = run(p)

        p = params.copy()
        p.net.link_bw /= scale  # scale>1 means *less* bandwidth
        out["bandwidth"][scale] = run(p)
    return out


def ablation_memory_pressure(params: Optional[Params] = None,
                             reclaim_intervals_us: Iterable[float] =
                             (0.0, 50_000.0, 10_000.0, 2_000.0),
                             n_files: int = 256,
                             transactions: int = 1200
                             ) -> Dict[float, Dict[str, float]]:
    """ODAFS under server VM pressure: a reclaim daemon invalidates cold
    exported blocks, so cached references go stale and ORDMA faults rise
    (Section 4.2.1's consistency loop, exercised dynamically).

    ``0.0`` means no pressure. Reclaimed blocks are re-fetched from disk,
    so heavy pressure degrades everything; the interesting signal is the
    rising fault rate with all data still delivered correctly.
    """
    from ..nas.server.vm_pressure import MemoryPressure

    params = params or default_params()
    out: Dict[float, Dict[str, float]] = {}
    for interval in reclaim_intervals_us:
        cluster = Cluster(params.copy(), system="odafs", block_size=4 * KB,
                          server_cache_blocks=n_files + 8,
                          client_kwargs={"cache_blocks":
                                         max(1, n_files // 4)})
        workload = PostMarkWorkload(cluster, n_files=n_files,
                                    transactions=transactions)
        workload.setup()
        proc = cluster.sim.process(workload._main())
        daemon = None
        if interval > 0:
            daemon = MemoryPressure(cluster.sim, cluster.cache,
                                    interval_us=interval,
                                    rng=cluster.rand.stream("pressure"))
            daemon.start(stop_on=proc)
        cluster.sim.run()
        result = proc.value
        client = cluster.clients[0]
        faults = client.stats.get("ordma_faults")
        ordma = client.stats.get("ordma_reads")
        total = faults + ordma
        out[interval] = {
            "txns_per_s": result["txns_per_s"],
            "ordma_fault_rate": faults / total if total else 0.0,
            "reclaimed": (daemon.stats.get("reclaimed")
                          if daemon is not None else 0),
        }
    return out


def ablation_client_scaling(params: Optional[Params] = None,
                            client_counts: Iterable[int] = (1, 2, 3),
                            blocks_per_file: int = 384
                            ) -> Dict[str, Dict[int, Dict[str, float]]]:
    """Server throughput and per-read latency as clients are added.

    The paper's motivation for reducing server per-I/O overhead: "servers
    receive I/O load from multiple clients" (Section 2.2), and a loaded
    server adds queueing delay to response time (Section 2.3). DAFS
    saturates the server CPU and queues; ODAFS scales to the link.
    """
    from ..workloads.smallio import MultiClientReadWorkload

    params = params or default_params()
    block = 4 * KB
    out: Dict[str, Dict[int, Dict[str, float]]] = {}
    for system in ("dafs", "odafs"):
        out[system] = {}
        for n in client_counts:
            file_size = blocks_per_file * block
            cluster = Cluster(params.copy(), system=system,
                              block_size=block, n_clients=n,
                              server_cache_blocks=blocks_per_file + 8,
                              client_kwargs={"cache_blocks": 32})
            cluster.create_file("big", file_size)
            workload = MultiClientReadWorkload(cluster, "big", file_size,
                                               app_block_size=8 * block)
            result = workload.run()
            reads_per_client = blocks_per_file // 8
            elapsed = n * file_size / result["throughput_mb_s"]
            out[system][n] = {
                "throughput_mb_s": result["throughput_mb_s"],
                "server_cpu": result["server_cpu"],
                # Mean app-read completion time seen by one client: every
                # client runs for the whole measured pass, issuing
                # reads_per_client synchronous app reads (queueing delay
                # at a loaded server shows up here — Section 2.3).
                "mean_read_us": elapsed / reads_per_client,
            }
    return out


def ablation_read_write_mix(params: Optional[Params] = None,
                            read_ratios: Iterable[float] =
                            (1.0, 0.9, 0.7, 0.5),
                            n_files: int = 256,
                            transactions: int = 1500
                            ) -> Dict[float, Dict[str, float]]:
    """ODAFS gain vs read/write mix.

    Writes require server CPU regardless of ORDMA (metadata updates,
    block status — Section 4.2.2 lists "small read-write ratio" as an
    ODAFS limitation), so the gain shrinks as writes grow.
    """
    params = params or default_params()
    out: Dict[float, Dict[str, float]] = {}
    for ratio in read_ratios:
        per_system = {}
        for system in ("dafs", "odafs"):
            cluster = Cluster(params.copy(), system=system,
                              block_size=4 * KB,
                              server_cache_blocks=n_files + 8,
                              client_kwargs={"cache_blocks":
                                             max(1, n_files // 4)})
            workload = PostMarkWorkload(cluster, n_files=n_files,
                                        transactions=transactions,
                                        read_ratio=ratio)
            workload.setup()
            per_system[system] = workload.run()
        out[ratio] = {
            "dafs_txns_s": per_system["dafs"]["txns_per_s"],
            "odafs_txns_s": per_system["odafs"]["txns_per_s"],
            "odafs_gain": (per_system["odafs"]["txns_per_s"]
                           / per_system["dafs"]["txns_per_s"] - 1.0),
            "odafs_server_cpu": per_system["odafs"]["server_cpu"],
        }
    return out


def ablation_tcp_transport(params: Optional[Params] = None,
                           blocks: int = 192,
                           block_kb: int = 64
                           ) -> Dict[str, Dict[str, float]]:
    """NFS over UDP vs over host-resident TCP (Section 5's justification
    for UDP: TCP's per-segment stateful processing costs more than the
    offloaded-UDP configuration).

    Both runs use the standard copy-through-the-buffer-cache NFS client;
    only the transport differs.
    """
    from ..fs.disk import Disk
    from ..fs.files import FileSystem
    from ..hw.host import Host
    from ..nas.client.nfs import NFSClient
    from ..nas.server.filecache import ServerFileCache
    from ..nas.server.server import BaseFileServer
    from ..net.link import Switch
    from ..proto.tcp import TCPStack
    from ..sim import Simulator
    from ..workloads.sequential import SequentialReadWorkload

    params = params or default_params()
    block = block_kb * KB
    out: Dict[str, Dict[str, float]] = {}

    # --- UDP (the testbed configuration) -------------------------------
    cluster = Cluster(params.copy(), system="nfs", block_size=block,
                      server_cache_blocks=blocks + 8)
    cluster.create_file("stream", blocks * block)
    result = SequentialReadWorkload(cluster, "stream", blocks * block,
                                    block, window=16).run()
    out["udp"] = {"throughput_mb_s": result["throughput_mb_s"],
                  "client_cpu": result["client_cpu"]}

    # --- TCP ------------------------------------------------------------
    p = params.copy()
    sim = Simulator()
    switch = Switch(sim, p.net)
    server_host = Host(sim, p, switch, "server")
    client_host = Host(sim, p, switch, "client0")
    server_stack = TCPStack(server_host)
    client_stack = TCPStack(client_host)
    listener = server_stack.listen(2049)
    conns = {}

    def dial():
        conns["client"] = yield from client_stack.connect("server", 2049)

    def serve():
        conns["server"] = yield from listener.accept()

    sim.process(dial())
    sim.process(serve())
    sim.run()

    fs = FileSystem(block)
    disk = Disk(sim, p.storage)
    cache = ServerFileCache(server_host, block, blocks + 8)
    server = BaseFileServer(server_host, fs, disk, cache,
                            conns["server"], name="nfs-tcp")
    server.start()
    fs.create("stream", blocks * block)
    server.warm("stream")
    client = NFSClient(client_host, "server", transport=conns["client"])

    class _Shim:
        """Minimal cluster facade for the workload driver."""

        def __init__(self):
            self.sim = sim
            self.clients = [client]
            self.client_hosts = [client_host]
            self.server_host = server_host

        def reset_measurements(self):
            server_host.cpu.reset_measurement()
            client_host.cpu.reset_measurement()

        def client_cpu_utilization(self, index=0):
            return client_host.cpu.utilization()

        def server_cpu_utilization(self):
            return server_host.cpu.utilization()

    result = SequentialReadWorkload(_Shim(), "stream", blocks * block,
                                    block, window=16).run()
    out["tcp"] = {"throughput_mb_s": result["throughput_mb_s"],
                  "client_cpu": result["client_cpu"]}
    return out


def ablation_capabilities(params: Optional[Params] = None,
                          n_blocks: int = 256) -> Dict[str, float]:
    """ORDMA response time with and without capability checks."""
    params = params or default_params()
    with_caps = _ordma_latency(params, use_capabilities=True,
                               n_blocks=n_blocks)
    without = _ordma_latency(params, use_capabilities=False,
                             n_blocks=n_blocks)
    return {"with_capabilities_us": with_caps,
            "without_capabilities_us": without,
            "overhead_us": with_caps - without}


def _ordma_latency(params: Params, use_capabilities: bool,
                   n_blocks: int) -> float:
    block = 4 * KB
    cluster = Cluster(params.copy(), system="odafs", block_size=block,
                      server_cache_blocks=n_blocks + 8,
                      use_capabilities=use_capabilities,
                      client_kwargs={"cache_blocks": 8})
    cluster.create_file("micro", n_blocks * block)
    client = cluster.clients[0]
    stats = LatencyStats()

    def main():
        yield from client.open("micro")
        for i in range(n_blocks):
            yield from client.read("micro", i * block, block)
        for i in range(n_blocks):
            start = cluster.sim.now
            yield from client.read("micro", i * block, block)
            stats.record(cluster.sim.now - start)
        return stats.mean

    return cluster.sim.run_process(main())


# ---------------------------------------------------------------------------
# Study registry: every ablation as a named, independently runnable point
# ---------------------------------------------------------------------------

#: name -> (function, quick kwargs, full kwargs). The kwargs mirror what
#: ``repro-bench ablations [--quick]`` has always used; keeping them here
#: lets the CLI, the parallel runner, and tests share one source of truth.
STUDIES = {
    "polling": (ablation_polling,
                {"blocks_per_file": 256}, {"blocks_per_file": 512}),
    "ordma_hit_rate": (ablation_ordma_hit_rate,
                       {"transactions": 600}, {"transactions": 1200}),
    "directory_policy": (ablation_directory_policy,
                         {"transactions": 1200}, {"transactions": 3000}),
    "registration_cache": (ablation_registration_cache,
                           {"blocks": 192}, {"blocks": 384}),
    "nic_tlb": (ablation_nic_tlb, {"n_blocks": 128}, {"n_blocks": 256}),
    "batch_io": (ablation_batch_io,
                 {"total_reads": 128}, {"total_reads": 256}),
    "overhead_sensitivity": (ablation_overhead_sensitivity,
                             {"ops_per_client": 200},
                             {"ops_per_client": 400}),
    "memory_pressure": (ablation_memory_pressure,
                        {"transactions": 600, "n_files": 128},
                        {"transactions": 1200, "n_files": 256}),
    "client_scaling": (ablation_client_scaling,
                       {"blocks_per_file": 192}, {"blocks_per_file": 384}),
    "read_write_mix": (ablation_read_write_mix,
                       {"transactions": 800, "n_files": 128},
                       {"transactions": 1500, "n_files": 256}),
    "tcp_transport": (ablation_tcp_transport,
                      {"blocks": 96}, {"blocks": 192}),
    "eager_vs_lazy_refs": (ablation_eager_vs_lazy_refs,
                           {"n_blocks": 128}, {"n_blocks": 256}),
    "capabilities": (ablation_capabilities,
                     {"n_blocks": 128}, {"n_blocks": 256}),
}


def _run_study(spec):
    """One study, shaped for :func:`repro.bench.runner.run_points`."""
    from .runner import base_params

    name, quick = spec
    fn, quick_kwargs, full_kwargs = STUDIES[name]
    return fn(params=base_params(),
              **(quick_kwargs if quick else full_kwargs))


def collect(params: Optional[Params] = None, quick: bool = False,
            jobs: Optional[int] = None,
            studies: Optional[Iterable[str]] = None) -> Dict[str, dict]:
    """Run the named ``studies`` (default: all), optionally in parallel.

    Returns {study name: study result} in registry order. Each study
    builds its own clusters from ``params``, so the fan-out changes
    nothing about the numbers — only the wall-clock.
    """
    from .runner import run_points

    names = list(studies) if studies is not None else list(STUDIES)
    for name in names:
        if name not in STUDIES:
            raise ValueError(f"unknown study {name!r}; "
                             f"one of {sorted(STUDIES)}")
    base = params if params is not None else default_params()
    results = run_points(_run_study, [(n, quick) for n in names],
                         jobs=jobs, base=base)
    return dict(zip(names, results))
