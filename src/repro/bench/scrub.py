"""``repro-bench scrub`` — end-to-end integrity under silent corruption.

The chaos campaign injects *detected* faults: dropped frames, timeouts,
crashes — failures the transport sees and recovers from. This campaign
injects the faults nothing sees: disk bit rot on the fill path and
in-flight ORDMA payload corruption, both of which complete successfully
and hand wrong bytes to the reader. The sweep runs every (system,
corruption rate) point twice — ``params.integrity`` off and on — and
reports the contrast the checksums exist to create:

* checksums **off**: corrupt blocks flow to the application undetected
  (``corrupt_reads`` counts them via the campaign-side oracle);
* checksums **on**: every corrupt block a reader consumes is detected
  (at the server for RPC reads, at the *client* for ORDMA reads) and
  repaired by re-read where possible, at a measured throughput cost.

Two scenario points ride along: a **scrubber** point (misdirected writes
leave silently-wrong resident blocks; the background scrubber finds and
repairs them during idle time with no reader involved) and a sharded
**read-repair** point (one server's disk rots every fill, so its reads
quarantine and fail typed; the router reroutes to the replica and writes
the good copy back — without ever marking the rotten-but-alive shard
down).

Every point is a pure function of the master seed (named
``RandomStreams`` throughout), so two same-seed campaigns emit
byte-identical JSON for any ``--jobs`` count (the CI integrity-smoke job
diffs them).

Examples::

    repro-bench scrub --quick --seed 7
    repro-bench scrub --systems nfs odafs --rates 0 0.02 0.1 --jobs 4
    repro-bench scrub --quick --json > scrub.json
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Dict, Optional, Sequence

from ..cluster import SYSTEMS, Cluster
from ..faults import Injector
from ..hw.tpt import RemoteAccessFault
from ..integrity import IntegrityError, is_corrupt
from ..nas.shard import ShardedCluster
from ..nas.shard.placement import shard_config_error
from ..params import KB, Params, default_params
from ..proto.rpc import RPCError
from ..sim import LatencyStats
from .chaos import add_fault_campaign_args
from .runner import campaign_json, run_grid, seeded_params
from .runner import base_params as runner_base_params

#: Systems swept by default: the RPC pole (server-side verification)
#: and the direct-access pole (client-side verification of ORDMA reads).
DEFAULT_SYSTEMS = ("nfs", "odafs")

#: Per-event silent-corruption probabilities swept by the campaign.
DEFAULT_RATES = (0.0, 0.01, 0.02, 0.05)
QUICK_RATES = (0.0, 0.05)

#: Scrubber point shape: misdirected writes to repair, then idle time
#: long enough for the scrub daemon to find them.
SCRUB_MISDIRECTS = 8
SCRUB_IDLE_US = 30_000.0
SCRUB_INTERVAL_US = 500.0

BLOCK = 4 * KB


def run_point(system: str, checksums: bool, rate: float,
              params: Optional[Params] = None, blocks: int = 64,
              passes: int = 2) -> Dict[str, Any]:
    """One campaign point: a warm-file scan under silent corruption.

    The server cache is sized at half the file so the sequential scan
    misses every access — each read pays a disk fill, which is where bit
    rot strikes. ODAFS additionally suffers in-flight corruption of the
    optimistic gets themselves. Per-op integrity failures (a block the
    repair ladder could not save) are counted, not fatal.
    """
    p = params.copy() if params is not None else default_params()
    p.integrity.enabled = checksums
    client_kwargs: Dict[str, Any] = {}
    if system in ("dafs", "odafs"):
        client_kwargs = {"cache_blocks": 8, "rpc_read_mode": "direct"}
    cluster = Cluster(p, system=system, block_size=BLOCK,
                      server_cache_blocks=max(8, blocks // 2),
                      client_kwargs=client_kwargs)
    cluster.create_file("scrub", blocks * BLOCK)
    inj = Injector(cluster)
    if rate > 0.0:
        inj.disk_bitrot(rate)
        if system == "odafs":
            inj.ordma_silent_corruption(rate)
    inj.arm()
    client = cluster.clients[0]
    meter = LatencyStats("op_us")
    state = {"ok": 0, "failed": 0, "corrupt": 0}

    def workload():
        yield from client.open("scrub")
        for _ in range(passes):
            for i in range(blocks):
                start = cluster.sim.now
                try:
                    data = yield from client.read("scrub", i * BLOCK, BLOCK)
                except (IntegrityError, RPCError, RemoteAccessFault):
                    state["failed"] += 1
                else:
                    state["ok"] += 1
                    meter.record(cluster.sim.now - start)
                    if is_corrupt(data):
                        state["corrupt"] += 1

    cluster.sim.run_process(workload())
    elapsed = cluster.sim.now
    server = cluster.server
    detected = (server.integrity.get("detected")
                + client.stats.get("integrity_detected"))
    repair = server.repair_latency
    point: Dict[str, Any] = {
        "ops_ok": state["ok"],
        "ops_failed": state["failed"],
        "corrupt_reads": state["corrupt"],
        "injected": (inj.stats.get("disk.bitrot")
                     + inj.stats.get("nic.ordma_corrupt")),
        "detected": detected,
        "repaired": server.integrity.get("repaired"),
        "quarantined": server.integrity.get("quarantined"),
        "client_detected": client.stats.get("integrity_detected"),
        "sim_us": round(elapsed, 2),
        "throughput_mb_s": (round(state["ok"] * BLOCK / elapsed, 3)
                            if elapsed > 0 else 0.0),
        "p50_us": round(meter.percentile(50), 2) if meter.count else 0.0,
        "p95_us": round(meter.percentile(95), 2) if meter.count else 0.0,
        "repair_p50_us": (round(repair.percentile(50), 2)
                          if repair.count else 0.0),
        "repair_p95_us": (round(repair.percentile(95), 2)
                          if repair.count else 0.0),
    }
    return point


def run_scrubber_point(params: Optional[Params] = None,
                       blocks: int = 32) -> Dict[str, Any]:
    """The background-scrubber scenario: misdirected writes leave
    silently-wrong blocks resident in the server cache; nobody reads
    them; the scrub daemon finds and repairs them during idle time."""
    p = params.copy() if params is not None else default_params()
    p.integrity.enabled = True
    p.integrity.scrub_interval_us = SCRUB_INTERVAL_US
    p.integrity.scrub_blocks_per_pass = 16
    cluster = Cluster(p, system="nfs", block_size=BLOCK,
                      server_cache_blocks=blocks + 8)
    cluster.create_file("scrub", blocks * BLOCK)
    inj = Injector(cluster)
    inj.arm()
    inj.disk_faults(0).misdirect_next = SCRUB_MISDIRECTS
    client = cluster.clients[0]

    def workload():
        yield from client.open("scrub")
        for i in range(SCRUB_MISDIRECTS):
            yield from client.write("scrub", i * BLOCK, BLOCK)
        yield cluster.sim.timeout(SCRUB_IDLE_US)
        yield from client.close("scrub")

    proc = cluster.sim.process(workload(), name="scrub-wl")
    cluster.server.scrubber.start(stop_on=proc)
    cluster.sim.run()
    s = cluster.server.integrity
    return {
        "completed": proc.triggered,
        "misdirects_injected": inj.stats.get("disk.misdirect"),
        "scrub_passes": s.get("scrub.passes"),
        "scrub_blocks": s.get("scrub.blocks"),
        "scrub_detected": s.get("scrub.detected"),
        "scrub_repaired": s.get("scrub.repaired"),
        "scrub_quarantined": s.get("scrub.quarantined"),
        "sim_us": round(cluster.sim.now, 2),
    }


def run_repair_point(params: Optional[Params] = None, n_servers: int = 2,
                     system: str = "nfs",
                     blocks: int = 16) -> Dict[str, Any]:
    """The sharded read-repair scenario: server 0's disk rots *every*
    fill, so its reads detect, exhaust the one-retry ladder, quarantine,
    and fail typed (``EINTEGRITY``); the router reroutes each to the
    replica and writes the verified copy back to server 0 — which is
    alive and must *not* be marked down. A second pass verifies the
    repaired blocks now serve clean from server 0's cache."""
    p = params.copy() if params is not None else default_params()
    p.integrity.enabled = True
    p.integrity.verify_retries = 1
    p.shard.n_servers = n_servers
    p.shard.placement = "stripe"
    p.shard.stripe_blocks = 1
    p.shard.replicas = 1
    client_kwargs: Dict[str, Any] = {}
    if system in ("dafs", "odafs"):
        client_kwargs = {"cache_blocks": 8, "rpc_read_mode": "direct"}
    cluster = ShardedCluster(p, system=system, n_clients=1,
                             block_size=BLOCK,
                             server_cache_blocks=blocks + 8,
                             client_kwargs=client_kwargs)
    # Cold caches: every first read pays a disk fill, which on server 0
    # always rots.
    cluster.create_file("rot", blocks * BLOCK, warm=False)
    inj = Injector(cluster)
    inj.arm()
    inj.disk_faults(0).bitrot_next = 1 << 30
    router = cluster.clients[0]
    state = {"ok": 0, "failed": 0, "corrupt": 0}

    def read_all():
        for i in range(blocks):
            try:
                data = yield from router.read("rot", i * BLOCK, BLOCK)
            except (IntegrityError, RPCError, RemoteAccessFault):
                state["failed"] += 1
            else:
                state["ok"] += 1
                if is_corrupt(data):
                    state["corrupt"] += 1

    def workload():
        yield from router.open("rot")
        yield from read_all()   # pass 1: detect, reroute, write back
        yield from read_all()   # pass 2: repaired blocks serve clean
        yield from router.close("rot")

    completed = True
    try:
        cluster.sim.run_process(workload())
    except Exception:
        completed = False
    s0 = cluster.servers[0].integrity
    return {
        "completed": completed,
        "ops_ok": state["ok"],
        "ops_failed": state["failed"],
        "corrupt_reads": state["corrupt"],
        "integrity_errors": router.stats.get("integrity_errors"),
        "replica_reads": router.stats.get("replica_reads"),
        "read_repairs": router.stats.get("read_repairs"),
        "down_marks": router.stats.get("down_marks"),
        "server0_detected": s0.get("detected"),
        "server0_quarantined": s0.get("quarantined"),
        "sim_us": round(cluster.sim.now, 2),
    }


def _campaign_point(spec) -> Dict[str, Any]:
    """One grid point, shaped for :func:`repro.bench.runner.run_points`."""
    system, checksums, rate, blocks, passes = spec
    return run_point(system, checksums, rate,
                     params=runner_base_params(),
                     blocks=blocks, passes=passes)


def scrub_campaign(params: Optional[Params] = None,
                   systems: Sequence[str] = DEFAULT_SYSTEMS,
                   rates: Sequence[float] = DEFAULT_RATES,
                   blocks: int = 64, passes: int = 2,
                   repair_servers: int = 2,
                   jobs: Optional[int] = None) -> Dict[str, Any]:
    """{"grid": {system: {"off"/"on": {rate: point}}},
    "scrubber": point, "repair": point}.

    Grid points share no mutable state, so the grid fans out over
    ``jobs`` workers with results byte-identical to a serial run; the
    two scenario points always run in the parent, after the grid.
    """
    for system in systems:
        if system not in SYSTEMS:
            raise ValueError(f"unknown system {system!r}; one of {SYSTEMS}")
    base = params if params is not None else default_params()
    specs = [(system, checksums, rate, blocks, passes)
             for system in systems
             for checksums in (False, True)
             for rate in rates]
    grid = run_grid(_campaign_point, specs,
                    lambda s: (s[0], "on" if s[1] else "off",
                               f"{s[2]:.4f}"),
                    jobs=jobs, base=base,
                    # Verification and repair work scale with the rate.
                    cost=lambda s: s[2] + (0.01 if s[1] else 0.0))
    return {
        "grid": grid,
        "scrubber": run_scrubber_point(params=base),
        "repair": run_repair_point(params=base,
                                   n_servers=repair_servers),
    }


def campaign_failures(results: Dict[str, Any]) -> int:
    """Points violating the integrity contract: with checksums on, any
    corrupt block consumed by a reader is a failure (it was supposed to
    be detected); scenario points must complete with nothing corrupt."""
    bad = 0
    for per_mode in results["grid"].values():
        for point in per_mode.get("on", {}).values():
            if point["corrupt_reads"] > 0:
                bad += 1
    scrubber = results["scrubber"]
    if not scrubber["completed"] or (
            scrubber["scrub_repaired"] + scrubber["scrub_quarantined"]
            < scrubber["misdirects_injected"]):
        bad += 1
    repair = results["repair"]
    if not repair["completed"] or repair["corrupt_reads"] > 0 \
            or repair["down_marks"] > 0:
        bad += 1
    return bad


def render_campaign(results: Dict[str, Any]) -> str:
    """Per-system detection/repair tables plus the scenario points."""
    lines = []
    for system, per_mode in results["grid"].items():
        off, on = per_mode.get("off", {}), per_mode.get("on", {})
        lines.append(f"== system: {system} "
                     f"(silent corruption rate per event) ==")
        lines.append(f"  {'rate':>7} {'off MB/s':>9} {'corrupt':>8} "
                     f"{'on MB/s':>9} {'detect':>7} {'repair':>7} "
                     f"{'quarant':>8} {'escaped':>8} {'rep p95':>8}")
        for rate_key in off:
            o, n = off[rate_key], on.get(rate_key)
            if n is None:
                continue
            lines.append(
                f"  {rate_key:>7} {o['throughput_mb_s']:>9.2f} "
                f"{o['corrupt_reads']:>8} {n['throughput_mb_s']:>9.2f} "
                f"{n['detected']:>7} {n['repaired']:>7} "
                f"{n['quarantined']:>8} {n['corrupt_reads']:>8} "
                f"{n['repair_p95_us']:>8.1f}")
        zero = f"{0.0:.4f}"
        if zero in off and zero in on and off[zero]["throughput_mb_s"]:
            overhead = 1.0 - (on[zero]["throughput_mb_s"]
                              / off[zero]["throughput_mb_s"])
            lines.append(f"  checksum overhead at rate 0: "
                         f"{overhead * 100:.1f}%")
        lines.append("")
    s = results["scrubber"]
    lines.append("== scrubber: misdirected writes repaired in idle time ==")
    lines.append(f"  {'completed' if s['completed'] else 'HUNG'}: "
                 f"{s['misdirects_injected']} silently-wrong block(s); "
                 f"{s['scrub_passes']} pass(es) verified "
                 f"{s['scrub_blocks']} block(s), detected "
                 f"{s['scrub_detected']}, repaired {s['scrub_repaired']}, "
                 f"quarantined {s['scrub_quarantined']}")
    lines.append("")
    r = results["repair"]
    lines.append("== read-repair: one shard's disk rots every fill, "
                 "replicas=1 ==")
    lines.append(f"  {'completed' if r['completed'] else 'HUNG'}: "
                 f"{r['ops_ok']} ok, {r['ops_failed']} failed, "
                 f"{r['corrupt_reads']} corrupt; "
                 f"{r['integrity_errors']} EINTEGRITY rerouted, "
                 f"{r['read_repairs']} read-repair write-back(s), "
                 f"{r['down_marks']} down-mark(s) "
                 f"(the rotten shard stays up)")
    lines.append("")
    return "\n".join(lines)


def main(argv=None) -> int:
    """Entry point for ``repro-bench scrub``."""
    parser = argparse.ArgumentParser(
        prog="repro-bench scrub",
        description="Run end-to-end integrity campaigns: silent disk/"
                    "ORDMA corruption vs block checksums, with "
                    "read-repair and a background scrubber.")
    parser.add_argument("--systems", nargs="+", default=None,
                        choices=SYSTEMS, metavar="SYSTEM",
                        help=f"systems to sweep (default: "
                             f"{', '.join(DEFAULT_SYSTEMS)})")
    parser.add_argument("--rates", nargs="+", type=float, default=None,
                        metavar="P",
                        help="per-event silent-corruption probabilities "
                             f"(default: {DEFAULT_RATES})")
    parser.add_argument("--repair-servers", type=int, default=2,
                        metavar="N",
                        help="server count for the sharded read-repair "
                             "point (default 2; needs >= 2 for the "
                             "replica)")
    add_fault_campaign_args(
        parser, seed_help="master seed for all corruption streams",
        quick_help="smaller grid (24 blocks, 2 rates)")
    args = parser.parse_args(argv)

    params = seeded_params(args.seed)
    systems = tuple(args.systems) if args.systems else DEFAULT_SYSTEMS
    rates = tuple(args.rates) if args.rates else \
        (QUICK_RATES if args.quick else DEFAULT_RATES)
    blocks = 24 if args.quick else args.blocks

    repair_shard = params.copy().shard
    repair_shard.n_servers = args.repair_servers
    repair_shard.replicas = 1
    err = shard_config_error(repair_shard, params.seed)
    if err is not None:
        print(f"repro-bench scrub: invalid --repair-servers "
              f"{args.repair_servers}: {err}", file=sys.stderr)
        return 2

    results = scrub_campaign(params=params, systems=systems, rates=rates,
                             blocks=blocks, passes=args.passes,
                             repair_servers=args.repair_servers,
                             jobs=args.jobs)
    failures = campaign_failures(results)

    if args.json:
        print(campaign_json(results, seed=params.seed, rates=list(rates),
                            blocks=blocks, passes=args.passes))
    else:
        print(f"Integrity campaign — seed {params.seed}, {blocks}x4KB "
              f"blocks x{args.passes} passes per point")
        print()
        print(render_campaign(results))
        if failures:
            print(f"FAILED: {failures} point(s) let corruption escape or "
                  f"hung")
        else:
            print("All integrity points held: nothing corrupt escaped "
                  "with checksums on.")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
