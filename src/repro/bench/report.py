"""Plain-text rendering of benchmark results, paper-style.

Each ``render_*`` helper prints the same rows/series the paper reports,
side by side with the published values where the paper states them.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Fixed-width table with a header rule."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells):
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in str_rows)
    return "\n".join(lines)


def render_table2(measured: Dict[str, Dict[str, float]],
                  paper: Dict[str, Dict[str, float]]) -> str:
    """Table 2 rows, measured beside the paper's values."""
    rows = []
    for proto, vals in measured.items():
        ref = paper.get(proto, {})
        rows.append([
            proto,
            f"{vals['roundtrip_us']:.1f}",
            f"{ref.get('roundtrip_us', float('nan')):.0f}",
            f"{vals['bandwidth_mb_s']:.1f}",
            f"{ref.get('bandwidth_mb_s', float('nan')):.0f}",
        ])
    return format_table(
        ["Protocol", "RTT us", "(paper)", "BW MB/s", "(paper)"], rows)


def render_sweep(results: Dict[str, Dict[int, Dict[str, float]]],
                 metric: str, unit: str = "",
                 scale: float = 1.0, fmt: str = ".1f") -> str:
    """Render a {system: {x: {metric: v}}} sweep as systems x columns."""
    xs = sorted({x for series in results.values() for x in series})
    headers = ["system"] + [str(x) for x in xs]
    rows = []
    for system, series in results.items():
        row = [system]
        for x in xs:
            if x in series:
                row.append(f"{series[x][metric] * scale:{fmt}}")
            else:
                row.append("-")
        rows.append(row)
    title = f"{metric}{' (' + unit + ')' if unit else ''}"
    return title + "\n" + format_table(headers, rows)


def render_table3(measured: Dict[str, Dict[str, float]],
                  paper: Dict[str, Dict[str, float]]) -> str:
    """Table 3 response times, measured beside the paper's values."""
    labels = {"rpc_inline": "RPC in-line read",
              "rpc_direct": "RPC direct read",
              "ordma": "ORDMA read"}
    rows = []
    for key, label in labels.items():
        m = measured[key]
        p = paper[key]
        rows.append([label,
                     f"{m['in_mem']:.0f}", f"{p['in_mem']:.0f}",
                     f"{m['in_cache']:.0f}", f"{p['in_cache']:.0f}"])
    return format_table(
        ["I/O mechanism", "in mem. us", "(paper)",
         "in cache us", "(paper)"], rows)


def render_fig6(measured: Dict[str, Dict[int, Dict[str, float]]]) -> str:
    """Fig. 6 PostMark rows with the ODAFS gain column."""
    rows = []
    for pct in sorted(next(iter(measured.values()))):
        dafs = measured["dafs"][pct]
        odafs = measured["odafs"][pct]
        gain = odafs["txns_per_s"] / dafs["txns_per_s"] - 1.0
        rows.append([
            f"{pct}%",
            f"{dafs['txns_per_s']:.0f}",
            f"{odafs['txns_per_s']:.0f}",
            f"{gain * 100:.1f}% (paper ~34%)",
            f"{dafs['server_cpu'] * 100:.0f}%",
            f"{odafs['server_cpu'] * 100:.0f}%",
        ])
    return format_table(
        ["hit ratio", "DAFS txns/s", "ODAFS txns/s", "ODAFS gain",
         "DAFS srv CPU", "ODAFS srv CPU"], rows)


def render_fig7(measured: Dict[str, Dict[int, Dict[str, float]]]) -> str:
    """Fig. 7 server-throughput rows by cache block size."""
    rows = []
    for block_kb in sorted(next(iter(measured.values()))):
        dafs = measured["dafs"][block_kb]
        odafs = measured["odafs"][block_kb]
        rows.append([
            f"{block_kb} KB",
            f"{dafs['throughput_mb_s']:.0f}",
            f"{odafs['throughput_mb_s']:.0f}",
            f"{dafs['server_cpu'] * 100:.0f}%",
            f"{odafs['server_cpu'] * 100:.0f}%",
        ])
    return format_table(
        ["cache block", "DAFS MB/s", "ODAFS MB/s",
         "DAFS srv CPU", "ODAFS srv CPU"], rows)


def render_dict_table(results: Dict, key_header: str,
                      value_fmt: str = ".2f") -> str:
    """Render {key: {metric: value}} generically."""
    first = next(iter(results.values()))
    metrics = list(first)
    headers = [key_header] + metrics
    rows = []
    for key, vals in results.items():
        row = [str(key)]
        for metric in metrics:
            value = vals[metric]
            row.append(f"{value:{value_fmt}}"
                       if isinstance(value, float) else str(value))
        rows.append(row)
    return format_table(headers, rows)
