"""``repro-bench chaos`` — degradation campaigns under injected faults.

For each (system, fault class, fault rate) point the campaign wires a
fresh cluster, attaches a :class:`repro.faults.Injector` with the
resilience layer enabled (RPC timeout/retransmit, RDMA recovery
timeouts), injects one fault class at the given per-event rate, and runs
a small cached-read workload. The report is throughput and p95/p99
response time versus fault rate, per client variant — the graceful-
degradation counterpart to the paper's benign-case Figs. 3-5/Table 3 —
plus, for ODAFS, the fraction of fills that fell back from ORDMA to RPC.

Every point is a pure function of the master seed: all fault decisions
come from named ``RandomStreams``, so two campaigns with the same
``--seed`` emit byte-identical JSON (the CI chaos-smoke job diffs them).

Examples::

    repro-bench chaos --quick --seed 7
    repro-bench chaos --systems odafs dafs --classes link disk
    repro-bench chaos --quick --json > chaos.json
    repro-bench chaos --quick --dump /tmp/chaos.jsonl   # + traced point
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Dict, Optional, Sequence, Tuple

from ..cluster import SYSTEMS, Cluster
from ..faults import Injector
from ..hw.tpt import RemoteAccessFault
from ..params import KB, Params, default_params
from ..proto.rpc import RPCError
from ..sim import LatencyStats, SimulationError, Tracer
from .plot import ascii_chart
from .runner import add_campaign_args, campaign_json, run_grid, \
    seeded_params
from .runner import base_params as runner_base_params

#: One injectable failure domain per campaign axis.
FAULT_CLASSES = ("link", "nic", "disk", "server")

#: Per-event fault probabilities swept by the campaign.
DEFAULT_RATES = (0.0, 0.005, 0.01, 0.02, 0.05)
QUICK_RATES = (0.0, 0.01, 0.05)

#: Fixed magnitudes for the non-probability knobs.
NIC_STALL_US = 200.0
DISK_SPIKE_US = 2000.0
CRASH_DOWNTIME_US = 1500.0


def add_fault_campaign_args(parser: argparse.ArgumentParser,
                            seed_help: str, quick_help: str) -> None:
    """CLI surface shared by the fault-injection campaigns (``chaos``,
    ``scrub``): the workload-size knobs plus the ``--seed/--jobs/--json``
    trio. Both subcommands route through here so each shared option is
    registered exactly once per parser — duplicating ``--seed`` in a
    subcommand would crash argparse and double it in ``--help``.
    """
    parser.add_argument("--blocks", type=int, default=64,
                        help="4 KB blocks per pass (default 64)")
    parser.add_argument("--passes", type=int, default=2,
                        help="read passes over the file (default 2)")
    parser.add_argument("--quick", action="store_true", help=quick_help)
    add_campaign_args(parser, seed_help=seed_help)


def _configure(inj: Injector, fault_class: str, rate: float) -> None:
    """Point one fault class at the cluster at per-event rate ``rate``."""
    if fault_class not in FAULT_CLASSES:
        raise ValueError(f"unknown fault class {fault_class!r}; "
                         f"one of {FAULT_CLASSES}")
    if rate <= 0.0:
        return
    if fault_class == "link":
        inj.link_loss(rate)
    elif fault_class == "nic":
        inj.nic_doorbell_stalls(rate, stall_us=NIC_STALL_US)
        inj.ordma_rejects(rate)
    elif fault_class == "disk":
        inj.disk_errors(rate)
        inj.disk_delays(rate, spike_us=DISK_SPIKE_US)
    else:  # server
        inj.server_crashes(rate, downtime_us=CRASH_DOWNTIME_US)


def run_point(system: str, fault_class: str, rate: float,
              params: Optional[Params] = None, blocks: int = 64,
              passes: int = 2,
              trace: bool = False) -> Tuple[Dict[str, Any],
                                            Optional[Tracer]]:
    """One campaign point; returns (metrics dict, tracer if requested).

    The workload reads a warm file twice through a small client cache
    (the Table 3 shape). For the disk class the server cache is sized
    below the file so the scan thrashes it and the disk path is actually
    exercised. Per-op failures (EIO after the server's retries) are
    counted, not fatal; only a hang/deadlock marks the point incomplete.
    """
    block = 4 * KB
    p = params.copy() if params is not None else default_params()
    # LRU + sequential scan: a cache at half the file size misses every
    # access, which is exactly what the disk fault class needs.
    cache_blocks = max(8, blocks // 2) if fault_class == "disk" \
        else blocks + 8
    client_kwargs: Dict[str, Any] = {}
    if system in ("dafs", "odafs"):
        client_kwargs = {"cache_blocks": 8, "rpc_read_mode": "direct"}
    cluster = Cluster(p, system=system, block_size=block,
                      server_cache_blocks=cache_blocks,
                      client_kwargs=client_kwargs)
    cluster.create_file("chaos", blocks * block)
    tracer = Tracer.attach(cluster.sim) if trace else None
    inj = Injector(cluster)
    inj.enable_resilience()
    _configure(inj, fault_class, rate)
    inj.arm()
    client = cluster.clients[0]
    meter = LatencyStats("op_us")
    state = {"ok": 0, "failed": 0}

    def workload():
        yield from client.open("chaos")
        for _ in range(passes):
            for i in range(blocks):
                start = cluster.sim.now
                try:
                    yield from client.read("chaos", i * block, block)
                except (RPCError, RemoteAccessFault):
                    state["failed"] += 1
                else:
                    state["ok"] += 1
                    meter.record(cluster.sim.now - start)

    completed = True
    try:
        cluster.sim.run_process(workload())
    except SimulationError:
        # Deadlock: the workload hung on a lost event. This is exactly
        # what the resilience layer exists to prevent — report it.
        completed = False

    elapsed = cluster.sim.now
    rpc = client.rpc.stats
    point: Dict[str, Any] = {
        "completed": completed,
        "ops_ok": state["ok"],
        "ops_failed": state["failed"],
        "sim_us": round(elapsed, 2),
        "throughput_mb_s": (round(state["ok"] * block / elapsed, 3)
                            if elapsed > 0 else 0.0),
        "p50_us": round(meter.percentile(50), 2) if meter.count else 0.0,
        "p95_us": round(meter.percentile(95), 2) if meter.count else 0.0,
        "p99_us": round(meter.percentile(99), 2) if meter.count else 0.0,
        "retransmits": rpc.get("retransmits"),
        "rpc_timeouts": rpc.get("rpc_timeouts"),
        "faults_injected": sum(inj.stats.as_dict().values()),
        "server_crashes": cluster.server.rpc.stats.get("crashes"),
    }
    if system == "odafs":
        rpc_fills = client.stats.get("rpc_fills")
        ordma_reads = client.stats.get("ordma_reads")
        fills = rpc_fills + ordma_reads
        point["ordma_faults"] = client.stats.get("ordma_faults")
        point["rpc_fallback_frac"] = (round(rpc_fills / fills, 4)
                                      if fills else 0.0)
    return point, tracer


def _campaign_point(spec) -> Dict[str, Any]:
    """One grid point, shaped for :func:`repro.bench.runner.run_points`."""
    system, fault_class, rate, blocks, passes = spec
    point, _ = run_point(system, fault_class, rate,
                         params=runner_base_params(),
                         blocks=blocks, passes=passes)
    return point


def chaos_campaign(params: Optional[Params] = None,
                   systems: Sequence[str] = SYSTEMS,
                   fault_classes: Sequence[str] = FAULT_CLASSES,
                   rates: Sequence[float] = DEFAULT_RATES,
                   blocks: int = 64,
                   passes: int = 2,
                   jobs: Optional[int] = None) -> Dict[str, Any]:
    """{system: {fault_class: {"%.4f" % rate: point}}} over the grid.

    Every point builds its own cluster and injector from ``params``, with
    all randomness drawn from seed-derived named streams, so the grid can
    fan out over ``jobs`` worker processes and still return exactly the
    serial campaign's output (the CI chaos-smoke job relies on this).
    """
    for system in systems:
        if system not in SYSTEMS:
            raise ValueError(f"unknown system {system!r}; one of {SYSTEMS}")
    base = params if params is not None else default_params()
    specs = [(system, fault_class, rate, blocks, passes)
             for system in systems
             for fault_class in fault_classes
             for rate in rates]
    return run_grid(_campaign_point, specs,
                    lambda s: (s[0], s[1], f"{s[2]:.4f}"), jobs=jobs,
                    base=base, cost=lambda s: s[2])  # fault rate ~ retries


def campaign_failures(results: Dict[str, Any]) -> int:
    """Points that hung or finished without a single successful op."""
    bad = 0
    for per_class in results.values():
        for series in per_class.values():
            for point in series.values():
                if not point["completed"] or point["ops_ok"] == 0:
                    bad += 1
    return bad


def render_campaign(results: Dict[str, Any]) -> str:
    """Per-fault-class degradation tables and throughput curves."""
    lines = []
    classes = []
    for per_class in results.values():
        for fault_class in per_class:
            if fault_class not in classes:
                classes.append(fault_class)
    for fault_class in classes:
        lines.append(f"== fault class: {fault_class} "
                     f"(x axis: faults per 1000 events) ==")
        header = f"  {'system':<12} {'rate':>7} {'MB/s':>8} " \
                 f"{'p95 us':>9} {'p99 us':>9} {'rexmit':>7} " \
                 f"{'failed':>7} {'fallback':>9}"
        lines.append(header)
        curves: Dict[str, Dict[int, float]] = {}
        for system, per_class in results.items():
            series = per_class.get(fault_class)
            if series is None:
                continue
            for rate_key, point in series.items():
                permille = int(round(float(rate_key) * 1000))
                curves.setdefault(system, {})[permille] = \
                    point["throughput_mb_s"]
                fallback = point.get("rpc_fallback_frac")
                lines.append(
                    f"  {system:<12} {rate_key:>7} "
                    f"{point['throughput_mb_s']:>8.2f} "
                    f"{point['p95_us']:>9.1f} {point['p99_us']:>9.1f} "
                    f"{point['retransmits']:>7} "
                    f"{point['ops_failed']:>7} "
                    + (f"{fallback:>9.3f}" if fallback is not None
                       else f"{'-':>9}")
                    + ("" if point["completed"] else "  [INCOMPLETE]"))
        lines.append("")
        lines.append(ascii_chart(curves, ylabel="MB/s",
                                 xlabel=f"{fault_class} faults/1000"))
        lines.append("")
    return "\n".join(lines)


def main(argv=None) -> int:
    """Entry point for ``repro-bench chaos``."""
    parser = argparse.ArgumentParser(
        prog="repro-bench chaos",
        description="Run fault-injection degradation campaigns: "
                    "throughput and tail latency vs fault rate, per NAS "
                    "system and fault class.")
    parser.add_argument("--systems", nargs="+", default=list(SYSTEMS),
                        choices=SYSTEMS, metavar="SYSTEM",
                        help=f"client variants to sweep (default: all of "
                             f"{', '.join(SYSTEMS)})")
    parser.add_argument("--classes", nargs="+", dest="fault_classes",
                        default=list(FAULT_CLASSES), choices=FAULT_CLASSES,
                        metavar="CLASS",
                        help="fault classes to sweep (default: all)")
    parser.add_argument("--rates", nargs="+", type=float, default=None,
                        metavar="P",
                        help="per-event fault probabilities "
                             f"(default: {DEFAULT_RATES})")
    add_fault_campaign_args(
        parser, seed_help="master seed for all fault/jitter streams",
        quick_help="smaller grid (24 blocks, 3 rates)")
    parser.add_argument("--dump", metavar="PATH",
                        help="also run one traced point (first system/"
                             "class, highest rate) and dump its trace "
                             "as JSONL for 'repro-bench trace --input'")
    args = parser.parse_args(argv)

    params = seeded_params(args.seed)
    rates = tuple(args.rates) if args.rates else \
        (QUICK_RATES if args.quick else DEFAULT_RATES)
    blocks = 24 if args.quick else args.blocks

    results = chaos_campaign(params=params, systems=args.systems,
                             fault_classes=args.fault_classes,
                             rates=rates, blocks=blocks,
                             passes=args.passes, jobs=args.jobs)
    failures = campaign_failures(results)

    if args.dump:
        _, tracer = run_point(args.systems[0], args.fault_classes[0],
                              max(rates), params=params, blocks=blocks,
                              passes=args.passes, trace=True)
        tracer.dump_jsonl(args.dump)

    if args.json:
        print(campaign_json(results, seed=params.seed, rates=list(rates),
                            blocks=blocks, passes=args.passes))
    else:
        print(f"Chaos campaign — seed {params.seed}, {blocks}x4KB blocks "
              f"x{args.passes} passes per point")
        print()
        print(render_campaign(results))
        if failures:
            print(f"FAILED: {failures} campaign point(s) hung or served "
                  f"no requests")
        else:
            print("All campaign points completed.")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
