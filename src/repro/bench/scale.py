"""``repro-bench scale`` — client-scaling sweep against one server.

The paper's headline multi-client numbers (Figs. 6/7) stop at the
testbed's four machines. This campaign extends them: for each
``(mix, system, n_clients)`` point it wires a fresh cluster with the
server admission/request scheduler enabled (bounded accept queue +
service-thread pool, :mod:`repro.nas.server.sched`) and sweeps
``n_clients`` up to 32, emitting throughput- and latency-versus-clients
curves. The qualitative result to reproduce: NFS saturates on server CPU
and its response time balloons with queueing delay, while ODAFS's
client-initiated reads bypass the server CPU and keep climbing to the
link — the >=30% small-I/O gain of Section 5.2 at scale.

Two workload mixes:

* ``smallio`` — every client streams the same warm file in 4 KB reads
  through a tiny client cache (the Fig. 7 shape, N-wide);
* ``postmark`` — every client runs read-only PostMark-style open/read/
  close transactions over a shared small-file set (the Fig. 6 shape,
  N-wide).

Every point is a pure function of ``(master seed, point spec)``: all
randomness comes from named :class:`~repro.sim.RandomStreams`, so two
same-seed campaigns emit byte-identical JSON for any ``--jobs`` count
(the CI scale-smoke job diffs them).

Examples::

    repro-bench scale --quick --seed 7
    repro-bench scale --systems nfs odafs --clients 1 2 4 8 16 32
    repro-bench scale --quick --json > scale.json
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Dict, Generator, List, Optional, Sequence

from ..cluster import SYSTEMS, Cluster
from ..params import KB, Params, default_params
from ..sim import LatencyStats
from ..workloads.smallio import MultiClientReadWorkload
from .plot import ascii_chart
from .runner import add_campaign_args, campaign_json, run_grid, \
    seeded_params
from .runner import base_params as runner_base_params

#: Workload mixes the campaign can sweep.
MIXES = ("smallio", "postmark")

#: Client counts, default and --quick grids.
DEFAULT_CLIENTS = (1, 2, 4, 8, 16, 32)
QUICK_CLIENTS = (1, 2, 4, 8)

#: Systems compared by default (the paper's Fig. 6/7 cast).
DEFAULT_SYSTEMS = ("nfs", "dafs", "odafs")
QUICK_SYSTEMS = ("nfs", "odafs")

#: 4 KB: the paper's small-I/O unit (Table 3, Fig. 6, Fig. 7 @ 4 KB).
BLOCK = 4 * KB


def _sched_params(params: Optional[Params], policy: str,
                  service_threads: int, max_queue: int) -> Params:
    """A params copy with the admission scheduler switched on."""
    p = (params or default_params()).copy()
    p.sched.policy = policy
    p.sched.service_threads = service_threads
    p.sched.max_queue = max_queue
    return p


def _client_kwargs(system: str) -> Dict[str, Any]:
    """Small client caches so the measured pass always misses locally."""
    if system in ("dafs", "odafs"):
        return {"cache_blocks": 8, "rpc_read_mode": "direct"}
    return {"bcache_entries": 8}


def _collect(cluster: Cluster, system: str, ops: int, elapsed: float,
             latency: LatencyStats) -> Dict[str, Any]:
    """Shape one campaign point (rounded: byte-identical across runs)."""
    sched = cluster.scheduler
    rejected_calls = sum(c.rpc.stats.get("rejected_calls")
                         for c in cluster.clients)
    point: Dict[str, Any] = {
        "ops": ops,
        "sim_us": round(cluster.sim.now, 2),
        "elapsed_us": round(elapsed, 2),
        "throughput_mb_s": (round(ops * BLOCK / elapsed, 3)
                            if elapsed > 0 else 0.0),
        "ops_s": (round(ops / elapsed * 1e6, 1) if elapsed > 0 else 0.0),
        "p50_us": round(latency.percentile(50), 2) if latency.count else 0.0,
        "p95_us": round(latency.percentile(95), 2) if latency.count else 0.0,
        "p99_us": round(latency.percentile(99), 2) if latency.count else 0.0,
        "server_cpu": round(cluster.server_cpu_utilization(), 4),
        "sched": {
            "admitted": sched.stats.get("admitted"),
            "rejected": sched.stats.get("rejected"),
            "completed": sched.stats.get("completed"),
            "peak_qdepth": sched.peak_qdepth,
            "peak_active": sched.peak_active,
        },
        "client_rejected_calls": rejected_calls,
    }
    if system == "odafs":
        ordma = sum(c.stats.get("ordma_reads") for c in cluster.clients)
        rpc_fills = sum(c.stats.get("rpc_fills") for c in cluster.clients)
        fills = ordma + rpc_fills
        point["ordma_frac"] = round(ordma / fills, 4) if fills else 0.0
    return point


def run_point_smallio(system: str, n_clients: int,
                      params: Optional[Params] = None, blocks: int = 48,
                      policy: str = "fair", service_threads: int = 4,
                      max_queue: int = 32) -> Dict[str, Any]:
    """One small-I/O point: N clients stream a warm ``blocks``-block file
    twice; pass 2 is measured (ODAFS runs it over client-initiated
    ORDMA, the reference directory warm from pass 1)."""
    p = _sched_params(params, policy, service_threads, max_queue)
    cluster = Cluster(p, system=system, n_clients=n_clients,
                      block_size=BLOCK, server_cache_blocks=blocks + 8,
                      client_kwargs=_client_kwargs(system))
    cluster.create_file("scale", blocks * BLOCK)
    latency = LatencyStats("read_us")
    workload = MultiClientReadWorkload(cluster, "scale", blocks * BLOCK,
                                       app_block_size=BLOCK,
                                       latency=latency)
    result = workload.run()
    ops = n_clients * blocks  # measured pass only
    elapsed = ops * BLOCK / result["throughput_mb_s"]
    return _collect(cluster, system, ops, elapsed, latency)


def run_point_postmark(system: str, n_clients: int,
                       params: Optional[Params] = None, n_files: int = 32,
                       transactions: int = 48, policy: str = "fair",
                       service_threads: int = 4,
                       max_queue: int = 32) -> Dict[str, Any]:
    """One PostMark point: N clients each run ``transactions`` read-only
    open/read/close transactions over a shared warm small-file set."""
    p = _sched_params(params, policy, service_threads, max_queue)
    cluster = Cluster(p, system=system, n_clients=n_clients,
                      block_size=BLOCK, server_cache_blocks=n_files + 8,
                      client_kwargs=_client_kwargs(system))
    for i in range(n_files):
        cluster.create_file(f"pm{i:06d}", BLOCK)
    sim = cluster.sim
    latency = LatencyStats("txn_us")
    warm_done = [sim.event() for _ in cluster.clients]
    warm_barrier = sim.all_of(warm_done)

    def txn(client, name: str) -> Generator:
        proto = client.host.params.proto
        yield from client.host.cpu.execute(proto.app_txn_us,
                                           category="app")
        yield from client.open(name)
        yield from client.read(name, 0, BLOCK)
        yield from client.close(name)

    def client_main(idx: int) -> Generator:
        client = cluster.clients[idx]
        rng = cluster.rand.stream(f"scale.pm{idx}")
        # Warm-up pass: touch every file once (delegations granted and,
        # for ODAFS, remote references piggybacked into the directory).
        for i in range(n_files):
            yield from txn(client, f"pm{i:06d}")
        warm_done[idx].succeed(None)
        yield warm_barrier
        for _ in range(transactions):
            name = f"pm{rng.randrange(n_files):06d}"
            start = sim.now
            yield from txn(client, name)
            latency.record(sim.now - start)

    def main() -> Generator:
        procs = [sim.process(client_main(i), name=f"scale-pm{i}")
                 for i in range(n_clients)]
        yield warm_barrier
        cluster.reset_measurements()
        start = sim.now
        yield sim.all_of(procs)
        return sim.now - start

    elapsed = sim.run_process(main())
    ops = n_clients * transactions
    return _collect(cluster, system, ops, elapsed, latency)


def _scale_point(spec) -> Dict[str, Any]:
    """One grid point, shaped for :func:`repro.bench.runner.run_points`."""
    (mix, system, n_clients, blocks, n_files, transactions,
     policy, service_threads, max_queue) = spec
    params = runner_base_params()
    if mix == "smallio":
        return run_point_smallio(system, n_clients, params=params,
                                 blocks=blocks, policy=policy,
                                 service_threads=service_threads,
                                 max_queue=max_queue)
    return run_point_postmark(system, n_clients, params=params,
                              n_files=n_files, transactions=transactions,
                              policy=policy,
                              service_threads=service_threads,
                              max_queue=max_queue)


def saturation_summary(series: Dict[str, Dict[str, Dict[str, Any]]]
                       ) -> Dict[str, Any]:
    """Where each system's throughput saturates, and the ODAFS gain.

    The saturation point is the smallest client count past which adding
    clients improves throughput by <5%; the headline figure is ODAFS's
    gain over NFS at NFS's saturated count (the paper's 32% claim).
    """
    summary: Dict[str, Any] = {}
    for system, points in series.items():
        counts = sorted(points, key=int)
        sat = counts[-1]
        for prev, cur in zip(counts, counts[1:]):
            prev_t = points[prev]["throughput_mb_s"]
            cur_t = points[cur]["throughput_mb_s"]
            if prev_t > 0 and cur_t < prev_t * 1.05:
                sat = prev
                break
        summary[system] = {
            "saturation_clients": int(sat),
            "peak_mb_s": max(p["throughput_mb_s"]
                             for p in points.values()),
        }
    if "nfs" in series and "odafs" in series:
        sat = str(summary["nfs"]["saturation_clients"])
        nfs_t = series["nfs"][sat]["throughput_mb_s"]
        odafs_t = series["odafs"][sat]["throughput_mb_s"]
        summary["odafs_vs_nfs_at_saturation"] = (
            round(odafs_t / nfs_t - 1.0, 4) if nfs_t > 0 else 0.0)
    return summary


def scale_campaign(params: Optional[Params] = None,
                   systems: Sequence[str] = DEFAULT_SYSTEMS,
                   mixes: Sequence[str] = MIXES,
                   client_counts: Sequence[int] = DEFAULT_CLIENTS,
                   blocks: int = 48, n_files: int = 32,
                   transactions: int = 48, policy: str = "fair",
                   service_threads: int = 4, max_queue: int = 32,
                   jobs: Optional[int] = None) -> Dict[str, Any]:
    """{mix: {system: {str(n): point}, "summary": ...}} over the grid.

    Points share no mutable state (each builds its own cluster from the
    seed), so the grid fans out over ``jobs`` workers with results
    byte-identical to a serial run.
    """
    for system in systems:
        if system not in SYSTEMS:
            raise ValueError(f"unknown system {system!r}; one of {SYSTEMS}")
    for mix in mixes:
        if mix not in MIXES:
            raise ValueError(f"unknown mix {mix!r}; one of {MIXES}")
    base = params if params is not None else default_params()
    specs = [(mix, system, n, blocks, n_files, transactions,
              policy, service_threads, max_queue)
             for mix in mixes
             for system in systems
             for n in client_counts]
    results = run_grid(_scale_point, specs,
                       lambda s: (s[0], s[1], str(s[2])), jobs=jobs,
                       base=base, cost=lambda s: s[2])  # client count
    for mix in results:
        results[mix]["summary"] = saturation_summary(
            {s: pts for s, pts in results[mix].items() if s != "summary"})
    return results


def render_campaign(results: Dict[str, Any]) -> str:
    """Per-mix scaling tables plus throughput/latency-vs-clients curves."""
    lines: List[str] = []
    for mix, per_system in results.items():
        lines.append(f"== mix: {mix} (x axis: clients) ==")
        lines.append(f"  {'system':<8} {'n':>4} {'MB/s':>8} {'ops/s':>10} "
                     f"{'p50 us':>9} {'p95 us':>9} {'p99 us':>9} "
                     f"{'srv cpu':>8} {'qpeak':>6} {'rej':>6}")
        tput: Dict[str, Dict[int, float]] = {}
        p95: Dict[str, Dict[int, float]] = {}
        for system, points in per_system.items():
            if system == "summary":
                continue
            for key, point in points.items():
                n = int(key)
                tput.setdefault(system, {})[n] = point["throughput_mb_s"]
                p95.setdefault(system, {})[n] = point["p95_us"]
                lines.append(
                    f"  {system:<8} {n:>4} "
                    f"{point['throughput_mb_s']:>8.2f} "
                    f"{point['ops_s']:>10.1f} {point['p50_us']:>9.1f} "
                    f"{point['p95_us']:>9.1f} {point['p99_us']:>9.1f} "
                    f"{point['server_cpu']:>8.3f} "
                    f"{point['sched']['peak_qdepth']:>6} "
                    f"{point['sched']['rejected']:>6}")
        lines.append("")
        lines.append(ascii_chart(tput, ylabel="MB/s", xlabel="clients"))
        lines.append("")
        lines.append(ascii_chart(p95, ylabel="p95 us", xlabel="clients"))
        summary = per_system.get("summary", {})
        for system, stats in summary.items():
            if isinstance(stats, dict):
                lines.append(f"  {system}: saturates at "
                             f"{stats['saturation_clients']} client(s), "
                             f"peak {stats['peak_mb_s']:.1f} MB/s")
        gain = summary.get("odafs_vs_nfs_at_saturation")
        if gain is not None:
            lines.append(f"  ODAFS over NFS at NFS saturation: "
                         f"{gain * 100:+.1f}% (paper: up to +32%)")
        lines.append("")
    return "\n".join(lines)


def main(argv=None) -> int:
    """Entry point for ``repro-bench scale``."""
    parser = argparse.ArgumentParser(
        prog="repro-bench scale",
        description="Client-scaling sweep: throughput and tail latency "
                    "vs client count per NAS system, with the server "
                    "admission/request scheduler enabled.")
    parser.add_argument("--systems", nargs="+", default=None,
                        choices=SYSTEMS, metavar="SYSTEM",
                        help=f"systems to sweep (default: "
                             f"{', '.join(DEFAULT_SYSTEMS)})")
    parser.add_argument("--mixes", nargs="+", default=list(MIXES),
                        choices=MIXES, metavar="MIX",
                        help="workload mixes to sweep (default: all)")
    parser.add_argument("--clients", nargs="+", type=int, default=None,
                        metavar="N",
                        help=f"client counts (default: "
                             f"{DEFAULT_CLIENTS})")
    parser.add_argument("--blocks", type=int, default=48,
                        help="4 KB blocks in the smallio file "
                             "(default 48)")
    parser.add_argument("--files", type=int, default=32,
                        help="PostMark file-set size (default 32)")
    parser.add_argument("--transactions", type=int, default=48,
                        help="measured PostMark transactions per client "
                             "(default 48)")
    parser.add_argument("--policy", default="fair",
                        choices=("fifo", "fair"),
                        help="server scheduling policy (default fair)")
    parser.add_argument("--threads", type=int, default=4,
                        help="server service-thread pool size "
                             "(default 4)")
    parser.add_argument("--queue", type=int, default=32,
                        help="server accept-queue bound (default 32)")
    parser.add_argument("--quick", action="store_true",
                        help="smaller grid (1..8 clients, nfs+odafs, "
                             "smallio only)")
    add_campaign_args(parser)
    args = parser.parse_args(argv)

    params = seeded_params(args.seed)
    systems = tuple(args.systems) if args.systems else \
        (QUICK_SYSTEMS if args.quick else DEFAULT_SYSTEMS)
    counts = tuple(args.clients) if args.clients else \
        (QUICK_CLIENTS if args.quick else DEFAULT_CLIENTS)
    mixes = tuple(args.mixes)
    if args.quick and args.mixes == list(MIXES):
        mixes = ("smallio",)
    blocks = 24 if args.quick else args.blocks
    transactions = 24 if args.quick else args.transactions

    results = scale_campaign(params=params, systems=systems, mixes=mixes,
                             client_counts=counts, blocks=blocks,
                             n_files=args.files,
                             transactions=transactions,
                             policy=args.policy,
                             service_threads=args.threads,
                             max_queue=args.queue, jobs=args.jobs)

    if args.json:
        print(campaign_json(results, seed=params.seed,
                            clients=list(counts), policy=args.policy,
                            service_threads=args.threads,
                            max_queue=args.queue))
    else:
        print(f"Client-scaling campaign — seed {params.seed}, policy "
              f"{args.policy}, {args.threads} service threads, queue "
              f"bound {args.queue}")
        print()
        print(render_campaign(results))
    return 0


if __name__ == "__main__":
    sys.exit(main())
