"""ASCII chart rendering for terminal reproduction of the figures.

The paper's figures are line charts; :func:`ascii_chart` renders the same
series in a terminal — one glyph per system, log-ish x handled by treating
sample points as categories (the paper's x axes are powers of two).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

#: Per-series glyphs, in assignment order.
GLYPHS = "o*x+#@%&"


def ascii_chart(series: Dict[str, Dict[int, float]],
                width: int = 60, height: int = 16,
                ylabel: str = "", xlabel: str = "",
                ymax: Optional[float] = None) -> str:
    """Render ``{label: {x: y}}`` as a fixed-size ASCII chart.

    X values become evenly spaced categories (sorted union of all series'
    sample points — matching the paper's power-of-two sweeps); Y is linear
    from zero to ``ymax`` (default: the data maximum).
    """
    if not series:
        raise ValueError("no series to plot")
    xs: List[int] = sorted({x for s in series.values() for x in s})
    if not xs:
        raise ValueError("series contain no points")
    top = ymax if ymax is not None else max(
        y for s in series.values() for y in s.values())
    if top <= 0:
        top = 1.0
    grid = [[" "] * width for _ in range(height)]
    col_of = {x: (int(i * (width - 1) / max(1, len(xs) - 1)))
              for i, x in enumerate(xs)}

    def row_of(y: float) -> int:
        frac = min(1.0, max(0.0, y / top))
        return (height - 1) - int(round(frac * (height - 1)))

    legend = []
    for glyph, (label, points) in zip(GLYPHS, series.items()):
        legend.append(f"{glyph}={label}")
        for x, y in points.items():
            row, col = row_of(y), col_of[x]
            grid[row][col] = glyph

    lines = []
    for i, row in enumerate(grid):
        if i == 0:
            label = f"{top:8.0f} |"
        elif i == height - 1:
            label = f"{0:8.0f} |"
        else:
            label = " " * 8 + " |"
        lines.append(label + "".join(row))
    lines.append(" " * 8 + " +" + "-" * width)
    ticks = " " * 10
    for x in xs:
        col = col_of[x]
        tick = str(x)
        pos = 10 + col - len(tick) // 2
        if pos > len(ticks):
            ticks += " " * (pos - len(ticks))
        ticks += tick
    lines.append(ticks)
    footer = "  ".join(legend)
    if ylabel or xlabel:
        footer += f"   [y: {ylabel}]" if ylabel else ""
        footer += f" [x: {xlabel}]" if xlabel else ""
    lines.append(footer)
    return "\n".join(lines)


def chart_from_sweep(results: Dict[str, Dict[int, Dict[str, float]]],
                     metric: str, scale: float = 1.0,
                     **kwargs) -> str:
    """Chart a {system: {x: {metric: value}}} sweep."""
    series = {system: {x: vals[metric] * scale
                       for x, vals in points.items()}
              for system, points in results.items()}
    return ascii_chart(series, **kwargs)
