"""``repro-bench perf`` — microbenchmarks of the simulation engine itself.

The paper's argument is about shaving per-I/O overhead off the hot path;
this module applies the same discipline to the harness. It measures, in
real (wall-clock) time:

* ``kernel_events`` — raw event-loop dispatch: timer-hopping processes,
  reported as events/second through the kernel heap.
* ``allof_fanin`` — composite-condition fan-in (:class:`repro.sim.AllOf`
  over wide process barriers, the Fig. 7 / SFS workload shape).
* ``interrupt_storm`` — many waiters parked on one event, then
  interrupted: the retry/timeout churn of retry-heavy chaos runs.
* ``link_frames`` — frames/second through the switch + bandwidth-pipe
  fabric path.
* ``rpc_reads`` — end-to-end 4 KB cached reads/second through a full
  DAFS cluster (client cache, RPC, NIC, link, server cache).
* ``figure_sweep`` — wall-clock for a reduced Fig. 3 sweep, serial vs
  ``--jobs N``, proving the parallel runner's speedup and verifying the
  two result sets are identical.

Every bench separates *deterministic* outputs (simulated time, event and
operation counts, result checksums — identical on every run and every
machine) from *timing* outputs (wall seconds, rates). ``--digest`` prints
only the former, so CI can diff two runs byte-for-byte; rates are also
reported normalized to a pure-Python calibration loop so a committed
baseline from one machine can gate regressions on another
(``--check BENCH_perf.json``).

Examples::

    repro-bench perf --quick
    repro-bench perf --quick --digest          # deterministic fields only
    repro-bench perf --out BENCH_perf.json     # write/refresh the baseline
    repro-bench perf --quick --check BENCH_perf.json   # CI regression gate
"""

from __future__ import annotations

import argparse
import cProfile
import hashlib
import io
import json
import os
import platform
import pstats
import sys
import time
from typing import Any, Dict, List, Optional

from ..cluster import Cluster
from ..net.link import Switch
from ..net.packet import Message, MsgKind, fragment
from ..params import KB, default_params
from ..sim import Interrupt, Simulator
from . import figures, runner

#: Bump when bench shapes change incompatibly (invalidates --check).
SCHEMA_VERSION = 2

#: Normalized rates (rate / calibration) measured on the pre-optimization
#: kernel with full shapes, before the trampoline pool / AllOf counter /
#: O(1)-interrupt fast paths landed. Embedded in every suite document so
#: BENCH_perf.json always carries the before/after trajectory. The
#: figure-sweep speedup below is from a single-CPU container, where
#: ``--jobs`` cannot beat serial; it scales with available cores.
SEED_KERNEL_REFERENCE = {
    "kernel_events": 0.023419,
    "allof_fanin": 0.005942,
    "interrupt_storm": 0.005265,
    "link_frames": 0.002447,
    "rpc_reads": 0.000103,
    "figure_sweep": 0.993163,
}

#: (full, quick) sizing per bench.
KERNEL_PROCS = (64, 32)
KERNEL_HOPS = (600, 200)
ALLOF_FANIN = (64, 32)
ALLOF_ROUNDS = (60, 20)
INTERRUPT_WAITERS = (400, 150)
INTERRUPT_ROUNDS = (12, 5)
LINK_MESSAGES = (400, 150)
LINK_MSG_BYTES = 16 * KB
RPC_BLOCKS = (192, 64)
SWEEP_BLOCKS = (192, 64)
SWEEP_BLOCK_SIZES_KB = (4, 16, 64, 256)


def _checksum(obj: Any) -> str:
    """Stable digest of any JSON-serializable result object."""
    canon = json.dumps(obj, sort_keys=True, default=str)
    return hashlib.sha256(canon.encode()).hexdigest()[:16]


def calibrate(loops: int = 5, n: int = 200_000) -> float:
    """Machine speed reference: pure-Python ops/second.

    Normalizing bench rates by this figure makes the committed baseline
    meaningful across machines of different speeds — a 2x slower CI
    runner scores ~2x lower on both the benches and the calibration, so
    the normalized ratio holds.
    """
    best = float("inf")
    for _ in range(loops):
        t0 = time.perf_counter()
        acc = 0
        for i in range(n):
            acc += i & 7
        best = min(best, time.perf_counter() - t0)
    return n / best


# ---------------------------------------------------------------------------
# Kernel microbenchmarks
# ---------------------------------------------------------------------------

def bench_kernel_events(quick: bool = False) -> Dict[str, Any]:
    """Timer-hopping processes: pure event-loop dispatch throughput."""
    procs = KERNEL_PROCS[quick]
    hops = KERNEL_HOPS[quick]
    sim = Simulator()

    def hopper():
        for _ in range(hops):
            yield sim.timeout(1.0)

    for _ in range(procs):
        sim.process(hopper())
    t0 = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - t0
    return {"wall_s": wall, "events": sim._seq, "sim_us": sim.now,
            "events_per_s": sim._seq / wall}


def bench_allof_fanin(quick: bool = False) -> Dict[str, Any]:
    """Wide AllOf barriers over short-lived worker processes."""
    fanin = ALLOF_FANIN[quick]
    rounds = ALLOF_ROUNDS[quick]
    sim = Simulator()

    def worker():
        yield sim.timeout(1.0)

    def main():
        for _ in range(rounds):
            yield sim.all_of([sim.process(worker())
                              for _ in range(fanin)])

    t0 = time.perf_counter()
    sim.run_process(main())
    wall = time.perf_counter() - t0
    triggers = fanin * rounds
    return {"wall_s": wall, "events": sim._seq, "sim_us": sim.now,
            "child_triggers": triggers,
            "triggers_per_s": triggers / wall}


def bench_interrupt_storm(quick: bool = False) -> Dict[str, Any]:
    """Park many waiters on one event, interrupt them all, repeat.

    Every waiter's resume callback sits in the shared event's callback
    list, so each interrupt historically paid an O(waiters) list scan —
    the shape of retry-heavy chaos runs with big timeout fan-ins.
    """
    waiters = INTERRUPT_WAITERS[quick]
    rounds = INTERRUPT_ROUNDS[quick]
    sim = Simulator()

    def sleeper(gate):
        try:
            yield gate
        except Interrupt:
            pass

    def main():
        for _ in range(rounds):
            gate = sim.event()
            procs = [sim.process(sleeper(gate)) for _ in range(waiters)]
            yield sim.timeout(1.0)
            for proc in procs:
                proc.interrupt("cancel")
            yield sim.all_of(procs)

    t0 = time.perf_counter()
    sim.run_process(main())
    wall = time.perf_counter() - t0
    interrupts = waiters * rounds
    return {"wall_s": wall, "events": sim._seq, "sim_us": sim.now,
            "interrupts": interrupts,
            "interrupts_per_s": interrupts / wall}


# ---------------------------------------------------------------------------
# Fabric and end-to-end benchmarks
# ---------------------------------------------------------------------------

def bench_link_frames(quick: bool = False) -> Dict[str, Any]:
    """Fragmented messages through the switch's forwarding path."""
    messages = LINK_MESSAGES[quick]
    params = default_params()
    sim = Simulator()
    switch = Switch(sim, params.net)
    switch.attach("a")
    sink = switch.attach("b")
    sink.set_handler(lambda frame: None)

    def sender():
        for _ in range(messages):
            msg = Message(MsgKind.GM_SEND, "a", "b", LINK_MSG_BYTES)
            for frame in fragment(msg, params.net.gm_mtu,
                                  params.net.gm_header_bytes):
                switch.transmit("a", frame)
            yield sim.timeout(1.0)

    t0 = time.perf_counter()
    sim.run_process(sender())
    wall = time.perf_counter() - t0
    return {"wall_s": wall, "frames": switch.frames_forwarded,
            "sim_us": sim.now,
            "frames_per_s": switch.frames_forwarded / wall}


def bench_rpc_reads(quick: bool = False) -> Dict[str, Any]:
    """End-to-end 4 KB cached reads through a full DAFS cluster."""
    blocks = RPC_BLOCKS[quick]
    block = 4 * KB
    cluster = Cluster(default_params(), system="dafs", block_size=block,
                      server_cache_blocks=blocks + 8,
                      client_kwargs={"cache_blocks": 8,
                                     "rpc_read_mode": "direct"})
    cluster.create_file("perf", blocks * block)
    client = cluster.clients[0]

    def workload():
        yield from client.open("perf")
        for _ in range(2):
            for i in range(blocks):
                yield from client.read("perf", i * block, block)

    t0 = time.perf_counter()
    cluster.sim.run_process(workload())
    wall = time.perf_counter() - t0
    ops = 2 * blocks
    return {"wall_s": wall, "ops": ops, "sim_us": cluster.sim.now,
            "events": cluster.sim._seq, "ops_per_s": ops / wall}


def bench_telemetry_reads(quick: bool = False) -> Dict[str, Any]:
    """The ``rpc_reads`` shape with continuous telemetry sampling on.

    Same cluster and workload as :func:`bench_rpc_reads`, plus the full
    gauge sampler ticking at 20 us — the cost of observability on the hot
    path. Compared against ``rpc_reads`` it bounds the sampling overhead;
    the ``rpc_reads`` digest itself (run with telemetry off) proves the
    disabled path is entirely untouched.
    """
    blocks = RPC_BLOCKS[quick]
    block = 4 * KB
    cluster = Cluster(default_params(), system="dafs", block_size=block,
                      server_cache_blocks=blocks + 8,
                      client_kwargs={"cache_blocks": 8,
                                     "rpc_read_mode": "direct"})
    cluster.create_file("perf", blocks * block)
    client = cluster.clients[0]

    def workload():
        yield from client.open("perf")
        for _ in range(2):
            for i in range(blocks):
                yield from client.read("perf", i * block, block)

    proc = cluster.sim.process(workload())
    sampler = cluster.attach_sampler(interval_us=20.0)
    sampler.start(stop_on=proc)
    t0 = time.perf_counter()
    cluster.sim.run()
    wall = time.perf_counter() - t0
    ops = 2 * blocks
    return {"wall_s": wall, "ops": ops, "sim_us": cluster.sim.now,
            "events": cluster.sim._seq,
            "samples": sampler.ticks * len(sampler.series),
            "ops_per_s": ops / wall}


#: (full, quick) client counts for the scale bench.
SCALE_CLIENTS = (16, 8)


def bench_scale_smallio(quick: bool = False) -> Dict[str, Any]:
    """Many-client small-I/O reads through the admission scheduler.

    The scale-out hot path: 16 NFS clients (8 under ``--quick``) hammer
    one server through the fair-share scheduler with a bounded queue and
    a 4-thread service pool, so the engine is dominated by queueing,
    dispatch, and retransmission-after-rejection machinery rather than
    by a single client's pipeline. Tracked as simulator events per
    wall-second; its deterministic (ops, sim_us, events) triple also
    pins the scheduler's event stream against accidental change.
    """
    n_clients = SCALE_CLIENTS[quick]
    blocks = 16
    block = 4 * KB
    params = default_params()
    params.sched.policy = "fair"
    params.sched.service_threads = 4
    params.sched.max_queue = 8
    cluster = Cluster(params, system="nfs", block_size=block,
                      n_clients=n_clients,
                      server_cache_blocks=blocks + 8,
                      client_kwargs={"bcache_entries": 2})
    cluster.create_file("perf", blocks * block)

    def client_main(idx):
        client = cluster.clients[idx]
        yield from client.open("perf")
        for _ in range(2):
            for i in range(blocks):
                yield from client.read("perf", i * block, block)

    def workload():
        procs = [cluster.sim.process(client_main(i), name=f"perf{i}")
                 for i in range(n_clients)]
        yield cluster.sim.all_of(procs)

    t0 = time.perf_counter()
    cluster.sim.run_process(workload())
    wall = time.perf_counter() - t0
    events = cluster.sim._seq
    ops = 2 * blocks * n_clients
    return {"wall_s": wall, "ops": ops, "sim_us": cluster.sim.now,
            "events": events, "clients": n_clients,
            "rejected": cluster.scheduler.stats.get("rejected"),
            "events_per_s": events / wall}


def bench_figure_sweep(quick: bool = False,
                       jobs: int = 4) -> Dict[str, Any]:
    """A reduced Fig. 3 sweep: serial wall vs ``jobs``-way parallel wall.

    The two result dicts must be identical — the speedup is pure
    orchestration, not a change in what is simulated.
    """
    blocks = SWEEP_BLOCKS[quick]
    kwargs = dict(blocks_per_point=blocks,
                  block_sizes_kb=SWEEP_BLOCK_SIZES_KB)
    t0 = time.perf_counter()
    serial = figures.fig3_fig4(jobs=1, **kwargs)
    serial_s = time.perf_counter() - t0
    # Campaign CLIs fork the pool once and reuse it across sub-grids;
    # pre-warming here measures that steady state instead of charging
    # pool construction to the one timed grid.
    runner.warm_pool(jobs, default_params())
    t0 = time.perf_counter()
    parallel = figures.fig3_fig4(jobs=jobs, **kwargs)
    parallel_s = time.perf_counter() - t0
    return {"serial_s": serial_s, "parallel_s": parallel_s, "jobs": jobs,
            "speedup": serial_s / parallel_s if parallel_s > 0 else 0.0,
            "identical": serial == parallel,
            "checksum": _checksum(serial)}


#: bench name -> (function, rate key). The rate key is the figure the
#: regression gate tracks (normalized by the calibration loop).
BENCHES = {
    "kernel_events": (bench_kernel_events, "events_per_s"),
    "allof_fanin": (bench_allof_fanin, "triggers_per_s"),
    "interrupt_storm": (bench_interrupt_storm, "interrupts_per_s"),
    "link_frames": (bench_link_frames, "frames_per_s"),
    "rpc_reads": (bench_rpc_reads, "ops_per_s"),
}

#: Deterministic (machine-independent) fields per bench, for --digest.
DIGEST_FIELDS = ("events", "sim_us", "child_triggers", "interrupts",
                 "frames", "ops", "samples", "identical", "checksum",
                 "jobs", "clients", "rejected")


def run_suite(quick: bool = False, jobs: int = 4, repeat: int = 3,
              sweep: bool = True) -> Dict[str, Any]:
    """Run every bench; returns the BENCH_perf.json document."""
    calib = calibrate()
    benches: Dict[str, Any] = {}
    for name, (fn, rate_key) in BENCHES.items():
        best: Optional[Dict[str, Any]] = None
        for _ in range(max(1, repeat)):
            result = fn(quick)
            if best is None or result["wall_s"] < best["wall_s"]:
                best = result
        best["rate_key"] = rate_key
        best["normalized"] = best[rate_key] / calib
        benches[name] = best
    # Telemetry-on variant of rpc_reads; lives outside BENCHES because
    # the seed-kernel reference predates the sampler.
    best = None
    for _ in range(max(1, repeat)):
        result = bench_telemetry_reads(quick)
        if best is None or result["wall_s"] < best["wall_s"]:
            best = result
    best["rate_key"] = "ops_per_s"
    best["normalized"] = best["ops_per_s"] / calib
    benches["telemetry_reads"] = best
    # Many-client admission-scheduler bench; also outside BENCHES (the
    # seed-kernel reference predates the scheduler subsystem).
    best = None
    for _ in range(max(1, repeat)):
        result = bench_scale_smallio(quick)
        if best is None or result["wall_s"] < best["wall_s"]:
            best = result
    best["rate_key"] = "events_per_s"
    best["normalized"] = best["events_per_s"] / calib
    benches["scale_smallio"] = best
    if sweep:
        result = bench_figure_sweep(quick, jobs=jobs)
        # Normalized *cost* (lower is better): serial wall scaled by
        # machine speed, so the gate is meaningful across machines.
        result["rate_key"] = "speedup"
        result["normalized"] = result["speedup"]
        benches["figure_sweep"] = result
    return {
        "schema": SCHEMA_VERSION,
        "quick": quick,
        "calibration_ops_per_s": calib,
        # Informational only (not part of the digest or the gate): the
        # figure-sweep speedup is bounded by the host's core count.
        "host": {"cpu_count": os.cpu_count(),
                 "python": platform.python_version(),
                 "platform": sys.platform},
        "reference_seed_kernel": SEED_KERNEL_REFERENCE,
        "benches": benches,
    }


def digest(doc: Dict[str, Any]) -> Dict[str, Any]:
    """The machine-independent projection of a suite document."""
    out: Dict[str, Any] = {"schema": doc["schema"], "quick": doc["quick"]}
    for name, bench in doc["benches"].items():
        out[name] = {k: bench[k] for k in DIGEST_FIELDS if k in bench}
    return out


#: Benches whose tolerance is capped tighter than ``--tolerance``: the
#: event-loop and the many-client scheduler path are the two rates every
#: figure rides on, so they may never drift more than 20% below baseline
#: even when the blanket tolerance is looser.
STRICT_TOLERANCE = {"kernel_events": 0.20, "scale_smallio": 0.20}


def check_regression(doc: Dict[str, Any], baseline: Dict[str, Any],
                     tolerance: float = 0.25) -> List[str]:
    """Compare normalized rates against a committed baseline.

    Returns a list of human-readable failures (empty = pass). A bench
    regresses when its normalized rate drops more than ``tolerance``
    below the baseline's (capped per-bench by :data:`STRICT_TOLERANCE`).
    Benches present in only one document are skipped (the suite may
    grow).
    """
    problems = []
    if baseline.get("schema") != doc["schema"]:
        return [f"baseline schema {baseline.get('schema')} != "
                f"{doc['schema']}; refresh BENCH_perf.json"]
    base_benches = baseline.get("benches", {})
    for name, bench in doc["benches"].items():
        base = base_benches.get(name)
        if base is None or "normalized" not in base:
            continue
        tol = min(tolerance, STRICT_TOLERANCE.get(name, tolerance))
        floor = base["normalized"] * (1.0 - tol)
        if bench["normalized"] < floor:
            problems.append(
                f"{name}: normalized {bench['normalized']:.4f} < "
                f"{floor:.4f} (baseline {base['normalized']:.4f} "
                f"- {tol:.0%})")
        if name == "figure_sweep" and not bench.get("identical", True):
            problems.append("figure_sweep: serial and parallel results "
                            "differ — determinism broken")
    return problems


def check_speedup(doc: Dict[str, Any], minimum: float) -> Optional[str]:
    """Gate the figure-sweep speedup; None = pass (or not applicable).

    On hosts that cannot possibly show a parallel win (fewer than two
    cores, so the pool time-slices one CPU) the gate reports a skip
    notice instead of failing — the CI runners that enforce it are
    multi-core.
    """
    sweep = doc["benches"].get("figure_sweep")
    if sweep is None:
        return None
    cores = doc.get("host", {}).get("cpu_count") or os.cpu_count() or 1
    if cores < 2:
        print(f"speedup gate skipped: host has {cores} CPU "
              f"(parallel speedup needs >= 2 cores)", file=sys.stderr)
        return None
    if sweep["speedup"] < minimum:
        return (f"figure_sweep: speedup {sweep['speedup']:.2f}x at "
                f"{sweep['jobs']} jobs < required {minimum:.2f}x")
    return None


def profile_suite(quick: bool = False, top: int = 15) -> str:
    """cProfile every in-process bench; top-``top`` by cumulative time.

    The figure sweep is excluded: its cost is multiprocess orchestration
    that a parent-side profile cannot see. One run per bench (profiling
    overhead would poison a best-of-N comparison anyway).
    """
    serial = dict(BENCHES)
    serial["telemetry_reads"] = (bench_telemetry_reads, "ops_per_s")
    serial["scale_smallio"] = (bench_scale_smallio, "events_per_s")
    sections = []
    for name, (fn, _rate_key) in serial.items():
        profiler = cProfile.Profile()
        profiler.enable()
        fn(quick)
        profiler.disable()
        buf = io.StringIO()
        stats = pstats.Stats(profiler, stream=buf)
        stats.sort_stats("cumulative").print_stats(top)
        sections.append(f"=== {name} (top {top} by cumulative) ===\n"
                        f"{buf.getvalue().rstrip()}")
    return "\n\n".join(sections)


def render(doc: Dict[str, Any]) -> str:
    """Human-readable table for a perf-suite result document."""
    lines = [f"Engine microbenchmarks "
             f"({'quick' if doc['quick'] else 'full'} shapes; "
             f"calibration {doc['calibration_ops_per_s'] / 1e6:.1f} "
             f"Mops/s)"]
    lines.append(f"  {'bench':<18} {'rate':>14} {'normalized':>11} "
                 f"{'vs seed':>8} {'wall s':>8}  deterministic")
    ref = doc.get("reference_seed_kernel", {})
    for name, bench in doc["benches"].items():
        rate_key = bench["rate_key"]
        det = {k: bench[k] for k in DIGEST_FIELDS if k in bench}
        if name == "figure_sweep":
            rate = (f"{bench['speedup']:.2f}x/" f"{bench['jobs']}j")
            wall = bench["serial_s"] + bench["parallel_s"]
        else:
            rate = f"{bench[rate_key]:,.0f}/s"
            wall = bench["wall_s"]
        gain = (f"{bench['normalized'] / ref[name] - 1:+8.0%}"
                if ref.get(name) else f"{'—':>8}")
        lines.append(f"  {name:<18} {rate:>14} "
                     f"{bench['normalized']:>11.4f} {gain} "
                     f"{wall:>8.2f}  {det}")
    return "\n".join(lines)


def main(argv=None) -> int:
    """Entry point for ``repro-bench perf``."""
    parser = argparse.ArgumentParser(
        prog="repro-bench perf",
        description="Benchmark the simulation engine: event-loop "
                    "dispatch, fan-in, fabric, end-to-end RPC, and the "
                    "parallel campaign runner's figure-sweep speedup.")
    parser.add_argument("--quick", action="store_true",
                        help="smaller bench shapes (CI-sized)")
    parser.add_argument("--jobs", type=int, default=4,
                        help="pool size for the figure-sweep comparison "
                             "(default 4)")
    parser.add_argument("--repeat", type=int, default=3,
                        help="runs per microbench; best wall time wins "
                             "(default 3)")
    parser.add_argument("--no-sweep", action="store_true",
                        help="skip the figure-sweep serial-vs-parallel "
                             "comparison (microbenches only)")
    parser.add_argument("--json", action="store_true",
                        help="emit the full suite document as JSON")
    parser.add_argument("--digest", action="store_true",
                        help="emit only the deterministic fields (for "
                             "byte-for-byte CI diffs)")
    parser.add_argument("--out", metavar="PATH",
                        help="also write the suite document to PATH "
                             "(the tracked BENCH_perf.json)")
    parser.add_argument("--check", metavar="PATH",
                        help="compare against a baseline document; "
                             "nonzero exit on regression")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed normalized-rate drop vs the "
                             "baseline (default 0.25; kernel_events and "
                             "scale_smallio are capped at 0.20)")
    parser.add_argument("--min-speedup", type=float, default=None,
                        metavar="X",
                        help="fail unless the figure-sweep speedup "
                             "reaches X (skipped with a notice on "
                             "single-core hosts)")
    parser.add_argument("--profile", type=int, nargs="?", const=15,
                        default=None, metavar="N",
                        help="cProfile each bench and print the top N "
                             "functions by cumulative time (default 15); "
                             "skips the suite's timing comparison")
    args = parser.parse_args(argv)

    if args.profile is not None:
        print(profile_suite(quick=args.quick, top=args.profile))
        return 0

    doc = run_suite(quick=args.quick, jobs=args.jobs, repeat=args.repeat,
                    sweep=not args.no_sweep)

    if args.out:
        with open(args.out, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")

    if args.digest:
        print(json.dumps(digest(doc), indent=2, sort_keys=True))
    elif args.json:
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        print(render(doc))

    sweep = doc["benches"].get("figure_sweep")
    if sweep is not None and not sweep["identical"]:
        print("FAILED: parallel figure sweep diverged from serial run",
              file=sys.stderr)
        return 1
    if args.min_speedup is not None:
        problem = check_speedup(doc, args.min_speedup)
        if problem is not None:
            print(f"PERF REGRESSION: {problem}", file=sys.stderr)
            return 1
    if args.check:
        with open(args.check) as fh:
            baseline = json.load(fh)
        problems = check_regression(doc, baseline,
                                    tolerance=args.tolerance)
        if problems:
            for problem in problems:
                print(f"PERF REGRESSION: {problem}", file=sys.stderr)
            return 1
        print(f"perf check vs {args.check}: ok "
              f"(tolerance {args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
