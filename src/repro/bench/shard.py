"""``repro-bench shard`` — scale-out sweep over sharded multi-server NAS.

The paper's testbed stops at one server. This campaign asks the natural
scale-out question: when files are striped over N servers and clients
route block-ranges directly (``repro.nas.shard``), how does aggregate
small-I/O throughput grow 1 -> 4 servers per system?

The qualitative result to reproduce: ODAFS scales near-linearly — the
measured pass runs over client-initiated ORDMA, so adding servers adds
NIC/link capacity with no CPU in the data path on either side — while
NFS scales sublinearly: relieving the saturated server CPU just exposes
the client's per-byte copy cost (Table 1), which no amount of servers
removes.

Two workload mixes, mirroring ``repro-bench scale``:

* ``smallio`` — every client streams the same warm striped file in wide
  application reads (each read fans out across shards) through a small
  client cache;
* ``postmark`` — every client runs read-only open/read/close
  transactions over a shared small-file set whose files spread across
  shards by placement hash.

The campaign ends with a crash-failover point: ``replicas=1``, one
server crashed mid-run, verifying the run *completes* (reads fail over
to the replica; the ORDMA directory entries for the dead shard fault
and fall back to RPC, which times out and reroutes) instead of hanging.

Every point is a pure function of ``(master seed, point spec)``; two
same-seed campaigns emit byte-identical JSON for any ``--jobs`` count
(the CI shard-smoke job diffs them).

Examples::

    repro-bench shard --quick --seed 7
    repro-bench shard --systems nfs odafs --servers 1 2 4 --jobs 4
    repro-bench shard --quick --json > shard.json
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Dict, Generator, List, Optional, Sequence

from ..faults import FaultSchedule, Injector
from ..nas.shard import SHARD_SYSTEMS, ShardDownError, ShardedCluster
from ..nas.shard.placement import shard_config_error
from ..params import KB, Params, default_params
from ..sim import LatencyStats
from ..workloads.smallio import MultiClientReadWorkload
from .plot import ascii_chart
from .runner import add_campaign_args, campaign_json, run_grid, \
    seeded_params
from .runner import base_params as runner_base_params

#: Workload mixes the campaign can sweep.
MIXES = ("smallio", "postmark")

#: Server counts, default and --quick grids.
DEFAULT_SERVERS = (1, 2, 4)
QUICK_SERVERS = (1, 2)

#: Systems compared by default (the scale-out story's two poles).
DEFAULT_SYSTEMS = ("nfs", "odafs")

#: 4 KB: the paper's small-I/O unit; application reads span 8 of them
#: so a single read fans out across shards.
BLOCK = 4 * KB
APP_BLOCK = 64 * KB

#: Failover point: when (us) the crashed shard goes down, and for how
#: long (longer than the run, so recovery is routing, not waiting).
CRASH_AT_US = 3000.0
CRASH_DOWNTIME_US = 1_000_000.0


#: Stripe unit in blocks: an ``APP_BLOCK`` read splits into contiguous
#: 16 KB per-shard segments instead of eight single-block RPCs.
STRIPE_BLOCKS = 4


def _shard_params(params: Optional[Params], n_servers: int,
                  placement: str, replicas: int = 0) -> Params:
    """A params copy with the shard layer configured for one point."""
    p = (params or default_params()).copy()
    p.shard.n_servers = n_servers
    p.shard.placement = placement
    p.shard.stripe_blocks = STRIPE_BLOCKS
    p.shard.replicas = replicas
    return p


def _client_kwargs(system: str, width: int = APP_BLOCK // BLOCK
                   ) -> Dict[str, Any]:
    """Client caches sized so the measured pass always misses locally.

    The DAFS/ODAFS cache is block-granular — it must hold one read's
    ``width``-block fan-out but stay below every shard's slice of the
    working set. The NFS buffer cache is *request*-granular, so two
    entries under a scan of four or more distinct requests guarantee
    misses.
    """
    if system in ("dafs", "odafs"):
        return {"cache_blocks": width + 4, "rpc_read_mode": "direct"}
    return {"bcache_entries": 2}


def _collect(cluster: ShardedCluster, ops: int, unit_bytes: int,
             elapsed: float, latency: LatencyStats) -> Dict[str, Any]:
    """Shape one campaign point (rounded: byte-identical across runs)."""
    router_stats = [r.stats for r in cluster.clients]
    point: Dict[str, Any] = {
        "ops": ops,
        "sim_us": round(cluster.sim.now, 2),
        "elapsed_us": round(elapsed, 2),
        "throughput_mb_s": (round(ops * unit_bytes / elapsed, 3)
                            if elapsed > 0 else 0.0),
        "ops_s": (round(ops / elapsed * 1e6, 1) if elapsed > 0 else 0.0),
        "p50_us": round(latency.percentile(50), 2) if latency.count else 0.0,
        "p95_us": round(latency.percentile(95), 2) if latency.count else 0.0,
        "p99_us": round(latency.percentile(99), 2) if latency.count else 0.0,
        "server_cpu": round(cluster.server_cpu_utilization(), 4),
        "server_cpus": [round(u, 4)
                        for u in cluster.server_cpu_utilizations()],
        "client_cpu": round(cluster.client_cpu_utilization(0), 4),
        "routed_segments": sum(s.get("routed_segments")
                               for s in router_stats),
        "fanout_reads": sum(s.get("fanout_reads") for s in router_stats),
    }
    if cluster.system == "odafs":
        ordma = sum(sub.stats.get("ordma_reads")
                    for r in cluster.clients for sub in r.subclients)
        rpc_fills = sum(sub.stats.get("rpc_fills")
                        for r in cluster.clients for sub in r.subclients)
        fills = ordma + rpc_fills
        point["ordma_frac"] = round(ordma / fills, 4) if fills else 0.0
    return point


def run_point_smallio(system: str, n_servers: int,
                      params: Optional[Params] = None,
                      placement: str = "stripe", n_clients: int = 8,
                      blocks: int = 128) -> Dict[str, Any]:
    """One small-I/O point: N clients stream a warm striped
    ``blocks``-block file twice in ``APP_BLOCK`` reads; pass 2 is
    measured (for ODAFS it runs over client-initiated ORDMA against
    every shard's directory, warm from pass 1)."""
    p = _shard_params(params, n_servers, placement)
    cluster = ShardedCluster(p, system=system, n_clients=n_clients,
                             block_size=BLOCK,
                             server_cache_blocks=blocks + 8,
                             client_kwargs=_client_kwargs(system))
    cluster.create_file("shard", blocks * BLOCK)
    latency = LatencyStats("read_us")
    workload = MultiClientReadWorkload(cluster, "shard", blocks * BLOCK,
                                       app_block_size=APP_BLOCK,
                                       latency=latency)
    result = workload.run()
    ops = n_clients * blocks * BLOCK // APP_BLOCK  # measured pass only
    elapsed = ops * APP_BLOCK / result["throughput_mb_s"]
    return _collect(cluster, ops, APP_BLOCK, elapsed, latency)


def run_point_postmark(system: str, n_servers: int,
                       params: Optional[Params] = None,
                       placement: str = "stripe", n_clients: int = 8,
                       n_files: int = 32,
                       transactions: int = 48) -> Dict[str, Any]:
    """One PostMark point: N clients each run ``transactions`` read-only
    open/read/close transactions over a shared warm small-file set whose
    files spread across shards by placement hash."""
    p = _shard_params(params, n_servers, placement)
    cluster = ShardedCluster(p, system=system, n_clients=n_clients,
                             block_size=BLOCK,
                             server_cache_blocks=n_files + 8,
                             client_kwargs=_client_kwargs(system, width=1))
    for i in range(n_files):
        cluster.create_file(f"pm{i:06d}", BLOCK)
    sim = cluster.sim
    latency = LatencyStats("txn_us")
    warm_done = [sim.event() for _ in cluster.clients]
    warm_barrier = sim.all_of(warm_done)

    def txn(client, name: str) -> Generator:
        proto = client.host.params.proto
        yield from client.host.cpu.execute(proto.app_txn_us,
                                           category="app")
        yield from client.open(name)
        yield from client.read(name, 0, BLOCK)
        yield from client.close(name)

    def client_main(idx: int) -> Generator:
        client = cluster.clients[idx]
        rng = cluster.rand.stream(f"shard.pm{idx}")
        for i in range(n_files):
            yield from txn(client, f"pm{i:06d}")
        warm_done[idx].succeed(None)
        yield warm_barrier
        for _ in range(transactions):
            name = f"pm{rng.randrange(n_files):06d}"
            start = sim.now
            yield from txn(client, name)
            latency.record(sim.now - start)

    def driver() -> Generator:
        procs = [sim.process(client_main(i), name=f"shard-pm{i}")
                 for i in range(len(cluster.clients))]
        yield warm_barrier
        cluster.reset_measurements()
        start = sim.now
        yield sim.all_of(procs)
        return sim.now - start

    elapsed = sim.run_process(driver())
    ops = n_clients * transactions
    return _collect(cluster, ops, BLOCK, elapsed, latency)


def run_failover_point(system: str = "odafs", n_servers: int = 4,
                       params: Optional[Params] = None,
                       placement: str = "stripe", blocks: int = 64,
                       reads: int = 150) -> Dict[str, Any]:
    """Crash one shard mid-run with a replica configured and verify the
    workload completes over failover instead of hanging.

    For ODAFS this exercises the full recovery chain: the dead shard's
    cached ORDMA references fault, the client falls back to RPC, the RPC
    times out, and the router reroutes the segment to the replica.
    """
    p = _shard_params(params, n_servers, placement, replicas=1)
    cluster = ShardedCluster(p, system=system, n_clients=1,
                             block_size=BLOCK,
                             server_cache_blocks=blocks + 8,
                             client_kwargs=_client_kwargs(system))
    cluster.create_file("fo", blocks * BLOCK)
    inj = Injector(cluster)
    inj.enable_resilience(timeout_us=2000.0, max_retries=2)
    inj.schedule_server_crash(FaultSchedule.at([CRASH_AT_US]),
                              downtime_us=CRASH_DOWNTIME_US, shard=0)
    inj.arm()
    router = cluster.clients[0]
    state = {"ok": 0, "failed": 0}

    def workload() -> Generator:
        yield from router.open("fo")
        for i in range(reads):
            try:
                yield from router.read("fo", (i % blocks) * BLOCK, BLOCK)
            except ShardDownError:
                state["failed"] += 1
            else:
                state["ok"] += 1
            yield cluster.sim.timeout(100.0)

    completed = True
    try:
        cluster.sim.run_process(workload())
    except Exception:
        completed = False
    stats = router.stats
    return {
        "completed": completed,
        "ops_ok": state["ok"],
        "ops_failed": state["failed"],
        "server_crashes": inj.stats.get("server.crash"),
        "cache_blocks_lost": inj.stats.get("server.cache_blocks_lost"),
        "failovers": stats.get("failovers"),
        "replica_reads": stats.get("replica_reads"),
        "down_marks": stats.get("down_marks"),
        "sim_us": round(cluster.sim.now, 2),
    }


def _shard_point(spec) -> Dict[str, Any]:
    """One grid point, shaped for :func:`repro.bench.runner.run_points`."""
    (mix, system, n_servers, placement, n_clients, blocks,
     n_files, transactions) = spec
    params = runner_base_params()
    if mix == "smallio":
        return run_point_smallio(system, n_servers, params=params,
                                 placement=placement,
                                 n_clients=n_clients, blocks=blocks)
    return run_point_postmark(system, n_servers, params=params,
                              placement=placement, n_clients=n_clients,
                              n_files=n_files, transactions=transactions)


def scaling_summary(series: Dict[str, Dict[str, Any]]) -> Dict[str, Any]:
    """Per-system speedups over the 1-server baseline.

    The scale-out claim reads off this: ODAFS's speedup at the largest
    count approaches the server count (near-linear) while NFS's falls
    well short (client copy CPU binds).
    """
    summary: Dict[str, Any] = {}
    for system, points in series.items():
        counts = sorted(points, key=int)
        base = points[counts[0]]["throughput_mb_s"]
        summary[system] = {
            "speedup": {n: (round(points[n]["throughput_mb_s"] / base, 4)
                            if base > 0 else 0.0)
                        for n in counts},
            "peak_mb_s": max(p["throughput_mb_s"]
                             for p in points.values()),
        }
    return summary


def shard_campaign(params: Optional[Params] = None,
                   systems: Sequence[str] = DEFAULT_SYSTEMS,
                   mixes: Sequence[str] = MIXES,
                   server_counts: Sequence[int] = DEFAULT_SERVERS,
                   placement: str = "stripe", n_clients: int = 8,
                   blocks: int = 64, n_files: int = 32,
                   transactions: int = 48, failover: bool = True,
                   jobs: Optional[int] = None) -> Dict[str, Any]:
    """{mix: {system: {str(n): point}, "summary": ...}, "failover": ...}.

    Points share no mutable state (each builds its own sharded cluster
    from the seed), so the grid fans out over ``jobs`` workers with
    results byte-identical to a serial run.
    """
    for system in systems:
        if system not in SHARD_SYSTEMS:
            raise ValueError(f"unknown system {system!r}; "
                             f"one of {SHARD_SYSTEMS}")
    for mix in mixes:
        if mix not in MIXES:
            raise ValueError(f"unknown mix {mix!r}; one of {MIXES}")
    base = params if params is not None else default_params()
    specs = [(mix, system, n, placement, n_clients, blocks,
              n_files, transactions)
             for mix in mixes
             for system in systems
             for n in server_counts]
    results = run_grid(_shard_point, specs,
                       lambda s: (s[0], s[1], str(s[2])), jobs=jobs,
                       base=base, cost=lambda s: s[2])  # server count
    for mix in results:
        results[mix]["summary"] = scaling_summary(
            {s: pts for s, pts in results[mix].items() if s != "summary"})
    if failover:
        fo_system = "odafs" if "odafs" in systems else systems[0]
        results["failover"] = run_failover_point(
            fo_system, n_servers=max(server_counts), params=params,
            placement=placement, blocks=blocks)
    return results


def render_campaign(results: Dict[str, Any]) -> str:
    """Per-mix scale-out tables plus throughput-vs-servers curves."""
    lines: List[str] = []
    for mix, per_system in results.items():
        if mix == "failover":
            continue
        lines.append(f"== mix: {mix} (x axis: servers) ==")
        lines.append(f"  {'system':<8} {'n':>4} {'MB/s':>8} {'ops/s':>10} "
                     f"{'p50 us':>9} {'p95 us':>9} {'srv cpu':>8} "
                     f"{'cli cpu':>8} {'fanout':>7}")
        tput: Dict[str, Dict[int, float]] = {}
        for system, points in per_system.items():
            if system == "summary":
                continue
            for key, point in points.items():
                n = int(key)
                tput.setdefault(system, {})[n] = point["throughput_mb_s"]
                lines.append(
                    f"  {system:<8} {n:>4} "
                    f"{point['throughput_mb_s']:>8.2f} "
                    f"{point['ops_s']:>10.1f} {point['p50_us']:>9.1f} "
                    f"{point['p95_us']:>9.1f} {point['server_cpu']:>8.3f} "
                    f"{point['client_cpu']:>8.3f} "
                    f"{point['fanout_reads']:>7}")
        lines.append("")
        lines.append(ascii_chart(tput, ylabel="MB/s", xlabel="servers"))
        summary = per_system.get("summary", {})
        for system, stats in summary.items():
            if isinstance(stats, dict):
                speedups = ", ".join(f"{n}:{s:.2f}x"
                                     for n, s in stats["speedup"].items())
                lines.append(f"  {system}: speedup {speedups}, peak "
                             f"{stats['peak_mb_s']:.1f} MB/s")
        lines.append("")
    fo = results.get("failover")
    if fo is not None:
        lines.append("== failover: one shard crashed mid-run, "
                     "replicas=1 ==")
        status = "completed" if fo["completed"] else "HUNG"
        lines.append(f"  {status}: {fo['ops_ok']} ok, "
                     f"{fo['ops_failed']} failed; "
                     f"{fo['failovers']} failover(s), "
                     f"{fo['replica_reads']} replica read(s), "
                     f"{fo['cache_blocks_lost']} cached block(s) lost")
        lines.append("")
    return "\n".join(lines)


def main(argv=None) -> int:
    """Entry point for ``repro-bench shard``."""
    parser = argparse.ArgumentParser(
        prog="repro-bench shard",
        description="Scale-out sweep over sharded multi-server NAS: "
                    "aggregate throughput vs server count per system, "
                    "plus a crash-failover check.")
    parser.add_argument("--systems", nargs="+", default=None,
                        choices=SHARD_SYSTEMS, metavar="SYSTEM",
                        help=f"systems to sweep (default: "
                             f"{', '.join(DEFAULT_SYSTEMS)})")
    parser.add_argument("--mixes", nargs="+", default=list(MIXES),
                        choices=MIXES, metavar="MIX",
                        help="workload mixes to sweep (default: all)")
    parser.add_argument("--servers", nargs="+", type=int, default=None,
                        metavar="N",
                        help=f"server counts (default: {DEFAULT_SERVERS})")
    parser.add_argument("--placement", default="stripe",
                        choices=("stripe", "hash"),
                        help="block placement policy (default stripe)")
    parser.add_argument("--clients", type=int, default=8,
                        help="client hosts per point (default 8)")
    parser.add_argument("--blocks", type=int, default=128,
                        help="4 KB blocks in the smallio file; keep each "
                             "shard's slice bigger than the client cache "
                             "(default 128)")
    parser.add_argument("--files", type=int, default=32,
                        help="PostMark file-set size (default 32)")
    parser.add_argument("--transactions", type=int, default=48,
                        help="measured PostMark transactions per client "
                             "(default 48)")
    parser.add_argument("--no-failover", action="store_true",
                        help="skip the crash-failover point")
    parser.add_argument("--quick", action="store_true",
                        help="smaller grid (1-2 servers, 4 clients, "
                             "smallio only)")
    add_campaign_args(parser)
    args = parser.parse_args(argv)

    params = seeded_params(args.seed)
    systems = tuple(args.systems) if args.systems else DEFAULT_SYSTEMS
    counts = tuple(args.servers) if args.servers else \
        (QUICK_SERVERS if args.quick else DEFAULT_SERVERS)
    mixes = tuple(args.mixes)
    if args.quick and args.mixes == list(MIXES):
        mixes = ("smallio",)
    n_clients = 4 if args.quick else args.clients
    blocks = 64 if args.quick else args.blocks
    transactions = 24 if args.quick else args.transactions

    # Validate every shard configuration the campaign will wire *now*,
    # so a bad combination is one clear message and exit 2 — not a
    # traceback from deep inside ShardedCluster construction.
    for n in counts:
        err = shard_config_error(
            _shard_params(params, n, args.placement).shard, params.seed)
        if err is not None:
            print(f"repro-bench shard: invalid config for --servers {n}: "
                  f"{err}", file=sys.stderr)
            return 2
    if not args.no_failover:
        err = shard_config_error(
            _shard_params(params, max(counts), args.placement,
                          replicas=1).shard, params.seed)
        if err is not None:
            print(f"repro-bench shard: the failover point needs a replica "
                  f"({err}); pass --servers >= 2 or --no-failover",
                  file=sys.stderr)
            return 2

    results = shard_campaign(params=params, systems=systems, mixes=mixes,
                             server_counts=counts,
                             placement=args.placement,
                             n_clients=n_clients, blocks=blocks,
                             n_files=args.files,
                             transactions=transactions,
                             failover=not args.no_failover,
                             jobs=args.jobs)

    if args.json:
        print(campaign_json(results, seed=params.seed,
                            servers=list(counts),
                            placement=args.placement,
                            n_clients=n_clients, blocks=blocks))
    else:
        print(f"Shard scale-out campaign — seed {params.seed}, "
              f"placement {args.placement}, {n_clients} clients, "
              f"{blocks}x4KB blocks")
        print()
        print(render_campaign(results))
        fo = results.get("failover")
        if fo is not None and not fo["completed"]:
            print("FAILED: failover point hung")
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
