"""Table 2: baseline network performance of the transport protocols.

Reproduces the gm_allsize / pingpong / netperf measurements of Section 5:
one-byte round-trip time and streaming bandwidth for GM, VI (polling and
blocking completion) and UDP over the Ethernet emulation.
"""

from __future__ import annotations

from typing import Dict

from ..hw.host import Host
from ..hw.nic import NotifyMode
from ..net.link import Switch
from ..params import KB, Params, default_params
from ..proto.messaging import GMEndpoint
from ..proto.udp import UDPStack
from ..proto.vi import VIEndpoint
from ..sim import Simulator


def _pair(params: Params):
    sim = Simulator()
    switch = Switch(sim, params.net)
    return sim, Host(sim, params, switch, "A"), Host(sim, params, switch, "B")


def _endpoint_rtt(sim, ep_a, ep_b, rounds: int = 20) -> float:
    """Mean 1-byte ping-pong RTT over ``rounds`` (first discarded)."""

    def pong():
        for _ in range(rounds):
            yield from ep_b.recv()
            yield from ep_b.send("A", 1)

    def ping():
        samples = []
        for _ in range(rounds):
            start = sim.now
            yield from ep_a.send("B", 1)
            yield from ep_a.recv()
            samples.append(sim.now - start)
        return sum(samples[1:]) / len(samples[1:])

    sim.process(pong())
    proc = sim.process(ping())
    sim.run()
    return proc.value


def _endpoint_bw(sim, ep_a, ep_b, count: int = 64,
                 nbytes: int = 64 * KB) -> float:
    def sender():
        for i in range(count):
            yield from ep_a.send("B", nbytes, data=i)

    def receiver():
        for _ in range(count):
            yield from ep_b.recv()
        return count * nbytes / sim.now

    sim.process(sender())
    proc = sim.process(receiver())
    sim.run()
    return proc.value


def gm_baseline(params: Params = None) -> Dict[str, float]:
    """GM raw messaging: 1-byte round trip + 64 KB streaming bandwidth."""
    params = params or default_params()
    sim, a, b = _pair(params)
    ep_a = GMEndpoint(a, 1, slots=8, buf_size=64 * KB)
    ep_b = GMEndpoint(b, 1, slots=80, buf_size=64 * KB)
    rtt = _endpoint_rtt(sim, ep_a, ep_b)
    sim2, a2, b2 = _pair(params)
    bw = _endpoint_bw(sim2,
                      GMEndpoint(a2, 1, slots=8, buf_size=64 * KB),
                      GMEndpoint(b2, 1, slots=80, buf_size=64 * KB))
    return {"roundtrip_us": rtt, "bandwidth_mb_s": bw}


def vi_baseline(params: Params = None, mode: str = "poll") -> Dict[str, float]:
    """VI over GM with polling or blocking completion (Table 2 rows 2-3)."""
    params = params or default_params()
    notify = NotifyMode.POLL if mode == "poll" else NotifyMode.BLOCK
    sim, a, b = _pair(params)
    ep_a = VIEndpoint(a, 1, mode=notify, slots=8, buf_size=64 * KB)
    ep_b = VIEndpoint(b, 1, mode=notify, slots=80, buf_size=64 * KB)
    rtt = _endpoint_rtt(sim, ep_a, ep_b)
    sim2, a2, b2 = _pair(params)
    bw = _endpoint_bw(sim2,
                      VIEndpoint(a2, 1, mode=notify, slots=8,
                                 buf_size=64 * KB),
                      VIEndpoint(b2, 1, mode=notify, slots=80,
                                 buf_size=64 * KB))
    return {"roundtrip_us": rtt, "bandwidth_mb_s": bw}


def udp_baseline(params: Params = None) -> Dict[str, float]:
    """netperf-style UDP: round-trip plus a copy-each-side stream."""
    params = params or default_params()
    sim, a, b = _pair(params)
    sock_a = UDPStack(a).socket(9000)
    sock_b = UDPStack(b).socket(9000)
    rounds = 20

    def pong():
        for _ in range(rounds):
            yield from sock_b.recv()
            yield from sock_b.send("A", 1)

    def ping():
        samples = []
        for _ in range(rounds):
            start = sim.now
            yield from sock_a.send("B", 1)
            yield from sock_a.recv()
            samples.append(sim.now - start)
        return sum(samples[1:]) / len(samples[1:])

    sim.process(pong())
    proc = sim.process(ping())
    sim.run()
    rtt = proc.value

    sim2, a2, b2 = _pair(params)
    sa = UDPStack(a2).socket(9000)
    sb = UDPStack(b2).socket(9000)
    count, nbytes = 64, 32 * KB

    def sender():
        for i in range(count):
            yield from sa.send("B", nbytes, data=i, copy="cached")

    def receiver():
        for _ in range(count):
            msg = yield from sb.recv()
            yield from b2.cpu.copy(msg.size, cached=True)
        return count * nbytes / sim2.now

    sim2.process(sender())
    proc2 = sim2.process(receiver())
    sim2.run()
    return {"roundtrip_us": rtt, "bandwidth_mb_s": proc2.value}


#: Paper's Table 2 values, for side-by-side reporting.
PAPER_TABLE2 = {
    "GM": {"roundtrip_us": 23.0, "bandwidth_mb_s": 244.0},
    "VI poll": {"roundtrip_us": 23.0, "bandwidth_mb_s": 244.0},
    "VI block": {"roundtrip_us": 53.0, "bandwidth_mb_s": 244.0},
    "UDP/Ethernet": {"roundtrip_us": 80.0, "bandwidth_mb_s": 166.0},
}


def table2(params: Params = None) -> Dict[str, Dict[str, float]]:
    """All four Table 2 rows."""
    return {
        "GM": gm_baseline(params),
        "VI poll": vi_baseline(params, "poll"),
        "VI block": vi_baseline(params, "block"),
        "UDP/Ethernet": udp_baseline(params),
    }
