"""Measurement instruments: utilization, latency, and throughput meters.

Every figure in the paper is either a throughput, a CPU utilization, or a
response time; these classes are the common read-out path for all of them.
Meters support a *measurement window* so warm-up passes (e.g. the first pass
of the Table 3 microbenchmark) can be excluded, exactly as the paper does.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from .core import Simulator


class BusyTracker:
    """Accumulates busy time, optionally split by category.

    Used by the CPU model for utilization figures (Fig. 4) and by the
    server CPU accounting in the PostMark experiment (Fig. 6).
    """

    def __init__(self, sim: Simulator, name: str = ""):
        self.sim = sim
        self.name = name
        self.busy_us = 0.0
        self.by_category: Dict[str, float] = {}
        self._window_start = 0.0
        self._window_busy_mark = 0.0

    def add(self, duration_us: float, category: str = "other") -> None:
        if duration_us < 0:
            raise ValueError(f"negative busy duration: {duration_us}")
        self.busy_us += duration_us
        self.by_category[category] = self.by_category.get(category, 0.0) + duration_us

    def reset_window(self) -> None:
        """Start a fresh measurement window at the current time."""
        self._window_start = self.sim.now
        self._window_busy_mark = self.busy_us

    def window_utilization(self) -> float:
        """Fraction of time busy since the last :meth:`reset_window`."""
        elapsed = self.sim.now - self._window_start
        if elapsed <= 0:
            return 0.0
        return min(1.0, (self.busy_us - self._window_busy_mark) / elapsed)

    def utilization(self) -> float:
        if self.sim.now <= 0:
            return 0.0
        return min(1.0, self.busy_us / self.sim.now)


class LatencyStats:
    """Streaming response-time statistics (Table 3, PostMark latencies)."""

    def __init__(self, name: str = ""):
        self.name = name
        self.samples: List[float] = []

    def record(self, latency_us: float) -> None:
        if latency_us < 0:
            raise ValueError(f"negative latency: {latency_us}")
        self.samples.append(latency_us)

    def reset(self) -> None:
        self.samples.clear()

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        return sum(self.samples) / len(self.samples) if self.samples else 0.0

    @property
    def minimum(self) -> float:
        return min(self.samples) if self.samples else 0.0

    @property
    def maximum(self) -> float:
        return max(self.samples) if self.samples else 0.0

    @property
    def stdev(self) -> float:
        n = len(self.samples)
        if n < 2:
            return 0.0
        mu = self.mean
        return math.sqrt(sum((x - mu) ** 2 for x in self.samples) / (n - 1))

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile, ``p`` in [0, 100]."""
        if not self.samples:
            return 0.0
        if not 0 <= p <= 100:
            raise ValueError(f"percentile out of range: {p}")
        ordered = sorted(self.samples)
        rank = max(1, math.ceil(p / 100.0 * len(ordered)))
        return ordered[rank - 1]


class ThroughputMeter:
    """Counts bytes (or operations) over a measurement window.

    ``rate()`` returns units per microsecond; ``mb_per_s()`` converts a
    byte meter to the MB/s used throughout the paper (1 MB = 1e6 bytes,
    matching the paper's link-rate arithmetic: 2 Gb/s = 250 MB/s).
    """

    def __init__(self, sim: Simulator, name: str = ""):
        self.sim = sim
        self.name = name
        self.total = 0.0
        self._window_start = 0.0
        self._window_mark = 0.0

    def add(self, amount: float) -> None:
        if amount < 0:
            raise ValueError(f"negative meter increment: {amount}")
        self.total += amount

    def reset_window(self) -> None:
        self._window_start = self.sim.now
        self._window_mark = self.total

    def window_total(self) -> float:
        return self.total - self._window_mark

    def rate(self) -> float:
        elapsed = self.sim.now - self._window_start
        if elapsed <= 0:
            return 0.0
        return (self.total - self._window_mark) / elapsed

    def mb_per_s(self) -> float:
        """Bytes/µs happens to equal MB/s (1e6 B / 1e6 µs)."""
        return self.rate()

    def per_second(self) -> float:
        """Operations per second for an operation-count meter."""
        return self.rate() * 1e6


class Counter:
    """Named integer counters with a tiny dict interface."""

    def __init__(self):
        self._counts: Dict[str, int] = {}

    def reset(self) -> None:
        self._counts.clear()

    def incr(self, key: str, by: int = 1) -> None:
        self._counts[key] = self._counts.get(key, 0) + by

    def get(self, key: str) -> int:
        return self._counts.get(key, 0)

    def as_dict(self) -> Dict[str, int]:
        return dict(self._counts)

    def ratio(self, numerator: str, denominator: str) -> Optional[float]:
        den = self.get(denominator)
        if den == 0:
            return None
        return self.get(numerator) / den
