"""Measurement instruments: utilization, latency, and throughput meters.

Every figure in the paper is either a throughput, a CPU utilization, or a
response time; these classes are the common read-out path for all of them.
Meters support a *measurement window* so warm-up passes (e.g. the first pass
of the Table 3 microbenchmark) can be excluded, exactly as the paper does.
"""

from __future__ import annotations

import bisect
import math
import random
from typing import Dict, List, Optional

from .core import Simulator

#: Fixed log2 histogram bucket upper edges in microseconds: 1, 2, 4, ...,
#: 2^20 (~1.05 s). Samples above the last edge land in the overflow
#: bucket. Fixed edges keep histograms mergeable across runs and let
#: :meth:`LatencyStats.summary` report a distribution without sorting
#: the retained sample list.
HIST_EDGES_US = tuple(float(1 << k) for k in range(21))

#: Bucket labels aligned with ``HIST_EDGES_US`` plus the overflow bucket.
HIST_LABELS = tuple(f"le_{int(edge)}" for edge in HIST_EDGES_US) + ("inf",)


class BusyTracker:
    """Accumulates busy time, optionally split by category.

    Used by the CPU model for utilization figures (Fig. 4) and by the
    server CPU accounting in the PostMark experiment (Fig. 6).
    """

    def __init__(self, sim: Simulator, name: str = ""):
        self.sim = sim
        self.name = name
        self.busy_us = 0.0
        self.by_category: Dict[str, float] = {}
        self._window_start = 0.0
        self._window_busy_mark = 0.0

    def add(self, duration_us: float, category: str = "other") -> None:
        if duration_us < 0:
            raise ValueError(f"negative busy duration: {duration_us}")
        self.busy_us += duration_us
        self.by_category[category] = self.by_category.get(category, 0.0) + duration_us

    def reset_window(self) -> None:
        """Start a fresh measurement window at the current time."""
        self._window_start = self.sim.now
        self._window_busy_mark = self.busy_us

    def window_utilization(self) -> float:
        """Fraction of time busy since the last :meth:`reset_window`."""
        elapsed = self.sim.now - self._window_start
        if elapsed <= 0:
            return 0.0
        return min(1.0, (self.busy_us - self._window_busy_mark) / elapsed)

    def utilization(self) -> float:
        if self.sim.now <= 0:
            return 0.0
        return min(1.0, self.busy_us / self.sim.now)


class LatencyStats:
    """Streaming response-time statistics (Table 3, PostMark latencies).

    Count, mean, min, max and stdev are maintained as running aggregates
    over *every* recorded sample. Percentiles come from the retained
    sample list, which is unbounded by default; ``reservoir=k`` switches
    to Vitter's algorithm R so long-running workloads keep a bounded,
    uniform k-sample view (deterministic: seeded private RNG). The
    sorted view used by :meth:`percentile` is cached behind a dirty
    flag, so repeated percentile queries do not re-sort.
    """

    def __init__(self, name: str = "", reservoir: Optional[int] = None,
                 seed: int = 0x5EED):
        if reservoir is not None and reservoir < 1:
            raise ValueError(f"reservoir must be >= 1: {reservoir}")
        self.name = name
        self.reservoir = reservoir
        self._seed = seed
        self._rng = random.Random(seed) if reservoir is not None else None
        self._samples: List[float] = []
        self._sorted: Optional[List[float]] = None
        self._count = 0
        self._sum = 0.0
        self._sumsq = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._hist = [0] * len(HIST_LABELS)

    @property
    def samples(self) -> List[float]:
        """The retained samples (a uniform subsample in reservoir mode)."""
        return self._samples

    def record(self, latency_us: float) -> None:
        if latency_us < 0:
            raise ValueError(f"negative latency: {latency_us}")
        self._count += 1
        self._sum += latency_us
        self._sumsq += latency_us * latency_us
        if latency_us < self._min:
            self._min = latency_us
        if latency_us > self._max:
            self._max = latency_us
        # The histogram sees every sample, even once the reservoir below
        # starts subsampling — it is the full-population distribution.
        self._hist[bisect.bisect_left(HIST_EDGES_US, latency_us)] += 1
        if self.reservoir is not None and \
                len(self._samples) >= self.reservoir:
            # Algorithm R: keep each of the n samples with prob k/n.
            slot = self._rng.randrange(self._count)
            if slot < self.reservoir:
                self._samples[slot] = latency_us
                self._sorted = None
            return
        self._samples.append(latency_us)
        self._sorted = None

    def reset(self) -> None:
        self._samples.clear()
        self._sorted = None
        self._count = 0
        self._sum = 0.0
        self._sumsq = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._hist = [0] * len(HIST_LABELS)
        if self.reservoir is not None:
            self._rng = random.Random(self._seed)

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    @property
    def minimum(self) -> float:
        return self._min if self._count else 0.0

    @property
    def maximum(self) -> float:
        return self._max if self._count else 0.0

    @property
    def stdev(self) -> float:
        n = self._count
        if n < 2:
            return 0.0
        var = (self._sumsq - self._sum * self._sum / n) / (n - 1)
        return math.sqrt(max(0.0, var))

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile, ``p`` in [0, 100]."""
        if not self._samples:
            return 0.0
        if not 0 <= p <= 100:
            raise ValueError(f"percentile out of range: {p}")
        if self._sorted is None:
            self._sorted = sorted(self._samples)
        ordered = self._sorted
        rank = max(1, math.ceil(p / 100.0 * len(ordered)))
        return ordered[rank - 1]

    def histogram(self) -> Dict[str, int]:
        """Occupied log2 buckets, labelled ``le_<edge-us>`` (plus ``inf``
        for overflow). Counts cover every recorded sample regardless of
        reservoir subsampling."""
        return {label: count
                for label, count in zip(HIST_LABELS, self._hist) if count}

    def summary(self) -> Dict[str, float]:
        """The registry/JSON-friendly read-out."""
        return {"count": self._count, "mean": self.mean,
                "p50": self.percentile(50), "p95": self.percentile(95),
                "p99": self.percentile(99), "max": self.maximum,
                "hist": self.histogram()}


class ThroughputMeter:
    """Counts bytes (or operations) over a measurement window.

    ``rate()`` returns units per microsecond; ``mb_per_s()`` converts a
    byte meter to the MB/s used throughout the paper (1 MB = 1e6 bytes,
    matching the paper's link-rate arithmetic: 2 Gb/s = 250 MB/s).
    """

    def __init__(self, sim: Simulator, name: str = ""):
        self.sim = sim
        self.name = name
        self.total = 0.0
        self._window_start = 0.0
        self._window_mark = 0.0

    def add(self, amount: float) -> None:
        if amount < 0:
            raise ValueError(f"negative meter increment: {amount}")
        self.total += amount

    def reset_window(self) -> None:
        self._window_start = self.sim.now
        self._window_mark = self.total

    def window_total(self) -> float:
        return self.total - self._window_mark

    def rate(self) -> float:
        elapsed = self.sim.now - self._window_start
        if elapsed <= 0:
            return 0.0
        return (self.total - self._window_mark) / elapsed

    def mb_per_s(self) -> float:
        """Bytes/µs happens to equal MB/s (1e6 B / 1e6 µs)."""
        return self.rate()

    def per_second(self) -> float:
        """Operations per second for an operation-count meter."""
        return self.rate() * 1e6


class Counter:
    """Named integer counters with a tiny dict interface."""

    def __init__(self):
        self._counts: Dict[str, int] = {}

    def reset(self) -> None:
        self._counts.clear()

    def incr(self, key: str, by: int = 1) -> None:
        self._counts[key] = self._counts.get(key, 0) + by

    def get(self, key: str) -> int:
        return self._counts.get(key, 0)

    def as_dict(self) -> Dict[str, int]:
        return dict(self._counts)

    def ratio(self, numerator: str, denominator: str) -> Optional[float]:
        den = self.get(denominator)
        if den == 0:
            return None
        return self.get(numerator) / den
