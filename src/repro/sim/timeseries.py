"""Continuous telemetry: sim-time gauge sampling into ring buffers.

The span machinery (:mod:`repro.sim.trace`) answers *how long one request
took, stage by stage*; this module answers the complementary resource
question — *what was each component doing over time* — which is exactly
the evidence behind the paper's attribution claims (Fig. 4's client CPU
curves, Fig. 7's server-CPU-out-of-the-data-path argument).

A :class:`TimeSeriesSampler` owns a set of named *gauge probes* — zero
argument callables returning a float — and snapshots all of them on a
fixed simulated-time interval into per-series ring buffers. Sampling is
strictly off by default: nothing is scheduled until :meth:`start`, so an
un-started sampler costs zero events and leaves seeded runs bit-identical.

Probes come in three flavors:

* plain gauges — instantaneous state (queue depth, cache blocks);
* :func:`rate_probe` — wraps a *cumulative* counter (busy microseconds,
  bytes DMA'd) and reports its per-microsecond rate over the window since
  the previous sample, which for busy-time counters is exactly windowed
  utilization;
* :func:`ratio_probe` — the windowed ratio of two cumulative counters
  (hit rate over the last interval, not since boot).

Serialization mirrors the tracer's JSONL: a header line with ring
accounting, then one line per series; :func:`load_timeseries_jsonl`
round-trips the file.
"""

from __future__ import annotations

import json
from collections import deque
from typing import (Any, Callable, Deque, Dict, Generator, Iterator, List,
                    Optional, Sequence, Tuple)

from .core import Event, Simulator

#: Marker values for the JSONL line kinds.
TIMESERIES_HEADER_KIND = "timeseries-header"
TIMESERIES_KIND = "timeseries"

GaugeFn = Callable[[], float]


def rate_probe(sim: Simulator, cumulative: GaugeFn,
               scale: float = 1.0) -> GaugeFn:
    """Wrap a cumulative counter as a windowed per-microsecond rate gauge.

    Each call reports ``scale * delta(value) / delta(time)`` since the
    probe's previous call — under sampler control, the rate over the last
    sampling interval. A busy-time counter therefore yields utilization
    in [0, 1]; a byte counter yields B/us (== MB/s). Zero-elapsed calls
    (including a query at the probe's creation instant) return 0.0.

    An unchanged source short-circuits: the rate is exactly 0.0 over any
    window, so only the window anchor moves and the subtraction/division
    arithmetic is skipped — most gauge sources are idle on most sampler
    ticks, which is what makes continuous telemetry affordable.
    """
    state = [sim.now, float(cumulative())]

    def probe() -> float:
        value = float(cumulative())
        prev_t, prev_v = state
        now = sim.now
        state[0] = now
        if value == prev_v:
            return 0.0  # source unchanged since the last sample
        state[1] = value
        if now <= prev_t:
            return 0.0
        return (value - prev_v) * scale / (now - prev_t)

    return probe


def ratio_probe(numerator: GaugeFn, denominator: GaugeFn) -> GaugeFn:
    """Windowed ratio of two cumulative counters (e.g. cache hit rate).

    Reports ``delta(num) / delta(den)`` since the previous call; windows
    with no denominator activity report 0.0 rather than dividing by zero.
    An unchanged denominator short-circuits the same way an unchanged
    :func:`rate_probe` source does.
    """
    state = [float(numerator()), float(denominator())]

    def probe() -> float:
        den = float(denominator())
        if den == state[1]:
            # No denominator activity in the window: ratio is 0.0 and the
            # numerator anchor still has to advance for the next window.
            state[0] = float(numerator())
            return 0.0
        num = float(numerator())
        d_num, d_den = num - state[0], den - state[1]
        state[0], state[1] = num, den
        return d_num / d_den if d_den > 0 else 0.0

    return probe


def window_mean(points: Sequence[Tuple[float, float]], t0: float,
                t1: float) -> Optional[float]:
    """Mean of the sample values with ``t0 <= ts <= t1``; None if none."""
    total = 0.0
    count = 0
    for ts, value in points:
        if t0 <= ts <= t1:
            total += value
            count += 1
    return total / count if count else None


class TimeSeries:
    """One gauge's ring-buffered (timestamp, value) history."""

    __slots__ = ("name", "points", "appended")

    def __init__(self, name: str, capacity: int):
        self.name = name
        self.points: Deque[Tuple[float, float]] = deque(maxlen=capacity)
        #: Total points ever appended; the ring evicts the overflow, so
        #: ``dropped`` is derived instead of checked on every append.
        self.appended = 0

    @property
    def dropped(self) -> int:
        return max(0, self.appended - self.points.maxlen)

    def append(self, ts: float, value: float) -> None:
        self.appended += 1
        self.points.append((ts, value))

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self) -> Iterator[Tuple[float, float]]:
        return iter(self.points)

    @property
    def last(self) -> Optional[float]:
        return self.points[-1][1] if self.points else None

    def values(self) -> List[float]:
        return [value for _ts, value in self.points]

    def mean(self, t0: float = 0.0,
             t1: float = float("inf")) -> Optional[float]:
        return window_mean(self.points, t0, t1)


class TimeSeriesSampler:
    """Snapshots registered gauges on a fixed sim-time interval.

    Off by default: construction registers nothing with the simulator.
    :meth:`start` spawns the sampling daemon; like
    :class:`repro.nas.server.vm_pressure.MemoryPressure` it takes an
    optional ``stop_on`` event (typically the workload's process) so the
    event heap can drain once the measured run is over.
    """

    def __init__(self, sim: Simulator, interval_us: float = 50.0,
                 capacity: int = 8192):
        if interval_us <= 0:
            raise ValueError(f"interval must be positive: {interval_us}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1: {capacity}")
        self.sim = sim
        self.interval_us = interval_us
        self.capacity = capacity
        #: Probes in registration order; sampled in exactly this order.
        self._probes: Dict[str, GaugeFn] = {}
        self.series: Dict[str, TimeSeries] = {}
        self.ticks = 0
        self._running = False
        self._stop_on: Optional[Event] = None
        #: Compiled (series, ring-append, probe) rows — the per-tick loop
        #: skips every dict and method lookup; rebuilt on registration.
        self._plan: Optional[List[Tuple[TimeSeries, Callable, GaugeFn]]] \
            = None

    # -- registration ------------------------------------------------------

    def probe(self, name: str, fn: GaugeFn) -> None:
        """Register gauge ``fn`` under dotted ``name``."""
        if not name:
            raise ValueError("probe name must be non-empty")
        if name in self._probes:
            raise ValueError(f"probe {name!r} already registered")
        self._probes[name] = fn
        self.series[name] = TimeSeries(name, self.capacity)
        self._plan = None  # recompile on next sample

    def probe_many(self, prefix: str, gauges: Dict[str, GaugeFn]) -> None:
        """Register a component's gauge dict under ``prefix.<key>``."""
        for key, fn in gauges.items():
            self.probe(f"{prefix}.{key}", fn)

    def names(self) -> List[str]:
        return list(self._probes)

    def __len__(self) -> int:
        return len(self._probes)

    # -- sampling ----------------------------------------------------------

    def start(self, stop_on: Optional[Event] = None) -> None:
        """Spawn the sampling daemon (idempotent start is an error)."""
        if self._running:
            raise RuntimeError("sampler already running")
        self._running = True
        self._stop_on = stop_on
        self.sim.process(self._daemon(), name="timeseries-sampler")

    def stop(self) -> None:
        self._running = False

    def _daemon(self) -> Generator:
        while self._running:
            yield self.sim.timeout(self.interval_us)
            if not self._running:
                return
            if self._stop_on is not None and self._stop_on.triggered:
                return
            self.sample_once()

    def sample_once(self) -> None:
        """Take one snapshot of every probe at the current sim time.

        Runs off a compiled plan: one bound ``deque.append`` and one probe
        call per series, no per-sample dict lookups or Python-level
        ``TimeSeries.append`` frames — this loop runs
        probes x ticks times, the telemetry hot path.
        """
        plan = self._plan
        if plan is None:
            plan = self._plan = [
                (series, series.points.append, self._probes[name])
                for name, series in self.series.items()]
        now = self.sim.now
        for series, append, fn in plan:
            series.appended += 1
            append((now, float(fn())))
        self.ticks += 1

    # -- read-out ----------------------------------------------------------

    @property
    def dropped(self) -> int:
        return sum(s.dropped for s in self.series.values())

    def window_mean(self, name: str, t0: float = 0.0,
                    t1: float = float("inf")) -> Optional[float]:
        """Mean of one series over ``[t0, t1]``; None without samples."""
        return self.series[name].mean(t0, t1)

    def as_dict(self) -> Dict[str, Any]:
        """Flat registry read-out: ring accounting plus last values."""
        out: Dict[str, Any] = {
            "ticks": self.ticks,
            "interval_us": self.interval_us,
            "series": len(self.series),
            "dropped": self.dropped,
        }
        for name, series in self.series.items():
            if series.points:
                out[f"last.{name}"] = series.last
        return out

    # -- (de)serialization -------------------------------------------------

    def to_jsonl(self) -> str:
        """The whole sampler state as JSON lines (header + one line per
        series). Deterministic: probes serialize in registration order."""
        lines = [json.dumps({
            "kind": TIMESERIES_HEADER_KIND, "version": 1,
            "interval_us": self.interval_us, "ticks": self.ticks,
            "dropped": self.dropped, "series": list(self._probes),
        })]
        for name in self._probes:
            series = self.series[name]
            lines.append(json.dumps({
                "kind": TIMESERIES_KIND, "name": name,
                "dropped": series.dropped,
                "points": [[ts, value] for ts, value in series.points],
            }))
        return "\n".join(lines) + "\n"

    def dump_jsonl(self, path: str) -> int:
        """Write :meth:`to_jsonl` to ``path``; returns the series count."""
        with open(path, "w") as fh:
            fh.write(self.to_jsonl())
        return len(self._probes)


class TimeSeriesDump:
    """A sampler's series loaded back from JSONL."""

    def __init__(self, series: Dict[str, List[Tuple[float, float]]],
                 interval_us: float = 0.0, ticks: int = 0,
                 dropped: int = 0):
        self.series = series
        self.interval_us = interval_us
        self.ticks = ticks
        self.dropped = dropped

    def __len__(self) -> int:
        return len(self.series)

    def names(self) -> List[str]:
        return list(self.series)

    def window_mean(self, name: str, t0: float = 0.0,
                    t1: float = float("inf")) -> Optional[float]:
        return window_mean(self.series[name], t0, t1)


def load_timeseries_jsonl(path: str) -> TimeSeriesDump:
    """Load a :meth:`TimeSeriesSampler.dump_jsonl` file back into memory."""
    series: Dict[str, List[Tuple[float, float]]] = {}
    interval_us = 0.0
    ticks = 0
    dropped = 0
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            kind = record.get("kind")
            if kind == TIMESERIES_HEADER_KIND:
                interval_us = record.get("interval_us", 0.0)
                ticks = record.get("ticks", 0)
                dropped = record.get("dropped", 0)
            elif kind == TIMESERIES_KIND:
                series[record["name"]] = [
                    (point[0], point[1]) for point in record["points"]]
    return TimeSeriesDump(series, interval_us=interval_us, ticks=ticks,
                          dropped=dropped)
