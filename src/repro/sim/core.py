"""Discrete-event simulation kernel.

The simulator advances virtual time in microseconds. Model code is written
as generator *processes* that ``yield`` events: timeouts, resource requests,
other processes, or composite conditions. A yielded event suspends the
process until the event triggers; a failed event raises its exception inside
the process at the yield point (this is how recoverable ORDMA network
exceptions reach client code).

The kernel is deterministic: simultaneous events fire in schedule order.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel itself."""


class StopSimulation(Exception):
    """Raised internally to halt :meth:`Simulator.run` early."""


PENDING = object()


class Event:
    """A one-shot occurrence that processes can wait on.

    An event is *triggered* at most once, either with :meth:`succeed` (a
    value) or :meth:`fail` (an exception). Callbacks added before the
    trigger run when the simulator dispatches the event; callbacks added
    afterwards raise, because a one-shot event never fires again.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_scheduled",
                 "_deferred")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: Optional[bool] = None
        self._scheduled = False
        #: True for events whose value is preset but which fire at a known
        #: *future* time (Timeout): they must not count as triggered yet.
        self._deferred = False

    @property
    def triggered(self) -> bool:
        return self._value is not PENDING and not self._deferred

    @property
    def processed(self) -> bool:
        return self.callbacks is None

    @property
    def ok(self) -> Optional[bool]:
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        if self.triggered:
            raise SimulationError("event already triggered")
        self._value = value
        self._ok = True
        self.sim._schedule_event(self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        if not isinstance(exc, BaseException):
            raise SimulationError("fail() requires an exception instance")
        if self.triggered:
            raise SimulationError("event already triggered")
        self._value = exc
        self._ok = False
        self.sim._schedule_event(self)
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        if self.callbacks is None:
            raise SimulationError("event already processed; cannot add callback")
        self.callbacks.append(fn)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending"
        if self.triggered:
            state = "ok" if self._ok else "failed"
        return f"<{type(self).__name__} {state} at t={self.sim.now:.3f}>"


class Timeout(Event):
    """An event that fires ``delay`` microseconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self.delay = delay
        self._value = value
        self._ok = True
        self._deferred = True  # fires at now + delay, not now
        sim._schedule_event(self, delay)

    def succeed(self, value: Any = None) -> "Event":
        raise SimulationError("Timeout triggers itself; do not call succeed()")

    def fail(self, exc: BaseException) -> "Event":
        raise SimulationError("Timeout triggers itself; do not call fail()")


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None


class Process(Event):
    """A running generator; also an event that fires when it finishes.

    The process event succeeds with the generator's return value, or fails
    with the exception that escaped the generator. Waiting on a failed
    process re-raises that exception in the waiter.
    """

    __slots__ = ("_gen", "_waiting_on", "name")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = ""):
        super().__init__(sim)
        self._gen = gen
        self._waiting_on: Optional[Event] = None
        self.name = name or getattr(gen, "__name__", "process")
        # Kick off the process at the current simulation time.
        bootstrap = Event(sim)
        bootstrap._value = None
        bootstrap._ok = True
        bootstrap.add_callback(self._resume)
        sim._schedule_event(bootstrap)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its yield point."""
        if self.triggered:
            raise SimulationError("cannot interrupt a finished process")
        if self._waiting_on is None:
            raise SimulationError("cannot interrupt a process that has not started")
        target = self._waiting_on
        if target.callbacks is not None and self._resume in target.callbacks:
            target.callbacks.remove(self._resume)
        wakeup = Event(self.sim)
        wakeup._value = Interrupt(cause)
        wakeup._ok = False
        wakeup.add_callback(self._resume)
        self.sim._schedule_event(wakeup)

    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        try:
            if event._ok:
                target = self._gen.send(event._value)
            else:
                target = self._gen.throw(event._value)
        except StopIteration as stop:
            if not self.triggered:
                self.succeed(stop.value)
            return
        except BaseException as exc:
            if not self.triggered:
                self.fail(exc)
            else:  # pragma: no cover - double fault
                raise
            return
        if not isinstance(target, Event):
            err = SimulationError(
                f"process {self.name!r} yielded non-event {target!r}"
            )
            self._gen.close()
            if not self.triggered:
                self.fail(err)
            return
        if target.callbacks is None:
            # Already processed: resume immediately on a fresh trampoline.
            relay = Event(self.sim)
            relay._value = target._value
            relay._ok = target._ok
            relay.add_callback(self._resume)
            self.sim._schedule_event(relay)
        else:
            target.add_callback(self._resume)
        self._waiting_on = target


class Condition(Event):
    """Base for :class:`AllOf` / :class:`AnyOf` composite events."""

    __slots__ = ("events", "_pending")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        self._pending = 0
        if not self.events:
            self.succeed({})
            return
        for ev in self.events:
            if ev.callbacks is None or ev.triggered:
                # Already triggered: account for it via an immediate check.
                self._check(ev)
            else:
                self._pending += 1
                ev.add_callback(self._check)

    def _check(self, event: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def _results(self) -> dict:
        return {ev: ev._value for ev in self.events if ev.triggered and ev._ok}


class AllOf(Condition):
    """Succeeds when all child events succeed; fails on the first failure."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if event._ok is False:
            self.fail(event._value)
            return
        if all(ev.triggered and ev._ok for ev in self.events):
            self.succeed(self._results())


class AnyOf(Condition):
    """Succeeds when any child event succeeds; fails if one fails first."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if event._ok is False:
            self.fail(event._value)
            return
        self.succeed(self._results())


class Simulator:
    """The event loop. Time is in microseconds (float)."""

    def __init__(self):
        self.now: float = 0.0
        self._heap: List = []
        self._seq = 0
        self._running = False
        #: Optional structured-event tracer (see repro.sim.trace.Tracer).
        self.tracer = None

    # -- scheduling ------------------------------------------------------

    def _schedule_event(self, event: Event, delay: float = 0.0) -> None:
        if event._scheduled:
            raise SimulationError("event already scheduled")
        event._scheduled = True
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, event))

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` microseconds from now."""
        return Timeout(self, delay, value)

    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def process(self, gen: Generator, name: str = "") -> Process:
        """Spawn ``gen`` as a process starting at the current time."""
        return Process(self, gen, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """An event that fires when every child event has succeeded."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """An event that fires when the first child event succeeds."""
        return AnyOf(self, events)

    def call_at(self, when: float, fn: Callable[[], None]) -> Event:
        """Run ``fn()`` at absolute time ``when`` (>= now)."""
        if when < self.now:
            raise SimulationError(f"call_at in the past: {when} < {self.now}")
        ev = Event(self)
        ev.add_callback(lambda _e: fn())
        ev._value = None
        ev._ok = True
        self._seq += 1
        heapq.heappush(self._heap, (when, self._seq, ev))
        ev._scheduled = True
        return ev

    # -- execution -------------------------------------------------------

    def step(self) -> None:
        """Dispatch the single next event."""
        when, _seq, event = heapq.heappop(self._heap)
        self.now = when
        event._deferred = False
        callbacks, event.callbacks = event.callbacks, None
        for fn in callbacks:
            fn(event)
        if event._ok is False and not callbacks:
            # A failed event nobody waited for is a lost error; surface it.
            raise event._value

    def run(self, until: Optional[float] = None) -> None:
        """Run until the heap drains or simulated time reaches ``until``."""
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        try:
            while self._heap:
                when = self._heap[0][0]
                if until is not None and when > until:
                    self.now = until
                    return
                try:
                    self.step()
                except StopSimulation:
                    return
        finally:
            self._running = False
        if until is not None and self.now < until:
            self.now = until

    def run_process(self, gen: Generator, until: Optional[float] = None) -> Any:
        """Convenience: run ``gen`` to completion and return its value."""
        proc = self.process(gen)
        self.run(until=until)
        if not proc.triggered:
            raise SimulationError(
                f"process {proc.name!r} did not finish by t={self.now}"
            )
        if not proc._ok:
            raise proc._value
        return proc._value

    def stop(self) -> None:
        """Halt :meth:`run` from inside a callback or process."""
        raise StopSimulation()
