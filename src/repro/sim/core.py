"""Discrete-event simulation kernel.

The simulator advances virtual time in microseconds. Model code is written
as generator *processes* that ``yield`` events: timeouts, resource requests,
other processes, or composite conditions. A yielded event suspends the
process until the event triggers; a failed event raises its exception inside
the process at the yield point (this is how recoverable ORDMA network
exceptions reach client code).

The kernel is deterministic: simultaneous events fire in schedule order.

Hot-path design notes (every NIC doorbell, link frame, and RPC crosses
this loop, so per-hop constant factors dominate campaign wall-clock):

* **Fast lane**: events scheduled *at the current time* — trampolines,
  ``succeed()``/``fail()`` at ``now``, zero-delay timeouts — bypass the
  ``(time, seq)`` heap into a FIFO run-queue. This is safe because seq is
  globally monotonic: any heap entry whose time equals ``now`` was pushed
  *before* the clock reached ``now`` (at-now scheduling never touches the
  heap), so it carries a smaller seq than every run-queue entry, and the
  dispatch loop drains such heap entries first. Within the run-queue,
  FIFO order *is* seq order. Dispatch order is therefore exactly the old
  all-heap ``(time, seq)`` order, with no heap sift or entry tuple for
  the at-now majority of events.
* Process bootstrap, already-processed-target relays, and interrupt
  wakeups all use :class:`_Trampoline` events drawn from a per-simulator
  free list and recycled right after dispatch — the per-hop allocation
  churn of the old one-``Event``-per-resume scheme is gone. Trampolines
  are invisible outside the kernel, so recycling cannot be observed.
* :class:`Timeout` objects — the kernel's most-allocated type, one per
  modeled latency — are drawn from a second free list. Unlike
  trampolines they *are* handed to model code, so a dispatched timeout
  is only recycled when ``sys.getrefcount`` proves the dispatch loop
  holds the last reference; a timeout the model still points at (held in
  a variable, parked in a condition, or marked stale by an interrupt) is
  simply left to the garbage collector. Recycling is therefore
  unobservable by construction.
* :meth:`Simulator.schedule_at` is the slim scheduling path: one seq
  bump and one push, no guard re-checks. ``succeed``/``fail``/
  ``Timeout`` inline their state flips around it.
* ``run()`` inlines the dispatch loop instead of calling ``step()`` per
  event (``step()`` remains for single-step use and is semantically
  identical).

None of this changes event ordering or seq accounting: the (time, seq)
dispatch discipline and the points at which seq is drawn are exactly the
old ones (run-queue entries draw seqs too), so seeded runs are
bit-identical to the pre-optimization kernel down to ``sim._seq`` — the
seeded digest tests in ``tests/sim/test_core_runqueue.py`` pin this.
"""

from __future__ import annotations

import heapq
from collections import deque
from sys import getrefcount as _getrefcount
from typing import Any, Callable, Deque, Generator, Iterable, List, Optional

_heappush = heapq.heappush
_heappop = heapq.heappop


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel itself."""


class StopSimulation(Exception):
    """Raised internally to halt :meth:`Simulator.run` early."""


PENDING = object()


class Event:
    """A one-shot occurrence that processes can wait on.

    An event is *triggered* at most once, either with :meth:`succeed` (a
    value) or :meth:`fail` (an exception). Callbacks added before the
    trigger run when the simulator dispatches the event; callbacks added
    afterwards raise, because a one-shot event never fires again.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_scheduled",
                 "_deferred")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: Optional[bool] = None
        self._scheduled = False
        #: True for events whose value is preset but which fire at a known
        #: *future* time (Timeout): they must not count as triggered yet.
        self._deferred = False

    @property
    def triggered(self) -> bool:
        return self._value is not PENDING and not self._deferred

    @property
    def processed(self) -> bool:
        return self.callbacks is None

    @property
    def ok(self) -> Optional[bool]:
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        if self._value is not PENDING and not self._deferred:
            raise SimulationError("event already triggered")
        if self._scheduled:
            raise SimulationError("event already scheduled")
        self._value = value
        self._ok = True
        self._scheduled = True
        sim = self.sim
        sim._seq += 1
        sim._runq.append(self)  # fires at now: fast lane, no heap
        return self

    def fail(self, exc: BaseException) -> "Event":
        if not isinstance(exc, BaseException):
            raise SimulationError("fail() requires an exception instance")
        if self._value is not PENDING and not self._deferred:
            raise SimulationError("event already triggered")
        if self._scheduled:
            raise SimulationError("event already scheduled")
        self._value = exc
        self._ok = False
        self._scheduled = True
        sim = self.sim
        sim._seq += 1
        sim._runq.append(self)  # fires at now: fast lane, no heap
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        if self.callbacks is None:
            raise SimulationError("event already processed; cannot add callback")
        self.callbacks.append(fn)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending"
        if self.triggered:
            state = "ok" if self._ok else "failed"
        return f"<{type(self).__name__} {state} at t={self.sim.now:.3f}>"


class _Trampoline(Event):
    """Kernel-internal single-callback event, pooled by the simulator.

    Used for process bootstrap, relays off already-processed targets, and
    interrupt wakeups. Never handed to model code, so the simulator can
    reset and reuse the object (and its callback list) immediately after
    dispatch.
    """

    __slots__ = ()


class Timeout(Event):
    """An event that fires ``delay`` microseconds after creation.

    Prefer :meth:`Simulator.timeout`, which recycles dispatched timeout
    objects from a free list; direct construction always allocates.
    """

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        # Inlined Event.__init__ + scheduling: timeouts are the kernel's
        # most-allocated object, one per modeled latency.
        self.sim = sim
        self.callbacks = []
        self.delay = delay
        self._value = value
        self._ok = True
        self._scheduled = True
        self._deferred = True  # fires at now + delay, not now
        sim._seq += 1
        when = sim.now + delay
        if when == sim.now:
            sim._runq.append(self)  # zero-delay: fast lane
        else:
            _heappush(sim._heap, (when, sim._seq, self))

    def succeed(self, value: Any = None) -> "Event":
        raise SimulationError("Timeout triggers itself; do not call succeed()")

    def fail(self, exc: BaseException) -> "Event":
        raise SimulationError("Timeout triggers itself; do not call fail()")


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None


class Process(Event):
    """A running generator; also an event that fires when it finishes.

    The process event succeeds with the generator's return value, or fails
    with the exception that escaped the generator. Waiting on a failed
    process re-raises that exception in the waiter.
    """

    __slots__ = ("_gen", "_waiting_on", "name", "_stale")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = ""):
        super().__init__(sim)
        self._gen = gen
        self._waiting_on: Optional[Event] = None
        #: Events this process was interrupted away from; their eventual
        #: trigger is consumed silently (see :meth:`interrupt`).
        self._stale: Optional[List[Event]] = None
        self.name = name or getattr(gen, "__name__", "process")
        # Kick off the process at the current simulation time.
        sim._trampoline(self._resume, None, True)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its yield point.

        The abandoned wait target is *marked stale* rather than scanned
        out of the target's callback list — interrupting one of N waiters
        is O(1), not O(N), which is what keeps retry-heavy chaos runs
        (many timeouts parked on one event) linear. When the stale event
        eventually fires, the process consumes and ignores it; a failure
        carried by such an event is dropped with it, since this process
        explicitly abandoned the wait.
        """
        if self._value is not PENDING and not self._deferred:
            raise SimulationError("cannot interrupt a finished process")
        target = self._waiting_on
        if target is None:
            raise SimulationError("cannot interrupt a process that has not started")
        if target.callbacks is not None:
            if self._stale is None:
                self._stale = [target]
            else:
                self._stale.append(target)
        self.sim._trampoline(self._resume, Interrupt(cause), False)

    def _resume(self, event: Event) -> None:
        stale = self._stale
        if stale is not None and event in stale:
            # An abandoned wait fired after the interrupt; drop it.
            stale.remove(event)
            if not stale:
                self._stale = None
            return
        self._waiting_on = None
        try:
            if event._ok:
                target = self._gen.send(event._value)
            else:
                target = self._gen.throw(event._value)
        except StopIteration as stop:
            if self._value is PENDING:
                self.succeed(stop.value)
            return
        except BaseException as exc:
            if self._value is PENDING:
                self.fail(exc)
            else:  # pragma: no cover - double fault
                raise
            return
        if not isinstance(target, Event):
            err = SimulationError(
                f"process {self.name!r} yielded non-event {target!r}"
            )
            self._gen.close()
            if self._value is PENDING:
                self.fail(err)
            return
        if target.callbacks is None:
            # Already processed: resume immediately on a fresh trampoline.
            self.sim._trampoline(self._resume, target._value, target._ok)
        else:
            target.callbacks.append(self._resume)
        self._waiting_on = target


class Condition(Event):
    """Base for :class:`AllOf` / :class:`AnyOf` composite events."""

    __slots__ = ("events", "_pending")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        #: Children whose completion this condition still awaits; counted
        #: down in ``_check`` so fan-in is O(1) per child trigger.
        self._pending = len(self.events)
        if not self.events:
            self.succeed({})
            return
        for ev in self.events:
            if ev.callbacks is None or ev.triggered:
                # Already triggered: account for it via an immediate check.
                self._check(ev)
            else:
                ev.add_callback(self._check)

    def _check(self, event: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def _results(self) -> dict:
        return {ev: ev._value for ev in self.events if ev.triggered and ev._ok}


class AllOf(Condition):
    """Succeeds when all child events succeed; fails on the first failure."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._value is not PENDING:
            return
        if event._ok is False:
            self.fail(event._value)
            return
        self._pending -= 1
        if not self._pending:
            # Every membership succeeded, so the filtered scan of
            # Condition._results (triggered/_ok property checks per
            # child) collapses to one comprehension in `events` order —
            # the exact dict the filtered scan would have built.
            self.succeed({ev: ev._value for ev in self.events})


class AnyOf(Condition):
    """Succeeds when any child event succeeds; fails if one fails first."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._value is not PENDING:
            return
        if event._ok is False:
            self.fail(event._value)
            return
        self._pending -= 1
        self.succeed(self._results())


class Simulator:
    """The event loop. Time is in microseconds (float)."""

    def __init__(self):
        self.now: float = 0.0
        self._heap: List = []
        #: FIFO fast lane for events scheduled at the current time; always
        #: holds strictly larger seqs than any at-now heap entry.
        self._runq: Deque[Event] = deque()
        self._seq = 0
        self._running = False
        #: Free list of recycled kernel trampolines (see _Trampoline).
        self._trampolines: List[_Trampoline] = []
        #: Free list of recycled Timeout objects (see Simulator.timeout).
        self._timeouts: List[Timeout] = []
        #: Optional structured-event tracer (see repro.sim.trace.Tracer).
        self.tracer = None

    # -- scheduling ------------------------------------------------------

    def schedule_at(self, event: Event, when: float) -> None:
        """Slim path: push ``event`` to fire at absolute time ``when``.

        No state checks — the caller guarantees the event is untriggered
        and unscheduled, and that ``when >= now``. ``when == now`` takes
        the run-queue fast lane; this is the single place the
        (time, seq, event) heap entry is built for kernel-internal
        scheduling.
        """
        event._scheduled = True
        self._seq += 1
        if when <= self.now:
            self._runq.append(event)
        else:
            _heappush(self._heap, (when, self._seq, event))

    def _schedule_event(self, event: Event, delay: float = 0.0) -> None:
        if event._scheduled:
            raise SimulationError("event already scheduled")
        event._scheduled = True
        self._seq += 1
        when = self.now + delay
        if when <= self.now:
            self._runq.append(event)
        else:
            _heappush(self._heap, (when, self._seq, event))

    def _trampoline(self, callback: Callable[[Event], None], value: Any,
                    ok: bool) -> None:
        """Schedule ``callback`` for the current time on a pooled event."""
        pool = self._trampolines
        if pool:
            tramp = pool.pop()
        else:
            tramp = _Trampoline(self)
        tramp.callbacks.append(callback)
        tramp._value = value
        tramp._ok = ok
        tramp._scheduled = True
        self._seq += 1
        self._runq.append(tramp)

    def _recycle(self, tramp: "_Trampoline",
                 callbacks: List[Callable[[Event], None]]) -> None:
        """Reset a dispatched trampoline (and its list) for reuse."""
        callbacks.clear()
        tramp.callbacks = callbacks
        tramp._value = PENDING
        tramp._ok = None
        tramp._scheduled = False
        self._trampolines.append(tramp)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` microseconds from now.

        Draws from the timeout free list when possible; see the module
        docstring for why recycling is unobservable.
        """
        pool = self._timeouts
        if not pool:
            return Timeout(self, delay, value)
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        t = pool.pop()
        t.delay = delay
        t._value = value
        t._ok = True
        t._scheduled = True
        t._deferred = True
        self._seq += 1
        when = self.now + delay
        if when == self.now:
            self._runq.append(t)
        else:
            _heappush(self._heap, (when, self._seq, t))
        return t

    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def process(self, gen: Generator, name: str = "") -> Process:
        """Spawn ``gen`` as a process starting at the current time."""
        return Process(self, gen, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """An event that fires when every child event has succeeded."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """An event that fires when the first child event succeeds."""
        return AnyOf(self, events)

    def call_at(self, when: float, fn: Callable[[], None]) -> Event:
        """Run ``fn()`` at absolute time ``when`` (>= now)."""
        if when < self.now:
            raise SimulationError(f"call_at in the past: {when} < {self.now}")
        ev = Event(self)
        ev.add_callback(lambda _e: fn())
        ev._value = None
        ev._ok = True
        self.schedule_at(ev, when)
        return ev

    # -- execution -------------------------------------------------------

    def _next_event(self) -> Event:
        """Pop the next event in (time, seq) order, advancing the clock.

        Heap entries at the current time predate every run-queue entry
        (smaller seqs — see the module docstring), so they go first; the
        run-queue itself is already in seq order.
        """
        heap = self._heap
        runq = self._runq
        if runq:
            if heap and heap[0][0] <= self.now:
                return _heappop(heap)[2]
            return runq.popleft()
        when, _seq, event = _heappop(heap)
        self.now = when
        return event

    def step(self) -> None:
        """Dispatch the single next event."""
        event = self._next_event()
        event._deferred = False
        callbacks, event.callbacks = event.callbacks, None
        for fn in callbacks:
            fn(event)
        if event._ok is False and not callbacks:
            # A failed event nobody waited for is a lost error; surface it.
            raise event._value
        cls = type(event)
        if cls is _Trampoline:
            self._recycle(event, callbacks)
        elif cls is Timeout and _getrefcount(event) == 2:
            # Only the dispatch loop still references it: recycle.
            callbacks.clear()
            event.callbacks = callbacks
            event._value = PENDING
            event._ok = None
            event._scheduled = False
            self._timeouts.append(event)

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queues drain or simulated time reaches ``until``."""
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        heap = self._heap
        runq = self._runq
        timeouts = self._timeouts
        try:
            while True:
                # Inline of _next_event() + step(): pop, dispatch, recycle.
                if runq:
                    if heap and heap[0][0] <= self.now:
                        # Equal-time heap entries predate (and out-rank)
                        # every run-queue entry.
                        event = _heappop(heap)[2]
                    else:
                        event = runq.popleft()
                elif heap:
                    when = heap[0][0]
                    if until is not None and when > until:
                        self.now = until
                        return
                    event = _heappop(heap)[2]
                    self.now = when
                else:
                    break
                try:
                    event._deferred = False
                    callbacks = event.callbacks
                    event.callbacks = None
                    for fn in callbacks:
                        fn(event)
                    if event._ok is False and not callbacks:
                        # A failed event nobody waited for is a lost
                        # error; surface it.
                        raise event._value
                    cls = type(event)
                    if cls is _Trampoline:
                        self._recycle(event, callbacks)
                    elif cls is Timeout and _getrefcount(event) == 2:
                        # The dispatch loop holds the last reference —
                        # the model let go of this timeout, so recycling
                        # it cannot be observed.
                        callbacks.clear()
                        event.callbacks = callbacks
                        event._value = PENDING
                        event._ok = None
                        event._scheduled = False
                        timeouts.append(event)
                except StopSimulation:
                    return
        finally:
            self._running = False
        if until is not None and self.now < until:
            self.now = until

    def run_process(self, gen: Generator, until: Optional[float] = None) -> Any:
        """Convenience: run ``gen`` to completion and return its value."""
        proc = self.process(gen)
        self.run(until=until)
        if not proc.triggered:
            raise SimulationError(
                f"process {proc.name!r} did not finish by t={self.now}"
            )
        if not proc._ok:
            raise proc._value
        return proc._value

    def stop(self) -> None:
        """Halt :meth:`run` from inside a callback or process."""
        raise StopSimulation()
