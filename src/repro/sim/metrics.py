"""Unified metrics registry over the measurement instruments.

The simulator's instruments (:class:`Counter`, :class:`ThroughputMeter`,
:class:`LatencyStats`, :class:`BusyTracker`) historically floated freely
inside components; the registry binds them under hierarchical dotted
names (``server.cache``, ``client0.nic``, …) so one ``snapshot()`` call
reads out the whole system — ``server.cache.hits``,
``client0.nic.dma_bytes`` — and one ``to_json()`` exports it.

Components keep owning their instruments; the registry only references
them, so registration costs nothing on the hot path. ``Cluster`` builds
a registry over every host's CPU, NIC, protocol and cache instruments at
wiring time (see :mod:`repro.cluster`).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterator, Optional

from .core import Simulator
from .monitor import BusyTracker, Counter, LatencyStats, ThroughputMeter


class MetricsRegistry:
    """Named instruments with a single hierarchical read-out."""

    def __init__(self):
        self._instruments: Dict[str, Any] = {}

    # -- registration ------------------------------------------------------

    def register(self, name: str, instrument: Any) -> Any:
        """Bind ``instrument`` under dotted ``name``; returns it."""
        if not name:
            raise ValueError("metric name must be non-empty")
        if name in self._instruments:
            raise ValueError(f"metric {name!r} already registered")
        self._instruments[name] = instrument
        return instrument

    def unregister(self, name: str) -> None:
        self._instruments.pop(name, None)

    # -- create-or-get helpers --------------------------------------------

    def counter(self, name: str) -> Counter:
        inst = self._instruments.get(name)
        if inst is None:
            inst = self.register(name, Counter())
        return inst

    def latency(self, name: str,
                reservoir: Optional[int] = None) -> LatencyStats:
        inst = self._instruments.get(name)
        if inst is None:
            inst = self.register(name,
                                 LatencyStats(name, reservoir=reservoir))
        return inst

    def throughput(self, sim: Simulator, name: str) -> ThroughputMeter:
        inst = self._instruments.get(name)
        if inst is None:
            inst = self.register(name, ThroughputMeter(sim, name))
        return inst

    def busy(self, sim: Simulator, name: str) -> BusyTracker:
        inst = self._instruments.get(name)
        if inst is None:
            inst = self.register(name, BusyTracker(sim, name))
        return inst

    # -- access ------------------------------------------------------------

    def get(self, name: str) -> Any:
        return self._instruments[name]

    def names(self) -> Iterator[str]:
        return iter(sorted(self._instruments))

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __len__(self) -> int:
        return len(self._instruments)

    # -- read-out ----------------------------------------------------------

    @staticmethod
    def instrument_values(instrument: Any) -> Dict[str, Any]:
        """Flatten one instrument into leaf-name -> JSON-safe value."""
        if isinstance(instrument, Counter):
            return dict(instrument.as_dict())
        if isinstance(instrument, LatencyStats):
            return instrument.summary()
        if isinstance(instrument, ThroughputMeter):
            return {"total": instrument.total, "rate": instrument.rate()}
        if isinstance(instrument, BusyTracker):
            out: Dict[str, Any] = {
                "busy_us": instrument.busy_us,
                "utilization": instrument.utilization(),
            }
            for category, us in instrument.by_category.items():
                out[f"by.{category}"] = us
            return out
        if hasattr(instrument, "as_dict"):
            return dict(instrument.as_dict())
        raise TypeError(
            f"unsupported instrument type {type(instrument).__name__}")

    def snapshot(self) -> Dict[str, Any]:
        """One flat ``{dotted.name: value}`` view of every instrument."""
        out: Dict[str, Any] = {}
        for name in sorted(self._instruments):
            values = self.instrument_values(self._instruments[name])
            for leaf, value in values.items():
                out[f"{name}.{leaf}"] = value
        return out

    def to_json(self, indent: Optional[int] = None) -> str:
        """The snapshot as JSON (round-trips via ``json.loads``)."""
        return json.dumps(self.snapshot(), indent=indent, default=str)

    def subtree(self, prefix: str) -> Dict[str, Any]:
        """Snapshot entries under ``prefix.`` (prefix itself excluded)."""
        dotted = prefix + "."
        return {name: value for name, value in self.snapshot().items()
                if name.startswith(dotted)}
