"""Discrete-event simulation kernel used by every model in :mod:`repro`."""

from .core import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    StopSimulation,
    Timeout,
)
from .metrics import MetricsRegistry
from .monitor import BusyTracker, Counter, LatencyStats, ThroughputMeter
from .rand import RandomStreams
from .resources import BandwidthPipe, Request, Resource, Store
from .timeseries import (
    TimeSeries,
    TimeSeriesDump,
    TimeSeriesSampler,
    load_timeseries_jsonl,
    rate_probe,
    ratio_probe,
)
from .trace import (
    Span,
    TraceDump,
    TraceEvent,
    Tracer,
    emit as trace_emit,
    load_jsonl,
    span_start,
)

__all__ = [
    "AllOf",
    "AnyOf",
    "BandwidthPipe",
    "BusyTracker",
    "Counter",
    "Event",
    "Interrupt",
    "LatencyStats",
    "MetricsRegistry",
    "Process",
    "RandomStreams",
    "Request",
    "Resource",
    "SimulationError",
    "Simulator",
    "Span",
    "StopSimulation",
    "Store",
    "ThroughputMeter",
    "TimeSeries",
    "TimeSeriesDump",
    "TimeSeriesSampler",
    "Timeout",
    "TraceDump",
    "TraceEvent",
    "Tracer",
    "load_jsonl",
    "load_timeseries_jsonl",
    "rate_probe",
    "ratio_probe",
    "span_start",
    "trace_emit",
]
