"""Discrete-event simulation kernel used by every model in :mod:`repro`."""

from .core import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    StopSimulation,
    Timeout,
)
from .monitor import BusyTracker, Counter, LatencyStats, ThroughputMeter
from .rand import RandomStreams
from .resources import BandwidthPipe, Request, Resource, Store
from .trace import TraceEvent, Tracer, emit as trace_emit

__all__ = [
    "AllOf",
    "AnyOf",
    "BandwidthPipe",
    "BusyTracker",
    "Counter",
    "Event",
    "Interrupt",
    "LatencyStats",
    "Process",
    "RandomStreams",
    "Request",
    "Resource",
    "SimulationError",
    "Simulator",
    "StopSimulation",
    "Store",
    "ThroughputMeter",
    "Timeout",
    "TraceEvent",
    "Tracer",
    "trace_emit",
]
