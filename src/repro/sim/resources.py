"""Shared-resource primitives built on the event kernel.

These model contended hardware: CPUs (priority resources), DMA engines and
firmware processors (FIFO resources), buses and links (bandwidth pipes), and
mailbox-style queues between components (stores).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Deque, Generator, List, Optional

from .core import Event, SimulationError, Simulator


class Request(Event):
    """A pending claim on a :class:`Resource` slot."""

    __slots__ = ("resource", "priority", "_key")

    def __init__(self, resource: "Resource", priority: int):
        super().__init__(resource.sim)
        self.resource = resource
        self.priority = priority


class Resource:
    """A server with ``capacity`` slots and a FIFO (or priority) queue.

    Usage from a process::

        req = resource.request()
        yield req
        try:
            yield sim.timeout(service_time)
        finally:
            resource.release(req)
    """

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._users: List[Request] = []
        self._queue: List = []  # heap of (priority, seq, request)
        self._seq = 0
        self.stats_granted = 0
        self.stats_peak_queue = 0

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self._users)

    @property
    def queue_len(self) -> int:
        return len(self._queue)

    def request(self, priority: int = 0) -> Request:
        req = Request(self, priority)
        self._seq += 1
        heapq.heappush(self._queue, (priority, self._seq, req))
        self.stats_peak_queue = max(self.stats_peak_queue, len(self._queue))
        self._grant()
        return req

    def cancel(self, req: Request) -> None:
        """Withdraw a request that has not been granted yet."""
        if req in self._users:
            raise SimulationError("cannot cancel a granted request; release it")
        self._queue = [entry for entry in self._queue if entry[2] is not req]
        heapq.heapify(self._queue)

    def release(self, req: Request) -> None:
        try:
            self._users.remove(req)
        except ValueError:
            raise SimulationError("release of a request that does not hold a slot")
        self._grant()

    def _grant(self) -> None:
        while self._queue and len(self._users) < self.capacity:
            _prio, _seq, req = heapq.heappop(self._queue)
            self._users.append(req)
            self.stats_granted += 1
            req.succeed(req)

    def acquire(self, priority: int = 0) -> Generator:
        """Process-style helper: ``req = yield from resource.acquire()``."""
        req = self.request(priority)
        yield req
        return req


class Store:
    """An unbounded FIFO channel of items between processes."""

    def __init__(self, sim: Simulator, name: str = ""):
        self.sim = sim
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        ev = Event(self.sim)
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev


class BandwidthPipe:
    """A serialized transmission medium with fixed bandwidth.

    Transfers queue FIFO; each occupies the pipe for ``nbytes / bandwidth``
    plus an optional fixed per-transfer overhead. This models link
    serialization, DMA engines, and bus occupancy. Bandwidth is in bytes
    per microsecond (i.e. MB/s ≈ B/µs).
    """

    def __init__(
        self,
        sim: Simulator,
        bandwidth_bpus: float,
        name: str = "",
        per_transfer_us: float = 0.0,
    ):
        if bandwidth_bpus <= 0:
            raise SimulationError(f"bandwidth must be positive: {bandwidth_bpus}")
        self.sim = sim
        self.bandwidth = bandwidth_bpus
        self.name = name
        self.per_transfer_us = per_transfer_us
        self._free_at = float("-inf")  # idle since forever
        self.stats_bytes = 0
        self.stats_transfers = 0
        self.stats_busy_us = 0.0

    def occupancy(self, nbytes: int) -> float:
        return self.per_transfer_us + nbytes / self.bandwidth

    def transfer(self, nbytes: int) -> Event:
        """Return an event that fires when ``nbytes`` have moved."""
        if nbytes < 0:
            raise SimulationError(f"negative transfer size: {nbytes}")
        start = max(self.sim.now, self._free_at)
        duration = self.occupancy(nbytes)
        self._free_at = start + duration
        self.stats_bytes += nbytes
        self.stats_transfers += 1
        self.stats_busy_us += duration
        return self.sim.timeout(self._free_at - self.sim.now)

    def transfer_cut_through(self, nbytes: int) -> Event:
        """Drain-side transfer whose bits streamed in while upstream sent.

        Models the receive leg of a cut-through fabric: if this pipe was
        idle while the sender serialized (a window of one occupancy ending
        now), the transfer completes immediately; otherwise it queues behind
        the in-progress transfer and pays full serialization. Occupancy is
        accounted either way, so converging senders contend correctly.
        """
        if nbytes < 0:
            raise SimulationError(f"negative transfer size: {nbytes}")
        now = self.sim.now
        duration = self.occupancy(nbytes)
        arrival = max(now, self._free_at + duration)
        self._free_at = arrival
        self.stats_bytes += nbytes
        self.stats_transfers += 1
        self.stats_busy_us += duration
        return self.sim.timeout(arrival - now)

    def utilization(self, elapsed_us: Optional[float] = None) -> float:
        elapsed = elapsed_us if elapsed_us is not None else self.sim.now
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.stats_busy_us / elapsed)

    def backlog_bytes(self) -> float:
        """Bytes still waiting to serialize (instantaneous queue gauge).

        The pipe is committed through ``_free_at``; anything beyond *now*
        is backlog expressed in bytes at the pipe's rate. Idle pipes
        report 0.0.
        """
        pending_us = self._free_at - self.sim.now
        if pending_us <= 0:
            return 0.0
        return pending_us * self.bandwidth
