"""Structured event tracing.

A :class:`Tracer` attached to the simulator (``sim.tracer``) records
timestamped, typed events from instrumented components — NIC operations,
RPC activity, ORDMA faults — into a bounded ring buffer. Tracing is off
unless a tracer is attached, and emit sites guard with a single attribute
check, so the instrumented hot paths cost nothing in normal runs.

Typical use::

    tracer = Tracer.attach(cluster.sim)
    ... run workload ...
    for ev in tracer.filter(kind="ordma-fault"):
        print(ev)
    tracer.dump_jsonl("trace.jsonl")
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any, Deque, Dict, Iterator, List, Optional

from .core import Simulator


class TraceEvent:
    """One timestamped occurrence."""

    __slots__ = ("ts", "component", "kind", "detail")

    def __init__(self, ts: float, component: str, kind: str,
                 detail: Dict[str, Any]):
        self.ts = ts
        self.component = component
        self.kind = kind
        self.detail = detail

    def __repr__(self) -> str:
        fields = " ".join(f"{k}={v!r}" for k, v in self.detail.items())
        return f"[{self.ts:12.3f}us] {self.component} {self.kind} {fields}"

    def as_dict(self) -> Dict[str, Any]:
        return {"ts": self.ts, "component": self.component,
                "kind": self.kind, **self.detail}


class Tracer:
    """Bounded in-memory trace collector."""

    def __init__(self, sim: Simulator, capacity: int = 100_000):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1: {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)
        self.dropped = 0
        self.emitted = 0

    @classmethod
    def attach(cls, sim: Simulator, capacity: int = 100_000) -> "Tracer":
        """Create a tracer and attach it as ``sim.tracer``."""
        tracer = cls(sim, capacity)
        sim.tracer = tracer
        return tracer

    @staticmethod
    def detach(sim: Simulator) -> None:
        sim.tracer = None

    # -- recording ---------------------------------------------------------

    def emit(self, component: str, kind: str, **detail: Any) -> None:
        if len(self._events) == self.capacity:
            self.dropped += 1
        self.emitted += 1
        self._events.append(
            TraceEvent(self.sim.now, component, kind, detail))

    # -- querying ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def filter(self, component: Optional[str] = None,
               kind: Optional[str] = None,
               since: float = 0.0) -> List[TraceEvent]:
        return [ev for ev in self._events
                if (component is None or ev.component == component)
                and (kind is None or ev.kind == kind)
                and ev.ts >= since]

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for ev in self._events:
            out[ev.kind] = out.get(ev.kind, 0) + 1
        return out

    def clear(self) -> None:
        self._events.clear()

    # -- export ------------------------------------------------------------

    def dump_jsonl(self, path: str) -> int:
        """Write the buffer as JSON lines; returns the event count."""
        count = 0
        with open(path, "w") as fh:
            for ev in self._events:
                fh.write(json.dumps(ev.as_dict(), default=str) + "\n")
                count += 1
        return count


def emit(sim: Simulator, component: str, kind: str, **detail: Any) -> None:
    """Module-level guard helper for instrumented code paths."""
    tracer = getattr(sim, "tracer", None)
    if tracer is not None:
        tracer.emit(component, kind, **detail)
