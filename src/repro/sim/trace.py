"""Structured event tracing and end-to-end request spans.

A :class:`Tracer` attached to the simulator (``sim.tracer``) records
timestamped, typed events from instrumented components — NIC operations,
RPC activity, ORDMA faults, cache hits, link and disk I/O — into a bounded
ring buffer. It also hands out :class:`Span` objects: one span follows a
single request from the client call site through RPC marshaling, the NIC
doorbell/DMA path, link transmission, server CPU, server file cache and
disk, recording a timestamped stage boundary at each hop. A completed
span folds into a per-stage critical-path latency breakdown that mirrors
the paper's overhead decomposition (Table 2 / Fig. 2).

Tracing is off unless a tracer is attached, and emit sites guard with a
single attribute check, so the instrumented hot paths cost nothing in
normal runs.

Typical use::

    tracer = Tracer.attach(cluster.sim)
    ... run workload ...
    for ev in tracer.filter(kind="ordma-fault"):
        print(ev)
    for span in tracer.spans:
        print(span.rid, span.path, span.breakdown())
    tracer.dump_jsonl("trace.jsonl")
    dump = load_jsonl("trace.jsonl")   # round-trips events AND spans
"""

from __future__ import annotations

import itertools
import json
from collections import deque
from typing import Any, Deque, Dict, Iterator, List, Optional, Tuple

from .core import Simulator

#: Marker values for the non-event JSONL line kinds.
HEADER_KIND = "trace-header"
SPAN_KIND = "trace-span"


class TraceEvent:
    """One timestamped occurrence."""

    __slots__ = ("ts", "component", "kind", "detail")

    def __init__(self, ts: float, component: str, kind: str,
                 detail: Dict[str, Any]):
        self.ts = ts
        self.component = component
        self.kind = kind
        self.detail = detail

    def __repr__(self) -> str:
        fields = " ".join(f"{k}={v!r}" for k, v in self.detail.items())
        return f"[{self.ts:12.3f}us] {self.component} {self.kind} {fields}"

    def as_dict(self) -> Dict[str, Any]:
        return {"ts": self.ts, "component": self.component,
                "kind": self.kind, **self.detail}


class Span:
    """One request's journey across the layers.

    A span is created at the client call site (:meth:`Tracer.start_span`)
    and threaded through the request path; each layer appends a
    *stage boundary* with :meth:`mark`. A mark's label names the stage
    that just *completed*, so the interval between consecutive marks is
    the stage's critical-path contribution and :meth:`breakdown` sums
    exactly to the end-to-end latency.

    ``path`` classifies the data path the request actually took:
    ``rpc`` (inline RPC), ``rdma`` (RPC + NIC-placed data), ``ordma``
    (client-initiated optimistic RDMA), ``ordma-fallback`` (ORDMA
    faulted, recovered through RPC), or ``local`` (client cache hit,
    no network).
    """

    __slots__ = ("rid", "op", "origin", "path", "start_ts", "end_ts",
                 "marks", "detail", "_sim")

    def __init__(self, sim: Optional[Simulator], rid: int, op: str,
                 origin: str, detail: Optional[Dict[str, Any]] = None):
        self._sim = sim
        self.rid = rid
        self.op = op
        self.origin = origin
        self.path = "rpc"
        self.start_ts = sim.now if sim is not None else 0.0
        self.end_ts: Optional[float] = None
        #: [(ts, component, stage, detail-or-None), ...] in time order.
        self.marks: List[Tuple[float, str, str, Optional[Dict]]] = []
        self.detail = detail or {}

    # -- recording ---------------------------------------------------------

    def mark(self, component: str, stage: str, **detail: Any) -> None:
        """Record a stage boundary: ``stage`` just completed at ``now``."""
        self.marks.append((self._sim.now, component, stage,
                           detail or None))

    def finish(self, component: Optional[str] = None,
               stage: str = "deliver") -> "Span":
        """Close the span; the remaining interval becomes ``stage``."""
        self.mark(component or self.origin, stage)
        self.end_ts = self._sim.now
        return self

    # -- analysis ----------------------------------------------------------

    @property
    def finished(self) -> bool:
        return self.end_ts is not None

    @property
    def duration(self) -> float:
        """End-to-end latency (finished spans only)."""
        if self.end_ts is None:
            raise ValueError(f"span {self.rid} not finished")
        return self.end_ts - self.start_ts

    def stages(self) -> List[Tuple[str, str, float, float]]:
        """[(stage, component, start, duration), ...] in path order."""
        out = []
        prev = self.start_ts
        for ts, component, stage, _detail in self.marks:
            out.append((stage, component, prev, ts - prev))
            prev = ts
        return out

    def breakdown(self) -> Dict[str, float]:
        """Per-stage critical-path time; sums to :attr:`duration`."""
        out: Dict[str, float] = {}
        prev = self.start_ts
        for ts, _component, stage, _detail in self.marks:
            out[stage] = out.get(stage, 0.0) + (ts - prev)
            prev = ts
        return out

    def __repr__(self) -> str:
        end = f"{self.end_ts:.3f}" if self.end_ts is not None else "…"
        return (f"<Span #{self.rid} {self.op} {self.origin} "
                f"path={self.path} [{self.start_ts:.3f}..{end}]us "
                f"{len(self.marks)} marks>")

    # -- (de)serialization -------------------------------------------------

    def as_dict(self) -> Dict[str, Any]:
        return {
            "rid": self.rid, "op": self.op, "origin": self.origin,
            "path": self.path, "start": self.start_ts, "end": self.end_ts,
            "detail": self.detail,
            "marks": [[ts, comp, stage, det]
                      for ts, comp, stage, det in self.marks],
        }

    @classmethod
    def from_dict(cls, record: Dict[str, Any]) -> "Span":
        span = cls(None, record["rid"], record["op"], record["origin"],
                   record.get("detail") or {})
        span.path = record.get("path", "rpc")
        span.start_ts = record["start"]
        span.end_ts = record.get("end")
        span.marks = [(m[0], m[1], m[2], m[3]) for m in record["marks"]]
        return span


class Tracer:
    """Bounded in-memory trace collector: events + spans."""

    def __init__(self, sim: Simulator, capacity: int = 100_000,
                 span_capacity: Optional[int] = None):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1: {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)
        self.dropped = 0
        self.emitted = 0
        #: Completed and in-flight spans, oldest first (bounded ring).
        self.spans: Deque[Span] = deque(maxlen=span_capacity or capacity)
        self.spans_started = 0
        self._rids = itertools.count(1)

    @classmethod
    def attach(cls, sim: Simulator, capacity: int = 100_000,
               span_capacity: Optional[int] = None) -> "Tracer":
        """Create a tracer and attach it as ``sim.tracer``."""
        tracer = cls(sim, capacity, span_capacity=span_capacity)
        sim.tracer = tracer
        return tracer

    @staticmethod
    def detach(sim: Simulator) -> None:
        sim.tracer = None

    # -- recording ---------------------------------------------------------

    def emit(self, component: str, kind: str, **detail: Any) -> None:
        if len(self._events) == self.capacity:
            self.dropped += 1
        self.emitted += 1
        self._events.append(
            TraceEvent(self.sim.now, component, kind, detail))

    def start_span(self, origin: str, op: str, **detail: Any) -> Span:
        """Open a request span anchored at the current time."""
        span = Span(self.sim, next(self._rids), op, origin,
                    detail or None)
        self.spans_started += 1
        self.spans.append(span)
        return span

    # -- querying ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def filter(self, component: Optional[str] = None,
               kind: Optional[str] = None,
               since: float = 0.0) -> List[TraceEvent]:
        return [ev for ev in self._events
                if (component is None or ev.component == component)
                and (kind is None or ev.kind == kind)
                and ev.ts >= since]

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for ev in self._events:
            out[ev.kind] = out.get(ev.kind, 0) + 1
        return out

    def finished_spans(self, op: Optional[str] = None,
                       path: Optional[str] = None) -> List[Span]:
        return [s for s in self.spans if s.finished
                and (op is None or s.op == op)
                and (path is None or s.path == path)]

    def clear(self) -> None:
        self._events.clear()
        self.spans.clear()

    # -- export ------------------------------------------------------------

    def dump_jsonl(self, path: str) -> int:
        """Write the trace as JSON lines; returns the data-line count.

        The first line is a header carrying the ring buffer's
        ``emitted``/``dropped`` accounting, followed by the buffered
        events in insertion (= time) order, then the buffered spans.
        :func:`load_jsonl` round-trips the whole file.
        """
        count = 0
        with open(path, "w") as fh:
            fh.write(json.dumps({
                "kind": HEADER_KIND, "version": 1,
                "emitted": self.emitted, "dropped": self.dropped,
                "events": len(self._events), "spans": len(self.spans),
                "spans_started": self.spans_started,
            }) + "\n")
            # The deque guarantees insertion order, which is time order
            # because the simulation clock is monotone.
            for ev in self._events:
                fh.write(json.dumps(ev.as_dict(), default=str) + "\n")
                count += 1
            for span in self.spans:
                record = {"kind": SPAN_KIND}
                record.update(span.as_dict())
                fh.write(json.dumps(record, default=str) + "\n")
                count += 1
        return count


class TraceDump:
    """A trace loaded back from JSONL: events + spans + ring metadata."""

    def __init__(self, events: List[TraceEvent], spans: List[Span],
                 emitted: int = 0, dropped: int = 0):
        self.events = events
        self.spans = spans
        self.emitted = emitted
        self.dropped = dropped

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def filter(self, component: Optional[str] = None,
               kind: Optional[str] = None,
               since: float = 0.0) -> List[TraceEvent]:
        return [ev for ev in self.events
                if (component is None or ev.component == component)
                and (kind is None or ev.kind == kind)
                and ev.ts >= since]

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for ev in self.events:
            out[ev.kind] = out.get(ev.kind, 0) + 1
        return out

    def finished_spans(self, op: Optional[str] = None,
                       path: Optional[str] = None) -> List[Span]:
        return [s for s in self.spans if s.finished
                and (op is None or s.op == op)
                and (path is None or s.path == path)]


def load_jsonl(path: str) -> TraceDump:
    """Load a :meth:`Tracer.dump_jsonl` file back into memory.

    Headerless (pre-header-format) dumps load too; their ``emitted``
    count falls back to the number of event lines.
    """
    events: List[TraceEvent] = []
    spans: List[Span] = []
    emitted = dropped = None
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            kind = record.get("kind")
            if kind == HEADER_KIND:
                emitted = record.get("emitted", 0)
                dropped = record.get("dropped", 0)
            elif kind == SPAN_KIND:
                spans.append(Span.from_dict(record))
            else:
                ts = record.pop("ts")
                component = record.pop("component")
                record.pop("kind", None)
                events.append(TraceEvent(ts, component, kind, record))
    return TraceDump(events, spans,
                     emitted=len(events) if emitted is None else emitted,
                     dropped=dropped or 0)


def emit(sim: Simulator, component: str, kind: str, **detail: Any) -> None:
    """Module-level guard helper for instrumented code paths."""
    tracer = getattr(sim, "tracer", None)
    if tracer is not None:
        tracer.emit(component, kind, **detail)


def span_start(sim: Simulator, origin: str, op: str,
               **detail: Any) -> Optional[Span]:
    """Open a span if a tracer is attached; ``None`` (and zero cost)
    otherwise. Call sites guard marks with ``if span is not None``."""
    tracer = getattr(sim, "tracer", None)
    if tracer is None:
        return None
    return tracer.start_span(origin, op, **detail)
