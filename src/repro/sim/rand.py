"""Seeded random streams, one per component, for reproducible runs.

Each component draws from its own named stream so adding randomness to one
subsystem never perturbs another subsystem's sequence.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RandomStreams:
    """A factory of independent, deterministically seeded RNGs."""

    def __init__(self, seed: int = 2003):
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        if name not in self._streams:
            # Derive a per-stream seed from the master seed and the name.
            # hashlib (not hash()) so streams are stable across interpreter
            # runs despite PYTHONHASHSEED salting.
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            derived = int.from_bytes(digest[:8], "big")
            self._streams[name] = random.Random(derived)
        return self._streams[name]
