"""Translation & Protection Table (TPT) and on-NIC TLB.

RDMA-capable NICs translate the virtual addresses carried in remote
requests through a host-resident, device-specific page table (the TPT),
caching translations in an on-board TLB (Section 2.1). For ORDMA the paper
treats pages with translations *loaded in the NIC TLB* as pinned and locked
(Section 4.1); pages merely present in the TPT may be invalidated by the
host at any time, which is exactly what makes optimistic access optimistic.

Safety uses capabilities: a keyed MAC over the exported segment, verified
by the NIC on every ORDMA request (Section 4; implemented here although the
paper's prototype omitted it).
"""

from __future__ import annotations

import enum
import hashlib
import hmac
import itertools
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from .memory import PAGE_SIZE, Buffer, Page


class FaultReason(enum.Enum):
    """Why a remote memory access could not proceed (Section 4.1)."""

    INVALID_TRANSLATION = "invalid translation"
    NOT_RESIDENT = "page not resident"
    PAGE_LOCKED = "page locked by host"
    BAD_CAPABILITY = "capability check failed"
    REVOKED = "segment access revoked"
    OUT_OF_BOUNDS = "access outside segment"
    #: Fault-injection reasons: a forced NIC-side rejection, and an
    #: initiator-side recovery timeout (lost request or response).
    INJECTED = "injected fault"
    TIMEOUT = "initiator timeout"


class RemoteAccessFault(Exception):
    """A recoverable ORDMA fault, reported NIC-to-NIC to the initiator.

    Raised inside the initiating process at its yield point; ODAFS clients
    catch it and retry via RPC (Section 4.2).
    """

    def __init__(self, reason: FaultReason, detail: str = ""):
        super().__init__(f"{reason.value}{': ' + detail if detail else ''}")
        self.reason = reason
        self.detail = detail


class ProtectionError(RuntimeError):
    """A *non-optimistic* RDMA hit an invalid mapping: a programming error
    in the protocol stack, not a recoverable condition."""


class Segment:
    """An exported, remotely addressable memory region."""

    _ids = itertools.count(1)

    def __init__(self, buffer: Buffer, capability: Optional[bytes],
                 pinned: bool):
        self.id = next(self._ids)
        self.buffer = buffer
        self.base = buffer.base
        self.length = buffer.size
        self.capability = capability
        self.pinned = pinned
        self.revoked = False

    def contains(self, addr: int, nbytes: int) -> bool:
        return self.base <= addr and addr + nbytes <= self.base + self.length

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Segment id={self.id} base={self.base:#x} "
                f"len={self.length} pinned={self.pinned}>")


class CapabilityAuthority:
    """Issues and verifies keyed-MAC capabilities for exported segments."""

    def __init__(self, key: bytes = b"fast03-odafs"):
        self._key = key

    def issue(self, segment_id: int, base: int, length: int) -> bytes:
        msg = f"{segment_id}:{base}:{length}".encode()
        return hmac.new(self._key, msg, hashlib.sha256).digest()[:16]

    def verify(self, segment: Segment, token: Optional[bytes]) -> bool:
        if segment.capability is None:
            return True  # capabilities disabled for this segment
        if token is None:
            return False
        expected = self.issue(segment.id, segment.base, segment.length)
        return hmac.compare_digest(expected, token)


class TPT:
    """Host-resident translation & protection table for one NIC."""

    def __init__(self, use_capabilities: bool = True,
                 capability_key: bytes = b"fast03-odafs"):
        self.authority = CapabilityAuthority(capability_key)
        self.use_capabilities = use_capabilities
        self._segments: Dict[int, Segment] = {}
        #: page vaddr -> owning segment, for translation lookup
        self._by_page: Dict[int, Segment] = {}

    # -- registration ------------------------------------------------------

    def register(self, buffer: Buffer, pin: bool = True) -> Segment:
        """Export ``buffer``. ``pin=True`` is ordinary RDMA registration;
        ``pin=False`` is an optimistic export whose pages the host may still
        reclaim (the ODAFS server's mode)."""
        seg = Segment(buffer, None, pinned=pin)
        if self.use_capabilities:
            seg.capability = self.authority.issue(seg.id, seg.base, seg.length)
        if pin:
            buffer.pin()
        for page in buffer.pages:
            self._by_page[page.vaddr] = seg
        self._segments[seg.id] = seg
        return seg

    def deregister(self, seg: Segment) -> None:
        if seg.id not in self._segments:
            raise ProtectionError(f"deregister of unknown segment {seg!r}")
        if seg.pinned:
            seg.buffer.unpin()
            seg.pinned = False
        for page in seg.buffer.pages:
            self._by_page.pop(page.vaddr, None)
        del self._segments[seg.id]
        seg.revoked = True

    def revoke(self, seg: Segment) -> None:
        """Locally invalidate the segment's capability (Section 4): future
        ORDMA to it faults, without notifying any client."""
        seg.revoked = True

    # -- lookup -------------------------------------------------------------

    def translate(self, addr: int) -> Optional[Tuple[Segment, Page]]:
        # Note: revoked (but still registered) segments translate; access
        # checks report them as REVOKED so clients can tell a revocation
        # from a stale reference to deregistered memory.
        page_vaddr = addr - (addr % PAGE_SIZE)
        seg = self._by_page.get(page_vaddr)
        if seg is None:
            return None
        page = seg.buffer.space.page_at(addr)
        if page is None:
            return None
        return seg, page

    def check_access(self, addr: int, nbytes: int,
                     token: Optional[bytes]) -> Optional[FaultReason]:
        """Validate an ORDMA access; return a fault reason or None if OK."""
        if nbytes <= 0:
            return FaultReason.OUT_OF_BOUNDS
        first = self.translate(addr)
        if first is None:
            return FaultReason.INVALID_TRANSLATION
        seg, _page = first
        if seg.revoked:
            return FaultReason.REVOKED
        if not seg.contains(addr, nbytes):
            return FaultReason.OUT_OF_BOUNDS
        if self.use_capabilities and not self.authority.verify(seg, token):
            return FaultReason.BAD_CAPABILITY
        offset = addr - seg.base
        for page in seg.buffer.pages_in_range(offset, nbytes):
            if not page.resident:
                return FaultReason.NOT_RESIDENT
            if page.locked_by_host:
                return FaultReason.PAGE_LOCKED
        return None

    def segment_count(self) -> int:
        return len(self._segments)


class NicTLB:
    """On-board translation cache with LRU replacement.

    Loaded translations pin and lock their pages (Section 4.1: the chosen
    NIC/host synchronization treats TLB-resident pages as pinned+locked);
    eviction releases them.
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError(f"TLB capacity must be >= 1: {capacity}")
        self.capacity = capacity
        #: OS-imposed cap below the hardware capacity (Section 4.1: "The
        #: OS must also be able to limit the effective size of the NIC TLB
        #: to avoid excessive pinning by the NIC").
        self.effective_limit = capacity
        self._entries: "OrderedDict[int, Page]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def set_effective_limit(self, limit: int) -> List["Page"]:
        """Cap the TLB's effective size; evicts (and unpins) LRU entries
        beyond the new limit. Returns the evicted pages."""
        if limit < 1:
            raise ValueError(f"effective limit must be >= 1: {limit}")
        self.effective_limit = min(limit, self.capacity)
        evicted = []
        while len(self._entries) > self.effective_limit:
            _vaddr, page = self._entries.popitem(last=False)
            page.nic_loaded = False
            evicted.append(page)
        return evicted

    def pinned_bytes(self) -> int:
        """Physical memory currently pinned by loaded translations — what
        the OS must add to its minimum free page threshold (Section 4.1)."""
        return len(self._entries) * PAGE_SIZE

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, page: Page) -> bool:
        """True on hit (entry refreshed), False on miss."""
        if page.vaddr in self._entries:
            self._entries.move_to_end(page.vaddr)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def load(self, page: Page) -> Optional[Page]:
        """Install a translation; returns the evicted page, if any."""
        evicted = None
        if page.vaddr in self._entries:
            self._entries.move_to_end(page.vaddr)
            return None
        if len(self._entries) >= min(self.capacity, self.effective_limit):
            _vaddr, evicted = self._entries.popitem(last=False)
            evicted.nic_loaded = False
        self._entries[page.vaddr] = page
        page.nic_loaded = True
        return evicted

    def invalidate(self, page: Page) -> bool:
        """Host-requested invalidation (e.g. before reclaiming the page)."""
        entry = self._entries.pop(page.vaddr, None)
        if entry is not None:
            entry.nic_loaded = False
            return True
        return False

    def flush(self) -> None:
        for page in self._entries.values():
            page.nic_loaded = False
        self._entries.clear()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
