"""A host: CPU + memory + PCI bus + NIC, attached to the switch.

One :class:`Host` corresponds to one of the four testbed PCs (1 GHz P-III,
2 GB SDRAM, ServerWorks LE, LANai9.2 in a 64/66 PCI slot — Section 5).
"""

from __future__ import annotations

from ..net.link import Switch
from ..params import Params
from ..sim import Simulator
from .cpu import CPU
from .memory import AddressSpace
from .nic import NIC
from .pci import PCIBus


class Host:
    """One simulated PC."""

    def __init__(self, sim: Simulator, params: Params, switch: Switch,
                 name: str, use_capabilities: bool = True):
        self.sim = sim
        self.params = params
        self.name = name
        self.cpu = CPU(sim, params.host, name=f"{name}.cpu")
        #: Ordinary (kernel + user) address space.
        self.mem = AddressSpace(name=f"{name}.mem")
        self.pci = PCIBus(sim, params.nic, name=f"{name}.pci")
        self.nic = NIC(sim, params, name, self.cpu, self.pci, switch,
                       use_capabilities=use_capabilities)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Host {self.name}>"
