"""I/O bus model: the 64 MHz / 66-bit PCI segment between host and NIC.

The testbed's PCI throughput was measured at 450 MB/s (Section 5). All DMA
between NIC and host memory serializes on this bus; descriptor fetches and
doorbell PIOs also cross it but their host-side CPU cost is charged by the
caller.
"""

from __future__ import annotations

from ..params import NicParams
from ..sim import BandwidthPipe, Event, Simulator


class PCIBus:
    """Shared DMA medium for one host's I/O bus."""

    def __init__(self, sim: Simulator, params: NicParams, name: str = "pci"):
        self.sim = sim
        self.params = params
        self.name = name
        self._pipe = BandwidthPipe(
            sim, params.pci_bw, name=name,
            per_transfer_us=params.pci_per_dma_us,
        )

    def dma(self, nbytes: int) -> Event:
        """Move ``nbytes`` between host memory and the NIC."""
        return self._pipe.transfer(nbytes)

    def descriptor_fetch(self) -> Event:
        """NIC-initiated fetch of one descriptor."""
        return self.sim.timeout(self.params.descriptor_fetch_us)

    @property
    def bytes_moved(self) -> int:
        return self._pipe.stats_bytes

    def utilization(self) -> float:
        return self._pipe.utilization()
