"""Hardware models: CPU, memory, PCI, TPT/TLB, NIC, host."""

from .cpu import CPU, PRIO_INTERRUPT, PRIO_KERNEL, PRIO_NORMAL
from .host import Host
from .memory import PAGE_SIZE, AddressSpace, Buffer, MemoryError_, Page
from .nic import NIC, Completion, CompletionQueue, NotifyMode
from .pci import PCIBus
from .tpt import (
    TPT,
    CapabilityAuthority,
    FaultReason,
    NicTLB,
    ProtectionError,
    RemoteAccessFault,
    Segment,
)

__all__ = [
    "AddressSpace",
    "Buffer",
    "CPU",
    "CapabilityAuthority",
    "Completion",
    "CompletionQueue",
    "FaultReason",
    "Host",
    "MemoryError_",
    "NIC",
    "NicTLB",
    "NotifyMode",
    "PAGE_SIZE",
    "PCIBus",
    "PRIO_INTERRUPT",
    "PRIO_KERNEL",
    "PRIO_NORMAL",
    "Page",
    "ProtectionError",
    "RemoteAccessFault",
    "Segment",
    "TPT",
]
