"""CPU model: a priority-served single core with utilization accounting.

Per the paper's overhead equation (Section 2.2), host overhead is
``o(m) = m * o_per_byte + o_per_I/O``; the CPU model realizes both terms:
copies charge per-byte time (:meth:`CPU.copy`), protocol and interrupt work
charges per-I/O time (:meth:`CPU.execute`). Interrupt work preempts at
request boundaries via priority queueing, matching the microsecond-scale
service quanta of the modelled code paths.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator

from ..params import HostParams
from ..sim import BusyTracker, Resource, Simulator, rate_probe

#: Priority levels (lower value is served first).
PRIO_INTERRUPT = 0
PRIO_KERNEL = 1
PRIO_NORMAL = 2


class CPU:
    """One processor. All charged work passes through a priority queue."""

    def __init__(self, sim: Simulator, params: HostParams, name: str = "cpu"):
        self.sim = sim
        self.params = params
        self.name = name
        self._core = Resource(sim, capacity=1, name=name)
        self.busy = BusyTracker(sim, name=name)
        self._last_interrupt_at = -1e18

    # -- work charging ---------------------------------------------------

    def execute(self, cost_us: float, category: str = "proto",
                priority: int = PRIO_NORMAL) -> Generator:
        """Charge ``cost_us`` of CPU time. Yields until the work is done."""
        if cost_us < 0:
            raise ValueError(f"negative CPU cost: {cost_us}")
        if cost_us == 0:
            return
        req = self._core.request(priority)
        yield req
        try:
            yield self.sim.timeout(cost_us)
            self.busy.add(cost_us, category)
        finally:
            self._core.release(req)

    def copy(self, nbytes: int, cached: bool = True,
             category: str = "copy", priority: int = PRIO_NORMAL) -> Generator:
        """Charge a memory copy of ``nbytes``.

        ``cached=False`` uses the slower buffer-cache copy bandwidth (cold,
        cache-polluting destinations) — the dominant cost in standard NFS.
        """
        bw = (self.params.copy_bw_cached if cached
              else self.params.copy_bw_uncached)
        yield from self.execute(nbytes / bw, category=category,
                                priority=priority)

    # -- canned kernel paths ----------------------------------------------

    def interrupt(self, handler_us: float = 0.0,
                  coalesce_window_us: float = 0.0) -> Generator:
        """Take a hardware interrupt plus ``handler_us`` of handler work.

        If a previous interrupt fired within ``coalesce_window_us``, the
        entry/exit cost is skipped (the handler batches completions), but
        the handler work itself is still charged.
        """
        now = self.sim.now
        cost = handler_us
        if now - self._last_interrupt_at >= coalesce_window_us:
            cost += self.params.interrupt_us
            self._last_interrupt_at = now
        if cost > 0:
            yield from self.execute(cost, category="interrupt",
                                    priority=PRIO_INTERRUPT)

    def wakeup(self) -> Generator:
        """Scheduler wakeup + context switch to a blocked thread."""
        yield from self.execute(self.params.wakeup_us, category="sched",
                                priority=PRIO_KERNEL)

    def poll(self) -> Generator:
        """One poll of a completion queue."""
        yield from self.execute(self.params.poll_us, category="poll")

    def syscall(self) -> Generator:
        """User/kernel boundary crossing."""
        yield from self.execute(self.params.syscall_us, category="syscall")

    # -- measurement -------------------------------------------------------

    def reset_measurement(self) -> None:
        self.busy.reset_window()

    def utilization(self) -> float:
        return self.busy.window_utilization()

    def gauges(self) -> Dict[str, Callable[[], float]]:
        """Telemetry probes for a :class:`~repro.sim.TimeSeriesSampler`.

        Windowed utilization (busy-us rate over the sampling interval),
        total and split into the paper's Fig. 4 accounting: data copies,
        interrupt handling, and everything else (protocol + kernel work).
        """
        busy = self.busy
        cats = busy.by_category

        def other() -> float:
            return (busy.busy_us - cats.get("copy", 0.0)
                    - cats.get("interrupt", 0.0))

        return {
            "util": rate_probe(self.sim, lambda: busy.busy_us),
            "util.copy": rate_probe(self.sim,
                                    lambda: cats.get("copy", 0.0)),
            "util.interrupt": rate_probe(self.sim,
                                         lambda: cats.get("interrupt", 0.0)),
            "util.proto": rate_probe(self.sim, other),
            "queue": lambda: float(self._core.queue_len),
        }
