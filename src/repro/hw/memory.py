"""Host memory model: pages, buffers, address spaces, pinning.

The simulation does not move real bytes; a :class:`Buffer` carries a
``data`` object (for end-to-end correctness checks) plus enough virtual
memory structure for the mechanisms under study — pinning for DMA, page
residency, host/NIC locking — to behave as the paper describes. ORDMA
faults, TPT invalidation and registration costs all hinge on this state.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional

PAGE_SIZE = 4096


class MemoryError_(RuntimeError):
    """Host memory misuse (bad free, pin/unpin imbalance, exhaustion)."""


class Page:
    """One virtual memory page with the state the NIC cares about."""

    __slots__ = ("vaddr", "resident", "pin_count", "locked_by_host", "nic_loaded")

    def __init__(self, vaddr: int):
        self.vaddr = vaddr
        self.resident = True
        self.pin_count = 0
        #: The host VM system holds this page (e.g. mid-reclaim); conflicting
        #: NIC access must fault rather than race (Section 4.1).
        self.locked_by_host = False
        #: Translation currently loaded in a NIC TLB => treated as pinned and
        #: locked by the NIC (Section 4.1's chosen synchronization design).
        self.nic_loaded = False

    @property
    def pinned(self) -> bool:
        return self.pin_count > 0 or self.nic_loaded

    def pin(self) -> None:
        if not self.resident:
            raise MemoryError_(f"cannot pin non-resident page {self.vaddr:#x}")
        self.pin_count += 1

    def unpin(self) -> None:
        if self.pin_count <= 0:
            raise MemoryError_(f"unpin of unpinned page {self.vaddr:#x}")
        self.pin_count -= 1

    def evict(self) -> None:
        """Page the page out (host reclaim). Fails if pinned."""
        if self.pinned:
            raise MemoryError_(f"cannot evict pinned page {self.vaddr:#x}")
        self.resident = False

    def page_in(self) -> None:
        self.resident = True


class Buffer:
    """A contiguous virtually addressed region.

    ``data`` is the logical content (any Python object); protocol code moves
    it between buffers to let tests verify end-to-end delivery.
    """

    __slots__ = ("space", "base", "size", "pages", "data", "name")

    def __init__(self, space: "AddressSpace", base: int, size: int,
                 pages: List[Page], name: str = ""):
        self.space = space
        self.base = base
        self.size = size
        self.pages = pages
        self.data: Any = None
        self.name = name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Buffer {self.name or hex(self.base)} size={self.size}>"

    @property
    def end(self) -> int:
        return self.base + self.size

    def pin(self) -> None:
        for page in self.pages:
            page.pin()

    def unpin(self) -> None:
        for page in self.pages:
            page.unpin()

    @property
    def resident(self) -> bool:
        return all(p.resident for p in self.pages)

    @property
    def page_count(self) -> int:
        return len(self.pages)

    def pages_in_range(self, offset: int, nbytes: int) -> List[Page]:
        if offset < 0 or nbytes < 0 or offset + nbytes > self.size:
            raise MemoryError_(
                f"range [{offset}, {offset + nbytes}) outside buffer of "
                f"size {self.size}"
            )
        first = offset // PAGE_SIZE
        last = (offset + max(nbytes, 1) - 1) // PAGE_SIZE
        return self.pages[first:last + 1]


class AddressSpace:
    """A virtual address space: allocation, lookup, reclaim.

    The ODAFS server maps exported file blocks in a *private 64-bit*
    address space touched only by the NIC (Section 4.2.1); clients and the
    kernel use ordinary spaces. Both are instances of this class.
    """

    _ids = itertools.count()

    def __init__(self, name: str = "", base: int = 0x1000_0000,
                 total_bytes: Optional[int] = None):
        self.name = name or f"as{next(self._ids)}"
        self._next = base
        self._pages: Dict[int, Page] = {}
        self._buffers: Dict[int, Buffer] = {}
        self.total_bytes = total_bytes
        self.allocated_bytes = 0

    def alloc(self, size: int, name: str = "") -> Buffer:
        """Allocate a page-aligned buffer of ``size`` bytes."""
        if size <= 0:
            raise MemoryError_(f"allocation size must be positive: {size}")
        if self.total_bytes is not None and (
                self.allocated_bytes + size > self.total_bytes):
            raise MemoryError_(
                f"address space {self.name!r} exhausted: "
                f"{self.allocated_bytes} + {size} > {self.total_bytes}"
            )
        npages = (size + PAGE_SIZE - 1) // PAGE_SIZE
        base = self._next
        self._next += npages * PAGE_SIZE
        pages = []
        for i in range(npages):
            vaddr = base + i * PAGE_SIZE
            page = Page(vaddr)
            self._pages[vaddr] = page
            pages.append(page)
        buf = Buffer(self, base, size, pages, name=name)
        self._buffers[base] = buf
        self.allocated_bytes += size
        return buf

    def free(self, buf: Buffer) -> None:
        if buf.base not in self._buffers:
            raise MemoryError_(f"double free or foreign buffer {buf!r}")
        for page in buf.pages:
            if page.pinned:
                raise MemoryError_(
                    f"freeing buffer {buf!r} with pinned page {page.vaddr:#x}"
                )
            del self._pages[page.vaddr]
        del self._buffers[buf.base]
        self.allocated_bytes -= buf.size

    def page_at(self, vaddr: int) -> Optional[Page]:
        return self._pages.get(vaddr - (vaddr % PAGE_SIZE))

    def buffer_count(self) -> int:
        return len(self._buffers)

    def reclaimable_pages(self) -> List[Page]:
        """Pages the VM system could evict right now."""
        return [p for p in self._pages.values()
                if p.resident and not p.pinned and not p.locked_by_host]
