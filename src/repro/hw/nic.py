"""NIC model: LANai9.2-class adapter with messaging, RDMA and ORDMA.

The NIC owns a firmware processor (serializes per-frame work), DMA engines
on the host PCI bus, a TPT + on-board TLB for RDMA address translation, and
an interrupt/polling notification path to the host. Three personalities run
over the same hardware, as on the testbed (Section 5):

* **GM messaging** — send/receive into pre-posted buffers.
* **RDMA get/put** — remote memory access with optional *optimistic*
  semantics: capability check, residency/lock check, and NIC-to-NIC
  recoverable faults (Section 4.1).
* **Ethernet emulation** — frames DMA'd to kernel buffers and handed to a
  host interrupt handler (the UDP/IP path).
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Any, Callable, Deque, Dict, Generator, Optional

from ..integrity.checksum import corrupt_payload
from ..net.link import Switch
from ..net.packet import Frame, Message, MsgKind, Reassembler, fragment
from ..params import Params
from ..sim import (Counter, Event, Resource, Simulator, Store, rate_probe,
                   trace_emit)
from .cpu import CPU
from .memory import Buffer
from .pci import PCIBus
from .tpt import TPT, FaultReason, NicTLB, ProtectionError, RemoteAccessFault


class NotifyMode(enum.Enum):
    """How the host learns about completions (Table 2's poll vs block)."""

    POLL = "poll"
    BLOCK = "block"


class Completion:
    """One completion queue entry."""

    __slots__ = ("kind", "message", "data", "context")

    def __init__(self, kind: MsgKind, message: Optional[Message] = None,
                 data: Any = None, context: Any = None):
        self.kind = kind
        self.message = message
        self.data = data
        self.context = context


class CompletionQueue:
    """Notification channel between NIC and a host consumer.

    POLL mode charges the consumer one poll per completion retrieved;
    BLOCK mode charges an interrupt (coalesced) plus a scheduler wakeup on
    the delivery path before the consumer resumes — the 23 us vs 53 us VI
    round-trip difference of Table 2.
    """

    def __init__(self, sim: Simulator, cpu: CPU, params: Params,
                 mode: NotifyMode = NotifyMode.POLL, name: str = ""):
        self.sim = sim
        self.cpu = cpu
        self.params = params
        self.mode = mode
        self.name = name
        self._store = Store(sim, name=name)
        self.delivered = 0

    def __len__(self) -> int:
        return len(self._store)

    def push(self, comp: Completion) -> None:
        self.delivered += 1
        if self.mode is NotifyMode.BLOCK:
            self.sim.process(self._blocking_delivery(comp),
                             name=f"cq-intr:{self.name}")
        else:
            self._store.put(comp)

    def _blocking_delivery(self, comp: Completion) -> Generator:
        yield from self.cpu.interrupt(
            coalesce_window_us=self.params.nic.interrupt_coalesce_us)
        yield from self.cpu.wakeup()
        self._store.put(comp)

    def get(self) -> Generator:
        """Retrieve the next completion (process-style helper)."""
        comp = yield self._store.get()
        if self.mode is NotifyMode.POLL:
            yield from self.cpu.poll()
        return comp


class NIC:
    """One network adapter, attached to a host and the cluster switch."""

    def __init__(self, sim: Simulator, params: Params, host_name: str,
                 cpu: CPU, pci: PCIBus, switch: Switch,
                 use_capabilities: bool = True):
        self.sim = sim
        self.params = params
        self.name = host_name
        self.cpu = cpu
        self.pci = pci
        self.switch = switch
        self.port = switch.attach(host_name)
        self.port.set_handler(self._deliver)
        self.firmware = Resource(sim, capacity=1, name=f"{host_name}.fw")
        self.tpt = TPT(use_capabilities=use_capabilities)
        self.tlb = NicTLB(params.nic.tlb_entries)
        self.stats = Counter()
        self._reassembler = Reassembler()
        #: GM port -> queue of pre-posted receive buffers
        self._recv_buffers: Dict[int, Deque[Buffer]] = {}
        #: GM port -> completion queue
        self._recv_cqs: Dict[int, CompletionQueue] = {}
        #: outstanding initiator-side RDMA operations, by message id
        self._pending_rdma: Dict[int, Dict[str, Any]] = {}
        #: Ethernet-emulation receive upcall (set by the UDP stack)
        self._eth_handler: Optional[Callable[[Message], None]] = None
        #: RDDP-RPC tag table: RPC xid -> target Buffer (Section 3.2)
        self._rddp_tags: Dict[int, Buffer] = {}
        #: Fault-injection state (repro.faults.NicFaults); ``None`` means
        #: healthy firmware and no per-operation checks.
        self.faults = None
        #: Initiator-side RDMA recovery timeout; ``None`` (the default)
        #: waits forever, exact for a lossless fabric. Fault-injection
        #: runs set it so lost frames surface as recoverable
        #: :class:`RemoteAccessFault` (TIMEOUT) instead of hangs.
        self.rdma_timeout_us: Optional[float] = None

    def gauges(self) -> Dict[str, Callable[[], float]]:
        """Telemetry probes for a :class:`~repro.sim.TimeSeriesSampler`:
        firmware queue depth (doorbell-serialized per-frame work, queued
        plus in service), outstanding initiator-side RDMA operations, and
        DMA bandwidth over the sampling window (B/µs == MB/s)."""
        return {
            "fw_queue": lambda: float(self.firmware.queue_len
                                      + self.firmware.count),
            "rdma_outstanding": lambda: float(len(self._pending_rdma)),
            "dma_mb_s": rate_probe(
                self.sim, lambda: float(self.stats.get("dma_bytes"))),
        }

    def _doorbell(self) -> Generator:
        """Ring a doorbell: the PIO cost plus any injected firmware stall."""
        yield from self.cpu.execute(self.params.nic.doorbell_us,
                                    category="doorbell")
        if self.faults is not None:
            stall_us = self.faults.doorbell_delay()
            if stall_us > 0.0:
                yield self.sim.timeout(stall_us)

    # ------------------------------------------------------------------
    # GM messaging (host-facing)
    # ------------------------------------------------------------------

    def open_port(self, port: int,
                  mode: NotifyMode = NotifyMode.POLL) -> CompletionQueue:
        """Create the receive queue pair for a GM port."""
        if port in self._recv_cqs:
            raise ValueError(f"port {port} already open on {self.name}")
        self._recv_buffers[port] = deque()
        cq = CompletionQueue(self.sim, self.cpu, self.params, mode=mode,
                             name=f"{self.name}:{port}")
        self._recv_cqs[port] = cq
        return cq

    def post_receive(self, port: int, buffer: Buffer) -> None:
        """Pre-post a pinned receive buffer on a GM port."""
        self._recv_buffers[port].append(buffer)

    def gm_send(self, dst: str, port: int, nbytes: int, data: Any = None,
                meta: Optional[Dict[str, Any]] = None) -> Generator:
        """Hand a send descriptor to the NIC. Returns when the doorbell is
        rung; transmission proceeds asynchronously."""
        yield from self._doorbell()
        msg = Message(MsgKind.GM_SEND, self.name, dst, nbytes, port=port,
                      data=data, meta=meta or {})
        self.stats.incr("gm_send")
        if self.sim.tracer is not None:
            self.sim.tracer.emit(self.name, "gm-send", dst=dst, port=port,
                                 bytes=nbytes, msg=msg.msg_id)
        self.sim.process(self._tx(msg, from_host=True, fetch_descriptor=True),
                         name=f"{self.name}.tx")

    # ------------------------------------------------------------------
    # Ethernet emulation (UDP/IP path)
    # ------------------------------------------------------------------

    def set_eth_handler(self, handler: Callable[[Message], None]) -> None:
        self._eth_handler = handler

    def eth_send(self, dst: str, nbytes: int, data: Any = None,
                 meta: Optional[Dict[str, Any]] = None,
                 port: int = 0) -> Generator:
        """Queue an Ethernet-emulation datagram for transmission."""
        yield from self._doorbell()
        msg = Message(MsgKind.ETH, self.name, dst, nbytes, port=port,
                      data=data, meta=meta or {})
        self.stats.incr("eth_send")
        self.sim.process(self._tx(msg, from_host=True, fetch_descriptor=True),
                         name=f"{self.name}.eth-tx")

    # ------------------------------------------------------------------
    # RDDP-RPC support (Section 3.2): tagged pre-posted user buffers
    # ------------------------------------------------------------------

    def rddp_post_tag(self, xid: int, buffer: Buffer) -> Generator:
        """Associate an RPC transaction number with a target buffer so the
        NIC can header-split the matching response (per-I/O NIC
        interaction — one doorbell)."""
        yield from self._doorbell()
        self._rddp_tags[xid] = buffer

    def rddp_cancel_tag(self, xid: int) -> None:
        self._rddp_tags.pop(xid, None)

    # ------------------------------------------------------------------
    # RDMA / ORDMA (host-facing, initiator side)
    # ------------------------------------------------------------------

    def rdma_put(self, dst: str, remote_addr: int, nbytes: int,
                 data: Any = None, capability: Optional[bytes] = None,
                 optimistic: bool = False, span=None) -> Generator:
        """Remote write. Yields until the remote NIC acknowledges.

        Optimistic puts may raise :class:`RemoteAccessFault` at the yield
        point; plain puts on registered memory fault only on stack bugs.
        """
        done = Event(self.sim)
        meta: Dict[str, Any] = {"addr": remote_addr,
                                "capability": capability,
                                "optimistic": optimistic}
        if span is not None:
            meta["_span"] = span
        msg = Message(MsgKind.RDMA_PUT, self.name, dst, nbytes, data=data,
                      meta=meta)
        self._pending_rdma[msg.msg_id] = {"event": done, "kind": "put"}
        self.stats.incr("rdma_put")
        if self.sim.tracer is not None:
            self.sim.tracer.emit(self.name, "rdma-put", dst=dst,
                                 addr=remote_addr, bytes=nbytes,
                                 msg=msg.msg_id, optimistic=optimistic)
        yield from self._doorbell()
        if span is not None:
            span.mark(self.name, "nic.doorbell", op="rdma-put",
                      bytes=nbytes)
        self.sim.process(self._tx(msg, from_host=True, fetch_descriptor=True),
                         name=f"{self.name}.put")
        if self.rdma_timeout_us is None:
            result = yield done
        else:
            result = yield from self._await_rdma(msg.msg_id, done, "put")
        if span is not None:
            span.mark(self.name, "rdma.ack")
        return result

    def rdma_get(self, dst: str, remote_addr: int, nbytes: int,
                 local_buffer: Optional[Buffer] = None,
                 capability: Optional[bytes] = None,
                 optimistic: bool = False, span=None) -> Generator:
        """Remote read. Yields until the data lands in ``local_buffer``;
        returns the payload object. May raise :class:`RemoteAccessFault`."""
        done = Event(self.sim)
        meta: Dict[str, Any] = {"addr": remote_addr, "nbytes": nbytes,
                                "capability": capability,
                                "optimistic": optimistic}
        if span is not None:
            meta["_span"] = span
        msg = Message(MsgKind.RDMA_GET_REQ, self.name, dst, 0, meta=meta)
        self._pending_rdma[msg.msg_id] = {
            "event": done, "kind": "get", "buffer": local_buffer,
        }
        self.stats.incr("rdma_get")
        if self.sim.tracer is not None:
            self.sim.tracer.emit(self.name, "rdma-get", dst=dst,
                                 addr=remote_addr, bytes=nbytes,
                                 msg=msg.msg_id, optimistic=optimistic)
        yield from self._doorbell()
        if span is not None:
            span.mark(self.name, "nic.doorbell", op="rdma-get",
                      bytes=nbytes)
        self.sim.process(self._tx(msg, from_host=True, fetch_descriptor=True),
                         name=f"{self.name}.get")
        if self.rdma_timeout_us is None:
            data = yield done
        else:
            data = yield from self._await_rdma(msg.msg_id, done, "get")
        return data

    def _await_rdma(self, msg_id: int, done: Event, op: str) -> Generator:
        """Completion wait with a recovery deadline (fault injection).

        A remote NIC fault still raises at the yield point; a lost
        request or response instead surfaces as a TIMEOUT-reason
        :class:`RemoteAccessFault` once the deadline passes, after which
        late completions for this operation are ignored.
        """
        deadline = self.sim.timeout(self.rdma_timeout_us)
        yield self.sim.any_of([done, deadline])
        if not done.triggered:
            self._pending_rdma.pop(msg_id, None)
            self.stats.incr("rdma_timeout")
            trace_emit(self.sim, self.name, "rdma-timeout", op=op,
                       msg=msg_id)
            raise RemoteAccessFault(
                FaultReason.TIMEOUT, f"{op} msg={msg_id} unacknowledged "
                f"after {self.rdma_timeout_us}us")
        return done.value

    # ------------------------------------------------------------------
    # Transmit engine (NIC context)
    # ------------------------------------------------------------------

    def _tx(self, msg: Message, from_host: bool,
            fetch_descriptor: bool) -> Generator:
        mtu, header = self._wire_format(msg)
        if fetch_descriptor:
            yield self.pci.descriptor_fetch()
        for frame in fragment(msg, mtu, header):
            frame_cost = self.params.nic.tx_frame_us
            if (self.params.net.emulate_gm_get_bug
                    and msg.kind is MsgKind.RDMA_GET_RESP
                    and msg.size > 32 * 1024):
                # Fig. 7's "performance bug in GM get": large gets stall the
                # firmware per fragment on the responding NIC, capping get
                # throughput below the link rate.
                frame_cost += self.params.net.gm_get_bug_stall_us
            fw = self.firmware.request()
            yield fw
            try:
                yield self.sim.timeout(frame_cost)
            finally:
                self.firmware.release(fw)
            if from_host and frame.payload_bytes > 0:
                yield self.pci.dma(frame.payload_bytes)
                self.stats.incr("dma_bytes", frame.payload_bytes)
            self.switch.transmit(self.name, frame)

    def _wire_format(self, msg: Message):
        if msg.kind is MsgKind.ETH:
            return (self.params.net.ip_fragment_payload,
                    self.params.net.eth_header_bytes)
        return self.params.net.gm_mtu, self.params.net.gm_header_bytes

    # ------------------------------------------------------------------
    # Receive engine (NIC context)
    # ------------------------------------------------------------------

    def _deliver(self, frame: Frame) -> None:
        self.sim.process(self._rx_frame(frame), name=f"{self.name}.rx")

    def _rx_frame(self, frame: Frame) -> Generator:
        fw = self.firmware.request()
        yield fw
        try:
            yield self.sim.timeout(self.params.nic.rx_frame_us)
        finally:
            self.firmware.release(fw)
        kind = frame.message.kind
        if kind is MsgKind.GM_SEND:
            yield from self._rx_gm(frame)
        elif kind is MsgKind.ETH:
            yield from self._rx_eth(frame)
        elif kind is MsgKind.RDMA_PUT:
            yield from self._rx_put(frame)
        elif kind is MsgKind.RDMA_PUT_ACK:
            self._complete_rdma(frame.message.meta["for"], ok=True)
        elif kind is MsgKind.RDMA_GET_REQ:
            yield from self._rx_get_request(frame)
        elif kind is MsgKind.RDMA_GET_RESP:
            yield from self._rx_get_response(frame)
        elif kind is MsgKind.RDMA_FAULT:
            meta = frame.message.meta
            self._complete_rdma(meta["for"], ok=False,
                                fault=RemoteAccessFault(meta["reason"]))
        else:  # pragma: no cover - exhaustive over MsgKind
            raise ProtectionError(f"unhandled frame kind {kind}")

    def _rx_gm(self, frame: Frame) -> Generator:
        msg = frame.message
        # RDDP-RPC header splitting: if the host tagged this RPC's xid, the
        # data payload bypasses intermediate buffers and lands in the
        # pre-posted user buffer (Section 3.2). The header still goes up
        # through the normal receive path.
        xid = msg.meta.get("rddp_xid")
        split = xid is not None and xid in self._rddp_tags
        if frame.payload_bytes > 0:
            yield self.pci.dma(frame.payload_bytes)
            self.stats.incr("dma_bytes", frame.payload_bytes)
        if not self._reassembler.add(frame):
            return
        if split:
            target = self._rddp_tags.pop(xid)
            payload = msg.meta.get("rddp_payload")
            if payload is not None and msg.meta.get("rddp_bytes", 0) > 0:
                target.data = payload
            self.stats.incr("rddp_split")
        queue = self._recv_buffers.get(msg.port)
        if queue is None:
            raise ProtectionError(
                f"{self.name}: message for unopened port {msg.port}")
        if not queue:
            self.stats.incr("gm_recv_drop")
            return  # GM drops sends with no posted receive
        buffer = queue.popleft()
        if buffer.size < msg.size:
            raise ProtectionError(
                f"{self.name}: posted buffer too small on port {msg.port}: "
                f"{buffer.size} < {msg.size}")
        buffer.data = msg.data
        self.stats.incr("gm_recv")
        self._recv_cqs[msg.port].push(
            Completion(MsgKind.GM_SEND, message=msg, data=msg.data,
                       context=buffer))

    def _rx_eth(self, frame: Frame) -> Generator:
        if frame.payload_bytes > 0:
            yield self.pci.dma(frame.payload_bytes)
            self.stats.incr("dma_bytes", frame.payload_bytes)
        msg = self._reassembler.add(frame)
        # The Ethernet driver interrupts per fragment group; the IP stack
        # charges its own per-fragment costs in the handler.
        if self._eth_handler is None:
            raise ProtectionError(f"{self.name}: no Ethernet handler bound")
        if msg is None:
            return
        # RDDP-RPC header splitting on the Ethernet path (Section 3.2):
        # a response whose RPC xid matches a pre-posted tag has its payload
        # placed directly in the tagged user buffer; the host stack then
        # sees headers only (meta["rddp_split_done"]).
        xid = msg.meta.get("rddp_xid")
        if xid is not None and xid in self._rddp_tags:
            target = self._rddp_tags.pop(xid)
            payload = msg.meta.get("rddp_payload")
            if payload is not None and msg.meta.get("rddp_bytes", 0) > 0:
                target.data = payload
            msg.meta["rddp_split_done"] = True
            self.stats.incr("rddp_split")
        elif msg.meta.get("rddp_untagged") and \
                msg.meta.get("rddp_bytes", 0) > 0:
            # Untagged RDDP-RPC (Section 2.2): no pre-posted tag — the NIC
            # header-splits the payload into intermediate *page-aligned*
            # kernel buffers; the host later re-maps those pages into the
            # (page-aligned) target instead of copying.
            msg.meta["rddp_untagged_done"] = True
            self.stats.incr("rddp_untagged_split")
        self.stats.incr("eth_recv")
        self._eth_handler(msg)

    # -- RDMA target side ------------------------------------------------

    def _validate(self, msg: Message, nbytes: int) -> Optional[FaultReason]:
        meta = msg.meta
        fault = self.tpt.check_access(meta["addr"], nbytes,
                                      meta.get("capability"))
        return fault

    def _tlb_walk(self, addr: int, nbytes: int,
                  optimistic: bool) -> Generator:
        """Ensure translations for the access are loaded; charge misses."""
        hit = self.tpt.translate(addr)
        if hit is None:  # pragma: no cover - callers validate first
            raise ProtectionError(f"{self.name}: walk of invalid {addr:#x}")
        seg, _ = hit
        offset = addr - seg.base
        for page in seg.buffer.pages_in_range(offset, nbytes):
            if self.tlb.lookup(page):
                continue
            if optimistic:
                # Host loads the entry by PIO after an interrupt
                # (Section 4.1's uniprocessor synchronization design).
                yield from self.cpu.interrupt(
                    handler_us=0.0,
                    coalesce_window_us=self.params.nic.interrupt_coalesce_us)
                yield self.sim.timeout(self.params.nic.tlb_miss_ordma_us)
            else:
                yield self.sim.timeout(self.params.nic.tlb_miss_us)
            self.tlb.load(page)
        return seg

    def _rx_put(self, frame: Frame) -> Generator:
        msg = frame.message
        meta = msg.meta
        first = frame.index == 0
        if first:
            fault = None
            if meta.get("optimistic"):
                if self.faults is not None and self.faults.ordma_reject():
                    fault = FaultReason.INJECTED
                if fault is None:
                    fault = self._validate(msg, msg.size)
                if fault is None and self.tpt.use_capabilities:
                    yield self.sim.timeout(
                        self.params.nic.capability_verify_us)
            elif self.tpt.translate(meta["addr"]) is None:
                raise ProtectionError(
                    f"{self.name}: plain RDMA put to unregistered "
                    f"{meta['addr']:#x}")
            if fault is not None:
                meta["faulted"] = fault
                self.stats.incr("ordma_fault")
                trace_emit(self.sim, self.name, "ordma-fault",
                           initiator=msg.src, reason=fault.value,
                           msg=msg.msg_id, op="put")
                span = meta.get("_span")
                if span is not None:
                    span.mark(self.name, "ordma.reject",
                              reason=fault.value)
                self._nic_send(Message(
                    MsgKind.RDMA_FAULT, self.name, msg.src, 0,
                    meta={"for": msg.msg_id, "reason": fault}))
        if meta.get("faulted"):
            return  # sink remaining frames of a faulted put
        if frame.payload_bytes > 0:
            yield self.pci.dma(frame.payload_bytes)
            self.stats.incr("dma_bytes", frame.payload_bytes)
        if not self._reassembler.add(frame):
            return
        seg = yield from self._tlb_walk(meta["addr"], msg.size,
                                        meta.get("optimistic", False))
        if msg.data is not None:
            seg.buffer.data = msg.data
        self.stats.incr("rdma_put_served")
        span = meta.get("_span")
        if span is not None:
            span.mark(self.name, "rdma.data", bytes=msg.size)
        # Ack turnaround in the target firmware (latency only).
        yield self.sim.timeout(self.params.nic.put_ack_delay_us)
        self._nic_send(Message(MsgKind.RDMA_PUT_ACK, self.name, msg.src, 0,
                               meta={"for": msg.msg_id}))

    def _rx_get_request(self, frame: Frame) -> Generator:
        msg = frame.message
        meta = msg.meta
        nbytes = meta["nbytes"]
        optimistic = meta.get("optimistic", False)
        if optimistic:
            fault = None
            if self.faults is not None and self.faults.ordma_reject():
                fault = FaultReason.INJECTED
            if fault is None:
                fault = self._validate(msg, nbytes)
            if fault is None and self.tpt.use_capabilities:
                yield self.sim.timeout(self.params.nic.capability_verify_us)
            if fault is not None:
                self.stats.incr("ordma_fault")
                trace_emit(self.sim, self.name, "ordma-fault",
                           initiator=msg.src, reason=fault.value,
                           msg=msg.msg_id)
                span = meta.get("_span")
                if span is not None:
                    span.mark(self.name, "ordma.reject",
                              reason=fault.value)
                self._nic_send(Message(
                    MsgKind.RDMA_FAULT, self.name, msg.src, 0,
                    meta={"for": msg.msg_id, "reason": fault}))
                return
        elif self.tpt.translate(meta["addr"]) is None:
            raise ProtectionError(
                f"{self.name}: plain RDMA get from unregistered "
                f"{meta['addr']:#x}")
        seg = yield from self._tlb_walk(meta["addr"], nbytes, optimistic)
        # GM get service has two cost components: a firmware occupancy
        # (serializes concurrent gets; bounds get throughput below the raw
        # link rate) and a rendezvous turnaround that is pure latency.
        fw = self.firmware.request()
        yield fw
        try:
            yield self.sim.timeout(self.params.nic.get_occupancy_us)
        finally:
            self.firmware.release(fw)
        yield self.sim.timeout(self.params.nic.get_turnaround_us)
        self.stats.incr("rdma_get_served")
        if self.sim.tracer is not None:
            self.sim.tracer.emit(self.name, "get-served", initiator=msg.src,
                                 bytes=nbytes, msg=msg.msg_id)
        span = meta.get("_span")
        if span is not None:
            span.mark(self.name, "ordma.server", bytes=nbytes)
        data = seg.buffer.data
        if optimistic and self.faults is not None \
                and self.faults.ordma_corrupt():
            # Silent corruption on the direct path: the get completes
            # normally, the payload is wrong, and no host CPU ever sees
            # it — only a client-side checksum can tell (Section 5's
            # offloaded checksums, finally asked to earn their keep).
            data = corrupt_payload(data, "ordma")
        resp = Message(MsgKind.RDMA_GET_RESP, self.name, msg.src, nbytes,
                       data=data, meta={"for": msg.msg_id})
        self.sim.process(self._tx(resp, from_host=True,
                                  fetch_descriptor=False),
                         name=f"{self.name}.get-resp")

    def _rx_get_response(self, frame: Frame) -> Generator:
        msg = frame.message
        if frame.payload_bytes > 0:
            yield self.pci.dma(frame.payload_bytes)
        if not self._reassembler.add(frame):
            return
        ctx = self._pending_rdma.get(msg.meta["for"])
        if ctx is not None and ctx.get("buffer") is not None:
            ctx["buffer"].data = msg.data
        self._complete_rdma(msg.meta["for"], ok=True, data=msg.data)

    def _complete_rdma(self, msg_id: int, ok: bool, data: Any = None,
                       fault: Optional[RemoteAccessFault] = None) -> None:
        ctx = self._pending_rdma.pop(msg_id, None)
        if ctx is None:
            return  # duplicate ack/fault
        if ok:
            ctx["event"].succeed(data)
        else:
            ctx["event"].fail(fault)

    def _nic_send(self, msg: Message) -> None:
        """Transmit a NIC-originated control message (ack/fault)."""
        self.sim.process(self._tx(msg, from_host=False,
                                  fetch_descriptor=False),
                         name=f"{self.name}.ctl")
