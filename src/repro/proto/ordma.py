"""Optimistic RDMA: client-initiated remote memory access without RPC.

The initiator holds a :class:`RemoteRef` — a remote virtual address plus
its protecting capability, collected from piggybacked RPC responses — and
issues gets/puts that the *server CPU never sees* (Section 4). The access
succeeds only if the reference is still valid, resident and unlocked at
the target; otherwise the target NIC reports a recoverable exception and
the caller falls back to RPC.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Optional

from ..hw.host import Host
from ..hw.memory import Buffer
from ..sim import Counter, rate_probe


@dataclass(frozen=True)
class RemoteRef:
    """A reference to exported server memory, as piggybacked to clients."""

    host: str          #: server host name
    addr: int          #: virtual address in the server's export space
    nbytes: int        #: length of the exported block
    capability: Optional[bytes] = None
    #: Expected block checksum, piggybacked when the server runs with
    #: ``params.integrity`` so the *client* can vet direct reads the
    #: server CPU never sees; ``None`` when integrity is off.
    csum: Optional[int] = None

    def __post_init__(self):
        if self.nbytes <= 0:
            raise ValueError(f"empty remote reference: {self.nbytes}")


class ORDMAInitiator:
    """Client-side issue path for optimistic gets and puts."""

    def __init__(self, host: Host):
        self.host = host
        self.stats = Counter()

    def gauges(self):
        """Telemetry probes for a :class:`~repro.sim.TimeSeriesSampler`:
        windowed issue rates for optimistic reads and writes (ops/s)."""
        sim = self.host.sim
        return {
            "reads_s": rate_probe(
                sim, lambda: float(self.stats.get("reads")), scale=1e6),
            "writes_s": rate_probe(
                sim, lambda: float(self.stats.get("writes")), scale=1e6),
        }

    def read(self, ref: RemoteRef, local: Optional[Buffer] = None,
             nbytes: Optional[int] = None, span=None) -> Generator:
        """Optimistic read of ``ref`` into ``local``; returns the payload.

        Raises :class:`repro.hw.RemoteAccessFault` at the yield point when
        the server NIC rejects the access; callers retry via RPC.
        """
        self.stats.incr("reads")
        data = yield from self.host.nic.rdma_get(
            ref.host, ref.addr, nbytes or ref.nbytes, local_buffer=local,
            capability=ref.capability, optimistic=True, span=span)
        if span is not None:
            span.mark(self.host.name, "ordma.complete",
                      bytes=nbytes or ref.nbytes)
        return data

    def write(self, ref: RemoteRef, data: Any,
              nbytes: Optional[int] = None, span=None) -> Generator:
        """Optimistic write of ``data`` to ``ref``.

        ORDMA writes update data only; file metadata (mtime, block status)
        still needs RPC, which is why small read-write ratios limit ODAFS
        (Section 4.2.2).
        """
        self.stats.incr("writes")
        yield from self.host.nic.rdma_put(
            ref.host, ref.addr, nbytes or ref.nbytes, data=data,
            capability=ref.capability, optimistic=True, span=span)
        if span is not None:
            span.mark(self.host.name, "ordma.complete",
                      bytes=nbytes or ref.nbytes)
