"""Transactional RPC over any messaging transport.

RPC is the paper's baseline control path (Section 2.1): requests carry a
transaction number (xid), the server dispatches a handler, and the response
either in-lines the data payload, triggers a server-initiated RDMA, or is
header-split by the NIC against a pre-posted tagged buffer (RDDP-RPC).

The RPC transaction number doubles as the RDDP-RPC buffer tag, exactly as
in Section 2.2: ``call(..., rddp_buffer=...)`` pins and tags the buffer,
sends the xid, and the NIC places the matching response payload directly.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Generator, Optional

from ..hw.host import Host
from ..hw.memory import Buffer
from ..net.packet import Message
from ..sim import Counter, Event, trace_emit

#: Marshalled size of request/response headers on the wire.
RPC_HEADER_BYTES = 128


class RPCError(RuntimeError):
    """Protocol-level RPC failure (unknown procedure, bad reply)."""


class RPCRequest:
    """Server-side view of one incoming call."""

    __slots__ = ("message", "proc", "args", "xid", "client", "span")

    def __init__(self, message: Message):
        self.message = message
        meta = message.meta
        self.proc: str = meta["rpc_proc"]
        self.args: Dict[str, Any] = meta.get("rpc_args", {})
        self.xid: int = meta["rpc_xid"]
        self.client: str = message.src
        #: The request's trace span, when the client is tracing.
        self.span = meta.get("_span")


class RPCReply:
    """What a handler returns: optional inline payload + response meta."""

    __slots__ = ("inline_bytes", "data", "meta")

    def __init__(self, inline_bytes: int = 0, data: Any = None,
                 meta: Optional[Dict[str, Any]] = None):
        if inline_bytes < 0:
            raise ValueError(f"negative inline payload: {inline_bytes}")
        self.inline_bytes = inline_bytes
        self.data = data
        self.meta = meta or {}


#: A handler is a generator taking (server, request) and returning RPCReply.
Handler = Callable[["RPCServer", RPCRequest], Generator]


class RPCClient:
    """Issues calls over a transport; supports many outstanding calls."""

    _xids = itertools.count(1)

    def __init__(self, host: Host, transport, server: str,
                 kernel: bool = False):
        """``kernel=True`` charges the kernel RPC layer's extra per-call
        cost (the NFS-family clients; Section 5.1's NFS hybrid burns more
        CPU per RPC than the user-level DAFS client)."""
        self.host = host
        self.transport = transport
        self.server = server
        self.kernel = kernel
        self.stats = Counter()
        self._pending: Dict[int, Event] = {}
        host.sim.process(self._recv_loop(), name=f"{host.name}.rpc-recv")

    def call(self, proc: str, args: Optional[Dict[str, Any]] = None,
             req_bytes: int = RPC_HEADER_BYTES,
             rddp_buffer: Optional[Buffer] = None,
             rddp_untagged: bool = False, span=None) -> Generator:
        """Issue one RPC; yields until the response arrives.

        ``rddp_buffer`` activates RDDP-RPC: the buffer is pinned and tagged
        with this call's xid so the NIC header-splits the response payload
        straight into it (registration is on-the-fly, per I/O, as kernel
        clients must — Section 3). ``rddp_untagged`` instead asks the NIC
        to split the payload into intermediate page-aligned buffers with
        no pre-posting; the caller re-maps pages afterwards (Section 2.2's
        untagged variant).

        ``span`` (a :class:`repro.sim.Span` or ``None``) rides the request
        to the server, collecting stage boundaries at every hop.
        """
        cpu = self.host.cpu
        proto = self.host.params.proto
        xid = next(self._xids)
        yield from cpu.execute(proto.rpc_marshal_us, category="rpc")
        if self.kernel:
            yield from cpu.execute(proto.kernel_rpc_extra_us, category="rpc")
        meta: Dict[str, Any] = {
            "rpc": "req", "rpc_proc": proc, "rpc_xid": xid,
            "rpc_args": args or {},
        }
        if rddp_buffer is not None:
            host_p = self.host.params.host
            yield from cpu.execute(
                rddp_buffer.page_count * host_p.register_page_us,
                category="register")
            rddp_buffer.pin()
            yield from self.host.nic.rddp_post_tag(xid, rddp_buffer)
            meta["rddp_xid"] = xid
        if rddp_untagged:
            meta["rddp_untagged"] = True
        done = Event(self.host.sim)
        self._pending[xid] = done
        self.stats.incr("calls")
        trace_emit(self.host.sim, self.host.name, "rpc-call", proc=proc,
                   xid=xid, server=self.server)
        if span is not None:
            span.mark(self.host.name, "rpc.marshal", proc=proc, xid=xid)
            meta["_span"] = span
        yield from self.transport.send(self.server, req_bytes, meta=meta)
        if span is not None:
            span.mark(self.host.name, "nic.tx")
        response: Message = yield done
        if span is not None:
            span.mark(self.host.name, "net.reply")
        yield from cpu.execute(proto.rpc_marshal_us, category="rpc")
        if self.kernel:
            yield from cpu.execute(proto.kernel_rpc_extra_us, category="rpc")
        if rddp_buffer is not None:
            host_p = self.host.params.host
            rddp_buffer.unpin()
            self.host.nic.rddp_cancel_tag(xid)
            yield from cpu.execute(
                rddp_buffer.page_count * host_p.deregister_page_us,
                category="register")
        if span is not None:
            span.mark(self.host.name, "rpc.unmarshal")
        if "rpc_error" in response.meta:
            raise RPCError(response.meta["rpc_error"])
        return response

    def _recv_loop(self) -> Generator:
        while True:
            msg = yield from self.transport.recv()
            xid = msg.meta.get("rpc_xid")
            pending = self._pending.pop(xid, None)
            if pending is None:
                self.stats.incr("orphan_replies")
                continue
            self.stats.incr("replies")
            pending.succeed(msg)


class RPCServer:
    """Dispatches registered handlers; one concurrent task per request."""

    def __init__(self, host: Host, transport, name: str = "rpc-server"):
        self.host = host
        self.transport = transport
        self.name = name
        self.stats = Counter()
        self._handlers: Dict[str, Handler] = {}
        self._started = False

    def register(self, proc: str, handler: Handler) -> None:
        if proc in self._handlers:
            raise RPCError(f"handler for {proc!r} already registered")
        self._handlers[proc] = handler

    def start(self) -> None:
        if self._started:
            raise RPCError("server already started")
        self._started = True
        self.host.sim.process(self._loop(), name=f"{self.name}.loop")

    def _loop(self) -> Generator:
        while True:
            msg = yield from self.transport.recv()
            self.host.sim.process(self._serve(msg),
                                  name=f"{self.name}.serve")

    def _serve(self, msg: Message) -> Generator:
        cpu = self.host.cpu
        proto = self.host.params.proto
        request = RPCRequest(msg)
        span = request.span
        if span is not None:
            span.mark(self.host.name, "net.request", proc=request.proc)
        self.stats.incr("requests")
        trace_emit(self.host.sim, self.host.name, "rpc-serve",
                   proc=request.proc, xid=request.xid,
                   client=request.client)
        self.stats.incr(f"proc:{request.proc}")
        yield from cpu.execute(proto.rpc_marshal_us, category="rpc")
        handler = self._handlers.get(request.proc)
        if handler is None:
            reply = RPCReply(meta={"rpc_error": f"bad proc {request.proc!r}"})
        else:
            reply = yield from handler(self, request)
        yield from cpu.execute(proto.rpc_marshal_us, category="rpc")
        resp_meta = dict(reply.meta)
        resp_meta.update({"rpc": "resp", "rpc_xid": request.xid})
        if msg.meta.get("rddp_xid") is not None and reply.inline_bytes > 0:
            # RDDP-RPC: echo the tag; carry the payload in the response so
            # the client NIC can header-split it into the tagged buffer.
            resp_meta["rddp_xid"] = msg.meta["rddp_xid"]
            resp_meta["rddp_payload"] = reply.data
            resp_meta["rddp_bytes"] = reply.inline_bytes
        elif msg.meta.get("rddp_untagged") and reply.inline_bytes > 0:
            # Untagged variant: mark the response splittable so the client
            # NIC deposits the payload in page-aligned kernel buffers.
            resp_meta["rddp_untagged"] = True
            resp_meta["rddp_payload"] = reply.data
            resp_meta["rddp_bytes"] = reply.inline_bytes
        yield from self.transport.send(
            request.client, RPC_HEADER_BYTES + reply.inline_bytes,
            data=reply.data, meta=resp_meta)
        if span is not None:
            span.mark(self.host.name, "server.reply")
