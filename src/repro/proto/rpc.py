"""Transactional RPC over any messaging transport.

RPC is the paper's baseline control path (Section 2.1): requests carry a
transaction number (xid), the server dispatches a handler, and the response
either in-lines the data payload, triggers a server-initiated RDMA, or is
header-split by the NIC against a pre-posted tagged buffer (RDDP-RPC).

The RPC transaction number doubles as the RDDP-RPC buffer tag, exactly as
in Section 2.2: ``call(..., rddp_buffer=...)`` pins and tags the buffer,
sends the xid, and the NIC places the matching response payload directly.
"""

from __future__ import annotations

import itertools
import random
from collections import OrderedDict
from typing import Any, Callable, Dict, Generator, Optional, Tuple

from ..fs.disk import DiskError
from ..hw.host import Host
from ..hw.memory import Buffer
from ..hw.tpt import RemoteAccessFault
from ..integrity.checksum import IntegrityError
from ..net.packet import Message
from ..sim import Counter, Event, rate_probe, trace_emit

#: Marshalled size of request/response headers on the wire.
RPC_HEADER_BYTES = 128

#: Completed-xid memory on the client (duplicate-reply classification)
#: and reply memory on the server (idempotent retransmission).
DUP_CACHE_CAPACITY = 512

#: Faults a handler may legitimately surface under fault injection; the
#: server converts them into ``rpc_error`` replies instead of dying.
_HANDLER_FAULTS = (DiskError, RemoteAccessFault)

#: Duplicate-request-cache sentinel: the original is still being served.
_IN_PROGRESS = object()


class RPCError(RuntimeError):
    """Protocol-level RPC failure (unknown procedure, bad reply)."""


class RPCTimeoutError(RPCError):
    """No reply within the retry policy's full retransmission budget."""


class RetryPolicy:
    """Client-side timeout/retransmission policy (fault-injection runs).

    Retransmissions reuse the original xid, making them idempotent
    against the server's duplicate request cache; backoff is capped
    exponential with optional seeded jitter (``delay = base *
    factor^(attempt-1)``, clamped to ``cap``, then scaled by ``1 ±
    jitter``). Pass an ``rng`` from a :class:`repro.sim.RandomStreams`
    stream to keep jitter reproducible.
    """

    __slots__ = ("timeout_us", "max_retries", "backoff_base_us",
                 "backoff_factor", "backoff_cap_us", "jitter", "rng")

    def __init__(self, timeout_us: float = 4000.0, max_retries: int = 8,
                 backoff_base_us: float = 200.0,
                 backoff_factor: float = 2.0,
                 backoff_cap_us: float = 4000.0, jitter: float = 0.0,
                 rng: Optional[random.Random] = None):
        if timeout_us <= 0:
            raise ValueError(f"timeout must be positive: {timeout_us}")
        if max_retries < 0:
            raise ValueError(f"negative retry budget: {max_retries}")
        if not 0.0 <= jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1): {jitter}")
        self.timeout_us = timeout_us
        self.max_retries = max_retries
        self.backoff_base_us = backoff_base_us
        self.backoff_factor = backoff_factor
        self.backoff_cap_us = backoff_cap_us
        self.jitter = jitter
        self.rng = rng

    def backoff_us(self, attempt: int) -> float:
        """Backoff before retransmission ``attempt`` (1-based)."""
        delay = self.backoff_base_us * self.backoff_factor ** (attempt - 1)
        delay = min(delay, self.backoff_cap_us)
        if self.jitter and self.rng is not None:
            delay *= 1.0 + self.jitter * (2.0 * self.rng.random() - 1.0)
        return delay


class RPCRequest:
    """Server-side view of one incoming call."""

    __slots__ = ("message", "proc", "args", "xid", "client", "span")

    def __init__(self, message: Message):
        self.message = message
        meta = message.meta
        self.proc: str = meta["rpc_proc"]
        self.args: Dict[str, Any] = meta.get("rpc_args", {})
        self.xid: int = meta["rpc_xid"]
        self.client: str = message.src
        #: The request's trace span, when the client is tracing.
        self.span = meta.get("_span")


class RPCReply:
    """What a handler returns: optional inline payload + response meta."""

    __slots__ = ("inline_bytes", "data", "meta")

    def __init__(self, inline_bytes: int = 0, data: Any = None,
                 meta: Optional[Dict[str, Any]] = None):
        if inline_bytes < 0:
            raise ValueError(f"negative inline payload: {inline_bytes}")
        self.inline_bytes = inline_bytes
        self.data = data
        self.meta = meta or {}


#: A handler is a generator taking (server, request) and returning RPCReply.
Handler = Callable[["RPCServer", RPCRequest], Generator]


class RPCClient:
    """Issues calls over a transport; supports many outstanding calls."""

    def __init__(self, host: Host, transport, server: str,
                 kernel: bool = False):
        """``kernel=True`` charges the kernel RPC layer's extra per-call
        cost (the NFS-family clients; Section 5.1's NFS hybrid burns more
        CPU per RPC than the user-level DAFS client)."""
        # Per-instance xid counter: xids are matched only within this
        # client's pending/recent maps and its own NIC tags, and a
        # process-global counter would leak call counts between runs,
        # breaking same-seed byte-identical trace exports.
        self._xids = itertools.count(1)
        self.host = host
        self.transport = transport
        self.server = server
        self.kernel = kernel
        self.stats = Counter()
        self._pending: Dict[int, Event] = {}
        #: Retransmission policy; ``None`` (the default) waits forever,
        #: which is exact for a lossless fabric and costs no timer events.
        self.retry: Optional[RetryPolicy] = None
        #: Backoff policy for server admission rejections (the scheduler's
        #: bounded accept queue shedding load). ``None`` (the default)
        #: surfaces a rejection as an immediate :class:`RPCError`; servers
        #: without a scheduler never reject, so nothing changes for them.
        self.reject_retry: Optional[RetryPolicy] = None
        #: Recently completed xids, to tell a retransmission's duplicate
        #: reply from a genuinely unknown (orphan) one.
        self._recent: "OrderedDict[int, bool]" = OrderedDict()
        host.sim.process(self._recv_loop(), name=f"{host.name}.rpc-recv")

    def gauges(self) -> Dict[str, Callable[[], float]]:
        """Telemetry probes for a :class:`~repro.sim.TimeSeriesSampler`:
        outstanding calls awaiting replies and the windowed call rate."""
        return {
            "outstanding": lambda: float(len(self._pending)),
            "calls_s": rate_probe(
                self.host.sim, lambda: float(self.stats.get("calls")),
                scale=1e6),
        }

    def reset_session(self) -> None:
        """Restart the xid space and forget per-call session state.

        Part of :meth:`repro.cluster.Cluster.reset`: a freshly wired
        cluster must issue xids from 1 regardless of what ran before in
        the same process, or same-seed trace exports diverge.
        """
        self._xids = itertools.count(1)
        self._pending.clear()
        self._recent.clear()

    def call(self, proc: str, args: Optional[Dict[str, Any]] = None,
             req_bytes: int = RPC_HEADER_BYTES,
             rddp_buffer: Optional[Buffer] = None,
             rddp_untagged: bool = False, span=None) -> Generator:
        """Issue one RPC; yields until the response arrives.

        ``rddp_buffer`` activates RDDP-RPC: the buffer is pinned and tagged
        with this call's xid so the NIC header-splits the response payload
        straight into it (registration is on-the-fly, per I/O, as kernel
        clients must — Section 3). ``rddp_untagged`` instead asks the NIC
        to split the payload into intermediate page-aligned buffers with
        no pre-posting; the caller re-maps pages afterwards (Section 2.2's
        untagged variant).

        ``span`` (a :class:`repro.sim.Span` or ``None``) rides the request
        to the server, collecting stage boundaries at every hop.
        """
        cpu = self.host.cpu
        proto = self.host.params.proto
        xid = next(self._xids)
        yield from cpu.execute(proto.rpc_marshal_us, category="rpc")
        if self.kernel:
            yield from cpu.execute(proto.kernel_rpc_extra_us, category="rpc")
        meta: Dict[str, Any] = {
            "rpc": "req", "rpc_proc": proc, "rpc_xid": xid,
            "rpc_args": args or {},
        }
        if rddp_buffer is not None:
            host_p = self.host.params.host
            yield from cpu.execute(
                rddp_buffer.page_count * host_p.register_page_us,
                category="register")
            rddp_buffer.pin()
            yield from self.host.nic.rddp_post_tag(xid, rddp_buffer)
            meta["rddp_xid"] = xid
        if rddp_untagged:
            meta["rddp_untagged"] = True
        self.stats.incr("calls")
        trace_emit(self.host.sim, self.host.name, "rpc-call", proc=proc,
                   xid=xid, server=self.server)
        if span is not None:
            span.mark(self.host.name, "rpc.marshal", proc=proc, xid=xid)
            meta["_span"] = span
        rejects = 0
        while True:
            done = Event(self.host.sim)
            self._pending[xid] = done
            yield from self.transport.send(self.server, req_bytes,
                                           meta=meta)
            if span is not None and rejects == 0:
                span.mark(self.host.name, "nic.tx")
            if self.retry is None:
                response: Message = yield done
            else:
                response = yield from self._await_with_retry(
                    xid, done, proc, req_bytes, meta, span)
            if not response.meta.get("rpc_rejected"):
                break
            # The server's admission scheduler shed this call (bounded
            # accept queue): back off and retransmit under the same xid.
            rejects += 1
            self.stats.incr("rejected_calls")
            policy = self.reject_retry
            trace_emit(self.host.sim, self.host.name, "rpc-rejected",
                       proc=proc, xid=xid, attempt=rejects)
            if policy is None or rejects > policy.max_retries:
                self.stats.incr("reject_failures")
                raise RPCError(
                    f"{proc} xid={xid}: server admission rejected "
                    f"{rejects} time(s)")
            delay = policy.backoff_us(rejects)
            if span is not None:
                span.mark(self.host.name, "rpc.rejected", attempt=rejects,
                          backoff_us=round(delay, 3))
            if delay > 0.0:
                yield self.host.sim.timeout(delay)
        if span is not None:
            span.mark(self.host.name, "net.reply")
        yield from cpu.execute(proto.rpc_marshal_us, category="rpc")
        if self.kernel:
            yield from cpu.execute(proto.kernel_rpc_extra_us, category="rpc")
        if rddp_buffer is not None:
            host_p = self.host.params.host
            rddp_buffer.unpin()
            self.host.nic.rddp_cancel_tag(xid)
            yield from cpu.execute(
                rddp_buffer.page_count * host_p.deregister_page_us,
                category="register")
        if span is not None:
            span.mark(self.host.name, "rpc.unmarshal")
        if "rpc_error" in response.meta:
            message = response.meta["rpc_error"]
            if message.startswith("EINTEGRITY"):
                # The server detected checksum-verified corruption it
                # could not repair: a typed error, so resilience layers
                # can distinguish "data is bad here" (try a replica)
                # from "server is unreachable" (mark it down).
                raise IntegrityError(message)
            raise RPCError(message)
        return response

    def _await_with_retry(self, xid: int, done: Event, proc: str,
                          req_bytes: int, meta: Dict[str, Any],
                          span) -> Generator:
        """Wait for the reply, retransmitting under the same xid.

        The pending event is shared across attempts, so whichever
        transmission's reply arrives first completes the call; the
        server's duplicate request cache absorbs the rest. Raises
        :class:`RPCTimeoutError` once the retry budget is exhausted.
        """
        policy = self.retry
        sim = self.host.sim
        attempt = 0
        while True:
            timer = sim.timeout(policy.timeout_us)
            yield sim.any_of([done, timer])
            if done.triggered:
                return done.value
            attempt += 1
            if attempt > policy.max_retries:
                self._pending.pop(xid, None)
                self.stats.incr("rpc_timeouts")
                trace_emit(sim, self.host.name, "rpc-timeout", proc=proc,
                           xid=xid, attempts=attempt)
                raise RPCTimeoutError(
                    f"{proc} xid={xid}: no reply after "
                    f"{policy.max_retries} retransmissions")
            delay = policy.backoff_us(attempt)
            self.stats.incr("retransmits")
            trace_emit(sim, self.host.name, "rpc-retransmit", proc=proc,
                       xid=xid, attempt=attempt,
                       backoff_us=round(delay, 3))
            if span is not None:
                span.mark(self.host.name, "rpc.timeout", xid=xid,
                          attempt=attempt)
            if delay > 0.0:
                yield sim.timeout(delay)
                if span is not None:
                    span.mark(self.host.name, "rpc.backoff",
                              us=round(delay, 3))
            yield from self.transport.send(
                self.server, req_bytes, meta=dict(meta, rpc_retry=attempt))
            if span is not None:
                span.mark(self.host.name, "rpc.retransmit",
                          attempt=attempt)

    def _recv_loop(self) -> Generator:
        while True:
            msg = yield from self.transport.recv()
            xid = msg.meta.get("rpc_xid")
            pending = self._pending.pop(xid, None)
            if pending is None:
                # Late duplicate of a completed call vs. truly unknown.
                if xid in self._recent:
                    self.stats.incr("duplicate_replies")
                else:
                    self.stats.incr("orphan_replies")
                continue
            self._recent[xid] = True
            while len(self._recent) > DUP_CACHE_CAPACITY:
                self._recent.popitem(last=False)
            self.stats.incr("replies")
            pending.succeed(msg)


class RPCServer:
    """Dispatches registered handlers; one concurrent task per request."""

    def __init__(self, host: Host, transport, name: str = "rpc-server"):
        self.host = host
        self.transport = transport
        self.name = name
        self.stats = Counter()
        self._handlers: Dict[str, Handler] = {}
        self._started = False
        #: Requests currently inside :meth:`_serve` (telemetry gauge).
        self.inflight = 0
        #: While True (crashed), arriving requests are silently dropped.
        self.paused = False
        #: Duck-typed crash dice (see repro.faults.ServerFaults); ``None``
        #: means requests are never crash-tested.
        self.faults = None
        #: Called once per crash, before the restart timer is set — the
        #: injector hooks server-state loss (file cache) here.
        self.on_crash: Optional[Callable[[], None]] = None
        #: Duplicate request cache: (client, xid) -> reply, so client
        #: retransmissions are idempotent. In-progress entries drop the
        #: duplicate; completed ones replay the recorded reply (writes
        #: must not re-execute: the version bump would change contents).
        self._dup_cache: "OrderedDict[Tuple[str, int], Any]" = OrderedDict()
        #: Admission/request scheduler (see
        #: :class:`repro.nas.server.sched.RequestScheduler`). ``None``
        #: keeps the seed behavior: one concurrent task per arrival,
        #: unbounded, never rejecting.
        self.scheduler = None

    def reset_session(self) -> None:
        """Forget replayable session state (duplicate request cache).

        Part of :meth:`repro.cluster.Cluster.reset`; does not touch the
        crash/pause machinery or registered handlers.
        """
        self._dup_cache.clear()

    def crash(self, downtime_us: float) -> bool:
        """Crash the server process: drop requests for ``downtime_us``.

        Returns False if already down. State hooked to ``on_crash`` (the
        file cache) is lost; the duplicate request cache is too — it
        lived in server memory.
        """
        if self.paused:
            return False
        self.paused = True
        self.stats.incr("crashes")
        self._dup_cache.clear()
        if self.scheduler is not None:
            # The accept queue lived in server memory too; clients
            # recover the dropped requests by retransmission.
            self.scheduler.drop_all()
        if self.on_crash is not None:
            self.on_crash()
        self.host.sim.call_at(self.host.sim.now + downtime_us,
                              self._restart)
        return True

    def _restart(self) -> None:
        self.paused = False
        self.stats.incr("restarts")

    def register(self, proc: str, handler: Handler) -> None:
        if proc in self._handlers:
            raise RPCError(f"handler for {proc!r} already registered")
        self._handlers[proc] = handler

    def attach_scheduler(self, scheduler) -> None:
        """Route arrivals through an admission/request scheduler.

        With a scheduler attached, incoming requests join its bounded
        accept queue (or are explicitly rejected when it is full) and at
        most ``scheduler.service_threads`` handlers run concurrently,
        dispatched in the scheduler's policy order.
        """
        if self.scheduler is not None:
            raise RPCError("scheduler already attached")
        self.scheduler = scheduler

    def start(self) -> None:
        if self._started:
            raise RPCError("server already started")
        self._started = True
        self.host.sim.process(self._loop(), name=f"{self.name}.loop")

    def _loop(self) -> Generator:
        while True:
            msg = yield from self.transport.recv()
            if self.faults is not None:
                # The arriving request itself may trigger the crash; it
                # is then dropped along with everything while down.
                self.faults.maybe_crash(self)
            if self.paused:
                self.stats.incr("dropped_while_down")
                continue
            sched = self.scheduler
            if sched is None:
                self.host.sim.process(self._serve(msg),
                                      name=f"{self.name}.serve")
            elif sched.admit(msg):
                self._dispatch()
            else:
                self.host.sim.process(self._send_rejection(msg),
                                      name=f"{self.name}.reject")

    def gauges(self) -> Dict[str, Callable[[], float]]:
        """Telemetry probes for a :class:`~repro.sim.TimeSeriesSampler`:
        requests currently being served and the windowed arrival rate."""
        return {
            "inflight": lambda: float(self.inflight),
            "requests_s": rate_probe(
                self.host.sim, lambda: float(self.stats.get("requests")),
                scale=1e6),
        }

    def _dispatch(self) -> None:
        """Start queued requests while service threads are free."""
        sched = self.scheduler
        while sched.active < sched.service_threads:
            entry = sched.pop()
            if entry is None:
                return
            sched.note_active(+1)
            self.host.sim.process(self._serve_scheduled(entry),
                                  name=f"{self.name}.serve")

    def _serve_scheduled(self, entry) -> Generator:
        """One service thread's turn: run the handler, free the slot,
        and pull the next queued request in policy order."""
        msg, enqueued = entry
        span = msg.meta.get("_span")
        if span is not None:
            span.mark(self.host.name, "sched.queue",
                      wait_us=round(self.host.sim.now - enqueued, 3))
        try:
            yield from self._serve(msg)
        finally:
            sched = self.scheduler
            sched.note_active(-1)
            sched.stats.incr("completed")
            self._dispatch()

    def _send_rejection(self, msg: Message) -> Generator:
        """Explicit load shedding: a header-only busy reply.

        The client's :attr:`RPCClient.reject_retry` policy turns this
        into a seeded backoff + retransmission under the same xid; the
        handler never ran, so nothing enters the duplicate request cache
        and the retransmission executes normally once admitted.
        """
        request = RPCRequest(msg)
        self.stats.incr("rejections_sent")
        trace_emit(self.host.sim, self.host.name, "rpc-reject",
                   proc=request.proc, xid=request.xid,
                   client=request.client)
        if request.span is not None:
            request.span.mark(self.host.name, "sched.reject",
                              qdepth=len(self.scheduler))
        cost = self.host.params.sched.reject_reply_us
        if cost > 0.0:
            yield from self.host.cpu.execute(cost, category="rpc")
        yield from self.transport.send(
            request.client, RPC_HEADER_BYTES,
            meta={"rpc": "resp", "rpc_xid": request.xid,
                  "rpc_rejected": True})

    def _serve(self, msg: Message) -> Generator:
        self.inflight += 1
        try:
            yield from self._serve_inner(msg)
        finally:
            self.inflight -= 1

    def _serve_inner(self, msg: Message) -> Generator:
        cpu = self.host.cpu
        proto = self.host.params.proto
        request = RPCRequest(msg)
        span = request.span
        if span is not None:
            span.mark(self.host.name, "net.request", proc=request.proc)
        self.stats.incr("requests")
        trace_emit(self.host.sim, self.host.name, "rpc-serve",
                   proc=request.proc, xid=request.xid,
                   client=request.client)
        self.stats.incr(f"proc:{request.proc}")
        yield from cpu.execute(proto.rpc_marshal_us, category="rpc")
        dup_key = (request.client, request.xid)
        cached = self._dup_cache.get(dup_key)
        if cached is _IN_PROGRESS:
            # Retransmission of a request still being served: drop it;
            # the original's reply is on its way.
            self.stats.incr("dup_dropped")
            return
        if cached is not None:
            # Retransmission of a completed request: replay the recorded
            # reply without re-executing the handler (idempotence).
            self.stats.incr("dup_replayed")
            resp_meta, resp_bytes, resp_data = cached
            yield from self.transport.send(request.client, resp_bytes,
                                           data=resp_data, meta=resp_meta)
            return
        self._dup_cache[dup_key] = _IN_PROGRESS
        handler = self._handlers.get(request.proc)
        if handler is None:
            reply = RPCReply(meta={"rpc_error": f"bad proc {request.proc!r}"})
        else:
            try:
                reply = yield from handler(self, request)
            except _HANDLER_FAULTS as exc:
                # Injected storage/RDMA faults surface as an error reply
                # (EIO to the client), not a dead server process.
                self.stats.incr("handler_faults")
                reply = RPCReply(meta={"rpc_error": f"server fault: {exc}"})
        yield from cpu.execute(proto.rpc_marshal_us, category="rpc")
        resp_meta = dict(reply.meta)
        resp_meta.update({"rpc": "resp", "rpc_xid": request.xid})
        if msg.meta.get("rddp_xid") is not None and reply.inline_bytes > 0:
            # RDDP-RPC: echo the tag; carry the payload in the response so
            # the client NIC can header-split it into the tagged buffer.
            resp_meta["rddp_xid"] = msg.meta["rddp_xid"]
            resp_meta["rddp_payload"] = reply.data
            resp_meta["rddp_bytes"] = reply.inline_bytes
        elif msg.meta.get("rddp_untagged") and reply.inline_bytes > 0:
            # Untagged variant: mark the response splittable so the client
            # NIC deposits the payload in page-aligned kernel buffers.
            resp_meta["rddp_untagged"] = True
            resp_meta["rddp_payload"] = reply.data
            resp_meta["rddp_bytes"] = reply.inline_bytes
        self._dup_cache[dup_key] = (
            resp_meta, RPC_HEADER_BYTES + reply.inline_bytes, reply.data)
        while len(self._dup_cache) > DUP_CACHE_CAPACITY:
            self._dup_cache.popitem(last=False)
        yield from self.transport.send(
            request.client, RPC_HEADER_BYTES + reply.inline_bytes,
            data=reply.data, meta=resp_meta)
        if span is not None:
            span.mark(self.host.name, "server.reply")
