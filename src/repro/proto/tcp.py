"""TCP over the Ethernet emulation, with message framing.

The testbed ran NFS over UDP "to avoid the higher overhead of TCP",
noting the configuration "approximates the benefits of offloading TCP if
it were supported by the NIC" (Section 5). This module supplies the
counterfactual: a host-resident TCP with the costs the paper avoided —
per-segment processing on both sides, ACK traffic and processing, windowed
transmission bounded by a congestion window, and timeout-driven
retransmission — so the UDP-vs-TCP trade-off is measurable
(`repro-bench ablations` includes the comparison).

Framing: RDDP over a stream transport needs upper-level message boundaries
preserved (Section 2.1 cites SCTP's framing). :class:`TCPMessageChannel`
length-frames messages over a connection and exposes the same
``send``/``recv`` interface as the other RPC transports.

Simplifications (documented, deliberate): a fixed MSS equal to the
Ethernet-emulation fragment payload; slow start + AIMD on timeout loss
only (no fast retransmit — the fabric reorders nothing); byte-counting
ACKs every segment; no delayed-ACK timer (Myrinet RTTs are microseconds).
"""

from __future__ import annotations

import itertools
import math
from collections import deque
from typing import Any, Deque, Dict, Generator, Optional, Tuple

from ..hw.cpu import PRIO_KERNEL
from ..hw.host import Host
from ..net.packet import Message
from ..sim import Event, Store


class TCPError(RuntimeError):
    """Connection misuse (double connect, send on closed, ...)."""


class TCPStack:
    """Per-host TCP, multiplexing connections over the Ethernet NIC.

    One stack per host; it shares the NIC's Ethernet personality with
    nothing else (a host uses either UDP or TCP in one experiment).
    """

    _ports = itertools.count(40_000)

    def __init__(self, host: Host, segment_cost_us: float = 11.0,
                 ack_cost_us: float = 2.5, rto_us: float = 5_000.0,
                 initial_cwnd: int = 4, max_cwnd: int = 64):
        """``segment_cost_us`` is the host CPU charge per data segment —
        deliberately above the UDP per-fragment cost (checksummed,
        stateful, in-order protocol processing: the overhead the paper's
        offloaded-UDP configuration avoids)."""
        self.host = host
        self.params = host.params
        self.segment_cost_us = segment_cost_us
        self.ack_cost_us = ack_cost_us
        self.rto_us = rto_us
        self.initial_cwnd = initial_cwnd
        self.max_cwnd = max_cwnd
        #: (local_port) -> listener store of inbound connection requests
        self._listeners: Dict[int, Store] = {}
        #: (local_port, peer, peer_port) -> connection
        self._conns: Dict[Tuple[int, str, int], "TCPConnection"] = {}
        host.nic.set_eth_handler(self._from_nic)

    @property
    def mss(self) -> int:
        return self.params.net.ip_fragment_payload

    # -- connection management ---------------------------------------------

    def listen(self, port: int) -> "TCPListener":
        if port in self._listeners:
            raise TCPError(f"port {port} already listening on "
                           f"{self.host.name}")
        store = Store(self.host.sim, name=f"{self.host.name}:l{port}")
        self._listeners[port] = store
        return TCPListener(self, port, store)

    def connect(self, peer: str, port: int) -> Generator:
        """Active open; yields through the three-way handshake and
        returns the established :class:`TCPConnection`."""
        local_port = next(self._ports)
        conn = TCPConnection(self, local_port, peer, port)
        self._conns[(local_port, peer, port)] = conn
        yield from self.host.cpu.syscall()
        yield from self._send_control(conn, "syn")
        yield conn._established
        return conn

    # -- wire I/O -------------------------------------------------------------

    def _send_control(self, conn: "TCPConnection", kind: str,
                      extra: Optional[Dict[str, Any]] = None) -> Generator:
        meta = {"tcp": kind, "src_port": conn.local_port,
                "dst_port": conn.peer_port}
        meta.update(extra or {})
        yield from self.host.cpu.execute(self.ack_cost_us, category="tcp")
        yield from self.host.nic.eth_send(conn.peer, 0, meta=meta,
                                          port=conn.peer_port)

    def _from_nic(self, msg: Message) -> None:
        self.host.sim.process(self._deliver(msg),
                              name=f"{self.host.name}.tcp-rx")

    def _deliver(self, msg: Message) -> Generator:
        cpu = self.host.cpu
        yield from cpu.interrupt(
            coalesce_window_us=self.params.nic.interrupt_coalesce_us)
        kind = msg.meta.get("tcp")
        if kind == "syn":
            yield from self._handle_syn(msg)
            return
        key = (msg.meta["dst_port"], msg.src, msg.meta["src_port"])
        conn = self._conns.get(key)
        if conn is None:
            return  # RST territory; silently dropped in the model
        if kind == "syn-ack":
            yield from cpu.execute(self.ack_cost_us, category="tcp")
            if not conn._established.triggered:
                yield from self._send_control(conn, "ack")
                conn._established.succeed(None)
        elif kind == "ack":
            yield from cpu.execute(self.ack_cost_us, category="tcp")
            conn._on_ack(msg.meta.get("seq", 0))
        elif kind == "data":
            yield from cpu.execute(self.segment_cost_us, category="tcp",
                                   priority=PRIO_KERNEL)
            yield from self._send_control(conn, "ack",
                                          {"seq": msg.meta["seq"]})
            conn._on_data(msg)

    def _handle_syn(self, msg: Message) -> Generator:
        port = msg.meta["dst_port"]
        listener = self._listeners.get(port)
        if listener is None:
            return
        conn = TCPConnection(self, port, msg.src, msg.meta["src_port"])
        self._conns[(port, msg.src, msg.meta["src_port"])] = conn
        yield from self._send_control(conn, "syn-ack")
        conn._established.succeed(None)
        listener.put(conn)


class TCPListener:
    """Passive side of connection establishment."""

    def __init__(self, stack: TCPStack, port: int, store: Store):
        self.stack = stack
        self.port = port
        self.store = store

    def accept(self) -> Generator:
        yield from self.stack.host.cpu.syscall()
        conn = yield self.store.get()
        return conn


class TCPConnection:
    """One established connection: windowed, reliable, framed."""

    def __init__(self, stack: TCPStack, local_port: int, peer: str,
                 peer_port: int):
        self.stack = stack
        self.local_port = local_port
        self.peer = peer
        self.peer_port = peer_port
        self._established = Event(stack.host.sim)
        self._next_seq = 0
        #: seq -> (retries, acked event)
        self._unacked: Dict[int, Event] = {}
        self._cwnd = stack.initial_cwnd
        self._ssthresh = stack.max_cwnd
        self._in_flight = 0
        self._send_waiters: Deque[Event] = deque()
        self._frames: Store = Store(stack.host.sim)
        #: frame_id -> (segments received, meta-carrying segment)
        self._rx_frames: Dict[int, Tuple[int, Optional[Message]]] = {}
        #: Per-direction frame sequencing: frames are released to recv()
        #: strictly in send order, as TCP's byte stream would. A frame that
        #: lost a segment blocks later frames until its retransmit lands.
        self._tx_frame_seq = itertools.count()
        self._rx_next_frame = 0
        self._rx_ready: Dict[int, Optional[Message]] = {}
        self.retransmissions = 0

    # -- congestion window -------------------------------------------------

    def _on_ack(self, seq: int) -> None:
        pending = self._unacked.pop(seq, None)
        if pending is None:
            return  # duplicate ack for a retransmitted segment
        self._in_flight -= 1
        if self._cwnd < self._ssthresh:
            self._cwnd = min(self._cwnd * 2, self.stack.max_cwnd)  # slow start
        elif self._cwnd < self.stack.max_cwnd:
            self._cwnd += 1  # congestion avoidance
        pending.succeed(None)
        self._wake_senders()

    def _on_timeout(self) -> None:
        self._ssthresh = max(2, self._cwnd // 2)
        self._cwnd = self.stack.initial_cwnd
        self.retransmissions += 1

    def _wake_senders(self) -> None:
        while self._send_waiters and self._in_flight < self._cwnd:
            self._in_flight += 1
            self._send_waiters.popleft().succeed(None)

    def _window_slot(self) -> Generator:
        if self._in_flight < self._cwnd:
            self._in_flight += 1
            return
        waiter = Event(self.stack.host.sim)
        self._send_waiters.append(waiter)
        yield waiter

    # -- segment transmission ------------------------------------------------

    def _send_segment(self, nbytes: int, data: Any,
                      meta: Dict[str, Any]) -> Generator:
        """Reliably deliver one MSS-or-smaller segment."""
        stack = self.stack
        host = stack.host
        yield from self._window_slot()
        seq = self._next_seq
        self._next_seq += 1
        while True:
            yield from host.cpu.execute(stack.segment_cost_us,
                                        category="tcp")
            acked = Event(host.sim)
            self._unacked[seq] = acked
            seg_meta = {"tcp": "data", "seq": seq,
                        "src_port": self.local_port,
                        "dst_port": self.peer_port}
            seg_meta.update(meta)
            yield from host.nic.eth_send(self.peer, nbytes, data=data,
                                         meta=seg_meta, port=self.peer_port)
            timeout = host.sim.timeout(stack.rto_us)
            result = yield host.sim.any_of([acked, timeout])
            if acked.triggered:
                return
            # Retransmission timeout: back off and resend this segment.
            self._unacked.pop(seq, None)
            self._on_timeout()

    # -- framed message interface (RPC transport compatible) -----------------

    _frame_ids = itertools.count(1)

    def send(self, dst: str, nbytes: int, data: Any = None,
             meta: Optional[Dict[str, Any]] = None) -> Generator:
        """Length-framed message send; ``dst`` must be the peer.

        Segments are issued concurrently (bounded by the congestion
        window) and the call returns when every segment is acknowledged.
        """
        if dst != self.peer:
            raise TCPError(f"connection to {self.peer!r} cannot send to "
                           f"{dst!r}")
        sim = self.stack.host.sim
        yield from self.stack.host.cpu.syscall()
        mss = self.stack.mss
        total = max(1, math.ceil(nbytes / mss))
        frame_id = next(self._frame_ids)
        frame_seq = next(self._tx_frame_seq)
        remaining = nbytes
        procs = []
        for index in range(total):
            chunk = min(mss, remaining) if nbytes else 0
            remaining -= chunk
            seg_meta = {"frame_id": frame_id, "frame_count": total,
                        "frame_bytes": nbytes, "frame_seq": frame_seq}
            if index == total - 1:
                seg_meta["frame_meta"] = dict(meta or {})
                seg_meta["frame_data"] = data
            procs.append(sim.process(
                self._send_segment(chunk, None, seg_meta),
                name=f"tcp-seg:{self.local_port}"))
        yield sim.all_of(procs)

    def _on_data(self, msg: Message) -> None:
        """Count segments per framed message; complete on the last one."""
        frame_id = msg.meta.get("frame_id")
        if frame_id is None:
            return
        got, carrier = self._rx_frames.get(frame_id, (0, None))
        got += 1
        if "frame_meta" in msg.meta:
            carrier = msg
        if got == msg.meta.get("frame_count", 1):
            self._rx_frames.pop(frame_id, None)
            seq = msg.meta.get("frame_seq")
            if seq is None:
                self._frames.put(carrier)  # unsequenced legacy segment
                return
            self._rx_ready[seq] = carrier
            while self._rx_next_frame in self._rx_ready:
                self._frames.put(self._rx_ready.pop(self._rx_next_frame))
                self._rx_next_frame += 1
        else:
            self._rx_frames[frame_id] = (got, carrier)

    def recv(self) -> Generator:
        """Receive the next framed message; returns a Message whose size
        and meta reflect the framing layer."""
        yield from self.stack.host.cpu.syscall()
        last = yield self._frames.get()
        reassembled = Message(
            last.kind, last.src, last.dst, last.meta["frame_bytes"],
            port=last.port, data=last.meta.get("frame_data"),
            meta=dict(last.meta.get("frame_meta", {})),
        )
        return reassembled
