"""Protocol stacks: GM/VI messaging, UDP/IP, RPC, and Optimistic RDMA."""

from .messaging import GMEndpoint
from .ordma import ORDMAInitiator, RemoteRef
from .rpc import RPC_HEADER_BYTES, RPCClient, RPCError, RPCReply, RPCRequest, RPCServer
from .udp import UDPSocket, UDPStack
from .vi import VIEndpoint

__all__ = [
    "GMEndpoint",
    "ORDMAInitiator",
    "RPCClient",
    "RPCError",
    "RPCReply",
    "RPCRequest",
    "RPCServer",
    "RPC_HEADER_BYTES",
    "RemoteRef",
    "UDPSocket",
    "UDPStack",
    "VIEndpoint",
]
