"""VI layer: the Virtual Interface architecture mapped onto GM.

On the testbed this was Myricom's VI-GM 1.0, a host-based library mapping
VI descriptors to GM operations (Section 5). It adds a small per-descriptor
cost over raw GM and offers the two completion disciplines of Table 2:
polling (23 us RTT) and blocking (53 us RTT, paying interrupt + wakeup on
each side).
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Optional

from ..hw.host import Host
from ..hw.nic import NotifyMode
from .messaging import GMEndpoint


class VIEndpoint(GMEndpoint):
    """A VI queue pair: GM semantics plus the VI-GM mapping cost."""

    def __init__(self, host: Host, port: int,
                 mode: NotifyMode = NotifyMode.POLL,
                 slots: int = GMEndpoint.DEFAULT_SLOTS,
                 buf_size: int = GMEndpoint.DEFAULT_BUF_SIZE):
        super().__init__(host, port, mode=mode, slots=slots,
                         buf_size=buf_size)
        self._vi_us = host.params.proto.vi_overhead_us

    def send(self, dst: str, nbytes: int, data: Any = None,
             meta: Optional[Dict[str, Any]] = None) -> Generator:
        yield from self.host.cpu.execute(self._vi_us, category="vi")
        yield from super().send(dst, nbytes, data=data, meta=meta)

    def recv(self) -> Generator:
        msg = yield from super().recv()
        yield from self.host.cpu.execute(self._vi_us, category="vi")
        return msg
