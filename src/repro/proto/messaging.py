"""Messaging endpoints over the GM-like NIC interface.

A :class:`GMEndpoint` is a queue pair on one GM port: it pre-posts a ring
of receive buffers, exposes ``send``/``recv`` generators, and reposts
buffers as messages are consumed. The VI layer (:mod:`repro.proto.vi`) is a
thin cost shim over this, exactly as VI-GM was over GM on the testbed.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Optional

from ..hw.host import Host
from ..hw.nic import NotifyMode
from ..params import KB


class GMEndpoint:
    """A send/receive queue pair on a GM port."""

    #: Default receive ring: enough slots for deep read-ahead pipelines.
    DEFAULT_SLOTS = 128
    #: Receive buffers must hold the largest inline message (512 KB reads
    #: plus headers).
    DEFAULT_BUF_SIZE = 520 * KB

    def __init__(self, host: Host, port: int,
                 mode: NotifyMode = NotifyMode.POLL,
                 slots: int = DEFAULT_SLOTS,
                 buf_size: int = DEFAULT_BUF_SIZE):
        self.host = host
        self.port = port
        self.mode = mode
        self.cq = host.nic.open_port(port, mode=mode)
        self._buf_size = buf_size
        for i in range(slots):
            buf = host.mem.alloc(buf_size, name=f"{host.name}:p{port}:rx{i}")
            buf.pin()  # receive rings are registered and pinned
            host.nic.post_receive(port, buf)

    def send(self, dst: str, nbytes: int, data: Any = None,
             meta: Optional[Dict[str, Any]] = None) -> Generator:
        """Queue a message to ``dst`` (returns after the doorbell)."""
        yield from self.host.nic.gm_send(dst, self.port, nbytes, data=data,
                                         meta=meta)

    def recv(self) -> Generator:
        """Wait for the next message; returns the :class:`Message`."""
        comp = yield from self.cq.get()
        # Recycle the consumed buffer back onto the receive ring.
        buffer = comp.context
        if buffer is not None:
            buffer.data = None
            self.host.nic.post_receive(self.port, buffer)
        return comp.message
