"""UDP/IP over the NIC's Ethernet emulation.

The testbed ran NFS over UDP with IP checksum offload and interrupt
coalescing, using the LANai's standard Ethernet emulation with a 9 KB MTU
and 8 KB IP fragments (Section 5). UDP was chosen over TCP to approximate
an offloaded transport on Myrinet's near-lossless fabric; we model the
same choice, so there is no retransmission machinery on this path.

Cost model per datagram:

* sender: one syscall, per-fragment IP/UDP processing, an optional
  user-to-mbuf copy, then the NIC doorbell;
* receiver: a (coalesced) interrupt plus per-fragment IP processing in the
  driver context, then a scheduler wakeup of the blocked socket reader.
  Socket-to-user copies are charged by the *consumer* (netperf copies
  once; standard NFS copies through the buffer cache; NFS pre-posting does
  not copy at all because the NIC header-split the payload).
"""

from __future__ import annotations

import math
from typing import Any, Dict, Generator, Optional

from ..hw.cpu import PRIO_KERNEL
from ..hw.host import Host
from ..net.packet import Message
from ..sim import Store


class UDPStack:
    """Per-host UDP/IP stack bound to the NIC's Ethernet personality."""

    def __init__(self, host: Host):
        self.host = host
        self.params = host.params
        self._sockets: Dict[int, "UDPSocket"] = {}
        host.nic.set_eth_handler(self._from_nic)

    def socket(self, port: int) -> "UDPSocket":
        if port in self._sockets:
            raise ValueError(f"UDP port {port} already bound on "
                             f"{self.host.name}")
        sock = UDPSocket(self, port)
        self._sockets[port] = sock
        return sock

    def fragments_of(self, nbytes: int) -> int:
        payload = self.params.net.ip_fragment_payload
        return max(1, math.ceil(nbytes / payload))

    # -- receive path ------------------------------------------------------

    def _from_nic(self, msg: Message) -> None:
        """NIC upcall (NIC context): hand off to a host-side process."""
        self.host.sim.process(self._deliver(msg),
                              name=f"{self.host.name}.udp-rx")

    def _deliver(self, msg: Message) -> Generator:
        cpu = self.host.cpu
        yield from cpu.interrupt(
            coalesce_window_us=self.params.nic.interrupt_coalesce_us)
        frags = self.fragments_of(msg.size)
        yield from cpu.execute(frags * self.params.proto.udp_frag_us,
                               category="udp", priority=PRIO_KERNEL)
        sock = self._sockets.get(msg.port)
        if sock is None:
            return  # no listener: datagram dropped
        yield from cpu.wakeup()
        sock._inbound.put(msg)

    # -- send path -----------------------------------------------------------

    def _send(self, src_sock: "UDPSocket", dst: str, nbytes: int,
              data: Any, meta: Optional[Dict[str, Any]],
              copy: Optional[str]) -> Generator:
        cpu = self.host.cpu
        yield from cpu.syscall()
        if copy is not None and nbytes > 0:
            yield from cpu.copy(nbytes, cached=(copy == "cached"))
        frags = self.fragments_of(nbytes)
        yield from cpu.execute(frags * self.params.proto.udp_frag_us,
                               category="udp")
        yield from self.host.nic.eth_send(dst, nbytes, data=data,
                                          meta=meta or {},
                                          port=src_sock.port)


class UDPSocket:
    """A bound UDP socket (send/recv talk to the same port remotely)."""

    def __init__(self, stack: UDPStack, port: int):
        self.stack = stack
        self.port = port
        self._inbound: Store = Store(stack.host.sim,
                                     name=f"{stack.host.name}:udp{port}")

    @property
    def host(self) -> Host:
        return self.stack.host

    def send(self, dst: str, nbytes: int, data: Any = None,
             meta: Optional[Dict[str, Any]] = None,
             copy: Optional[str] = None) -> Generator:
        """Transmit a datagram to the same port on ``dst``.

        ``copy`` charges the user-to-kernel data copy: "cached",
        "uncached", or None (default) for zero-copy senders — outgoing
        copy avoidance is easy with scatter/gather DMA (Section 2.2), and
        callers that *do* copy (netperf, the standard NFS server reply
        path) pass the appropriate mode.
        """
        yield from self.stack._send(self, dst, nbytes, data, meta, copy)

    def recv(self) -> Generator:
        """Block until a datagram arrives; returns the :class:`Message`.

        Kernel-to-user copies are charged by the caller (see module doc).
        """
        yield from self.host.cpu.syscall()
        msg = yield self._inbound.get()
        return msg
