"""Network fabric: frames, links, and the cluster switch."""

from .link import NetworkPort, Switch
from .packet import (
    NIC_ONLY_KINDS,
    Frame,
    Message,
    MsgKind,
    Reassembler,
    fragment,
)

__all__ = [
    "Frame",
    "Message",
    "MsgKind",
    "NIC_ONLY_KINDS",
    "NetworkPort",
    "Reassembler",
    "Switch",
    "fragment",
]
