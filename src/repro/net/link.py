"""Links and the cluster switch.

The testbed is four PCs on a 2 Gb/s full-duplex switch (Section 5). Each
host owns a transmit pipe and a receive pipe at link rate; the switch is
cut-through with a fixed forwarding latency. Contention appears exactly
where it did on the testbed: a server streaming to two clients serializes
on the server's transmit link (Fig. 7's saturation point).
"""

from __future__ import annotations

from typing import Callable, Dict

import random

from ..params import NetworkParams
from ..sim import BandwidthPipe, Simulator, rate_probe
from .packet import Frame

FrameHandler = Callable[[Frame], None]


class NetworkPort:
    """One host's full-duplex attachment to the fabric."""

    def __init__(self, sim: Simulator, params: NetworkParams, name: str):
        self.sim = sim
        self.params = params
        self.name = name
        self.tx = BandwidthPipe(sim, params.link_bw, name=f"{name}.tx")
        self.rx = BandwidthPipe(sim, params.link_bw, name=f"{name}.rx")
        self._handler: FrameHandler = _unattached

    def set_handler(self, handler: FrameHandler) -> None:
        self._handler = handler

    def deliver(self, frame: Frame) -> None:
        self._handler(frame)

    def gauges(self) -> Dict[str, Callable[[], float]]:
        """Telemetry probes for a :class:`~repro.sim.TimeSeriesSampler`:
        bytes-in-flight per direction (committed but not yet serialized)
        and windowed link utilization from the pipes' busy time."""
        return {
            "tx_backlog": self.tx.backlog_bytes,
            "rx_backlog": self.rx.backlog_bytes,
            "tx_util": rate_probe(self.sim, lambda: self.tx.stats_busy_us),
            "rx_util": rate_probe(self.sim, lambda: self.rx.stats_busy_us),
        }


def _unattached(frame: Frame) -> None:
    raise RuntimeError(f"frame for {frame.dst!r} arrived at unattached port")


class Switch:
    """Cut-through switch connecting all hosts."""

    def __init__(self, sim: Simulator, params: NetworkParams,
                 name: str = "switch",
                 rng: "random.Random" = None):
        self.sim = sim
        self.params = params
        self.name = name
        self._ports: Dict[str, NetworkPort] = {}
        self.frames_forwarded = 0
        self.frames_dropped = 0
        #: Loss injection (params.loss_probability) for transport-recovery
        #: experiments; Myrinet itself is effectively lossless, so GM-based
        #: protocols assume zero loss and only the TCP ablations raise it.
        self._rng = rng or random.Random(0xFA57)
        #: Fault-injection state (repro.faults.LinkFaults); ``None`` means
        #: the fabric is healthy and the forwarding path pays no checks.
        self.faults = None

    def attach(self, host_name: str) -> NetworkPort:
        if host_name in self._ports:
            raise ValueError(f"host {host_name!r} already attached")
        port = NetworkPort(self.sim, self.params, name=host_name)
        self._ports[host_name] = port
        return port

    def port(self, host_name: str) -> NetworkPort:
        return self._ports[host_name]

    def gauges(self) -> Dict[str, Callable[[], float]]:
        """Telemetry probes for a :class:`~repro.sim.TimeSeriesSampler`:
        total queue occupancy across every attached port (bytes committed
        to a pipe but not yet drained) and the windowed forwarding rate
        in frames per second."""
        def queue_bytes() -> float:
            return sum(port.tx.backlog_bytes() + port.rx.backlog_bytes()
                       for port in self._ports.values())

        return {
            "queue_bytes": queue_bytes,
            "frames_s": rate_probe(
                self.sim, lambda: float(self.frames_forwarded), scale=1e6),
        }

    def transmit(self, src: str, frame: Frame) -> None:
        """Serialize ``frame`` on the source link, then forward it.

        Called from NIC context. The frame occupies the sender's transmit
        pipe, crosses the switch after the forwarding latency, queues on the
        destination's receive pipe, and is finally handed to the receiving
        NIC.
        """
        if frame.dst not in self._ports:
            raise KeyError(f"unknown destination host {frame.dst!r}")
        self.sim.process(self._transmit(src, frame),
                         name=f"xmit:{src}->{frame.dst}")

    def _transmit(self, src: str, frame: Frame):
        src_port = self._ports[src]
        dst_port = self._ports[frame.dst]
        if self.sim.tracer is not None:
            self.sim.tracer.emit(self.name, "link-tx-start", src=src,
                                 dst=frame.dst, bytes=frame.wire_bytes,
                                 msg=frame.message.msg_id, frame=frame.index)
        yield src_port.tx.transfer(frame.wire_bytes)
        hop = self.params.switch_us + 2 * self.params.propagation_us
        yield self.sim.timeout(hop)
        # Cut-through: with an idle receive link the bits streamed in while
        # the sender serialized, so arrival is immediate; under convergence
        # the frame queues for the receive link's full serialization time.
        if (self.params.loss_probability > 0.0
                and self._rng.random() < self.params.loss_probability):
            self.frames_dropped += 1
            return
        if self.faults is not None:
            # Injected fabric faults: drop (or CRC-corrupt, equivalent at
            # the receiver) the frame, or stretch its forwarding latency.
            fate, extra_us = self.faults.frame_fate(src, frame.dst)
            if fate != "ok":
                self.frames_dropped += 1
                return
            if extra_us > 0.0:
                yield self.sim.timeout(extra_us)
        yield dst_port.rx.transfer_cut_through(frame.wire_bytes)
        self.frames_forwarded += 1
        if self.sim.tracer is not None:
            self.sim.tracer.emit(self.name, "link-tx-end", src=src,
                                 dst=frame.dst, bytes=frame.wire_bytes,
                                 msg=frame.message.msg_id, frame=frame.index)
        dst_port.deliver(frame)
