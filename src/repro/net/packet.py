"""Wire units: messages and frames.

A :class:`Message` is what a protocol endpoint sends; NICs fragment it into
:class:`Frame` units at the MTU of the carrying protocol (GM fragments at
4 KB; the Ethernet emulation carries 8 KB IP fragments — Section 5), and the
receiving NIC reassembles. Headers are modelled as wire bytes, not parsed
structures; ``data`` carries the logical payload object end-to-end.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


class MsgKind(enum.Enum):
    """Wire-level message kinds the NIC dispatches on."""

    GM_SEND = "gm-send"          # messaging layer send -> posted receive
    RDMA_PUT = "rdma-put"        # initiator pushes data to remote memory
    RDMA_PUT_ACK = "rdma-put-ack"
    RDMA_GET_REQ = "rdma-get-req"
    RDMA_GET_RESP = "rdma-get-resp"
    RDMA_FAULT = "rdma-fault"    # NIC-to-NIC recoverable exception
    ETH = "eth"                  # Ethernet emulation (UDP/IP path)


#: Message kinds processed entirely on the NIC (no host involvement).
NIC_ONLY_KINDS = frozenset({
    MsgKind.RDMA_PUT, MsgKind.RDMA_PUT_ACK, MsgKind.RDMA_GET_REQ,
    MsgKind.RDMA_GET_RESP, MsgKind.RDMA_FAULT,
})

_msg_ids = itertools.count(1)


def reset_msg_ids() -> None:
    """Restart message-id allocation from 1 (called per fresh cluster).

    Message ids only need to be unique within one simulation — they key
    per-NIC pending-RDMA maps and per-port reassembly state. Restarting
    the counter when a new cluster is wired keeps same-seed runs
    byte-identical in trace and telemetry output even when several runs
    share one process (campaign workers, tests).
    """
    global _msg_ids
    _msg_ids = itertools.count(1)


@dataclass
class Message:
    """One logical transfer between two NICs."""

    kind: MsgKind
    src: str
    dst: str
    size: int                      # payload bytes
    port: int = 0                  # GM port / UDP port
    data: Any = None               # logical payload (for correctness checks)
    meta: Dict[str, Any] = field(default_factory=dict)
    msg_id: int = field(default_factory=lambda: next(_msg_ids))

    def __post_init__(self):
        if self.size < 0:
            raise ValueError(f"negative message size: {self.size}")


@dataclass
class Frame:
    """One wire fragment of a message."""

    message: Message
    index: int
    count: int
    payload_bytes: int
    wire_bytes: int

    @property
    def is_last(self) -> bool:
        return self.index == self.count - 1

    @property
    def dst(self) -> str:
        return self.message.dst

    @property
    def src(self) -> str:
        return self.message.src


def fragment(message: Message, mtu: int, header_bytes: int) -> List[Frame]:
    """Split ``message`` into MTU-sized frames with per-frame headers."""
    if mtu <= 0:
        raise ValueError(f"MTU must be positive: {mtu}")
    size = message.size
    if size == 0:
        return [Frame(message, 0, 1, 0, header_bytes)]
    count = (size + mtu - 1) // mtu
    frames = []
    remaining = size
    for i in range(count):
        chunk = min(mtu, remaining)
        remaining -= chunk
        frames.append(Frame(message, i, count, chunk, chunk + header_bytes))
    return frames


class Reassembler:
    """Per-message reassembly state at a receiving NIC."""

    def __init__(self):
        self._seen: Dict[int, int] = {}

    def add(self, frame: Frame) -> Optional[Message]:
        """Account one frame; return the message when complete."""
        mid = frame.message.msg_id
        got = self._seen.get(mid, 0) + 1
        if got == frame.count:
            self._seen.pop(mid, None)
            return frame.message
        self._seen[mid] = got
        return None

    @property
    def in_flight(self) -> int:
        return len(self._seen)
