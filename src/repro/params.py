"""Calibrated cost model for the FAST'03 testbed.

Every timing constant the simulation uses lives here, with its provenance.
The anchors are the paper's published numbers (Section 5):

* Table 2 — GM 1-byte RTT 23 us / 244 MB/s; VI poll 23 us, VI block 53 us,
  244 MB/s; UDP/Ethernet 80 us / 166 MB/s.
* Fig. 3 — DAFS / NFS-hybrid plateau ~230 MB/s, NFS pre-posting ~235 MB/s,
  standard NFS ~65 MB/s.
* Table 3 — 4 KB read response time: RPC in-line 128/153 us, RPC direct
  144/144 us, ORDMA 92/92 us.
* Fig. 7 — polling DAFS server, 4 KB blocks: ~170 MB/s; ODAFS saturates the
  link; ORDMA improvement capped at ~32%.
* Hardware: 1 GHz Pentium III, ServerWorks LE, 64 MHz/66-bit PCI measured
  at 450 MB/s, 2 Gb/s full-duplex Myrinet, LANai9.2, GM-2.0, FreeBSD 4.6.

Units: time in microseconds, sizes in bytes, bandwidth in bytes/us
(numerically equal to MB/s).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

KB = 1024
MB = 1000 * 1000  # the paper's MB/s arithmetic is decimal (2 Gb/s = 250 MB/s)


@dataclass
class HostParams:
    """CPU-side costs for a 1 GHz Pentium III running FreeBSD 4.6."""

    #: Large-copy bandwidth when source/destination are cache-warm
    #: (netperf-style socket copies). Calibrated so UDP streaming lands at
    #: ~166 MB/s with one receive-path copy (Table 2).
    copy_bw_cached: float = 200.0
    #: Copy bandwidth through the buffer cache / file cache (cold
    #: destinations, cache-polluting). Calibrated jointly to the standard
    #: NFS ~65 MB/s plateau (Fig. 3) and the 25 us in-cache vs in-memory
    #: in-line RPC difference (Table 3).
    copy_bw_uncached: float = 160.0
    #: Hardware interrupt entry/exit + handler dispatch.
    interrupt_us: float = 5.0
    #: Scheduler wakeup + context switch to the blocked thread. Together
    #: with interrupt_us this is the VI block-vs-poll delta: 23 us + 2x15 us
    #: = 53 us RTT (Table 2).
    wakeup_us: float = 10.0
    #: Polling for a completion (cache hit on a completion queue entry).
    poll_us: float = 1.0
    #: User/kernel boundary crossing (syscall entry + exit).
    syscall_us: float = 2.0
    #: Pinning + IOMMU/VtoP setup for one page during memory registration.
    register_page_us: float = 1.5
    #: Unpin + teardown for one page.
    deregister_page_us: float = 1.0
    #: Buffer-cache block lookup/insert bookkeeping (per block).
    buffer_cache_op_us: float = 2.0
    #: VM page re-mapping (page-table update + local TLB shootdown) per
    #: page, for the untagged RDDP-RPC client (Section 2.2): cheaper than
    #: copying a page but not free.
    remap_page_us: float = 1.2
    #: Application-level copy bandwidth (Fig. 5's per-record copy from the
    #: db cache to the application buffer): read-modify-write through the
    #: cache hierarchy, slower than a streaming kernel copy.
    app_copy_bw: float = 110.0


@dataclass
class NicParams:
    """LANai9.2-class NIC with a 200 MHz network processor."""

    #: Firmware occupancy to process one outbound frame (descriptor parse,
    #: header build, DMA schedule).
    tx_frame_us: float = 3.0
    #: Firmware occupancy to process one inbound frame (match, DMA schedule,
    #: completion write).
    rx_frame_us: float = 3.0
    #: Host PIO cost of ringing a doorbell (uncached PCI write).
    doorbell_us: float = 1.0
    #: NIC-side descriptor fetch across PCI.
    descriptor_fetch_us: float = 0.75
    #: Fixed per-DMA-transaction PCI setup cost (added to byte time).
    pci_per_dma_us: float = 0.5
    #: Measured PCI throughput of the testbed (Section 5: 450 MB/s).
    pci_bw: float = 450.0
    #: Number of address translations the on-board TLB holds. The paper's
    #: experiments "ensure that RDMA ... always hits in the NIC TLB"
    #: (Section 5.2), so the default is effectively unbounded; the NIC-TLB
    #: ablation bench shrinks it to realistic LANai SRAM sizes.
    tlb_entries: int = 1 << 20
    #: TLB miss service for ordinary (registered) RDMA: entry DMA'd from the
    #: host-resident TPT.
    tlb_miss_us: float = 15.0
    #: TLB miss during ORDMA: the host is interrupted and loads the entry by
    #: programmed I/O (Section 4.1). The paper measured "about 9 ms" in the
    #: prototype; experiments were arranged to always hit, and so are ours
    #: by default.
    tlb_miss_ordma_us: float = 9000.0
    #: Interrupt coalescing window: completions arriving within this window
    #: of a pending interrupt share it.
    interrupt_coalesce_us: float = 40.0
    #: Extra target-NIC latency of a GM *get* (rendezvous turnaround in the
    #: firmware). This is latency, not occupancy: concurrent gets pipeline.
    #: Calibrated to put the 4 KB ORDMA read at ~92 us (Table 3).
    get_turnaround_us: float = 26.0
    #: Firmware *occupancy* per served get (request parse + data-mover
    #: programming), serializing concurrent gets. Calibrated so a 4 KB-get
    #: ODAFS server tops out near the paper's ~225 MB/s rather than the
    #: raw 244 MB/s link limit (Fig. 7 / Section 5.2).
    get_occupancy_us: float = 11.2
    #: Target-NIC turnaround between the last DMA of a put and its ack
    #: becoming visible to the initiator. Raises RPC-direct response time
    #: (Table 3) without consuming host CPU or link bandwidth.
    put_ack_delay_us: float = 11.0
    #: Capability (keyed MAC) verification in firmware per ORDMA request.
    #: The paper's prototype did not implement capabilities; ours does, with
    #: a cost low enough to preserve the Table 3 calibration when enabled.
    capability_verify_us: float = 0.5


@dataclass
class NetworkParams:
    """2 Gb/s full-duplex Myrinet fabric."""

    #: Link rate: 2 Gb/s = 250 MB/s.
    link_bw: float = 250.0
    #: Propagation per hop.
    propagation_us: float = 0.3
    #: Switch forwarding latency (cut-through).
    switch_us: float = 1.0
    #: GM fragments data at 4 KB (Section 5).
    gm_mtu: int = 4 * KB
    #: GM per-frame header+trailer on the wire. 4096/(4196/250) = 244 MB/s,
    #: matching Table 2's GM/VI streaming bandwidth.
    gm_header_bytes: int = 100
    #: Ethernet emulation MTU is 9 KB; UDP/IP fragments carry 8 KB payload
    #: (Section 5.1: "performing data transfer in 8KB IP fragments").
    eth_mtu: int = 9 * KB
    #: UDP/IP payload carried per fragment on the Ethernet emulation.
    ip_fragment_payload: int = 8 * KB
    #: Ethernet + IP + UDP headers per fragment.
    eth_header_bytes: int = 58
    #: Reproduce the "performance bug in GM get" that kept 64 KB ODAFS
    #: transfers from saturating the link in Fig. 7. Off by default; when
    #: on, gets larger than 32 KB lose a firmware stall per fragment.
    emulate_gm_get_bug: bool = False
    #: Firmware stall per fragment when the GM-get bug emulation is on.
    gm_get_bug_stall_us: float = 20.0
    #: Per-frame drop probability injected at the switch. Myrinet is
    #: effectively lossless (Section 5 justifies UDP with its "very low
    #: transmission error rates"); only loss-recovery experiments (TCP)
    #: raise this above zero.
    loss_probability: float = 0.0


@dataclass
class ProtocolParams:
    """RPC, VI, UDP and file-protocol processing costs."""

    #: Marshal/unmarshal an RPC header (client or server).
    rpc_marshal_us: float = 1.5
    #: Server-side file protocol processing per request: vnode lookup,
    #: permission check, cache probe, reply construction. Calibrated so a
    #: polling DAFS server tops out near 170 MB/s on 4 KB direct reads
    #: (Fig. 7): ~24 us total per I/O => 4096/24 ~= 170 MB/s.
    fs_op_us: float = 13.6
    #: Cost to construct and hand an RDMA descriptor to the NIC.
    rdma_issue_us: float = 2.5
    #: Kernel RPC layer extra work per request/response compared to the
    #: user-level DAFS client path (socket/vnode indirection). Applied to
    #: the NFS-family clients (Fig. 3/4: NFS hybrid burns more client CPU
    #: than DAFS despite both using RDMA).
    kernel_rpc_extra_us: float = 6.0
    #: Host-side UDP/IP stack cost per fragment (header processing;
    #: checksums are offloaded per Section 5).
    udp_frag_us: float = 7.0
    #: Additional NFS client protocol work per fragment (mbuf chains,
    #: buffer-cache stitching).
    nfs_frag_us: float = 6.0
    #: VI layer overhead per descriptor over raw GM (VI-GM is a thin
    #: mapping library).
    vi_overhead_us: float = 0.4
    #: Client file-cache bookkeeping per block (hit test, header update).
    client_cache_op_us: float = 1.5
    #: ODAFS directory probe/update per access.
    ordma_dir_op_us: float = 0.8
    #: Local (delegated) open or close in the client cache.
    delegated_open_us: float = 3.0
    #: PostMark-style per-transaction application work outside I/O
    #: (pathname handling, bookkeeping). Together with delegated open+close
    #: this forms the fixed per-transaction cost that compresses the raw
    #: 144-vs-92 us gap to the ~34% throughput gap of Fig. 6.
    app_txn_us: float = 22.0


@dataclass
class StorageParams:
    """Server file system and disk model (used by cold-cache ablations)."""

    #: Server file cache block size (matches client block size in Fig. 7).
    server_cache_block: int = 4 * KB
    #: Average disk access latency (seek + rotation) for a random block.
    disk_latency_us: float = 5000.0
    #: Sustained disk transfer bandwidth.
    disk_bw: float = 40.0
    #: Disk command processing overhead on the server CPU.
    disk_op_us: float = 10.0


@dataclass
class SchedParams:
    """Server admission control and request scheduling (multi-client runs).

    Models the kernel's bounded service-thread pool and accept queue: a
    loaded server adds queueing delay to response time (Section 2.3), and
    past the queue bound it must shed load explicitly. Off by default
    (``policy="none"``): single-client and legacy configurations keep the
    seed behavior of one concurrent task per request, bit for bit.
    """

    #: Request scheduling policy: "none" (no admission control, the seed
    #: behavior), "fifo" (one shared arrival queue), or "fair" (per-client
    #: queues served round-robin, DRR with unit quantum).
    policy: str = "none"
    #: Concurrent request handlers — the kernel service-thread (nfsd/dafsd
    #: worker) pool size. Arrivals beyond this wait in the accept queue.
    service_threads: int = 4
    #: Bounded accept/backlog queue depth; arrivals past it are rejected
    #: with an explicit busy reply (load shedding, not silent drop).
    max_queue: int = 64
    #: Server CPU cost to emit a rejection reply (header-only, no handler).
    reject_reply_us: float = 1.0
    #: Client-side backoff before retrying a rejected call: capped
    #: exponential, ``base * factor^(attempt-1)`` clamped to ``cap``,
    #: scaled by ``1 +- jitter`` from a seeded stream.
    reject_backoff_base_us: float = 150.0
    #: Exponential growth factor of the rejection backoff.
    reject_backoff_factor: float = 2.0
    #: Upper clamp on one rejection backoff delay.
    reject_backoff_cap_us: float = 5000.0
    #: Jitter fraction applied to each rejection backoff delay.
    reject_jitter: float = 0.1
    #: Rejection retries before the call surfaces an RPCError to the app.
    reject_max_retries: int = 24


@dataclass
class ShardParams:
    """Multi-server striping and client-side routing (scale-out runs).

    The paper's testbed stops at one server; these knobs configure the
    sharded continuation: files striped over ``n_servers``, each client
    holding one transport per server and routing block reads itself (the
    Storm-style client-driven dataplane that composes with ORDMA because
    both keep the server CPU out of the data path). ``n_servers=1`` (the
    default) is the paper configuration: :class:`repro.cluster.Cluster`
    ignores this block entirely, and a one-server
    :class:`~repro.nas.shard.ShardedCluster` routes every block to the
    only shard.
    """

    #: Server count files are striped over.
    n_servers: int = 1
    #: Placement policy: "stripe" (static block striping, round-robin
    #: stripe units from a per-file seeded base) or "hash" (seeded
    #: consistent hashing of (file, stripe unit) over a virtual-node
    #: ring, so growing the server set moves only ~1/N of the blocks).
    placement: str = "stripe"
    #: Contiguous blocks per stripe unit (both policies place whole
    #: stripe units, not single blocks).
    stripe_blocks: int = 1
    #: Virtual nodes per server on the consistent-hash ring.
    hash_vnodes: int = 64
    #: Extra copies of every block, chained onto the next servers after
    #: the primary. 0 disables replication: a down shard is then a typed
    #: :class:`~repro.nas.shard.ShardDownError` instead of a failover.
    replicas: int = 0
    #: After a failover the router treats the shard as down for this
    #: long, then optimistically retries the primary (the crash-restart
    #: story: a restarted server serves again, cold).
    down_cooldown_us: float = 10_000.0


@dataclass
class IntegrityParams:
    """End-to-end block checksums and the background scrubber.

    Section 5 notes the testbed offloads checksums to the NIC; this block
    models what checksums *buy*: detection of silent corruption (disk bit
    rot, misdirected writes, in-flight ORDMA corruption) that every other
    fault path would pass through to the application as clean data. Off
    by default (``enabled=False``): the seed data path charges no
    checksum cost and performs no verification, bit for bit.

    When enabled, the server computes a per-block checksum at write (and
    cache warm) time, verifies blocks it serves over RPC, and attaches
    the expected checksum to every exported ORDMA reference so *clients*
    can verify direct reads the server CPU never sees.
    """

    #: Master switch: compute/verify block checksums end to end.
    enabled: bool = False
    #: Fixed CPU cost to dispatch one block checksum (setup + compare).
    checksum_op_us: float = 0.4
    #: Checksum throughput over the block payload, bytes/us. Software
    #: CRC32C on a P-III-class core; the NIC-offload configurations of
    #: Section 5 would raise this toward the copy bandwidth.
    checksum_bw: float = 1500.0
    #: Disk re-reads attempted for a block that failed verification
    #: before the server quarantines it (EINTEGRITY to the client).
    verify_retries: int = 2
    #: Background scrubber wake-up period in sim-us; 0 disables the
    #: scrubber (verification then happens only on reads).
    scrub_interval_us: float = 0.0
    #: Cached blocks verified per scrubber wake-up.
    scrub_blocks_per_pass: int = 8


@dataclass
class Params:
    """Aggregate testbed parameters (one per simulated experiment)."""

    host: HostParams = field(default_factory=HostParams)
    nic: NicParams = field(default_factory=NicParams)
    net: NetworkParams = field(default_factory=NetworkParams)
    proto: ProtocolParams = field(default_factory=ProtocolParams)
    storage: StorageParams = field(default_factory=StorageParams)
    sched: SchedParams = field(default_factory=SchedParams)
    shard: ShardParams = field(default_factory=ShardParams)
    integrity: IntegrityParams = field(default_factory=IntegrityParams)
    #: Master seed for every component RNG stream (determinism).
    seed: int = 2003

    def copy(self, **overrides) -> "Params":
        """Return a deep copy with optional top-level field replacements."""
        fields = {
            "host": replace(self.host),
            "nic": replace(self.nic),
            "net": replace(self.net),
            "proto": replace(self.proto),
            "storage": replace(self.storage),
            "sched": replace(self.sched),
            "shard": replace(self.shard),
            "integrity": replace(self.integrity),
            "seed": self.seed,
        }
        fields.update(overrides)
        return Params(**fields)


def default_params() -> Params:
    """The calibrated FAST'03 testbed."""
    return Params()
