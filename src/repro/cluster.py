"""Testbed wiring: hosts, switch, server and clients for one experiment.

A :class:`Cluster` reproduces the paper's experimental platform — up to
four PCs on a 2 Gb/s switch (Section 5) — configured for one of the five
NAS systems of Table 1:

========== ===================== ============================+
system      server                client
========== ===================== ============================+
nfs         NFSServer (UDP)       NFSClient (copies, bcache)
nfs-prepost NFSServer (UDP)       NFSPrepostClient (RDDP-RPC)
nfs-hybrid  NFSServer (UDP+GM)    NFSHybridClient (RDMA data)
dafs        DAFSServer (VI)       DAFSClient (user-level)
odafs       ODAFSServer (VI)      ODAFSClient (ORDMA)
========== ===================== ============================+
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .fs.disk import Disk
from .fs.files import FileSystem
from .hw.host import Host
from .hw.nic import NotifyMode
from .nas.client.dafs import DAFSClient
from .nas.client.nfs import NFSClient
from .nas.client.nfs_hybrid import NFSHybridClient
from .nas.client.nfs_prepost import NFSPrepostClient
from .nas.client.nfs_remap import NFSRemapClient
from .nas.client.odafs import ODAFSClient
from .nas.server.filecache import ServerFileCache
from .nas.server.sched import RequestScheduler
from .nas.server.server import DAFSServer, NFSServer, ODAFSServer
from .net.link import Switch
from .net.packet import reset_msg_ids
from .params import Params, default_params
from .proto.rpc import RetryPolicy
from .sim import (MetricsRegistry, RandomStreams, Simulator,
                  TimeSeriesSampler)

SYSTEMS = ("nfs", "nfs-prepost", "nfs-remap", "nfs-hybrid", "dafs", "odafs")


class Cluster:
    """One wired experiment: a server plus ``n_clients`` client hosts."""

    def __init__(self, params: Optional[Params] = None,
                 system: str = "dafs", n_clients: int = 1,
                 block_size: Optional[int] = None,
                 server_cache_blocks: int = 4096,
                 server_notify_mode: NotifyMode = NotifyMode.BLOCK,
                 use_capabilities: bool = True,
                 server_preload_tlb: bool = True,
                 client_kwargs: Optional[Dict] = None):
        if system not in SYSTEMS:
            raise ValueError(f"unknown system {system!r}; one of {SYSTEMS}")
        self.params = params or default_params()
        self.system = system
        self.sim = Simulator()
        self.rand = RandomStreams(self.params.seed)
        # The switch draws loss decisions from a named stream of the
        # master seed (not a hardcoded one) so --seed reaches every RNG.
        self.switch = Switch(self.sim, self.params.net,
                             rng=self.rand.stream("net.loss"))
        self.block_size = block_size or self.params.storage.server_cache_block

        self.server_host = Host(self.sim, self.params, self.switch, "server",
                                use_capabilities=use_capabilities)
        self.fs = FileSystem(self.block_size)
        self.disk = Disk(self.sim, self.params.storage,
                         name="server.disk")
        self.cache = ServerFileCache(self.server_host, self.block_size,
                                     server_cache_blocks,
                                     export=(system == "odafs"),
                                     preload_tlb=server_preload_tlb)
        if system == "odafs":
            self.server = ODAFSServer(self.server_host, self.fs, self.disk,
                                      self.cache, mode=server_notify_mode)
        elif system == "dafs":
            self.server = DAFSServer(self.server_host, self.fs, self.disk,
                                     self.cache, mode=server_notify_mode)
        else:
            self.server = NFSServer(self.server_host, self.fs, self.disk,
                                    self.cache)
        #: Admission/request scheduler; ``None`` unless ``params.sched``
        #: enables a policy (the seed dispatch model stays untouched).
        self.scheduler: Optional[RequestScheduler] = None
        sched_p = self.params.sched
        if sched_p.policy != "none":
            self.scheduler = RequestScheduler(
                self.sim, policy=sched_p.policy,
                service_threads=sched_p.service_threads,
                max_queue=sched_p.max_queue)
            self.server.rpc.attach_scheduler(self.scheduler)
        self.server.start()

        kwargs = dict(client_kwargs or {})
        self.client_hosts: List[Host] = []
        self.clients = []
        for i in range(n_clients):
            host = Host(self.sim, self.params, self.switch, f"client{i}",
                        use_capabilities=use_capabilities)
            self.client_hosts.append(host)
            client = self._make_client(host, kwargs)
            if self.scheduler is not None:
                # Rejections come back as busy replies; each client backs
                # off on its own seeded jitter stream (PR-2 machinery).
                client.rpc.reject_retry = RetryPolicy(
                    backoff_base_us=sched_p.reject_backoff_base_us,
                    backoff_factor=sched_p.reject_backoff_factor,
                    backoff_cap_us=sched_p.reject_backoff_cap_us,
                    jitter=sched_p.reject_jitter,
                    max_retries=sched_p.reject_max_retries,
                    rng=self.rand.stream(f"{host.name}.reject"))
            self.clients.append(client)

        #: One hierarchical read-out over every component's instruments.
        self.metrics = MetricsRegistry()
        self._register_metrics()
        #: Continuous telemetry; ``None`` until :meth:`attach_sampler`.
        self.sampler: Optional[TimeSeriesSampler] = None
        self.reset()

    def reset(self) -> None:
        """Zero every id space a run consumes: the module-global message
        ids and each RPC endpoint's xid/session state.

        Called automatically at the end of wiring, so same-seed runs stay
        byte-identical even when one process builds several clusters in
        sequence — bench code must never call ``reset_msg_ids`` (or poke
        RPC internals) directly.
        """
        reset_msg_ids()
        self.server.rpc.reset_session()
        for client in self.clients:
            # A shard router fronts one RPC client per server; plain
            # clients are their own single "subclient".
            for sub in getattr(client, "subclients", None) or [client]:
                sub.rpc.reset_session()

    def _register_metrics(self) -> None:
        reg = self.metrics
        reg.register("server.cpu", self.server_host.cpu.busy)
        reg.register("server.nic", self.server_host.nic.stats)
        reg.register("server.disk", self.disk.stats)
        reg.register("server.cache", self.cache.stats)
        reg.register("server.ops", self.server.stats)
        reg.register("server.rpc", self.server.rpc.stats)
        if self.server.checksums is not None:
            reg.register("server.integrity", self.server.integrity)
        if self.scheduler is not None:
            reg.register("server.sched", self.scheduler.stats)
        for i, (host, client) in enumerate(zip(self.client_hosts,
                                               self.clients)):
            reg.register(f"client{i}.cpu", host.cpu.busy)
            reg.register(f"client{i}.nic", host.nic.stats)
            reg.register(f"client{i}.ops", client.stats)
            reg.register(f"client{i}.rpc", client.rpc.stats)
            cache = getattr(client, "cache", None)
            if cache is not None and hasattr(cache, "stats"):
                reg.register(f"client{i}.cache", cache.stats)

    def attach_sampler(self, interval_us: float = 50.0,
                       capacity: int = 8192) -> TimeSeriesSampler:
        """Wire a :class:`~repro.sim.TimeSeriesSampler` over every
        component's gauges, under the registry's dotted naming scheme.

        Telemetry stays off by default — this only builds the probe set
        and registers it on :attr:`metrics` as ``timeseries``; sampling
        begins when the caller invokes ``sampler.start(stop_on=proc)``
        around the measured workload. Can be attached at most once.
        """
        if self.sampler is not None:
            raise RuntimeError("sampler already attached")
        sampler = TimeSeriesSampler(self.sim, interval_us=interval_us,
                                    capacity=capacity)
        sampler.probe_many("server.cpu", self.server_host.cpu.gauges())
        sampler.probe_many("server.nic", self.server_host.nic.gauges())
        sampler.probe_many("server.cache", self.cache.gauges())
        sampler.probe_many("server.rpc", self.server.rpc.gauges())
        if self.server.checksums is not None:
            sampler.probe_many("server.integrity",
                               self.server.integrity_gauges())
        if self.scheduler is not None:
            sampler.probe_many("server.sched", self.scheduler.gauges())
        sampler.probe_many("net.server", self.server_host.nic.port.gauges())
        for i, (host, client) in enumerate(zip(self.client_hosts,
                                               self.clients)):
            prefix = f"client{i}"
            sampler.probe_many(f"{prefix}.cpu", host.cpu.gauges())
            sampler.probe_many(f"{prefix}.nic", host.nic.gauges())
            sampler.probe_many(f"{prefix}.rpc", client.rpc.gauges())
            ordma = getattr(client, "ordma", None)
            if ordma is not None:
                sampler.probe_many(f"{prefix}.ordma", ordma.gauges())
            directory = getattr(client, "directory", None)
            if directory is not None:
                sampler.probe_many(f"{prefix}.dir", directory.gauges())
            sampler.probe_many(f"net.{prefix}", host.nic.port.gauges())
        sampler.probe_many("net.switch", self.switch.gauges())
        self.metrics.register("timeseries", sampler)
        self.sampler = sampler
        return sampler

    def _make_client(self, host: Host, kwargs: Dict):
        if self.system == "nfs":
            return NFSClient(host, "server", **kwargs)
        if self.system == "nfs-prepost":
            return NFSPrepostClient(host, "server", **kwargs)
        if self.system == "nfs-remap":
            return NFSRemapClient(host, "server", **kwargs)
        if self.system == "nfs-hybrid":
            return NFSHybridClient(host, "server", **kwargs)
        if self.system == "dafs":
            kwargs.setdefault("cache_block_size", self.block_size)
            return DAFSClient(host, "server", **kwargs)
        kwargs.setdefault("cache_block_size", self.block_size)
        return ODAFSClient(host, "server", **kwargs)

    # -- experiment setup -------------------------------------------------

    def create_file(self, name: str, size: int, warm: bool = True) -> None:
        """Create a file on the server; ``warm=True`` preloads the server
        file cache (the standard Section 5 setup)."""
        self.fs.create(name, size)
        if warm:
            self.server.warm(name)

    # -- measurement helpers ------------------------------------------------

    def reset_measurements(self) -> None:
        """Open a fresh measurement window on every host CPU."""
        self.server_host.cpu.reset_measurement()
        for host in self.client_hosts:
            host.cpu.reset_measurement()

    def server_cpu_utilization(self) -> float:
        """Server CPU utilization over the current measurement window."""
        return self.server_host.cpu.utilization()

    def client_cpu_utilization(self, index: int = 0) -> float:
        """One client's CPU utilization over the measurement window."""
        return self.client_hosts[index].cpu.utilization()

    def run(self, until: Optional[float] = None) -> None:
        """Advance the simulation (thin wrapper over ``sim.run``)."""
        self.sim.run(until=until)
