"""Declarative fault-firing schedules.

A :class:`FaultSchedule` describes *when* a fault (or fault window)
fires, independently of *what* it does; the :class:`repro.faults.
Injector` binds schedules to actions when it arms. Three modes cover the
campaigns we run:

* ``at``      — explicit fire times (regression tests, scripted outages);
* ``poisson`` — memoryless arrivals at a given rate over an interval
  (background failure processes);
* ``burst``   — ``count`` fires at fixed spacing (correlated failures:
  an exception storm, a flapping link).

All randomness comes from the RNG handed to :meth:`fires` — the injector
passes a named :class:`repro.sim.RandomStreams` stream, so two runs with
the same master seed see byte-identical schedules.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple

#: One planned firing: (absolute fire time in us, window duration in us).
#: A zero duration means a point fault; a positive one a start/end window.
Firing = Tuple[float, float]


@dataclass(frozen=True)
class FaultSchedule:
    """When faults fire. Build via :meth:`at`, :meth:`poisson`, :meth:`burst`."""

    mode: str
    times: Tuple[float, ...] = ()
    duration_us: float = 0.0
    rate_per_ms: float = 0.0
    start_us: float = 0.0
    end_us: float = 0.0
    count: int = 0
    spacing_us: float = 0.0

    # -- constructors ------------------------------------------------------

    @classmethod
    def at(cls, times, duration_us: float = 0.0) -> "FaultSchedule":
        """Fire at each absolute time in ``times``."""
        ordered = tuple(sorted(float(t) for t in times))
        if any(t < 0 for t in ordered):
            raise ValueError(f"negative fire time in {ordered}")
        return cls(mode="at", times=ordered, duration_us=duration_us)

    @classmethod
    def poisson(cls, rate_per_ms: float, start_us: float, end_us: float,
                duration_us: float = 0.0) -> "FaultSchedule":
        """Poisson arrivals at ``rate_per_ms`` over [start_us, end_us)."""
        if rate_per_ms <= 0:
            raise ValueError(f"rate must be positive: {rate_per_ms}")
        if end_us <= start_us:
            raise ValueError(f"empty interval [{start_us}, {end_us})")
        return cls(mode="poisson", rate_per_ms=rate_per_ms,
                   start_us=start_us, end_us=end_us, duration_us=duration_us)

    @classmethod
    def burst(cls, start_us: float, count: int, spacing_us: float,
              duration_us: float = 0.0) -> "FaultSchedule":
        """``count`` fires starting at ``start_us``, ``spacing_us`` apart."""
        if count < 1:
            raise ValueError(f"burst needs at least one fire: {count}")
        if spacing_us < 0:
            raise ValueError(f"negative spacing: {spacing_us}")
        return cls(mode="burst", start_us=start_us, count=count,
                   spacing_us=spacing_us, duration_us=duration_us)

    # -- expansion ---------------------------------------------------------

    def fires(self, rng: random.Random) -> List[Firing]:
        """Expand to a finite, ascending list of (time, duration) pairs.

        Only the ``poisson`` mode consumes ``rng``; the others are fully
        determined by their parameters.
        """
        if self.mode == "at":
            return [(t, self.duration_us) for t in self.times]
        if self.mode == "burst":
            return [(self.start_us + i * self.spacing_us, self.duration_us)
                    for i in range(self.count)]
        if self.mode == "poisson":
            out: List[Firing] = []
            t = self.start_us
            while True:
                # expovariate is in ms at rate_per_ms; scale to us.
                t += rng.expovariate(self.rate_per_ms) * 1000.0
                if t >= self.end_us:
                    return out
                out.append((t, self.duration_us))
        raise ValueError(f"unknown schedule mode {self.mode!r}")
