"""Per-layer fault state consulted by the hardware models.

Each adapter holds the knobs for one component class and answers one
cheap question on that component's hot path ("does this frame survive?",
"does this doorbell stall?"). The components themselves only carry a
``faults`` attribute that defaults to ``None`` — the adapters are
installed lazily by :class:`repro.faults.Injector`, so an un-injected
simulation never pays for (or is perturbed by) any of this.

Two determinism rules hold throughout:

* an adapter draws from its RNG **only when the matching probability is
  non-zero** (or a one-shot trap is set), so attaching an all-zero
  adapter is bit-identical to no adapter;
* every injected fault is accounted exactly once, through :meth:`_note`,
  which bumps the shared counter *and* emits a ``fault`` trace event —
  counters and tracer can never diverge.
"""

from __future__ import annotations

import random
from typing import Any, Optional, Set, Tuple

from ..integrity.checksum import corrupt_payload
from ..sim import Counter, Simulator, trace_emit


class LayerFaults:
    """Common plumbing: RNG, shared counters, trace emission."""

    #: Counter prefix and the ``cls`` field of emitted fault events.
    layer = "base"

    def __init__(self, sim: Simulator, rng: random.Random,
                 stats: Optional[Counter] = None, component: str = ""):
        self.sim = sim
        self.rng = rng
        self.stats = stats if stats is not None else Counter()
        self.component = component or self.layer

    def _note(self, mode: str, **detail) -> None:
        """Account one injected fault: counter + ``fault`` trace event."""
        self.stats.incr(f"{self.layer}.{mode}")
        trace_emit(self.sim, self.component, "fault", cls=self.layer,
                   mode=mode, **detail)


class LinkFaults(LayerFaults):
    """Switch-level faults: frame drop, corruption, delay, partition.

    ``corrupt_p`` models **detected** corruption: the mangled frame
    fails the receiver's CRC and is dropped there, so drop and
    corruption differ only in accounting (``link.corrupt`` vs
    ``link.drop``) and recovery is the ordinary retransmission
    machinery. Corruption that *evades* detection and flows to the
    application as clean data is a different failure class entirely —
    see :attr:`DiskFaults.bitrot_p`/:attr:`DiskFaults.misdirect_p` and
    :attr:`NicFaults.ordma_corrupt_p`, which only ``params.integrity``
    checksums can catch. ``drop_next`` / ``delay_next`` are one-shot
    traps for targeted tests: they fire on the next frame(s) regardless
    of the probabilities.
    """

    layer = "link"

    def __init__(self, sim: Simulator, rng: random.Random,
                 stats: Optional[Counter] = None, component: str = "switch"):
        super().__init__(sim, rng, stats, component)
        self.drop_p = 0.0
        self.corrupt_p = 0.0
        self.delay_p = 0.0
        self.delay_us = 0.0
        self.drop_next = 0
        self.delay_next = 0
        self._partitioned: Set[str] = set()

    def partition(self, *hosts: str) -> None:
        """Cut the given hosts off the fabric until :meth:`heal`."""
        self._partitioned.update(hosts)
        self._note("partition", hosts=tuple(sorted(hosts)))

    def heal(self, *hosts: str) -> None:
        """Reconnect hosts (all currently partitioned ones if none given)."""
        victims = tuple(sorted(hosts or self._partitioned))
        self._partitioned.difference_update(victims)
        self._note("heal", hosts=victims)

    def frame_fate(self, src: str, dst: str) -> Tuple[str, float]:
        """Decide one frame's fate: ('ok'|'drop'|'corrupt', extra delay us)."""
        if self._partitioned and (src in self._partitioned
                                  or dst in self._partitioned):
            self._note("partition_drop", src=src, dst=dst)
            return "drop", 0.0
        if self.drop_next > 0:
            self.drop_next -= 1
            self._note("drop", src=src, dst=dst, forced=True)
            return "drop", 0.0
        if self.drop_p > 0.0 and self.rng.random() < self.drop_p:
            self._note("drop", src=src, dst=dst)
            return "drop", 0.0
        if self.corrupt_p > 0.0 and self.rng.random() < self.corrupt_p:
            self._note("corrupt", src=src, dst=dst)
            return "corrupt", 0.0
        if self.delay_next > 0:
            self.delay_next -= 1
            self._note("delay", src=src, dst=dst, us=self.delay_us,
                       forced=True)
            return "ok", self.delay_us
        if self.delay_p > 0.0 and self.rng.random() < self.delay_p:
            self._note("delay", src=src, dst=dst, us=self.delay_us)
            return "ok", self.delay_us
        return "ok", 0.0


class NicFaults(LayerFaults):
    """NIC faults: doorbell stalls and forced ORDMA rejections.

    A doorbell stall models firmware backpressure on the host-facing
    command path; an ORDMA rejection makes the *target* NIC fault an
    optimistic access it would otherwise have served (an "exception
    storm" when driven in bursts), exercising the client's RPC fallback
    at arbitrary rates without disturbing the server cache.
    """

    layer = "nic"

    def __init__(self, sim: Simulator, rng: random.Random,
                 stats: Optional[Counter] = None, component: str = "nic"):
        super().__init__(sim, rng, stats, component)
        self.stall_p = 0.0
        self.stall_us = 0.0
        self.stall_next = 0
        self.ordma_reject_p = 0.0
        self.ordma_reject_next = 0
        #: Silent in-flight corruption of served optimistic gets: the
        #: target NIC returns mangled data with *no* fault raised (the
        #: checksums-are-offloaded gap of Section 5 — nothing on the
        #: direct path validates what the DMA engine ships).
        self.ordma_corrupt_p = 0.0
        self.ordma_corrupt_next = 0

    def doorbell_delay(self) -> float:
        """Extra stall (us) for the doorbell being rung now, or 0.0."""
        if self.stall_next > 0:
            self.stall_next -= 1
            self._note("doorbell_stall", us=self.stall_us, forced=True)
            return self.stall_us
        if self.stall_p > 0.0 and self.rng.random() < self.stall_p:
            self._note("doorbell_stall", us=self.stall_us)
            return self.stall_us
        return 0.0

    def ordma_reject(self) -> bool:
        """Should the target NIC fault this optimistic access?"""
        if self.ordma_reject_next > 0:
            self.ordma_reject_next -= 1
            self._note("ordma_reject", forced=True)
            return True
        if self.ordma_reject_p > 0.0 and self.rng.random() < self.ordma_reject_p:
            self._note("ordma_reject")
            return True
        return False

    def ordma_corrupt(self) -> bool:
        """Should this served optimistic get carry corrupted data?

        Unlike :meth:`ordma_reject` nothing faults: the initiator
        receives a normal completion with a wrong payload. Only a
        client-side checksum (``params.integrity``) can tell.
        """
        if self.ordma_corrupt_next > 0:
            self.ordma_corrupt_next -= 1
            self._note("ordma_corrupt", forced=True)
            return True
        if self.ordma_corrupt_p > 0.0 \
                and self.rng.random() < self.ordma_corrupt_p:
            self._note("ordma_corrupt")
            return True
        return False


class DiskFaults(LayerFaults):
    """Disk faults: transient I/O errors, latency spikes, and *silent*
    data corruption.

    Errors are transient (a reread succeeds with probability
    ``1 - error_p``); the disk layer retries internally up to
    ``max_retries`` times before surfacing ``DiskError`` to the file
    server, each retry paying the full access time again.

    ``bitrot_p`` and ``misdirect_p`` are different in kind: the access
    *succeeds* and hands back wrong data — decayed media on the read
    path, a write steered to the wrong sector on the write path. No
    error surfaces anywhere; only checksum verification
    (``params.integrity``) can detect either.
    """

    layer = "disk"

    def __init__(self, sim: Simulator, rng: random.Random,
                 stats: Optional[Counter] = None, component: str = "disk"):
        super().__init__(sim, rng, stats, component)
        self.error_p = 0.0
        self.error_next = 0
        self.delay_p = 0.0
        self.delay_us = 0.0
        self.max_retries = 8
        self.bitrot_p = 0.0
        self.bitrot_next = 0
        self.misdirect_p = 0.0
        self.misdirect_next = 0

    def io_plan(self) -> Tuple[bool, float]:
        """Plan one access: (fails?, extra latency us)."""
        if self.error_next > 0:
            self.error_next -= 1
            self._note("io_error", forced=True)
            return True, 0.0
        if self.error_p > 0.0 and self.rng.random() < self.error_p:
            self._note("io_error")
            return True, 0.0
        if self.delay_p > 0.0 and self.rng.random() < self.delay_p:
            self._note("delay", us=self.delay_us)
            return False, self.delay_us
        return False, 0.0

    def bitrot_payload(self, data: Any) -> Any:
        """Filter one payload read from the platter: bit rot wraps it as
        silently corrupted (the read itself succeeded)."""
        if self.bitrot_next > 0:
            self.bitrot_next -= 1
            self._note("bitrot", forced=True)
            return corrupt_payload(data, "bitrot")
        if self.bitrot_p > 0.0 and self.rng.random() < self.bitrot_p:
            self._note("bitrot")
            return corrupt_payload(data, "bitrot")
        return data

    def misdirect_payload(self, data: Any) -> Any:
        """Filter one written payload: a misdirected write lands on the
        wrong sector, so the block's stored copy is silently wrong while
        the write completes successfully."""
        if self.misdirect_next > 0:
            self.misdirect_next -= 1
            self._note("misdirect", forced=True)
            return corrupt_payload(data, "misdirect")
        if self.misdirect_p > 0.0 and self.rng.random() < self.misdirect_p:
            self._note("misdirect")
            return corrupt_payload(data, "misdirect")
        return data


class ServerFaults(LayerFaults):
    """Server process crash/restart, consulted by the RPC dispatch loop.

    A crash pauses the RPC server for ``downtime_us`` (requests arriving
    meanwhile are silently dropped — clients recover via retransmission)
    and fires the server's ``on_crash`` callback, which the injector
    wires to clear the file cache: a restarted server comes back cold,
    so every exported ORDMA reference held by clients is now stale.
    """

    layer = "server"

    def __init__(self, sim: Simulator, rng: random.Random,
                 stats: Optional[Counter] = None, component: str = "server"):
        super().__init__(sim, rng, stats, component)
        self.crash_p = 0.0
        self.crash_next = 0
        self.downtime_us = 2000.0

    def crash_now(self, rpc_server,
                  downtime_us: Optional[float] = None) -> bool:
        """Crash ``rpc_server`` immediately (no-op if already down)."""
        downtime = self.downtime_us if downtime_us is None else downtime_us
        if not rpc_server.crash(downtime):
            return False
        self._note("crash", downtime_us=downtime)
        return True

    def maybe_crash(self, rpc_server) -> bool:
        """Roll the per-request crash dice for an arriving request."""
        crash = False
        if self.crash_next > 0:
            self.crash_next -= 1
            crash = True
        elif self.crash_p > 0.0 and self.rng.random() < self.crash_p:
            crash = True
        if not crash:
            return False
        return self.crash_now(rpc_server)
