"""Deterministic fault injection and resilience for the NAS testbed.

The paper's optimistic RDMA is built on *recoverable failure* (Section
4.1): a stale remote reference faults at the server NIC and the client
falls back to RPC. This package generalizes that discipline to every
layer of the model so graceful degradation becomes a measurable curve
rather than an untested claim:

* :class:`FaultSchedule` — declarative fire times (fixed, Poisson-rate,
  burst), drawn from :class:`repro.sim.RandomStreams` so campaigns are
  bit-reproducible under a fixed seed.
* Layer adapters (:mod:`repro.faults.adapters`) — per-component fault
  state the hardware models consult on their hot paths: link frame
  drop/corruption/delay and partition, NIC doorbell stalls and forced
  ORDMA rejections, disk I/O errors and latency spikes, server
  crash/restart with file-cache loss.
* :class:`Injector` — wires adapters into one :class:`repro.cluster.
  Cluster`, arms schedules, and turns on the client resilience layer
  (RPC timeout/retransmit, initiator-side RDMA timeouts).

Every hook is a ``None``-guarded attribute check: with no injector
attached, simulations are bit-identical to a build without this package.
"""

from .adapters import DiskFaults, LinkFaults, NicFaults, ServerFaults
from .injector import Injector
from .schedule import FaultSchedule

__all__ = [
    "DiskFaults",
    "FaultSchedule",
    "Injector",
    "LinkFaults",
    "NicFaults",
    "ServerFaults",
]
