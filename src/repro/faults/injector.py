"""The injector: wires fault adapters into a cluster and arms schedules.

Usage::

    cluster = Cluster(params, system="odafs")
    inj = Injector(cluster)
    inj.enable_resilience()            # RPC retry + RDMA timeouts
    inj.link_loss(0.01)                # 1% frame drop, steady state
    inj.schedule_server_crash(FaultSchedule.at([50_000.0]))
    inj.arm()
    cluster.run()

All randomness flows through named :class:`repro.sim.RandomStreams`
streams derived from the cluster's master seed (``faults.link``,
``faults.nic.client0``, …), so a campaign is a pure function of its
seed. The injector registers one shared fault counter under ``faults``
in the cluster's metrics registry; every injected fault also lands in
the tracer (kind ``fault``) when one is attached.
"""

from __future__ import annotations

import random
from typing import Callable, Generator, List, Optional, Tuple

from ..proto.rpc import RetryPolicy
from ..sim import Counter
from .adapters import DiskFaults, LinkFaults, NicFaults, ServerFaults
from .schedule import FaultSchedule

#: An armed schedule: (schedule, name, on_start, on_end-or-None).
_Armed = Tuple[FaultSchedule, str, Callable[[], None],
               Optional[Callable[[], None]]]


class Injector:
    """Installs fault adapters on one cluster and drives schedules."""

    def __init__(self, cluster, stream_prefix: str = "faults"):
        self.cluster = cluster
        self.sim = cluster.sim
        self.stream_prefix = stream_prefix
        #: Shared fault counter, one namespace per layer (link.drop, …).
        self.stats = Counter()
        self._schedules: List[_Armed] = []
        self._armed = False
        if "faults" not in cluster.metrics:
            cluster.metrics.register("faults", self.stats)

    def _stream(self, name: str) -> random.Random:
        return self.cluster.rand.stream(f"{self.stream_prefix}.{name}")

    # -- single- vs multi-server topology ----------------------------------

    def _servers(self) -> List:
        """The cluster's file servers (one for :class:`repro.cluster.
        Cluster`, N for a :class:`~repro.nas.shard.ShardedCluster`)."""
        servers = getattr(self.cluster, "servers", None)
        return list(servers) if servers is not None \
            else [self.cluster.server]

    def _server_hosts(self) -> List:
        hosts = getattr(self.cluster, "server_hosts", None)
        return list(hosts) if hosts is not None \
            else [self.cluster.server_host]

    def _disks(self) -> List:
        disks = getattr(self.cluster, "disks", None)
        return list(disks) if disks is not None else [self.cluster.disk]

    def _caches(self) -> List:
        caches = getattr(self.cluster, "caches", None)
        return list(caches) if caches is not None else [self.cluster.cache]

    def _label(self, index: int) -> str:
        """Stream-name suffix for server-side component ``index``.

        Single-server clusters keep the historical bare names
        (``server``, ``disk``, ``retry.client0``) so their campaigns
        stay byte-identical; sharded clusters get indexed streams
        (``server0``, ``disk1``, …).
        """
        return str(index) if hasattr(self.cluster, "servers") else ""

    # -- adapter installation (lazy; one per component) --------------------

    @property
    def link(self) -> LinkFaults:
        switch = self.cluster.switch
        if switch.faults is None:
            switch.faults = LinkFaults(self.sim, self._stream("link"),
                                       stats=self.stats,
                                       component=switch.name)
        return switch.faults

    def nic(self, host) -> NicFaults:
        if host.nic.faults is None:
            host.nic.faults = NicFaults(
                self.sim, self._stream(f"nic.{host.name}"),
                stats=self.stats, component=host.name)
        return host.nic.faults

    def disk_faults(self, index: int = 0) -> DiskFaults:
        """The fault adapter for server ``index``'s disk."""
        disk = self._disks()[index]
        if disk.faults is None:
            disk.faults = DiskFaults(
                self.sim, self._stream(f"disk{self._label(index)}"),
                stats=self.stats, component=disk.name)
        return disk.faults

    @property
    def disk(self) -> DiskFaults:
        return self.disk_faults(0)

    def server_faults(self, index: int = 0) -> ServerFaults:
        """The fault adapter for server ``index``'s RPC process."""
        rpc = self._servers()[index].rpc
        if rpc.faults is None:
            rpc.faults = ServerFaults(
                self.sim, self._stream(f"server{self._label(index)}"),
                stats=self.stats,
                component=self._server_hosts()[index].name)
            rpc.on_crash = self._state_loss_of(index)
        return rpc.faults

    @property
    def server(self) -> ServerFaults:
        return self.server_faults(0)

    def _all_hosts(self):
        return self._server_hosts() + list(self.cluster.client_hosts)

    def _state_loss_of(self, index: int):
        """Crash consequence for server ``index``: its file cache does
        not survive a restart.

        Dropping the blocks deregisters their TPT segments, so every
        ORDMA reference clients still hold is now stale and will fault —
        the recovery story of Section 4.1 at whole-cache scale.
        """
        cache = self._caches()[index]

        def lose_state() -> None:
            lost = cache.clear()
            self.stats.incr("server.cache_blocks_lost", lost)
        return lose_state

    # -- steady-state rate configuration ----------------------------------

    def link_loss(self, p: float) -> None:
        """Drop each forwarded frame with probability ``p``."""
        self.link.drop_p = p

    def link_corruption(self, p: float) -> None:
        """Corrupt frames with probability ``p`` — **detected** corruption.

        The mangled frame fails the receiving NIC's CRC and is dropped
        there, so this behaves exactly like :meth:`link_loss` except in
        the fault accounting (``link.corrupt`` vs ``link.drop``);
        recovery is the normal retransmission machinery. For corruption
        that *evades* detection and reaches the application as clean
        data — which only ``params.integrity`` checksums can catch — use
        the silent-corruption knobs: :meth:`disk_bitrot`,
        :meth:`disk_misdirected_writes`, :meth:`ordma_silent_corruption`.
        """
        self.link.corrupt_p = p

    def link_delay(self, p: float, spike_us: float) -> None:
        """Add a ``spike_us`` forwarding delay with probability ``p``."""
        self.link.delay_p = p
        self.link.delay_us = spike_us

    def partition(self, *hosts: str) -> None:
        self.link.partition(*hosts)

    def heal(self, *hosts: str) -> None:
        self.link.heal(*hosts)

    def nic_doorbell_stalls(self, p: float, stall_us: float,
                            hosts=None) -> None:
        """Stall doorbell rings with probability ``p`` on ``hosts`` (all)."""
        for host in hosts if hosts is not None else self._all_hosts():
            nf = self.nic(host)
            nf.stall_p = p
            nf.stall_us = stall_us

    def ordma_rejects(self, p: float) -> None:
        """Make the server NICs fault optimistic accesses at rate ``p``."""
        for host in self._server_hosts():
            self.nic(host).ordma_reject_p = p

    def ordma_silent_corruption(self, p: float) -> None:
        """Silently corrupt served optimistic gets with probability ``p``.

        Unlike :meth:`ordma_rejects` nothing faults: the server NIC
        completes the get normally but ships a wrong payload, modelling
        exactly the validation gap the direct-access path opens (the
        server CPU never sees the bytes a client DMAs out of its cache).
        Detectable only by client-side verification of the checksum
        carried on the ORDMA reference (``params.integrity``).
        """
        for host in self._server_hosts():
            self.nic(host).ordma_corrupt_p = p

    def disk_bitrot(self, p: float) -> None:
        """Silently corrupt payloads read from disk with probability
        ``p`` (decayed media: the read succeeds, the data is wrong).

        Hits the server's cache-miss fill path, so the corrupt copy then
        sits in the file cache serving every consumer — RPC readers,
        exported ORDMA blocks, replicas warming from it — until a
        checksum verification (read-path or scrubber) catches it.
        """
        for k in range(len(self._disks())):
            self.disk_faults(k).bitrot_p = p

    def disk_misdirected_writes(self, p: float) -> None:
        """Silently misdirect writes with probability ``p``: the write
        completes successfully but lands on the wrong sector, leaving
        the block's stored copy wrong while the checksum metadata
        (recorded from the intended data) stays correct."""
        for k in range(len(self._disks())):
            self.disk_faults(k).misdirect_p = p

    def disk_errors(self, p: float,
                    max_retries: Optional[int] = None) -> None:
        """Fail disk accesses with probability ``p`` (transient)."""
        for k in range(len(self._disks())):
            df = self.disk_faults(k)
            df.error_p = p
            if max_retries is not None:
                df.max_retries = max_retries

    def disk_delays(self, p: float, spike_us: float) -> None:
        """Add a ``spike_us`` positioning spike with probability ``p``."""
        for k in range(len(self._disks())):
            df = self.disk_faults(k)
            df.delay_p = p
            df.delay_us = spike_us

    def server_crashes(self, p: float,
                       downtime_us: Optional[float] = None) -> None:
        """Crash each server with probability ``p`` per arriving request."""
        for k in range(len(self._servers())):
            sf = self.server_faults(k)
            sf.crash_p = p
            if downtime_us is not None:
                sf.downtime_us = downtime_us

    # -- scheduled faults ---------------------------------------------------

    def schedule(self, sched: FaultSchedule, name: str,
                 on_start: Callable[[], None],
                 on_end: Optional[Callable[[], None]] = None) -> None:
        """Bind a schedule to callbacks; runs once :meth:`arm` is called.

        ``on_end`` (if given) fires ``duration_us`` after each
        ``on_start`` — use schedules with a positive duration for
        window-style faults like partitions.
        """
        if self._armed:
            raise RuntimeError("injector already armed")
        self._schedules.append((sched, name, on_start, on_end))

    def schedule_partition(self, sched: FaultSchedule,
                           *hosts: str) -> None:
        """Partition ``hosts`` for each schedule window (needs duration)."""
        if sched.duration_us <= 0:
            raise ValueError("partition schedules need a positive duration")
        link = self.link
        self.schedule(sched, "partition",
                      lambda: link.partition(*hosts),
                      lambda: link.heal(*hosts))

    def schedule_server_crash(self, sched: FaultSchedule,
                              downtime_us: Optional[float] = None,
                              shard: int = 0) -> None:
        """Crash server ``shard`` at each fire time (restart after
        downtime). ``shard`` is only meaningful on sharded clusters."""
        faults = self.server_faults(shard)
        rpc = self._servers()[shard].rpc
        self.schedule(sched, f"server-crash{self._label(shard)}",
                      lambda: faults.crash_now(rpc, downtime_us))

    def schedule_ordma_storm(self, sched: FaultSchedule,
                             count: int = 8, shard: int = 0) -> None:
        """At each fire, fault the next ``count`` optimistic accesses
        against server ``shard``'s NIC."""
        nf = self.nic(self._server_hosts()[shard])

        def storm() -> None:
            nf.ordma_reject_next += count
        self.schedule(sched, f"ordma-storm{self._label(shard)}", storm)

    def _run_schedule(self, sched: FaultSchedule, name: str,
                      on_start: Callable[[], None],
                      on_end: Optional[Callable[[], None]]) -> Generator:
        rng = self._stream(f"schedule.{name}")
        for when, duration in sched.fires(rng):
            if when > self.sim.now:
                yield self.sim.timeout(when - self.sim.now)
            on_start()
            if on_end is not None and duration > 0:
                yield self.sim.timeout(duration)
                on_end()

    def arm(self) -> None:
        """Spawn one driver process per bound schedule."""
        self._armed = True
        for sched, name, on_start, on_end in self._schedules:
            self.sim.process(
                self._run_schedule(sched, name, on_start, on_end),
                name=f"faults.{name}")

    # -- resilience ---------------------------------------------------------

    def enable_resilience(self, timeout_us: float = 4000.0,
                          max_retries: int = 10,
                          backoff_base_us: float = 200.0,
                          backoff_factor: float = 2.0,
                          backoff_cap_us: float = 4000.0,
                          jitter: float = 0.25,
                          rdma_timeout_us: float = 3000.0,
                          rdma_put_retries: int = 10) -> None:
        """Turn on the recovery machinery injected faults rely on.

        Gives every client an RPC :class:`RetryPolicy` (timeout, capped
        exponential backoff with seeded jitter, retransmission under the
        same xid), puts an initiator-side timeout on all RDMA operations
        so dropped frames surface as recoverable faults instead of
        hangs, and lets the server retransmit its server-initiated RDMA
        writes. Off by default because the extra timer events perturb
        event ordering relative to an un-injected run.
        """
        for i, client in enumerate(self.cluster.clients):
            subclients = getattr(client, "subclients", None)
            if subclients is None:
                # Plain client: one RPC endpoint, historical stream name.
                targets = [(f"retry.client{i}", client)]
            else:
                # Shard router: one retry policy (and stream) per
                # per-server subclient, so a retransmission storm on one
                # shard never perturbs another shard's jitter draws.
                targets = [(f"retry.client{i}.s{k}", sub)
                           for k, sub in enumerate(subclients)]
            for stream_name, endpoint in targets:
                endpoint.rpc.retry = RetryPolicy(
                    timeout_us=timeout_us, max_retries=max_retries,
                    backoff_base_us=backoff_base_us,
                    backoff_factor=backoff_factor,
                    backoff_cap_us=backoff_cap_us, jitter=jitter,
                    rng=self._stream(stream_name))
            client.host.nic.rdma_timeout_us = rdma_timeout_us
        for host in self._server_hosts():
            host.nic.rdma_timeout_us = rdma_timeout_us
        for server in self._servers():
            server.rdma_put_retries = rdma_put_retries
