"""Server-side admission control and request scheduling.

The seed server model dispatched one concurrent task per arriving
request — fine for one or two clients, but with many clients hammering
one server it hides the two effects the paper's scale argument rests on
(Section 2.3): queueing delay at a loaded server, and the hard limit a
kernel's service-thread pool puts on concurrent request processing.

:class:`RequestScheduler` supplies both. It is a pure queueing/policy
object — :class:`~repro.proto.rpc.RPCServer` owns the receive and
dispatch loops and asks the scheduler three questions:

* :meth:`admit` — may this arrival join the bounded accept queue? A
  ``False`` answer makes the server send an explicit busy rejection; the
  client backs off (seeded, capped-exponential — the PR-2 machinery) and
  retransmits under the same xid.
* :meth:`pop` — which queued request runs next? ``"fifo"`` serves the
  shared arrival queue in order; ``"fair"`` keeps one queue per client
  and serves them round-robin (deficit round-robin with a unit quantum),
  so one greedy client cannot starve the rest.
* ``active`` / ``service_threads`` — how many handlers may run at once,
  modeling the kernel service-thread (nfsd biod/worker) pool.

Everything is deterministic: queue order is a pure function of arrival
order, so same-seed runs stay byte-identical. Telemetry exposes
``server.sched.qdepth`` / ``server.sched.active`` gauges and a windowed
rejection rate via :meth:`gauges`.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Callable, Deque, Dict, Optional, Tuple

from ...net.packet import Message
from ...sim import Counter, Simulator, rate_probe

#: Supported scheduling policies (``SchedParams.policy`` minus "none").
POLICIES = ("fifo", "fair")

#: One queued arrival: the message plus its enqueue timestamp (the
#: dispatcher turns the difference into span queue-wait attribution).
QueueEntry = Tuple[Message, float]


class RequestScheduler:
    """Bounded accept queue + service-thread pool + dispatch policy."""

    def __init__(self, sim: Simulator, policy: str = "fifo",
                 service_threads: int = 4, max_queue: int = 64):
        if policy not in POLICIES:
            raise ValueError(f"unknown policy {policy!r}; one of {POLICIES}")
        if service_threads < 1:
            raise ValueError(f"service_threads must be >= 1: "
                             f"{service_threads}")
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1: {max_queue}")
        self.sim = sim
        self.policy = policy
        self.service_threads = service_threads
        self.max_queue = max_queue
        #: Handlers currently executing (maintained by the RPC server's
        #: dispatch loop; compared against ``service_threads``).
        self.active = 0
        #: admitted / dispatched / rejected / completed / dropped_at_crash
        #: counters, registered as ``server.sched`` in cluster metrics.
        self.stats = Counter()
        #: High-water mark of the accept queue depth.
        self.peak_qdepth = 0
        #: High-water mark of concurrently active handlers.
        self.peak_active = 0
        self._queued = 0
        self._fifo: Deque[QueueEntry] = deque()
        #: Per-client queues + round-robin order, for the "fair" policy.
        self._per_client: Dict[str, Deque[QueueEntry]] = OrderedDict()
        self._rr: Deque[str] = deque()

    def __len__(self) -> int:
        """Requests waiting in the accept queue (not yet dispatched)."""
        return self._queued

    def admit(self, msg: Message) -> bool:
        """Try to enqueue an arrival; ``False`` means reject (queue full).

        Admission is the only place load is shed: once admitted, a
        request is guaranteed to be dispatched exactly once (or counted
        in ``dropped_at_crash`` if the server process dies first).
        """
        if self._queued >= self.max_queue:
            self.stats.incr("rejected")
            return False
        entry = (msg, self.sim.now)
        if self.policy == "fifo":
            self._fifo.append(entry)
        else:
            client = msg.src
            queue = self._per_client.get(client)
            if queue is None:
                queue = deque()
                self._per_client[client] = queue
            if not queue:
                self._rr.append(client)
            queue.append(entry)
        self._queued += 1
        if self._queued > self.peak_qdepth:
            self.peak_qdepth = self._queued
        self.stats.incr("admitted")
        return True

    def pop(self) -> Optional[QueueEntry]:
        """Next ``(message, enqueue_ts)`` to serve, or ``None`` if idle.

        FIFO pops the shared queue; fair-share rotates over clients with
        pending work, taking one request per turn, so every client with a
        backlog is served within one full rotation (no starvation).
        """
        if not self._queued:
            return None
        if self.policy == "fifo":
            entry = self._fifo.popleft()
        else:
            client = self._rr.popleft()
            queue = self._per_client[client]
            entry = queue.popleft()
            if queue:
                self._rr.append(client)
            else:
                del self._per_client[client]
        self._queued -= 1
        self.stats.incr("dispatched")
        return entry

    def note_active(self, delta: int) -> None:
        """Track the handler pool occupancy (dispatch loop bookkeeping)."""
        self.active += delta
        if self.active > self.peak_active:
            self.peak_active = self.active

    def drop_all(self) -> int:
        """Discard every queued request (server crash: the accept queue
        lived in server memory). Clients recover by retransmission.
        Returns the number of requests dropped."""
        dropped = self._queued
        self._fifo.clear()
        self._per_client.clear()
        self._rr.clear()
        self._queued = 0
        if dropped:
            self.stats.incr("dropped_at_crash", dropped)
        return dropped

    def gauges(self) -> Dict[str, Callable[[], float]]:
        """Telemetry probes (``server.sched.*``): accept-queue depth,
        busy handler count, and the windowed rejection rate per second."""
        return {
            "qdepth": lambda: float(self._queued),
            "active": lambda: float(self.active),
            "rejected_s": rate_probe(
                self.sim, lambda: float(self.stats.get("rejected")),
                scale=1e6),
        }
